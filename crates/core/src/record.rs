//! The Tango log-record vocabulary stored in entry payloads.

use bytes::Bytes;
use tango_wire::{Decode, Encode, Reader, WireError, Writer};

use crate::{KeyHash, LogOffset, Oid};

/// Globally unique transaction identifier: the generating runtime's client
/// id plus a per-runtime sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxId {
    /// The generating runtime's client id.
    pub client: u64,
    /// Per-runtime transaction counter.
    pub seq: u64,
}

/// A single object mutation: the opaque buffer a mutator coalesced its
/// parameters into (§3.1), plus the optional fine-grained versioning key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateRecord {
    /// The object being mutated.
    pub oid: Oid,
    /// Fine-grained versioning key (None = whole-object).
    pub key: Option<KeyHash>,
    /// The opaque update buffer, interpreted by the object's `apply`.
    pub data: Bytes,
}

/// One entry of a transaction's read set: the object/key read and the
/// version it had at read time (the last log offset that modified it, +1;
/// 0 = never modified).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadKey {
    /// The object read.
    pub oid: Oid,
    /// Fine-grained key (None = whole-object read).
    pub key: Option<KeyHash>,
    /// The version observed at read time.
    pub version: u64,
}

/// Everything Tango writes into the shared log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogRecord {
    /// A non-transactional single-object update.
    Update(UpdateRecord),
    /// Buffered transactional writes flushed before the commit record
    /// ("speculative writes", §3.2): invisible until the commit record.
    Speculative {
        /// The owning transaction.
        txid: TxId,
        /// The buffered updates.
        updates: Vec<UpdateRecord>,
    },
    /// A transaction commit record (§3.2): appended to every write-set
    /// stream via `multiappend`, so it occupies one position in the global
    /// order (§4.1).
    Commit {
        /// The transaction id.
        txid: TxId,
        /// The read set with observed versions.
        reads: Vec<ReadKey>,
        /// Small write sets are carried inline.
        updates: Vec<UpdateRecord>,
        /// Offsets of earlier [`LogRecord::Speculative`] entries belonging
        /// to this transaction.
        speculative: Vec<LogOffset>,
        /// True if the generating client will follow up with a
        /// [`LogRecord::Decision`] (§4.1 case C).
        needs_decision: bool,
    },
    /// The commit/abort outcome of an earlier commit record, appended to
    /// the same streams for consumers that cannot evaluate the read set.
    Decision {
        /// The transaction decided.
        txid: TxId,
        /// The commit record's position.
        commit_pos: LogOffset,
        /// True = committed.
        committed: bool,
    },
    /// A checkpoint of an object's view; playback may start here instead of
    /// the beginning of the stream (§3.1 "History").
    Checkpoint {
        /// The object checkpointed.
        oid: Oid,
        /// Opaque state produced by [`crate::StateMachine::checkpoint`].
        data: Bytes,
        /// The playback position the checkpoint captures (entries at or
        /// below this offset are reflected in `data`).
        as_of: LogOffset,
    },
}

impl Encode for TxId {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.client);
        w.put_u64(self.seq);
    }
}

impl Decode for TxId {
    fn decode(r: &mut Reader<'_>) -> tango_wire::Result<Self> {
        Ok(Self { client: r.get_u64()?, seq: r.get_u64()? })
    }
}

impl Encode for UpdateRecord {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.oid);
        self.key.encode(w);
        w.put_bytes(&self.data);
    }
}

impl Decode for UpdateRecord {
    fn decode(r: &mut Reader<'_>) -> tango_wire::Result<Self> {
        Ok(Self { oid: r.get_u32()?, key: Option::<u64>::decode(r)?, data: Bytes::decode(r)? })
    }
}

impl Encode for ReadKey {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.oid);
        self.key.encode(w);
        w.put_u64(self.version);
    }
}

impl Decode for ReadKey {
    fn decode(r: &mut Reader<'_>) -> tango_wire::Result<Self> {
        Ok(Self { oid: r.get_u32()?, key: Option::<u64>::decode(r)?, version: r.get_u64()? })
    }
}

impl Encode for LogRecord {
    fn encode(&self, w: &mut Writer) {
        match self {
            LogRecord::Update(u) => {
                w.put_u8(0);
                u.encode(w);
            }
            LogRecord::Speculative { txid, updates } => {
                w.put_u8(1);
                txid.encode(w);
                updates.encode(w);
            }
            LogRecord::Commit { txid, reads, updates, speculative, needs_decision } => {
                w.put_u8(2);
                txid.encode(w);
                reads.encode(w);
                updates.encode(w);
                w.put_varint(speculative.len() as u64);
                for &off in speculative {
                    w.put_u64(off);
                }
                w.put_bool(*needs_decision);
            }
            LogRecord::Decision { txid, commit_pos, committed } => {
                w.put_u8(3);
                txid.encode(w);
                w.put_u64(*commit_pos);
                w.put_bool(*committed);
            }
            LogRecord::Checkpoint { oid, data, as_of } => {
                w.put_u8(4);
                w.put_u32(*oid);
                w.put_bytes(data);
                w.put_u64(*as_of);
            }
        }
    }
}

impl Decode for LogRecord {
    fn decode(r: &mut Reader<'_>) -> tango_wire::Result<Self> {
        match r.get_u8()? {
            0 => Ok(LogRecord::Update(UpdateRecord::decode(r)?)),
            1 => Ok(LogRecord::Speculative {
                txid: TxId::decode(r)?,
                updates: Vec::<UpdateRecord>::decode(r)?,
            }),
            2 => {
                let txid = TxId::decode(r)?;
                let reads = Vec::<ReadKey>::decode(r)?;
                let updates = Vec::<UpdateRecord>::decode(r)?;
                let n = r.get_len(1 << 20)?;
                let mut speculative = Vec::with_capacity(n);
                for _ in 0..n {
                    speculative.push(r.get_u64()?);
                }
                let needs_decision = r.get_bool()?;
                Ok(LogRecord::Commit { txid, reads, updates, speculative, needs_decision })
            }
            3 => Ok(LogRecord::Decision {
                txid: TxId::decode(r)?,
                commit_pos: r.get_u64()?,
                committed: r.get_bool()?,
            }),
            4 => Ok(LogRecord::Checkpoint {
                oid: r.get_u32()?,
                data: Bytes::decode(r)?,
                as_of: r.get_u64()?,
            }),
            tag => Err(WireError::InvalidTag { what: "LogRecord", tag: tag as u64 }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tango_wire::{decode_from_slice, encode_to_vec};

    fn upd(oid: Oid, key: Option<u64>) -> UpdateRecord {
        UpdateRecord { oid, key, data: Bytes::from_static(b"data") }
    }

    #[test]
    fn all_records_roundtrip() {
        let records = vec![
            LogRecord::Update(upd(3, None)),
            LogRecord::Update(upd(3, Some(0xDEAD_BEEF))),
            LogRecord::Speculative {
                txid: TxId { client: 1, seq: 2 },
                updates: vec![upd(1, None), upd(2, Some(7))],
            },
            LogRecord::Commit {
                txid: TxId { client: 9, seq: 100 },
                reads: vec![
                    ReadKey { oid: 1, key: None, version: 0 },
                    ReadKey { oid: 2, key: Some(5), version: 77 },
                ],
                updates: vec![upd(1, Some(5))],
                speculative: vec![10, 20],
                needs_decision: true,
            },
            LogRecord::Decision {
                txid: TxId { client: 9, seq: 100 },
                commit_pos: 55,
                committed: false,
            },
            LogRecord::Checkpoint { oid: 4, data: Bytes::from_static(b"ckpt"), as_of: 42 },
        ];
        for rec in records {
            let bytes = encode_to_vec(&rec);
            assert_eq!(decode_from_slice::<LogRecord>(&bytes).unwrap(), rec);
        }
    }

    #[test]
    fn garbage_is_rejected_not_panicking() {
        assert!(decode_from_slice::<LogRecord>(&[]).is_err());
        assert!(decode_from_slice::<LogRecord>(&[99]).is_err());
        assert!(decode_from_slice::<LogRecord>(&[2, 1, 2, 3]).is_err());
    }
}
