//! The Tango runtime: merged multi-stream playback, version tracking,
//! transactions, checkpoints, and the object directory.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use corfu::{log_of_offset, raw_of_offset, CorfuClient, CrossLogLink, StreamId};
use corfu_stream::StreamClient;
use parking_lot::Mutex;
use tango_metrics::{log_scoped, Counter, Gauge, Histogram, Registry};
use tango_wire::{decode_from_slice, encode_to_vec};

use crate::directory::{DirectoryOp, DirectoryState};
use crate::object::{ApplyMeta, ApplySink, ObjectOptions, ObjectView, SinkFor, StateMachine};
use crate::record::{LogRecord, ReadKey, TxId, UpdateRecord};
use crate::tx::{self, TxContext, TxOptions, TxStatus};
use crate::versions::ConflictTable;
use crate::{KeyHash, LogOffset, Oid, Result, TangoError, DIRECTORY_OID};

/// Tuning knobs for a runtime instance.
#[derive(Debug, Clone)]
pub struct RuntimeOptions {
    /// This runtime's client id (half of every [`TxId`] it generates).
    /// Defaults to a process-unique value.
    pub client_id: u64,
    /// How long to wait for a decision record before resolving a remote-read
    /// transaction offline (§4.1 failure handling).
    pub decision_timeout: Duration,
    /// Write sets up to this many bytes ride inline in the commit record;
    /// larger ones spill into speculative entries first (§3.2).
    pub inline_update_limit: usize,
    /// If set, playback stops at this log position: the view is a snapshot
    /// of history (§3.1 "History" — time travel / coordinated rollback).
    pub play_limit: Option<LogOffset>,
}

impl Default for RuntimeOptions {
    fn default() -> Self {
        static NEXT: AtomicU64 = AtomicU64::new(1);
        let pid = std::process::id() as u64;
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        Self {
            client_id: (pid << 32) | n,
            decision_timeout: Duration::from_millis(100),
            inline_update_limit: 3 * 1024,
            play_limit: None,
        }
    }
}

struct RegisteredObject {
    sink: Box<dyn ApplySink>,
    needs_decision: bool,
}

/// `tango.*` instruments, bound to the deployment-wide registry the
/// underlying CORFU client carries.
#[derive(Clone, Default)]
struct RuntimeMetrics {
    apply_latency_ns: Histogram,
    conflict_check_latency_ns: Histogram,
    tx_begin: Counter,
    tx_commit: Counter,
    tx_abort: Counter,
    checkpoints: Counter,
    trims: Counter,
    /// Backing registry for the lazily bound per-log applied gauges.
    registry: Registry,
    /// Per-log playback watermark gauges (`tango.applied_offset`,
    /// log-scoped): the highest *raw* offset this runtime has played in
    /// each log. The health plane subtracts this from the sequencer's
    /// `corfu.seq.tail` to compute apply lag.
    applied: Arc<Mutex<HashMap<u32, Gauge>>>,
}

impl RuntimeMetrics {
    fn from_registry(registry: &Registry) -> Self {
        Self {
            apply_latency_ns: registry.histogram("tango.apply_latency_ns"),
            conflict_check_latency_ns: registry.histogram("tango.conflict_check_latency_ns"),
            tx_begin: registry.counter("tango.tx_begin"),
            tx_commit: registry.counter("tango.tx_commit"),
            tx_abort: registry.counter("tango.tx_abort"),
            checkpoints: registry.counter("tango.checkpoints"),
            trims: registry.counter("tango.trims"),
            registry: registry.clone(),
            applied: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// Raises log `log`'s applied watermark to `raw` (gauges only move
    /// forward; playback can visit logs out of composite order).
    fn record_applied(&self, log: u32, raw: LogOffset) {
        let gauge = {
            let mut map = self.applied.lock();
            map.entry(log)
                .or_insert_with(|| {
                    self.registry
                        .gauge(&log_scoped(tango_metrics::health::GAUGE_APPLIED, log as u64))
                })
                .clone()
        };
        if gauge.get() < raw as i64 {
            gauge.set(raw as i64);
        }
    }
}

struct Playback {
    objects: HashMap<Oid, RegisteredObject>,
    versions: ConflictTable,
    /// Transaction outcomes this runtime knows (own evaluations, decision
    /// records, offline resolutions).
    decided: HashMap<TxId, bool>,
    /// Buffered speculative updates awaiting their commit record.
    speculative: HashMap<TxId, BTreeMap<LogOffset, Vec<UpdateRecord>>>,
    /// All entries with offset < position have been processed.
    position: LogOffset,
    /// Latest checkpoint record seen per object.
    last_checkpoint: HashMap<Oid, LogOffset>,
    /// The `as_of` position of each object's latest checkpoint: everything
    /// below it is captured by that checkpoint, so the log prefix under
    /// `min` of these floors is safe to reclaim (§3.2 garbage collection).
    checkpoint_floor: HashMap<Oid, LogOffset>,
}

/// The Tango runtime (§3): one per client process. All views it hosts are
/// kept consistent by playing their streams forward in global log order.
pub struct TangoRuntime {
    stream: StreamClient,
    opts: RuntimeOptions,
    tx_seq: AtomicU64,
    play: Mutex<Playback>,
    dir_state: Arc<Mutex<DirectoryState>>,
    metrics: RuntimeMetrics,
}

impl TangoRuntime {
    /// Creates a runtime over a CORFU client with default options. The
    /// object directory (OID 0) is registered automatically.
    pub fn new(corfu: CorfuClient) -> Result<Arc<Self>> {
        Self::with_options(corfu, RuntimeOptions::default())
    }

    /// Creates a runtime with explicit options.
    pub fn with_options(corfu: CorfuClient, opts: RuntimeOptions) -> Result<Arc<Self>> {
        let stream = StreamClient::new(corfu);
        let dir_state = Arc::new(Mutex::new(DirectoryState::new()));
        let mut objects: HashMap<Oid, RegisteredObject> = HashMap::new();
        objects.insert(
            DIRECTORY_OID,
            RegisteredObject {
                sink: Box::new(SinkFor { state: Arc::clone(&dir_state) }),
                needs_decision: false,
            },
        );
        stream.open(DIRECTORY_OID);
        let metrics = RuntimeMetrics::from_registry(stream.metrics());
        let runtime = Arc::new(Self {
            stream,
            opts,
            tx_seq: AtomicU64::new(1),
            play: Mutex::new(Playback {
                objects,
                versions: ConflictTable::new(),
                decided: HashMap::new(),
                speculative: HashMap::new(),
                position: 0,
                last_checkpoint: HashMap::new(),
                checkpoint_floor: HashMap::new(),
            }),
            dir_state,
            metrics,
        });
        // If the log prefix was compacted, the directory's early records
        // are gone; restore its view from its latest checkpoint.
        runtime.restore_directory_checkpoint()?;
        Ok(runtime)
    }

    /// Finds the newest directory checkpoint and restores from it, skipping
    /// the (possibly trimmed) prefix it captures.
    fn restore_directory_checkpoint(&self) -> Result<()> {
        self.stream.sync(&[DIRECTORY_OID])?;
        let offsets = self.stream.known_offsets(DIRECTORY_OID);
        if let Some((off, data, as_of)) = self.find_latest_checkpoint(DIRECTORY_OID, &offsets)? {
            self.dir_state.lock().restore(&data)?;
            self.stream.seek(DIRECTORY_OID, as_of);
            let mut play = self.play.lock();
            play.versions.record_write(DIRECTORY_OID, None, off);
            play.last_checkpoint.insert(DIRECTORY_OID, off);
            play.checkpoint_floor.insert(DIRECTORY_OID, as_of);
        }
        Ok(())
    }

    /// Scans `offsets` newest-first for the latest checkpoint record of
    /// `oid` (respecting the play limit), bulk-fetching the scan in
    /// batches so a restore does not pay one round trip per candidate.
    fn find_latest_checkpoint(
        &self,
        oid: Oid,
        offsets: &[LogOffset],
    ) -> Result<Option<(LogOffset, Bytes, LogOffset)>> {
        const RESTORE_SCAN_BATCH: usize = 32;
        let eligible: Vec<LogOffset> = offsets
            .iter()
            .copied()
            .filter(|&off| !self.opts.play_limit.map(|l| off >= l).unwrap_or(false))
            .collect();
        for chunk in eligible.rchunks(RESTORE_SCAN_BATCH) {
            let entries = self.stream.read_many_at(chunk)?;
            for (&off, entry) in chunk.iter().zip(entries.iter()).rev() {
                let Some(entry) = entry else { continue };
                if let Ok(LogRecord::Checkpoint { oid: o, data, as_of }) =
                    decode_from_slice::<LogRecord>(&entry.payload)
                {
                    if o == oid {
                        return Ok(Some((off, data, as_of)));
                    }
                }
            }
        }
        Ok(None)
    }

    /// The options in effect.
    pub fn options(&self) -> &RuntimeOptions {
        &self.opts
    }

    /// The stream client (for advanced use and tests).
    pub fn stream(&self) -> &StreamClient {
        &self.stream
    }

    /// The underlying CORFU client.
    pub fn corfu(&self) -> &CorfuClient {
        self.stream.corfu()
    }

    /// The deployment-wide metrics registry. The runtime's `tango.*`
    /// instruments record here, alongside the `stream.*`, `corfu.*` and
    /// `rpc.*` instruments of the layers below it, so one snapshot covers
    /// the whole stack.
    pub fn metrics(&self) -> &Registry {
        self.stream.metrics()
    }

    fn runtime_id(&self) -> usize {
        self as *const TangoRuntime as usize
    }

    // ------------------------------------------------------------------
    // Object registration
    // ------------------------------------------------------------------

    /// Hosts a view of object `oid`, playing its stream from the beginning
    /// (or from the latest checkpoint, see
    /// [`TangoRuntime::register_object_from_checkpoint`]).
    pub fn register_object<S: StateMachine>(
        self: &Arc<Self>,
        oid: Oid,
        state: S,
        options: ObjectOptions,
    ) -> Result<ObjectView<S>> {
        let state = Arc::new(Mutex::new(state));
        let mut play = self.play.lock();
        if play.objects.contains_key(&oid) {
            return Err(TangoError::AlreadyRegistered { oid });
        }
        self.stream.open(oid);
        play.objects.insert(
            oid,
            RegisteredObject {
                sink: Box::new(SinkFor { state: Arc::clone(&state) }),
                needs_decision: options.needs_decision,
            },
        );
        drop(play);
        Ok(ObjectView::new(Arc::clone(self), oid, state))
    }

    /// Hosts a view of `oid`, restoring from its latest checkpoint record
    /// if one exists and replaying only the suffix. Falls back to a full
    /// replay when the object has never checkpointed.
    pub fn register_object_from_checkpoint<S: StateMachine>(
        self: &Arc<Self>,
        oid: Oid,
        mut state: S,
        options: ObjectOptions,
    ) -> Result<ObjectView<S>> {
        self.stream.open(oid);
        self.stream.sync(&[oid])?;
        let offsets = self.stream.known_offsets(oid);
        let mut restore_point = None;
        if let Some((off, data, as_of)) = self.find_latest_checkpoint(oid, &offsets)? {
            state.restore(&data)?;
            restore_point = Some((off, as_of));
        }
        let view = self.register_object(oid, state, options)?;
        if let Some((ckpt_off, as_of)) = restore_point {
            // Skip everything the checkpoint already captured.
            self.stream.seek(oid, as_of);
            let mut play = self.play.lock();
            // Conservative versioning: anything restored counts as modified
            // at the checkpoint record's position.
            play.versions.record_write(oid, None, ckpt_off);
            play.last_checkpoint.insert(oid, ckpt_off);
            play.checkpoint_floor.insert(oid, as_of);
        }
        Ok(view)
    }

    // ------------------------------------------------------------------
    // The helpers (Figure 3)
    // ------------------------------------------------------------------

    /// The paper's `update_helper`: append an opaque update to the object's
    /// stream, or buffer it when a transaction is active on this thread.
    pub(crate) fn update_helper(
        &self,
        oid: Oid,
        key: Option<KeyHash>,
        data: Vec<u8>,
    ) -> Result<()> {
        let update = UpdateRecord { oid, key, data: Bytes::from(data) };
        let buffered = tx::with_active(self.runtime_id(), |ctx| {
            ctx.record_write(update.clone());
        });
        match buffered {
            Some(()) => Ok(()),
            None => {
                let record = LogRecord::Update(update);
                self.stream.multiappend(&[oid], Bytes::from(encode_to_vec(&record)))?;
                Ok(())
            }
        }
    }

    /// The paper's `query_helper`: outside a transaction, play the log
    /// forward to its tail; inside one, record the read (oid, key, version)
    /// without syncing.
    pub(crate) fn query_helper(&self, oid: Oid, key: Option<KeyHash>) -> Result<()> {
        if tx::is_active(self.runtime_id()) {
            self.record_tx_read_if_active(oid, key)
        } else {
            self.sync()?;
            Ok(())
        }
    }

    /// Writes to an object *without* hosting a view of it (a "remote
    /// write", §4.1 case A). Outside a transaction this appends a plain
    /// update record; inside one the write joins the transaction's write
    /// set and commits atomically with the rest.
    pub fn update_remote(&self, oid: Oid, key: Option<KeyHash>, data: Vec<u8>) -> Result<()> {
        self.update_helper(oid, key, data)
    }

    /// Adds (oid, key, current version) to the active transaction's read
    /// set, if one exists on this thread.
    pub(crate) fn record_tx_read_if_active(&self, oid: Oid, key: Option<KeyHash>) -> Result<()> {
        if !tx::is_active(self.runtime_id()) {
            return Ok(());
        }
        let version = self.play.lock().versions.version_for_read(oid, key);
        tx::with_active(self.runtime_id(), |ctx| {
            ctx.record_read(oid, key, version);
        });
        Ok(())
    }

    // ------------------------------------------------------------------
    // Playback
    // ------------------------------------------------------------------

    /// Synchronizes every hosted stream with the log tail and plays all new
    /// entries in global order. Returns the position played to.
    pub fn sync(&self) -> Result<LogOffset> {
        let hosted = self.hosted_streams();
        let tail = self.stream.sync(&hosted)?;
        let target = self.opts.play_limit.map(|l| l.min(tail)).unwrap_or(tail);
        self.play_to(target)?;
        Ok(target)
    }

    /// The playback position: all entries below it have been processed.
    pub fn position(&self) -> LogOffset {
        self.play.lock().position
    }

    fn hosted_streams(&self) -> Vec<StreamId> {
        let play = self.play.lock();
        let mut v: Vec<StreamId> = play.objects.keys().copied().collect();
        v.sort_unstable();
        v
    }

    fn play_to(&self, target: LogOffset) -> Result<()> {
        let mut play = self.play.lock();
        self.play_to_locked(&mut play, target)
    }

    /// Processes entries of all hosted streams, in global offset order,
    /// up to (but excluding) `target`.
    ///
    /// Delivery itself is strictly in-order and per-entry, but the entries
    /// are pulled from the log in bulk: playback prefetches the upcoming
    /// window of every hosted cursor into the stream cache in waves, so
    /// the `read_at` inside the loop is a cache hit. This is what makes
    /// cold catch-up (a new client replaying a long log) fast.
    fn play_to_locked(&self, play: &mut Playback, target: LogOffset) -> Result<()> {
        // Wave size: how many upcoming offsets per stream are bulk-fetched
        // ahead of delivery each time the previous wave is consumed.
        const PLAYBACK_WAVE: usize = 256;
        let mut since_prefetch = PLAYBACK_WAVE;
        loop {
            if since_prefetch >= PLAYBACK_WAVE {
                let mut pending: Vec<LogOffset> = Vec::new();
                for &oid in play.objects.keys() {
                    pending.extend(self.stream.pending_below(oid, target, PLAYBACK_WAVE));
                }
                pending.sort_unstable();
                pending.dedup();
                self.stream.fetch_into_cache(&pending)?;
                since_prefetch = 0;
            }
            since_prefetch += 1;
            // The next entry in the merged order: the minimum cursor head.
            let mut min_off: Option<LogOffset> = None;
            for &oid in play.objects.keys() {
                if let Some(off) = self.stream.peek(oid) {
                    if off < target && min_off.map(|m| off < m).unwrap_or(true) {
                        min_off = Some(off);
                    }
                }
            }
            let Some(off) = min_off else { break };
            if let Some(entry) = self.stream.read_at(off)? {
                // A payload this runtime cannot parse (foreign writer) is
                // skipped rather than wedging playback.
                if let Ok(record) = decode_from_slice::<LogRecord>(&entry.payload) {
                    self.process_record(play, record, off, entry.link.as_ref())?;
                }
            }
            // Advance every hosted cursor sitting on this offset.
            let on_this: Vec<Oid> = play
                .objects
                .keys()
                .filter(|&&oid| self.stream.peek(oid) == Some(off))
                .copied()
                .collect();
            for oid in on_this {
                self.stream.seek(oid, off + 1);
            }
            play.position = play.position.max(off + 1);
            self.metrics.record_applied(log_of_offset(off), raw_of_offset(off) + 1);
        }
        play.position = play.position.max(target);
        if target > 0 {
            // `target` is usually the tail: everything below it in its own
            // log has been processed (delivered or skipped as non-member),
            // so the watermark advances even when no hosted stream had
            // entries there.
            self.metrics.record_applied(log_of_offset(target), raw_of_offset(target));
        }
        Ok(())
    }

    fn process_record(
        &self,
        play: &mut Playback,
        record: LogRecord,
        off: LogOffset,
        link: Option<&CrossLogLink>,
    ) -> Result<()> {
        match record {
            LogRecord::Update(u) => {
                // Apply only if this object's cursor is delivering this
                // entry now (idempotence across late registrations).
                if play.objects.contains_key(&u.oid) && self.stream.peek(u.oid) == Some(off) {
                    play.versions.record_write(u.oid, u.key, off);
                    let meta = ApplyMeta { offset: off, oid: u.oid, key: u.key, txid: None };
                    if let Some(obj) = play.objects.get(&u.oid) {
                        self.metrics.apply_latency_ns.time(|| obj.sink.apply(&u.data, &meta));
                    }
                }
            }
            LogRecord::Speculative { txid, updates } => {
                play.speculative.entry(txid).or_default().insert(off, updates);
            }
            LogRecord::Checkpoint { oid, as_of, .. } => {
                let slot = play.last_checkpoint.entry(oid).or_insert(0);
                if off >= *slot {
                    *slot = off;
                    let floor = play.checkpoint_floor.entry(oid).or_insert(0);
                    *floor = (*floor).max(as_of);
                }
            }
            LogRecord::Decision { txid, committed, .. } => {
                play.decided.entry(txid).or_insert(committed);
            }
            LogRecord::Commit { txid, reads, updates, speculative, needs_decision } => {
                let committed = match self.eval_commit(play, txid, &reads, link) {
                    Some(c) => c,
                    None => self.await_decision(play, txid, off, &reads, needs_decision, link)?,
                };
                self.finish_commit(play, txid, off, &updates, &speculative, committed)?;
            }
        }
        Ok(())
    }

    /// Tries to decide a commit record locally: either we already know the
    /// outcome, or we host every object in the read set and can validate
    /// versions directly.
    ///
    /// A cross-log commit (the entry carries a [`CrossLogLink`]) is never
    /// validated against the live version tables: playback reaches the
    /// entry's parts at different points of the composite merge order, so a
    /// read stream in another log may not be played to its pin yet. Those
    /// commits resolve through the decision path, whose offline fallback
    /// pins each read to the commit's part in the read's own log.
    fn eval_commit(
        &self,
        play: &Playback,
        txid: TxId,
        reads: &[ReadKey],
        link: Option<&CrossLogLink>,
    ) -> Option<bool> {
        if let Some(&d) = play.decided.get(&txid) {
            return Some(d);
        }
        if link.is_some() {
            return None;
        }
        if reads.iter().all(|r| play.objects.contains_key(&r.oid)) {
            Some(reads.iter().all(|r| !play.versions.is_stale(r)))
        } else {
            None
        }
    }

    /// Blocks until the generating client's decision record for `txid`
    /// arrives on one of our hosted streams; after `decision_timeout`,
    /// resolves the transaction offline from the log (§4.1 failure
    /// handling) and publishes a decision record for everyone else.
    fn await_decision(
        &self,
        play: &mut Playback,
        txid: TxId,
        commit_off: LogOffset,
        reads: &[ReadKey],
        needs_decision: bool,
        link: Option<&CrossLogLink>,
    ) -> Result<bool> {
        // If the generator did not mark the transaction, no decision record
        // will ever arrive; resolve offline immediately.
        let deadline = if needs_decision {
            Instant::now() + self.opts.decision_timeout
        } else {
            Instant::now()
        };
        let hosted = {
            let mut v: Vec<StreamId> = play.objects.keys().copied().collect();
            v.sort_unstable();
            v
        };
        loop {
            // Scan ahead on hosted streams for the decision record,
            // bulk-fetching each stream's lookahead in one go.
            for &oid in &hosted {
                let ahead: Vec<LogOffset> = self
                    .stream
                    .known_offsets(oid)
                    .into_iter()
                    .filter(|&o| o > commit_off)
                    .collect();
                self.stream.fetch_into_cache(&ahead)?;
                for off in ahead {
                    let Some(entry) = self.stream.read_at(off)? else { continue };
                    if let Ok(LogRecord::Decision { txid: t, committed, .. }) =
                        decode_from_slice::<LogRecord>(&entry.payload)
                    {
                        if t == txid {
                            return Ok(committed);
                        }
                    }
                }
            }
            if Instant::now() >= deadline {
                break;
            }
            self.stream.sync(&hosted)?;
            std::thread::sleep(Duration::from_millis(1));
        }
        // Offline resolution: reconstruct read-set versions from the log.
        let committed = self.decide_offline(play, reads, commit_off, link)?;
        // Publish so other consumers stop waiting (any client may do this).
        let streams = self.commit_streams_hint(reads, commit_off)?;
        if !streams.is_empty() {
            let record = LogRecord::Decision { txid, commit_pos: commit_off, committed };
            let _ = self.stream.multiappend(&streams, Bytes::from(encode_to_vec(&record)));
        }
        play.decided.insert(txid, committed);
        Ok(committed)
    }

    /// The streams a substitute decision record should go to: the streams
    /// of the original commit entry.
    fn commit_streams_hint(
        &self,
        _reads: &[ReadKey],
        commit_off: LogOffset,
    ) -> Result<Vec<StreamId>> {
        match self.stream.read_at(commit_off)? {
            Some(entry) => Ok(entry.headers.iter().map(|h| h.stream).collect()),
            None => Ok(Vec::new()),
        }
    }

    /// Applies a decided commit: on commit, replay its inline and
    /// speculative updates into every hosted object whose cursor is
    /// delivering this entry.
    fn finish_commit(
        &self,
        play: &mut Playback,
        txid: TxId,
        off: LogOffset,
        inline: &[UpdateRecord],
        spec_offsets: &[LogOffset],
        committed: bool,
    ) -> Result<()> {
        play.decided.insert(txid, committed);
        let buffered = play.speculative.remove(&txid).unwrap_or_default();
        if !committed {
            return Ok(());
        }
        // Spilled write-set entries we did not buffer (late registration)
        // are resolved with one bulk read instead of one RPC each.
        let unbuffered: Vec<LogOffset> =
            spec_offsets.iter().copied().filter(|off| !buffered.contains_key(off)).collect();
        self.stream.fetch_into_cache(&unbuffered)?;
        let mut all_updates: Vec<UpdateRecord> = Vec::new();
        for &spec_off in spec_offsets {
            if let Some(updates) = buffered.get(&spec_off) {
                all_updates.extend(updates.iter().cloned());
                continue;
            }
            // Not buffered (e.g. we registered this object late): fetch.
            let Some(entry) = self.stream.read_at(spec_off)? else { continue };
            if let Ok(LogRecord::Speculative { txid: t, updates }) =
                decode_from_slice::<LogRecord>(&entry.payload)
            {
                if t == txid {
                    all_updates.extend(updates);
                }
            }
        }
        all_updates.extend(inline.iter().cloned());
        for u in all_updates {
            let hosted_now =
                play.objects.contains_key(&u.oid) && self.stream.peek(u.oid) == Some(off);
            if hosted_now {
                play.versions.record_write(u.oid, u.key, off);
                let meta = ApplyMeta { offset: off, oid: u.oid, key: u.key, txid: Some(txid) };
                if let Some(obj) = play.objects.get(&u.oid) {
                    self.metrics.apply_latency_ns.time(|| obj.sink.apply(&u.data, &meta));
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Offline conflict resolution (§4.1 failure handling)
    // ------------------------------------------------------------------

    /// Decides a commit record whose read set we do not host, by replaying
    /// the read-set streams' *metadata* (not their object state: conflict
    /// checks only need versions) up to the commit position. Nested
    /// commits on those streams are decided recursively with memoization.
    fn decide_offline(
        &self,
        play: &mut Playback,
        reads: &[ReadKey],
        commit_off: LogOffset,
        link: Option<&CrossLogLink>,
    ) -> Result<bool> {
        let mut memo = play.decided.clone();
        for r in reads {
            let version = if link.is_none() && play.objects.contains_key(&r.oid) {
                // Hosted, single-log: our live table is exact as of the
                // commit position (playback has processed everything below
                // it).
                play.versions.version_for_read(r.oid, r.key)
            } else {
                // Cross-log commits always replay the read's own stream:
                // the live table may not be played to this read's pin.
                let upto = self.read_pin(link, r.oid, commit_off);
                self.version_at(r.oid, r.key, upto, &mut memo, 0)?
            };
            if version > r.version {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// The log position a read of `oid` validates against when deciding a
    /// commit record at `commit_off`. Single-log commits validate at the
    /// commit position itself. A cross-log commit validates each read at
    /// the commit's part *in the read's own log* — offsets in different
    /// logs are not ordered against each other, but writes to `oid` all
    /// live in its stream's log, so the part there is the commit point that
    /// orders against them. A read whose log holds no part (the transaction
    /// wrote nothing there) validates conservatively against the stream's
    /// current tail: cross-log write skew is not prevented (see
    /// DESIGN.md), but the outcome is the same deterministic function of
    /// the log contents on every client.
    fn read_pin(&self, link: Option<&CrossLogLink>, oid: Oid, commit_off: LogOffset) -> LogOffset {
        let Some(link) = link else { return commit_off };
        let log = self.stream.corfu().projection().log_of_stream(oid);
        link.parts.iter().copied().find(|&p| log_of_offset(p) == log).unwrap_or(u64::MAX)
    }

    /// Computes the version of `(oid, key)` as of log position `upto`
    /// (exclusive) by replaying the object's stream metadata.
    fn version_at(
        &self,
        oid: Oid,
        key: Option<KeyHash>,
        upto: LogOffset,
        memo: &mut HashMap<TxId, bool>,
        depth: u32,
    ) -> Result<u64> {
        if depth > 32 {
            return Err(TangoError::ResolutionDepthExceeded);
        }
        self.stream.open(oid);
        self.stream.sync(&[oid])?;
        let offsets = self.stream.known_offsets(oid);
        // Both passes below walk the same offsets; pull the whole stream
        // into the cache in batched round trips first.
        self.stream.fetch_into_cache(&offsets)?;
        // First pass: harvest decision records anywhere on this stream.
        for &off in &offsets {
            let Some(entry) = self.stream.read_at(off)? else { continue };
            if let Ok(LogRecord::Decision { txid, committed, .. }) =
                decode_from_slice::<LogRecord>(&entry.payload)
            {
                memo.entry(txid).or_insert(committed);
            }
        }
        // Second pass: replay version metadata below `upto`.
        let mut table = ConflictTable::new();
        let mut spec: HashMap<TxId, Vec<UpdateRecord>> = HashMap::new();
        for &off in offsets.iter().filter(|&&o| o < upto) {
            let Some(entry) = self.stream.read_at(off)? else { continue };
            let Ok(record) = decode_from_slice::<LogRecord>(&entry.payload) else { continue };
            match record {
                LogRecord::Update(u) if u.oid == oid => {
                    table.record_write(oid, u.key, off);
                }
                LogRecord::Speculative { txid, updates } => {
                    spec.entry(txid)
                        .or_default()
                        .extend(updates.into_iter().filter(|u| u.oid == oid));
                }
                LogRecord::Commit { txid, reads, updates, .. } => {
                    let committed = match memo.get(&txid) {
                        Some(&c) => c,
                        None => {
                            let mut ok = true;
                            for r2 in &reads {
                                let v2 = if r2.oid == oid {
                                    table.version_for_read(oid, r2.key)
                                } else {
                                    self.version_at(r2.oid, r2.key, off, memo, depth + 1)?
                                };
                                if v2 > r2.version {
                                    ok = false;
                                    break;
                                }
                            }
                            memo.insert(txid, ok);
                            ok
                        }
                    };
                    if committed {
                        for u in updates.iter().filter(|u| u.oid == oid) {
                            table.record_write(oid, u.key, off);
                        }
                        if let Some(buffered) = spec.remove(&txid) {
                            for u in buffered {
                                table.record_write(oid, u.key, off);
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        Ok(table.version_for_read(oid, key))
    }

    // ------------------------------------------------------------------
    // Transactions (§3.2, §4)
    // ------------------------------------------------------------------

    /// Begins a transaction on the current thread (the paper's `BeginTX`).
    pub fn begin_tx(&self) -> Result<()> {
        self.begin_tx_with(TxOptions::default())
    }

    /// Begins a transaction with options.
    pub fn begin_tx_with(&self, options: TxOptions) -> Result<()> {
        tx::begin(TxContext::new(self.runtime_id(), options))?;
        self.metrics.tx_begin.inc();
        Ok(())
    }

    /// Abandons the current transaction without touching the log.
    pub fn abort_tx(&self) -> Result<()> {
        tx::take(self.runtime_id()).ok_or(TangoError::NoActiveTransaction)?;
        self.metrics.tx_abort.inc();
        Ok(())
    }

    /// Ends the current transaction (the paper's `EndTX`): appends a
    /// speculative commit record to every write-set stream, plays the log
    /// to the commit point, and decides by validating the read set.
    ///
    /// Fast paths: read-only transactions append nothing (they validate
    /// against the tail, or locally with [`TxOptions::stale_reads`]);
    /// write-only transactions commit without playing the log forward.
    pub fn end_tx(&self) -> Result<TxStatus> {
        let ctx = tx::take(self.runtime_id()).ok_or(TangoError::NoActiveTransaction)?;
        if ctx.writes.is_empty() {
            return self.end_read_only(ctx);
        }
        let txid =
            TxId { client: self.opts.client_id, seq: self.tx_seq.fetch_add(1, Ordering::Relaxed) };
        let write_streams: Vec<StreamId> = ctx.write_oids.iter().copied().collect();
        // Does the write set span logs of a sharded deployment? Cross-log
        // commits always publish a decision record: consumers cannot
        // validate them against their live version tables (the parts
        // arrive at different points of the composite merge order).
        let multi_log = {
            let proj = self.stream.corfu().projection();
            let mut logs: Vec<u32> = write_streams.iter().map(|&s| proj.log_of_stream(s)).collect();
            logs.sort_unstable();
            logs.dedup();
            logs.len() > 1
        };
        let needs_decision = if ctx.reads.is_empty() {
            false
        } else if multi_log {
            true
        } else {
            let play = self.play.lock();
            ctx.write_oids.iter().any(|oid| {
                play.objects
                    .get(oid)
                    .map(|o| o.needs_decision)
                    // Remote write to an object we do not host: we cannot
                    // know who hosts it; be conservative.
                    .unwrap_or(true)
            })
        };

        // Spill large write sets as speculative entries (§3.2).
        let total: usize = ctx.writes.iter().map(|u| u.data.len() + 24).sum();
        let mut inline = ctx.writes;
        let mut spec_offsets = Vec::new();
        if total > self.opts.inline_update_limit {
            for chunk in chunk_updates(std::mem::take(&mut inline), self.opts.inline_update_limit) {
                let record = LogRecord::Speculative { txid, updates: chunk };
                let off =
                    self.stream.multiappend(&write_streams, Bytes::from(encode_to_vec(&record)))?;
                spec_offsets.push(off);
            }
        }

        // Write-only transactions: append and commit immediately.
        if ctx.reads.is_empty() {
            let record = LogRecord::Commit {
                txid,
                reads: Vec::new(),
                updates: inline,
                speculative: spec_offsets,
                needs_decision: false,
            };
            self.play.lock().decided.insert(txid, true);
            self.stream.multiappend(&write_streams, Bytes::from(encode_to_vec(&record)))?;
            self.metrics.tx_commit.inc();
            return Ok(TxStatus::Committed);
        }

        let record = LogRecord::Commit {
            txid,
            reads: ctx.reads.clone(),
            updates: inline,
            speculative: spec_offsets,
            needs_decision,
        };
        let commit_off =
            self.stream.multiappend(&write_streams, Bytes::from(encode_to_vec(&record)))?;
        // A cross-log commit's anchor envelope carries the part offsets
        // (cached by `multiappend`, so this is a local lookup).
        let commit_link = self.stream.read_at(commit_off)?.and_then(|e| e.link.clone());

        // Play the conflict window, then validate. `commit_off` is the
        // home (lowest-log) part, so the play covers exactly the home
        // log's window; reads pinned in other logs are validated by
        // replaying their own streams up to their part there.
        let hosted = self.hosted_streams();
        self.stream.sync(&hosted)?;
        let committed = {
            let mut play = self.play.lock();
            self.play_to_locked(&mut play, commit_off)?;
            let timer = self.metrics.conflict_check_latency_ns.start();
            let committed = match commit_link.as_ref() {
                None => ctx.reads.iter().all(|r| !play.versions.is_stale(r)),
                Some(link) => {
                    let proj = self.stream.corfu().projection();
                    let home_log = log_of_offset(commit_off);
                    let mut memo = play.decided.clone();
                    let mut ok = true;
                    for r in &ctx.reads {
                        let stale = if proj.log_of_stream(r.oid) == home_log {
                            play.versions.is_stale(r)
                        } else {
                            let pin = self.read_pin(Some(link), r.oid, commit_off);
                            self.version_at(r.oid, r.key, pin, &mut memo, 0)? > r.version
                        };
                        if stale {
                            ok = false;
                            break;
                        }
                    }
                    ok
                }
            };
            timer.stop();
            play.decided.insert(txid, committed);
            committed
        };
        if needs_decision {
            let record = LogRecord::Decision { txid, commit_pos: commit_off, committed };
            self.stream.multiappend(&write_streams, Bytes::from(encode_to_vec(&record)))?;
        }
        // Process our own commit record (applies the writes to hosted
        // views through the uniform path) — every part of it, so hosted
        // objects in every written log observe the outcome.
        let last_part = commit_link.as_ref().and_then(|l| l.parts.last().copied());
        self.play_to(last_part.unwrap_or(commit_off) + 1)?;
        Ok(self.count_outcome(committed))
    }

    fn end_read_only(&self, ctx: TxContext) -> Result<TxStatus> {
        if ctx.reads.is_empty() {
            self.metrics.tx_commit.inc();
            return Ok(TxStatus::Committed);
        }
        if !ctx.options.stale_reads {
            self.sync()?;
        }
        let play = self.play.lock();
        let ok = self
            .metrics
            .conflict_check_latency_ns
            .time(|| ctx.reads.iter().all(|r| !play.versions.is_stale(r)));
        Ok(self.count_outcome(ok))
    }

    fn count_outcome(&self, committed: bool) -> TxStatus {
        if committed {
            self.metrics.tx_commit.inc();
            TxStatus::Committed
        } else {
            self.metrics.tx_abort.inc();
            TxStatus::Aborted
        }
    }

    /// Runs `body` inside a transaction, retrying on aborts up to
    /// `max_retries` times. Returns the body's value from the committing
    /// attempt.
    pub fn run_tx<R>(
        &self,
        max_retries: u32,
        mut body: impl FnMut() -> Result<R>,
    ) -> Result<(TxStatus, Option<R>)> {
        for _ in 0..=max_retries {
            self.begin_tx()?;
            match body() {
                Ok(value) => match self.end_tx()? {
                    TxStatus::Committed => return Ok((TxStatus::Committed, Some(value))),
                    TxStatus::Aborted => continue,
                },
                Err(e) => {
                    let _ = self.abort_tx();
                    return Err(e);
                }
            }
        }
        Ok((TxStatus::Aborted, None))
    }

    /// Aborts an orphaned transaction left by a crashed client: appends a
    /// dummy decision record designed to abort (§3.2 "Failure Handling").
    /// Safe to call even if the transaction later turns out fine — the
    /// first record in the log wins, and decisions are idempotent via the
    /// `decided` map.
    pub fn abort_orphan(&self, txid: TxId, commit_pos: LogOffset) -> Result<()> {
        let streams = self.commit_streams_hint(&[], commit_pos)?;
        let record = LogRecord::Decision { txid, commit_pos, committed: false };
        let target: Vec<StreamId> = if streams.is_empty() { vec![DIRECTORY_OID] } else { streams };
        self.stream.multiappend(&target, Bytes::from(encode_to_vec(&record)))?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Checkpoints, history, garbage collection (§3.1, §3.2)
    // ------------------------------------------------------------------

    /// Writes a checkpoint record for `oid` capturing its current view.
    pub fn checkpoint(&self, oid: Oid) -> Result<LogOffset> {
        let play = self.play.lock();
        let obj = play.objects.get(&oid).ok_or(TangoError::UnknownObject { oid })?;
        let data = obj.sink.checkpoint().ok_or(TangoError::CheckpointUnsupported { oid })?;
        let as_of = play.position;
        let record = LogRecord::Checkpoint { oid, data: Bytes::from(data), as_of };
        let off = self.stream.multiappend(&[oid], Bytes::from(encode_to_vec(&record)))?;
        drop(play);
        self.metrics.checkpoints.inc();
        let mut play = self.play.lock();
        play.last_checkpoint.insert(oid, off);
        let floor = play.checkpoint_floor.entry(oid).or_insert(0);
        *floor = (*floor).max(as_of);
        Ok(off)
    }

    /// Declares that `oid` no longer needs its history below `offset`
    /// (typically the offset returned by [`TangoRuntime::checkpoint`]).
    /// The log is only physically reclaimed once *every* object has
    /// forgotten a prefix — see [`TangoRuntime::compact`].
    pub fn forget(&self, oid: Oid, offset: LogOffset) -> Result<()> {
        let op = DirectoryOp::SetForget { oid, offset };
        self.update_helper(DIRECTORY_OID, None, encode_to_vec(&op))
    }

    /// Trims the shared log below the minimum forget offset across all
    /// objects in the directory, returning the horizon used.
    pub fn compact(&self) -> Result<LogOffset> {
        self.sync()?;
        let horizon = self.dir_state.lock().trim_horizon();
        if horizon > 0 {
            self.corfu().trim_prefix(horizon)?;
            self.metrics.trims.inc();
            for oid in self.hosted_streams() {
                self.stream.forget_below(oid, horizon);
            }
        }
        Ok(horizon)
    }

    /// The checkpoint-driven trim driver (§3.2): checkpoints every hosted
    /// object that supports it (the directory included), then prefix-trims
    /// the log below the oldest checkpoint floor via
    /// [`TangoRuntime::trim_to_checkpoints`]. This is the one call a
    /// steady-state writer needs to keep storage occupancy bounded.
    pub fn checkpoint_and_trim(&self) -> Result<LogOffset> {
        self.sync()?;
        for oid in self.hosted_streams() {
            match self.checkpoint(oid) {
                Ok(_) => {}
                // An object with no checkpoint support simply pins the
                // horizon (trim_to_checkpoints returns 0 below).
                Err(TangoError::CheckpointUnsupported { .. }) => {}
                Err(e) => return Err(e),
            }
        }
        self.trim_to_checkpoints()
    }

    /// Prefix-trims the shared log below the minimum checkpoint floor
    /// across every hosted object, returning the horizon used. Returns 0
    /// (and trims nothing) while any hosted object has never checkpointed:
    /// the prefix only becomes garbage once *everyone* has a restore point.
    ///
    /// Unlike [`TangoRuntime::compact`] this needs no directory `forget`
    /// bookkeeping — the checkpoints themselves prove the prefix is dead.
    /// In a sharded deployment the minimum is a composite offset, so one
    /// call trims only the oldest log's prefix; repeated calls converge.
    pub fn trim_to_checkpoints(&self) -> Result<LogOffset> {
        let horizon = {
            let play = self.play.lock();
            let mut horizon = LogOffset::MAX;
            for oid in play.objects.keys() {
                match play.checkpoint_floor.get(oid) {
                    Some(&floor) => horizon = horizon.min(floor),
                    None => return Ok(0),
                }
            }
            if horizon == LogOffset::MAX {
                return Ok(0);
            }
            horizon
        };
        if horizon > 0 {
            self.corfu().trim_prefix(horizon)?;
            self.metrics.trims.inc();
            for oid in self.hosted_streams() {
                self.stream.forget_below(oid, horizon);
            }
        }
        Ok(horizon)
    }

    // ------------------------------------------------------------------
    // The directory (§3.2 "Naming")
    // ------------------------------------------------------------------

    /// Resolves `name` to its oid, if registered (linearizable read).
    pub fn resolve(&self, name: &str) -> Result<Option<Oid>> {
        if !tx::is_active(self.runtime_id()) {
            self.sync()?;
        }
        self.record_tx_read_if_active(DIRECTORY_OID, None)?;
        Ok(self.dir_state.lock().resolve(name))
    }

    /// Returns the oid bound to `name`, allocating a fresh one through a
    /// directory transaction if needed. Concurrent registrations of the
    /// same name converge on one oid.
    pub fn create_or_open(&self, name: &str) -> Result<Oid> {
        for _ in 0..64 {
            self.sync()?;
            self.begin_tx()?;
            self.record_tx_read_if_active(DIRECTORY_OID, None)?;
            let (existing, candidate) = {
                let dir = self.dir_state.lock();
                (dir.resolve(name), dir.next_oid())
            };
            if let Some(oid) = existing {
                self.abort_tx()?;
                return Ok(oid);
            }
            let op = DirectoryOp::Register { name: name.to_owned(), oid: candidate };
            self.update_helper(DIRECTORY_OID, None, encode_to_vec(&op))?;
            if self.end_tx()?.is_committed() {
                return Ok(candidate);
            }
        }
        Err(TangoError::Directory(format!("registration of '{name}' kept conflicting")))
    }

    /// A snapshot of the directory contents.
    pub fn directory_snapshot(&self) -> Result<DirectoryState> {
        self.sync()?;
        Ok(self.dir_state.lock().clone())
    }

    /// Reads the update records stored in the log entry at `offset`
    /// (supports views that store offsets instead of values and resolve
    /// them lazily — §3.1 "Durability").
    pub fn read_updates_at(&self, offset: LogOffset) -> Result<Vec<UpdateRecord>> {
        let Some(entry) = self.stream.read_at(offset)? else {
            return Ok(Vec::new());
        };
        match decode_from_slice::<LogRecord>(&entry.payload) {
            Ok(LogRecord::Update(u)) => Ok(vec![u]),
            Ok(LogRecord::Commit { updates, speculative, .. }) => {
                // The spilled write set is fetched in bulk, then decoded.
                self.stream.fetch_into_cache(&speculative)?;
                let mut all = Vec::new();
                for off in speculative {
                    if let Some(e) = self.stream.read_at(off)? {
                        if let Ok(LogRecord::Speculative { updates, .. }) =
                            decode_from_slice::<LogRecord>(&e.payload)
                        {
                            all.extend(updates);
                        }
                    }
                }
                all.extend(updates);
                Ok(all)
            }
            Ok(LogRecord::Speculative { updates, .. }) => Ok(updates),
            Ok(_) => Ok(Vec::new()),
            Err(e) => Err(TangoError::Codec(e.to_string())),
        }
    }
}

/// Splits updates into chunks whose encoded size stays near `limit`.
fn chunk_updates(updates: Vec<UpdateRecord>, limit: usize) -> Vec<Vec<UpdateRecord>> {
    let mut chunks = Vec::new();
    let mut current = Vec::new();
    let mut size = 0usize;
    for u in updates {
        let u_size = u.data.len() + 24;
        if !current.is_empty() && size + u_size > limit {
            chunks.push(std::mem::take(&mut current));
            size = 0;
        }
        size += u_size;
        current.push(u);
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunking_respects_limit() {
        let updates: Vec<UpdateRecord> = (0..10)
            .map(|i| UpdateRecord { oid: 1, key: None, data: Bytes::from(vec![i as u8; 100]) })
            .collect();
        let chunks = chunk_updates(updates.clone(), 300);
        assert!(chunks.len() > 1);
        let flattened: Vec<UpdateRecord> = chunks.into_iter().flatten().collect();
        assert_eq!(flattened, updates);
        // A single oversized update still fits in its own chunk.
        let big = vec![UpdateRecord { oid: 1, key: None, data: Bytes::from(vec![0u8; 5000]) }];
        assert_eq!(chunk_updates(big, 100).len(), 1);
    }
}
