#![warn(missing_docs)]
//! Tango: distributed data structures over a shared log (SOSP 2013).
//!
//! A *Tango object* is a replicated in-memory data structure whose state
//! exists in two forms: a **history** — the ordered sequence of its updates,
//! stored durably in the shared log — and any number of **views** — soft
//! in-memory copies on clients, reconstructed by playing the history
//! forward. The shared log *is* the object. Mutators append update records;
//! accessors synchronize the local view with the log's tail before reading,
//! which yields linearizability. Persistence, high availability, history
//! (time travel) and elasticity all fall out of the log (§3).
//!
//! This crate is the runtime:
//!
//! * [`StateMachine`] / [`ObjectView`] — the object model. User code
//!   implements `apply` (the upcall) and calls [`ObjectView::update`] /
//!   [`ObjectView::query`], mirroring the paper's `update_helper` /
//!   `query_helper` API (Figure 3).
//! * [`TangoRuntime`] — registration, merged multi-stream playback in global
//!   log order, version tracking, checkpoints, the object directory, and
//!   garbage collection via `forget`.
//! * Transactions (§3.2, §4) — optimistic concurrency control with
//!   speculative commit records: [`TangoRuntime::begin_tx`] /
//!   [`TangoRuntime::end_tx`], read-only and write-only fast paths,
//!   fine-grained (per-key) conflict detection, cross-partition transactions
//!   via multi-stream commit records, and decision records for consumers
//!   that do not host the read set.
//!
//! ```no_run
//! use tango::{TangoRuntime, StateMachine, ApplyMeta};
//!
//! /// The paper's TangoRegister (Figure 3), in Rust.
//! #[derive(Default)]
//! struct Register(i64);
//! impl StateMachine for Register {
//!     fn apply(&mut self, data: &[u8], _meta: &ApplyMeta) {
//!         self.0 = i64::from_le_bytes(data.try_into().unwrap());
//!     }
//!     fn restore(&mut self, data: &[u8]) -> tango::Result<()> {
//!         self.apply(data, &ApplyMeta::synthetic());
//!         Ok(())
//!     }
//!     fn checkpoint(&self) -> Option<Vec<u8>> {
//!         Some(self.0.to_le_bytes().to_vec())
//!     }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let corfu_client: corfu::CorfuClient = unimplemented!();
//! let runtime = TangoRuntime::new(corfu_client)?;
//! let oid = runtime.create_or_open("my-register")?;
//! let reg = runtime.register_object(oid, Register::default(), Default::default())?;
//! reg.update(None, 42i64.to_le_bytes().to_vec())?;        // writeRegister
//! let value = reg.query(None, |r| r.0)?;                  // readRegister
//! # Ok(()) }
//! ```

mod directory;
mod error;
mod object;
mod record;
mod runtime;
mod tx;
pub mod versions;

pub use directory::DirectoryState;
pub use error::TangoError;
pub use object::{ApplyMeta, ObjectOptions, ObjectView, StateMachine};
pub use record::{LogRecord, ReadKey, TxId, UpdateRecord};
pub use runtime::{RuntimeOptions, TangoRuntime};
pub use tx::{TxOptions, TxStatus};
pub use versions::ConflictTable;

/// An object identifier: 1:1 with its stream id on the shared log.
pub type Oid = corfu::StreamId;

/// A fine-grained versioning key within an object (§3.2 "Versioning"):
/// objects hash the sub-region they touch into this.
pub type KeyHash = u64;

/// A position in the shared log.
pub type LogOffset = corfu::LogOffset;

/// The object directory's hard-coded OID (§3.2 "Naming").
pub const DIRECTORY_OID: Oid = 0;

/// Convenience alias for Tango results.
pub type Result<T> = std::result::Result<T, TangoError>;
