use std::fmt;

use crate::{LogOffset, Oid, TxId};

/// Errors surfaced by the Tango runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TangoError {
    /// The underlying shared log failed.
    Log(corfu::CorfuError),
    /// An object id is not registered with this runtime.
    UnknownObject {
        /// The unregistered oid.
        oid: Oid,
    },
    /// An object id is already registered with this runtime.
    AlreadyRegistered {
        /// The duplicate oid.
        oid: Oid,
    },
    /// A malformed log record was encountered.
    Codec(String),
    /// A transaction was begun while another was active on this thread.
    NestedTransaction,
    /// `end_tx`/`abort_tx` was called with no active transaction.
    NoActiveTransaction,
    /// A transactional operation was issued against a different runtime
    /// than the one that began the transaction.
    CrossRuntimeTransaction,
    /// The transaction's outcome could not be determined before the
    /// deadline (no decision record arrived and offline resolution failed).
    DecisionTimeout {
        /// The transaction in question.
        txid: TxId,
        /// Its commit record's position.
        commit_pos: LogOffset,
    },
    /// The object does not support checkpoints.
    CheckpointUnsupported {
        /// The offending oid.
        oid: Oid,
    },
    /// A checkpoint record was found for an object whose state machine
    /// does not implement [`crate::StateMachine::restore`].
    RestoreUnsupported,
    /// A directory operation failed (e.g. name already bound to another
    /// oid after concurrent registration).
    Directory(String),
    /// Offline conflict resolution exceeded its recursion budget.
    ResolutionDepthExceeded,
}

impl fmt::Display for TangoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TangoError::Log(e) => write!(f, "shared log error: {e}"),
            TangoError::UnknownObject { oid } => write!(f, "object {oid} is not registered"),
            TangoError::AlreadyRegistered { oid } => {
                write!(f, "object {oid} is already registered")
            }
            TangoError::Codec(e) => write!(f, "malformed log record: {e}"),
            TangoError::NestedTransaction => {
                write!(f, "a transaction is already active on this thread")
            }
            TangoError::NoActiveTransaction => write!(f, "no active transaction on this thread"),
            TangoError::CrossRuntimeTransaction => {
                write!(f, "transactional operation crossed runtime instances")
            }
            TangoError::DecisionTimeout { txid, commit_pos } => {
                write!(f, "no decision for {txid:?} (commit at {commit_pos}) before deadline")
            }
            TangoError::CheckpointUnsupported { oid } => {
                write!(f, "object {oid} does not support checkpoints")
            }
            TangoError::RestoreUnsupported => {
                write!(f, "object produced a checkpoint but does not implement restore")
            }
            TangoError::Directory(e) => write!(f, "directory error: {e}"),
            TangoError::ResolutionDepthExceeded => {
                write!(f, "offline conflict resolution exceeded recursion budget")
            }
        }
    }
}

impl std::error::Error for TangoError {}

impl From<corfu::CorfuError> for TangoError {
    fn from(e: corfu::CorfuError) -> Self {
        TangoError::Log(e)
    }
}

impl From<tango_wire::WireError> for TangoError {
    fn from(e: tango_wire::WireError) -> Self {
        TangoError::Codec(e.to_string())
    }
}
