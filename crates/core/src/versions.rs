//! Version tracking for optimistic concurrency control (§3.2).
//!
//! An object's version is the last log position that modified it (+1, so 0
//! means "never modified"). For large structures, objects may pass a
//! fine-grained key with each update/read; a read of key `k` then conflicts
//! only with writes to `k` or with whole-object writes, allowing
//! transactions to concurrently modify unrelated parts of a map or tree.
//!
//! This module is deliberately free of any I/O: the same table drives the
//! real runtime's conflict checks and the discrete-event simulator's OCC
//! model, so measured goodput in `simcluster` uses exactly the semantics
//! the real system implements.

use std::collections::HashMap;

use crate::record::ReadKey;
use crate::{KeyHash, LogOffset, Oid};

/// Tracks the latest modification position per object and per key.
#[derive(Debug, Default, Clone)]
pub struct ConflictTable {
    /// Last modification of any part of the object.
    whole: HashMap<Oid, u64>,
    /// Last whole-object (key-less) write, which conflicts with every key.
    whole_writes: HashMap<Oid, u64>,
    /// Last modification per fine-grained key.
    keys: HashMap<(Oid, KeyHash), u64>,
}

impl ConflictTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `oid` (or key `key` within it) was modified by the
    /// entry at `pos`.
    pub fn record_write(&mut self, oid: Oid, key: Option<KeyHash>, pos: LogOffset) {
        let version = pos + 1;
        let whole = self.whole.entry(oid).or_insert(0);
        *whole = (*whole).max(version);
        match key {
            None => {
                let ww = self.whole_writes.entry(oid).or_insert(0);
                *ww = (*ww).max(version);
            }
            Some(k) => {
                let kv = self.keys.entry((oid, k)).or_insert(0);
                *kv = (*kv).max(version);
            }
        }
    }

    /// The version a transactional read of `(oid, key)` should record:
    /// the newest write that would conflict with it.
    pub fn version_for_read(&self, oid: Oid, key: Option<KeyHash>) -> u64 {
        match key {
            // A whole-object read conflicts with any write.
            None => self.whole.get(&oid).copied().unwrap_or(0),
            // A key read conflicts with writes to that key and with
            // whole-object writes.
            Some(k) => {
                let kv = self.keys.get(&(oid, k)).copied().unwrap_or(0);
                let ww = self.whole_writes.get(&oid).copied().unwrap_or(0);
                kv.max(ww)
            }
        }
    }

    /// True if `read` is stale: something conflicting was written after the
    /// version it observed.
    pub fn is_stale(&self, read: &ReadKey) -> bool {
        self.version_for_read(read.oid, read.key) > read.version
    }

    /// Drops all state for `oid` (object deregistration).
    pub fn forget_object(&mut self, oid: Oid) {
        self.whole.remove(&oid);
        self.whole_writes.remove(&oid);
        self.keys.retain(|(o, _), _| *o != oid);
    }

    /// Number of tracked keys (for memory accounting in tests).
    pub fn tracked_keys(&self) -> usize {
        self.keys.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read(oid: Oid, key: Option<u64>, version: u64) -> ReadKey {
        ReadKey { oid, key, version }
    }

    #[test]
    fn whole_object_semantics() {
        let mut t = ConflictTable::new();
        assert_eq!(t.version_for_read(1, None), 0);
        t.record_write(1, None, 9);
        assert_eq!(t.version_for_read(1, None), 10);
        assert!(t.is_stale(&read(1, None, 0)));
        assert!(!t.is_stale(&read(1, None, 10)));
        // Other objects are unaffected.
        assert!(!t.is_stale(&read(2, None, 0)));
    }

    #[test]
    fn key_write_conflicts_with_key_and_whole_reads() {
        let mut t = ConflictTable::new();
        t.record_write(1, Some(5), 3);
        // Key 5 read is stale, key 6 read is not.
        assert!(t.is_stale(&read(1, Some(5), 0)));
        assert!(!t.is_stale(&read(1, Some(6), 0)));
        // A whole-object read conflicts with the key write.
        assert!(t.is_stale(&read(1, None, 0)));
    }

    #[test]
    fn whole_write_conflicts_with_every_key_read() {
        let mut t = ConflictTable::new();
        t.record_write(1, None, 7);
        assert!(t.is_stale(&read(1, Some(5), 0)));
        assert!(t.is_stale(&read(1, Some(999), 0)));
        // A key read taken after the whole write is fine.
        assert!(!t.is_stale(&read(1, Some(5), 8)));
    }

    #[test]
    fn versions_are_monotone() {
        let mut t = ConflictTable::new();
        t.record_write(1, Some(5), 10);
        t.record_write(1, Some(5), 4); // out-of-order record keeps the max
        assert_eq!(t.version_for_read(1, Some(5)), 11);
    }

    #[test]
    fn forget_object_clears_state() {
        let mut t = ConflictTable::new();
        t.record_write(1, Some(5), 3);
        t.record_write(2, Some(5), 3);
        t.forget_object(1);
        assert_eq!(t.version_for_read(1, Some(5)), 0);
        assert_eq!(t.version_for_read(2, Some(5)), 4);
        assert_eq!(t.tracked_keys(), 1);
    }
}
