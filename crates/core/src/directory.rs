//! The object directory (§3.2 "Naming"): a Tango object at hard-coded
//! OID 0 mapping human-readable names to oids, and tracking per-object
//! `forget` offsets for garbage collection.

use std::collections::HashMap;

use tango_wire::{Decode, Encode, Reader, WireError, Writer};

use crate::object::{ApplyMeta, StateMachine};
use crate::{LogOffset, Oid};

/// Directory mutations, encoded as its update records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum DirectoryOp {
    /// Bind `name` to `oid` and advance the allocator.
    Register {
        /// The human-readable object name.
        name: String,
        /// The oid being assigned.
        oid: Oid,
    },
    /// Record that `oid`'s history below `offset` may be reclaimed.
    SetForget {
        /// The object.
        oid: Oid,
        /// Entries strictly below this offset are forgettable.
        offset: LogOffset,
    },
}

impl Encode for DirectoryOp {
    fn encode(&self, w: &mut Writer) {
        match self {
            DirectoryOp::Register { name, oid } => {
                w.put_u8(0);
                w.put_str(name);
                w.put_u32(*oid);
            }
            DirectoryOp::SetForget { oid, offset } => {
                w.put_u8(1);
                w.put_u32(*oid);
                w.put_u64(*offset);
            }
        }
    }
}

impl Decode for DirectoryOp {
    fn decode(r: &mut Reader<'_>) -> tango_wire::Result<Self> {
        match r.get_u8()? {
            0 => Ok(DirectoryOp::Register { name: r.get_str()?.to_owned(), oid: r.get_u32()? }),
            1 => Ok(DirectoryOp::SetForget { oid: r.get_u32()?, offset: r.get_u64()? }),
            tag => Err(WireError::InvalidTag { what: "DirectoryOp", tag: tag as u64 }),
        }
    }
}

/// The directory's in-memory view.
#[derive(Debug, Default, Clone)]
pub struct DirectoryState {
    names: HashMap<String, Oid>,
    forget: HashMap<Oid, LogOffset>,
    next_oid: Oid,
}

impl DirectoryState {
    /// Creates an empty directory. Oid 0 is the directory itself; user
    /// objects start at 1.
    pub fn new() -> Self {
        Self { names: HashMap::new(), forget: HashMap::new(), next_oid: 1 }
    }

    /// Looks up a name.
    pub fn resolve(&self, name: &str) -> Option<Oid> {
        self.names.get(name).copied()
    }

    /// The oid the next registration will receive.
    pub fn next_oid(&self) -> Oid {
        self.next_oid
    }

    /// All name bindings (for listing tools).
    pub fn bindings(&self) -> impl Iterator<Item = (&str, Oid)> {
        self.names.iter().map(|(n, &o)| (n.as_str(), o))
    }

    /// The forget offset for `oid`, or 0 if never set.
    pub fn forget_offset(&self, oid: Oid) -> LogOffset {
        self.forget.get(&oid).copied().unwrap_or(0)
    }

    /// The log prefix that may be trimmed: the minimum forget offset across
    /// all registered objects (§3.2). Objects that never called `forget`
    /// pin the horizon at 0.
    pub fn trim_horizon(&self) -> LogOffset {
        let mut horizon = LogOffset::MAX;
        for &oid in self.names.values() {
            horizon = horizon.min(self.forget_offset(oid));
        }
        if self.names.is_empty() {
            0
        } else {
            horizon
        }
    }
}

impl StateMachine for DirectoryState {
    fn apply(&mut self, data: &[u8], _meta: &ApplyMeta) {
        // Malformed directory records are ignored rather than poisoning the
        // view; they cannot occur through this runtime's own encoders.
        let Ok(op) = tango_wire::decode_from_slice::<DirectoryOp>(data) else {
            return;
        };
        match op {
            DirectoryOp::Register { name, oid } => {
                self.names.entry(name).or_insert(oid);
                self.next_oid = self.next_oid.max(oid + 1);
            }
            DirectoryOp::SetForget { oid, offset } => {
                let slot = self.forget.entry(oid).or_insert(0);
                *slot = (*slot).max(offset);
            }
        }
    }

    fn checkpoint(&self) -> Option<Vec<u8>> {
        let mut w = Writer::new();
        let mut names: Vec<(&String, &Oid)> = self.names.iter().collect();
        names.sort();
        w.put_varint(names.len() as u64);
        for (name, &oid) in names {
            w.put_str(name);
            w.put_u32(oid);
        }
        let mut forget: Vec<(&Oid, &LogOffset)> = self.forget.iter().collect();
        forget.sort();
        w.put_varint(forget.len() as u64);
        for (&oid, &off) in forget {
            w.put_u32(oid);
            w.put_u64(off);
        }
        w.put_u32(self.next_oid);
        Some(w.into_vec())
    }

    fn restore(&mut self, data: &[u8]) -> crate::Result<()> {
        let mut r = Reader::new(data);
        let mut fresh = DirectoryState::new();
        let parse = (|| -> tango_wire::Result<()> {
            let n = r.get_len(1 << 24)?;
            for _ in 0..n {
                let name = r.get_str()?.to_owned();
                let oid = r.get_u32()?;
                fresh.names.insert(name, oid);
            }
            let n = r.get_len(1 << 24)?;
            for _ in 0..n {
                let oid = r.get_u32()?;
                let off = r.get_u64()?;
                fresh.forget.insert(oid, off);
            }
            fresh.next_oid = r.get_u32()?;
            Ok(())
        })();
        parse.map_err(|e| crate::TangoError::Codec(e.to_string()))?;
        *self = fresh;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tango_wire::encode_to_vec;

    fn apply(state: &mut DirectoryState, op: DirectoryOp) {
        state.apply(&encode_to_vec(&op), &ApplyMeta::synthetic());
    }

    #[test]
    fn register_and_resolve() {
        let mut d = DirectoryState::new();
        apply(&mut d, DirectoryOp::Register { name: "free-list".into(), oid: 1 });
        apply(&mut d, DirectoryOp::Register { name: "alloc-table".into(), oid: 2 });
        assert_eq!(d.resolve("free-list"), Some(1));
        assert_eq!(d.resolve("alloc-table"), Some(2));
        assert_eq!(d.resolve("missing"), None);
        assert_eq!(d.next_oid(), 3);
    }

    #[test]
    fn duplicate_registration_keeps_first_binding() {
        let mut d = DirectoryState::new();
        apply(&mut d, DirectoryOp::Register { name: "x".into(), oid: 1 });
        apply(&mut d, DirectoryOp::Register { name: "x".into(), oid: 2 });
        assert_eq!(d.resolve("x"), Some(1));
        // The allocator still advances past the losing oid.
        assert_eq!(d.next_oid(), 3);
    }

    #[test]
    fn trim_horizon_is_min_across_objects() {
        let mut d = DirectoryState::new();
        apply(&mut d, DirectoryOp::Register { name: "a".into(), oid: 1 });
        apply(&mut d, DirectoryOp::Register { name: "b".into(), oid: 2 });
        assert_eq!(d.trim_horizon(), 0);
        apply(&mut d, DirectoryOp::SetForget { oid: 1, offset: 100 });
        // Object b never forgot anything: horizon pinned at 0.
        assert_eq!(d.trim_horizon(), 0);
        apply(&mut d, DirectoryOp::SetForget { oid: 2, offset: 60 });
        assert_eq!(d.trim_horizon(), 60);
        // Forget offsets are monotone.
        apply(&mut d, DirectoryOp::SetForget { oid: 2, offset: 40 });
        assert_eq!(d.forget_offset(2), 60);
    }

    #[test]
    fn checkpoint_restore_roundtrip() {
        let mut d = DirectoryState::new();
        apply(&mut d, DirectoryOp::Register { name: "a".into(), oid: 1 });
        apply(&mut d, DirectoryOp::SetForget { oid: 1, offset: 42 });
        let bytes = d.checkpoint().unwrap();
        let mut restored = DirectoryState::new();
        restored.restore(&bytes).unwrap();
        assert_eq!(restored.resolve("a"), Some(1));
        assert_eq!(restored.forget_offset(1), 42);
        assert_eq!(restored.next_oid(), 2);
    }
}
