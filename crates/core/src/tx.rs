//! Thread-local transaction contexts (§3.2).
//!
//! `BeginTX` creates a context in thread-local storage; while it is active,
//! the runtime substitutes different implementations of the update/query
//! helpers: updates are buffered instead of appended, and queries record
//! `(oid, key, version)` into the read set instead of playing the log
//! forward. Object code needs no modification to run transactionally.

use std::cell::RefCell;
use std::collections::BTreeSet;

use crate::record::{ReadKey, UpdateRecord};
use crate::{KeyHash, Oid};

/// Outcome of a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxStatus {
    /// The read set was still current at the commit point; writes applied.
    Committed,
    /// A conflicting write landed in the conflict window; nothing applied.
    Aborted,
}

impl TxStatus {
    /// True if committed.
    pub fn is_committed(&self) -> bool {
        matches!(self, TxStatus::Committed)
    }
}

/// Options for a transaction.
#[derive(Debug, Clone, Copy, Default)]
pub struct TxOptions {
    /// Read-only transactions: decide locally against the current (possibly
    /// stale) snapshot without checking the log tail (§3.2 "Read-only
    /// transactions" fast path). No effect on read-write transactions.
    pub stale_reads: bool,
}

/// The per-thread transaction state.
#[derive(Debug)]
pub(crate) struct TxContext {
    /// Identity of the runtime that began the transaction (Arc pointer).
    pub runtime_id: usize,
    /// Options the transaction was begun with.
    pub options: TxOptions,
    /// The read set: first-observed version per (oid, key).
    pub reads: Vec<ReadKey>,
    /// Buffered writes, in program order.
    pub writes: Vec<UpdateRecord>,
    /// Oids present in `writes` (sorted, deduplicated).
    pub write_oids: BTreeSet<Oid>,
}

impl TxContext {
    pub fn new(runtime_id: usize, options: TxOptions) -> Self {
        Self {
            runtime_id,
            options,
            reads: Vec::new(),
            writes: Vec::new(),
            write_oids: BTreeSet::new(),
        }
    }

    /// Records a read, keeping the first-observed version for a given
    /// (oid, key) — the strictest constraint.
    pub fn record_read(&mut self, oid: Oid, key: Option<KeyHash>, version: u64) {
        if !self.reads.iter().any(|r| r.oid == oid && r.key == key) {
            self.reads.push(ReadKey { oid, key, version });
        }
    }

    /// Buffers a write.
    pub fn record_write(&mut self, update: UpdateRecord) {
        self.write_oids.insert(update.oid);
        self.writes.push(update);
    }
}

thread_local! {
    /// Active contexts on this thread, keyed by runtime identity. One
    /// context per runtime: a process that (unusually) drives several
    /// runtimes from one thread gets independent transactions per runtime,
    /// matching the "one runtime per client" model of the paper.
    static ACTIVE_TX: RefCell<std::collections::HashMap<usize, TxContext>> =
        RefCell::new(std::collections::HashMap::new());
}

/// Installs a fresh context for the context's runtime; fails if that
/// runtime already has one active on this thread.
pub(crate) fn begin(ctx: TxContext) -> Result<(), crate::TangoError> {
    ACTIVE_TX.with(|slot| {
        let mut map = slot.borrow_mut();
        if map.contains_key(&ctx.runtime_id) {
            return Err(crate::TangoError::NestedTransaction);
        }
        map.insert(ctx.runtime_id, ctx);
        Ok(())
    })
}

/// Removes and returns the active context for `runtime_id`.
pub(crate) fn take(runtime_id: usize) -> Option<TxContext> {
    ACTIVE_TX.with(|slot| slot.borrow_mut().remove(&runtime_id))
}

/// Runs `f` against the active context for `runtime_id`, if any.
pub(crate) fn with_active<R>(runtime_id: usize, f: impl FnOnce(&mut TxContext) -> R) -> Option<R> {
    ACTIVE_TX.with(|slot| slot.borrow_mut().get_mut(&runtime_id).map(f))
}

/// True if `runtime_id` has a transaction active on this thread.
pub(crate) fn is_active(runtime_id: usize) -> bool {
    ACTIVE_TX.with(|slot| slot.borrow().contains_key(&runtime_id))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn read_set_keeps_first_version() {
        let mut ctx = TxContext::new(0, TxOptions::default());
        ctx.record_read(1, None, 5);
        ctx.record_read(1, None, 9); // later observation ignored
        ctx.record_read(1, Some(2), 7);
        assert_eq!(ctx.reads.len(), 2);
        assert_eq!(ctx.reads[0].version, 5);
    }

    #[test]
    fn write_oids_deduplicate() {
        let mut ctx = TxContext::new(0, TxOptions::default());
        for oid in [3, 1, 3, 2] {
            ctx.record_write(UpdateRecord { oid, key: None, data: Bytes::new() });
        }
        let oids: Vec<Oid> = ctx.write_oids.iter().copied().collect();
        assert_eq!(oids, vec![1, 2, 3]);
        assert_eq!(ctx.writes.len(), 4);
    }

    #[test]
    fn nesting_rejected_per_runtime() {
        begin(TxContext::new(7, TxOptions::default())).unwrap();
        assert!(begin(TxContext::new(7, TxOptions::default())).is_err());
        // A different runtime on the same thread is independent.
        begin(TxContext::new(8, TxOptions::default())).unwrap();
        assert!(take(7).is_some());
        assert!(take(7).is_none());
        assert!(take(8).is_some());
    }
}
