//! The Tango object model: state machines, apply upcalls, and views.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::record::TxId;
use crate::runtime::TangoRuntime;
use crate::{KeyHash, LogOffset, Oid, Result, TangoError};

/// Context passed to every [`StateMachine::apply`] upcall.
#[derive(Debug, Clone, Copy)]
pub struct ApplyMeta {
    /// The log position of the entry that carried this update. Objects may
    /// store it instead of the value, turning the view into an index over
    /// log-structured storage (§3.1 "Durability").
    pub offset: LogOffset,
    /// The object being updated.
    pub oid: Oid,
    /// The fine-grained key the mutator tagged this update with.
    pub key: Option<KeyHash>,
    /// The transaction that carried the update, if any.
    pub txid: Option<TxId>,
}

impl ApplyMeta {
    /// A placeholder meta for non-log applications (checkpoint restore,
    /// doc examples).
    pub fn synthetic() -> Self {
        Self { offset: 0, oid: 0, key: None, txid: None }
    }
}

/// The in-memory view of a Tango object (the paper's mandatory `apply`
/// upcall plus optional checkpoint support).
///
/// The view must be modified *only* through [`StateMachine::apply`], driven
/// by the runtime as it plays the shared history forward — never directly by
/// application threads (§3.1).
pub trait StateMachine: Send + 'static {
    /// Applies one update record to the view. `data` is the opaque buffer a
    /// mutator passed to [`ObjectView::update`].
    fn apply(&mut self, data: &[u8], meta: &ApplyMeta);

    /// Serializes the view for a checkpoint record. Returning `None`
    /// (the default) opts out of checkpointing.
    fn checkpoint(&self) -> Option<Vec<u8>> {
        None
    }

    /// Reconstructs the view from checkpoint bytes. Objects that emit
    /// checkpoints must also restore them: the default returns
    /// [`TangoError::RestoreUnsupported`], and implementations should
    /// surface malformed bytes as [`TangoError::Codec`] rather than
    /// silently keeping a stale view.
    fn restore(&mut self, _data: &[u8]) -> Result<()> {
        Err(TangoError::RestoreUnsupported)
    }
}

/// Per-object registration options.
#[derive(Debug, Clone, Default)]
pub struct ObjectOptions {
    /// Mark the object as requiring decision records: set when some client
    /// may host this object without hosting the read sets of transactions
    /// that write it (§4.1 case C).
    pub needs_decision: bool,
}

/// A handle to a locally hosted Tango object: the typed state plus the
/// runtime that keeps it in sync with the shared log.
///
/// Cloning is cheap and shares the underlying view.
pub struct ObjectView<S> {
    runtime: Arc<TangoRuntime>,
    oid: Oid,
    state: Arc<Mutex<S>>,
}

impl<S> Clone for ObjectView<S> {
    fn clone(&self) -> Self {
        Self { runtime: Arc::clone(&self.runtime), oid: self.oid, state: Arc::clone(&self.state) }
    }
}

impl<S: StateMachine> ObjectView<S> {
    pub(crate) fn new(runtime: Arc<TangoRuntime>, oid: Oid, state: Arc<Mutex<S>>) -> Self {
        Self { runtime, oid, state }
    }

    /// The object's id (== its stream id).
    pub fn oid(&self) -> Oid {
        self.oid
    }

    /// The runtime this view is attached to.
    pub fn runtime(&self) -> &Arc<TangoRuntime> {
        &self.runtime
    }

    /// The paper's `update_helper`: coalesce the mutation into an opaque
    /// buffer and hand it to the runtime. Outside a transaction this
    /// appends to the object's stream immediately; inside one it buffers
    /// the write until `end_tx`.
    pub fn update(&self, key: Option<KeyHash>, data: Vec<u8>) -> Result<()> {
        self.runtime.update_helper(self.oid, key, data)
    }

    /// The paper's `query_helper` plus the accessor body: synchronize the
    /// view with the log tail (outside transactions), then compute an
    /// arbitrary function over the state. Inside a transaction this skips
    /// the sync and records `(oid, key, version)` in the read set instead.
    pub fn query<R>(&self, key: Option<KeyHash>, f: impl FnOnce(&S) -> R) -> Result<R> {
        self.runtime.query_helper(self.oid, key)?;
        Ok(f(&self.state.lock()))
    }

    /// Direct access to the shared state cell, bypassing the runtime.
    ///
    /// Intended ONLY for *local-only* bookkeeping that is not replicated
    /// state — e.g. registering watch callbacks that `apply` will fire.
    /// Replicated state must change exclusively through
    /// [`StateMachine::apply`]; mutating it here forks the view from the
    /// shared history.
    pub fn local_state(&self) -> &Arc<Mutex<S>> {
        &self.state
    }

    /// Reads the state without synchronizing with the log: a dirty read of
    /// whatever the view has applied so far. Still records the read when a
    /// transaction is active.
    pub fn query_dirty<R>(&self, key: Option<KeyHash>, f: impl FnOnce(&S) -> R) -> Result<R> {
        self.runtime.record_tx_read_if_active(self.oid, key)?;
        Ok(f(&self.state.lock()))
    }
}

/// Type-erased hook the runtime drives during playback.
pub(crate) trait ApplySink: Send {
    fn apply(&self, data: &[u8], meta: &ApplyMeta);
    fn checkpoint(&self) -> Option<Vec<u8>>;
}

pub(crate) struct SinkFor<S: StateMachine> {
    pub state: Arc<Mutex<S>>,
}

impl<S: StateMachine> ApplySink for SinkFor<S> {
    fn apply(&self, data: &[u8], meta: &ApplyMeta) {
        self.state.lock().apply(data, meta);
    }

    fn checkpoint(&self) -> Option<Vec<u8>> {
        self.state.lock().checkpoint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct NoRestore;

    impl StateMachine for NoRestore {
        fn apply(&mut self, _data: &[u8], _meta: &ApplyMeta) {}

        fn checkpoint(&self) -> Option<Vec<u8>> {
            Some(vec![1, 2, 3])
        }
    }

    #[test]
    fn default_restore_is_a_typed_error_not_a_panic() {
        let mut obj = NoRestore;
        assert_eq!(obj.restore(&[1, 2, 3]), Err(TangoError::RestoreUnsupported));
    }
}
