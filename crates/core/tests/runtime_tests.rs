//! End-to-end tests of the Tango runtime over an in-process CORFU cluster:
//! single-object linearizability, transactions, decision records, history,
//! checkpoints, and garbage collection.

use std::sync::Arc;

use corfu::cluster::{ClusterConfig, LocalCluster};
use tango::{
    ApplyMeta, ObjectOptions, RuntimeOptions, StateMachine, TangoRuntime, TxOptions, TxStatus,
};

/// The paper's TangoRegister (Figure 3).
#[derive(Default)]
struct Register(i64);

impl StateMachine for Register {
    fn apply(&mut self, data: &[u8], _meta: &ApplyMeta) {
        if let Ok(bytes) = <[u8; 8]>::try_from(data) {
            self.0 = i64::from_le_bytes(bytes);
        }
    }

    fn checkpoint(&self) -> Option<Vec<u8>> {
        Some(self.0.to_le_bytes().to_vec())
    }

    fn restore(&mut self, data: &[u8]) -> tango::Result<()> {
        let bytes = <[u8; 8]>::try_from(data)
            .map_err(|_| tango::TangoError::Codec("register checkpoint must be 8 bytes".into()))?;
        self.0 = i64::from_le_bytes(bytes);
        Ok(())
    }
}

/// A keyed map used to exercise fine-grained versioning. Update format:
/// key u64 | value i64.
#[derive(Default)]
struct MiniMap(std::collections::HashMap<u64, i64>);

impl StateMachine for MiniMap {
    fn apply(&mut self, data: &[u8], _meta: &ApplyMeta) {
        if data.len() == 16 {
            let k = u64::from_le_bytes(data[0..8].try_into().unwrap());
            let v = i64::from_le_bytes(data[8..16].try_into().unwrap());
            self.0.insert(k, v);
        }
    }
}

fn mini_put(view: &tango::ObjectView<MiniMap>, k: u64, v: i64) -> tango::Result<()> {
    let mut buf = Vec::with_capacity(16);
    buf.extend_from_slice(&k.to_le_bytes());
    buf.extend_from_slice(&v.to_le_bytes());
    view.update(Some(k), buf)
}

fn mini_get(view: &tango::ObjectView<MiniMap>, k: u64) -> tango::Result<Option<i64>> {
    view.query(Some(k), |m| m.0.get(&k).copied())
}

fn cluster() -> LocalCluster {
    LocalCluster::new(ClusterConfig::default())
}

fn runtime(cluster: &LocalCluster) -> Arc<TangoRuntime> {
    TangoRuntime::new(cluster.client().unwrap()).unwrap()
}

#[test]
fn register_semantics_single_view() {
    let cluster = cluster();
    let rt = runtime(&cluster);
    let oid = rt.create_or_open("reg").unwrap();
    let reg = rt.register_object(oid, Register::default(), ObjectOptions::default()).unwrap();
    assert_eq!(reg.query(None, |r| r.0).unwrap(), 0);
    reg.update(None, 42i64.to_le_bytes().to_vec()).unwrap();
    assert_eq!(reg.query(None, |r| r.0).unwrap(), 42);
    reg.update(None, 7i64.to_le_bytes().to_vec()).unwrap();
    assert_eq!(reg.query(None, |r| r.0).unwrap(), 7);
}

#[test]
fn two_views_observe_each_other() {
    let cluster = cluster();
    let rt_a = runtime(&cluster);
    let rt_b = runtime(&cluster);
    let oid = rt_a.create_or_open("shared-reg").unwrap();
    assert_eq!(rt_b.create_or_open("shared-reg").unwrap(), oid);
    let reg_a = rt_a.register_object(oid, Register::default(), ObjectOptions::default()).unwrap();
    let reg_b = rt_b.register_object(oid, Register::default(), ObjectOptions::default()).unwrap();
    reg_a.update(None, 10i64.to_le_bytes().to_vec()).unwrap();
    // B's accessor syncs with the log and sees A's write (linearizable).
    assert_eq!(reg_b.query(None, |r| r.0).unwrap(), 10);
    reg_b.update(None, 20i64.to_le_bytes().to_vec()).unwrap();
    assert_eq!(reg_a.query(None, |r| r.0).unwrap(), 20);
}

#[test]
fn crash_recovery_replays_history() {
    let cluster = cluster();
    let oid;
    {
        let rt = runtime(&cluster);
        oid = rt.create_or_open("durable").unwrap();
        let reg = rt.register_object(oid, Register::default(), ObjectOptions::default()).unwrap();
        for v in [5i64, 15, 25] {
            reg.update(None, v.to_le_bytes().to_vec()).unwrap();
        }
        // The runtime is dropped: the "client" crashes.
    }
    let rt2 = runtime(&cluster);
    let reg2 = rt2.register_object(oid, Register::default(), ObjectOptions::default()).unwrap();
    assert_eq!(reg2.query(None, |r| r.0).unwrap(), 25);
}

#[test]
fn single_object_tx_commit_and_conflict() {
    let cluster = cluster();
    let rt_a = runtime(&cluster);
    let rt_b = runtime(&cluster);
    let oid = rt_a.create_or_open("tx-reg").unwrap();
    let reg_a = rt_a.register_object(oid, Register::default(), ObjectOptions::default()).unwrap();
    let reg_b = rt_b.register_object(oid, Register::default(), ObjectOptions::default()).unwrap();

    // A transactional increment on A commits cleanly.
    rt_a.begin_tx().unwrap();
    let v = reg_a.query(None, |r| r.0).unwrap();
    reg_a.update(None, (v + 1).to_le_bytes().to_vec()).unwrap();
    assert_eq!(rt_a.end_tx().unwrap(), TxStatus::Committed);
    assert_eq!(reg_a.query(None, |r| r.0).unwrap(), 1);

    // Now a conflicting pair: both read, then both write.
    rt_a.begin_tx().unwrap();
    let va = reg_a.query(None, |r| r.0).unwrap();
    reg_a.update(None, (va + 10).to_le_bytes().to_vec()).unwrap();

    rt_b.begin_tx().unwrap();
    let vb = reg_b.query(None, |r| r.0).unwrap();
    reg_b.update(None, (vb + 100).to_le_bytes().to_vec()).unwrap();

    // A commits first; B must abort (its read of version 1 is stale).
    assert_eq!(rt_a.end_tx().unwrap(), TxStatus::Committed);
    assert_eq!(rt_b.end_tx().unwrap(), TxStatus::Aborted);
    assert_eq!(reg_b.query(None, |r| r.0).unwrap(), 11);
}

#[test]
fn fine_grained_keys_avoid_false_conflicts() {
    let cluster = cluster();
    let rt_a = runtime(&cluster);
    let rt_b = runtime(&cluster);
    let oid = rt_a.create_or_open("mini-map").unwrap();
    let map_a = rt_a.register_object(oid, MiniMap::default(), ObjectOptions::default()).unwrap();
    let map_b = rt_b.register_object(oid, MiniMap::default(), ObjectOptions::default()).unwrap();
    mini_put(&map_a, 1, 10).unwrap();
    mini_put(&map_a, 2, 20).unwrap();
    // Sync both views before transacting (a continuously playing client).
    map_a.query(None, |_| ()).unwrap();
    map_b.query(None, |_| ()).unwrap();

    // A touches key 1, B touches key 2: disjoint sub-regions, no conflict.
    rt_a.begin_tx().unwrap();
    let v1 = mini_get(&map_a, 1).unwrap().unwrap();
    mini_put(&map_a, 1, v1 + 1).unwrap();

    rt_b.begin_tx().unwrap();
    let v2 = mini_get(&map_b, 2).unwrap().unwrap();
    mini_put(&map_b, 2, v2 + 1).unwrap();

    assert_eq!(rt_a.end_tx().unwrap(), TxStatus::Committed);
    assert_eq!(rt_b.end_tx().unwrap(), TxStatus::Committed);
    assert_eq!(mini_get(&map_a, 2).unwrap(), Some(21));
    assert_eq!(mini_get(&map_b, 1).unwrap(), Some(11));

    // Same key: conflict.
    rt_a.begin_tx().unwrap();
    let v1 = mini_get(&map_a, 1).unwrap().unwrap();
    mini_put(&map_a, 1, v1 + 1).unwrap();
    rt_b.begin_tx().unwrap();
    let v1b = mini_get(&map_b, 1).unwrap().unwrap();
    mini_put(&map_b, 1, v1b + 1).unwrap();
    assert_eq!(rt_a.end_tx().unwrap(), TxStatus::Committed);
    assert_eq!(rt_b.end_tx().unwrap(), TxStatus::Aborted);
}

#[test]
fn cross_object_tx_is_atomic() {
    let cluster = cluster();
    let rt = runtime(&cluster);
    let free = rt.create_or_open("free-list").unwrap();
    let alloc = rt.create_or_open("alloc-table").unwrap();
    let free_v = rt.register_object(free, Register::default(), ObjectOptions::default()).unwrap();
    let alloc_v = rt.register_object(alloc, Register::default(), ObjectOptions::default()).unwrap();
    free_v.update(None, 5i64.to_le_bytes().to_vec()).unwrap();
    // Bring the local views up to date before transacting.
    free_v.query(None, |_| ()).unwrap();

    // Move a node from the free list to the allocation table.
    rt.begin_tx().unwrap();
    let n = free_v.query(None, |r| r.0).unwrap();
    free_v.update(None, (n - 1).to_le_bytes().to_vec()).unwrap();
    let a = alloc_v.query(None, |r| r.0).unwrap();
    alloc_v.update(None, (a + 1).to_le_bytes().to_vec()).unwrap();
    assert_eq!(rt.end_tx().unwrap(), TxStatus::Committed);

    // Another runtime hosting both sees both effects.
    let rt2 = runtime(&cluster);
    let free2 = rt2.register_object(free, Register::default(), ObjectOptions::default()).unwrap();
    let alloc2 = rt2.register_object(alloc, Register::default(), ObjectOptions::default()).unwrap();
    assert_eq!(free2.query(None, |r| r.0).unwrap(), 4);
    assert_eq!(alloc2.query(None, |r| r.0).unwrap(), 1);
}

#[test]
fn remote_write_tx_updates_unhosted_object() {
    // §4.1 case A/B: the producer writes to a queue it does not host.
    let cluster = cluster();
    let rt_producer = runtime(&cluster);
    let rt_consumer = runtime(&cluster);
    let local = rt_producer.create_or_open("producer-state").unwrap();
    let queue = rt_producer.create_or_open("queue").unwrap();
    let local_v =
        rt_producer.register_object(local, Register::default(), ObjectOptions::default()).unwrap();
    let queue_v =
        rt_consumer.register_object(queue, Register::default(), ObjectOptions::default()).unwrap();

    // Producer: reads its local object, writes both local and remote.
    rt_producer.begin_tx().unwrap();
    let n = local_v.query(None, |r| r.0).unwrap();
    local_v.update(None, (n + 1).to_le_bytes().to_vec()).unwrap();
    // Remote write: no local view of `queue` exists on the producer.
    rt_producer.update_remote(queue, None, 99i64.to_le_bytes().to_vec()).unwrap();
    assert_eq!(rt_producer.end_tx().unwrap(), TxStatus::Committed);

    // The consumer, which hosts only the queue, sees the write. Because it
    // does not host the producer's read set, the decision record path runs.
    assert_eq!(queue_v.query(None, |r| r.0).unwrap(), 99);
}

#[test]
fn read_only_tx_fast_paths() {
    let cluster = cluster();
    let rt = runtime(&cluster);
    let oid = rt.create_or_open("ro").unwrap();
    let reg = rt.register_object(oid, Register::default(), ObjectOptions::default()).unwrap();
    reg.update(None, 1i64.to_le_bytes().to_vec()).unwrap();
    reg.query(None, |_| ()).unwrap();

    // Read-only transaction with no concurrent writers commits.
    rt.begin_tx().unwrap();
    let v = reg.query(None, |r| r.0).unwrap();
    assert_eq!(v, 1);
    assert_eq!(rt.end_tx().unwrap(), TxStatus::Committed);

    // Stale-snapshot read-only transaction never touches the log.
    rt.begin_tx_with(TxOptions { stale_reads: true }).unwrap();
    reg.query_dirty(None, |r| r.0).unwrap();
    assert_eq!(rt.end_tx().unwrap(), TxStatus::Committed);

    // A read-only tx whose read was invalidated by another client aborts.
    let rt2 = runtime(&cluster);
    let reg2 = rt2.register_object(oid, Register::default(), ObjectOptions::default()).unwrap();
    rt.begin_tx().unwrap();
    reg.query_dirty(None, |r| r.0).unwrap();
    reg2.update(None, 2i64.to_le_bytes().to_vec()).unwrap();
    assert_eq!(rt.end_tx().unwrap(), TxStatus::Aborted);
}

#[test]
fn write_only_tx_commits_without_playing() {
    let cluster = cluster();
    let rt = runtime(&cluster);
    let oid = rt.create_or_open("wo").unwrap();
    let reg = rt.register_object(oid, Register::default(), ObjectOptions::default()).unwrap();
    rt.begin_tx().unwrap();
    reg.update(None, 123i64.to_le_bytes().to_vec()).unwrap();
    assert_eq!(rt.end_tx().unwrap(), TxStatus::Committed);
    assert_eq!(reg.query(None, |r| r.0).unwrap(), 123);
}

#[test]
fn large_write_set_spills_speculatively() {
    let cluster = cluster();
    let rt = TangoRuntime::with_options(
        cluster.client().unwrap(),
        RuntimeOptions { inline_update_limit: 64, ..RuntimeOptions::default() },
    )
    .unwrap();
    let oid = rt.create_or_open("spill").unwrap();
    let map = rt.register_object(oid, MiniMap::default(), ObjectOptions::default()).unwrap();
    rt.begin_tx().unwrap();
    for k in 0..50u64 {
        mini_put(&map, k, k as i64).unwrap();
    }
    assert_eq!(rt.end_tx().unwrap(), TxStatus::Committed);
    // All fifty writes are visible here and on a fresh runtime.
    assert_eq!(map.query(None, |m| m.0.len()).unwrap(), 50);
    let rt2 = runtime(&cluster);
    let map2 = rt2.register_object(oid, MiniMap::default(), ObjectOptions::default()).unwrap();
    assert_eq!(map2.query(None, |m| m.0.len()).unwrap(), 50);
    assert_eq!(mini_get(&map2, 49).unwrap(), Some(49));
}

#[test]
fn history_rollback_via_play_limit() {
    let cluster = cluster();
    let rt = runtime(&cluster);
    let oid = rt.create_or_open("hist").unwrap();
    let reg = rt.register_object(oid, Register::default(), ObjectOptions::default()).unwrap();
    reg.update(None, 1i64.to_le_bytes().to_vec()).unwrap();
    reg.query(None, |_| ()).unwrap();
    let snapshot_pos = rt.position();
    reg.update(None, 2i64.to_le_bytes().to_vec()).unwrap();
    reg.update(None, 3i64.to_le_bytes().to_vec()).unwrap();
    assert_eq!(reg.query(None, |r| r.0).unwrap(), 3);

    // A time-travel runtime synced only to the snapshot prefix.
    let rt_old = TangoRuntime::with_options(
        cluster.client().unwrap(),
        RuntimeOptions { play_limit: Some(snapshot_pos), ..RuntimeOptions::default() },
    )
    .unwrap();
    let reg_old =
        rt_old.register_object(oid, Register::default(), ObjectOptions::default()).unwrap();
    assert_eq!(reg_old.query(None, |r| r.0).unwrap(), 1);
}

#[test]
fn checkpoint_restore_and_compact() {
    let cluster = cluster();
    let rt = runtime(&cluster);
    let oid = rt.create_or_open("ckpt").unwrap();
    let reg = rt.register_object(oid, Register::default(), ObjectOptions::default()).unwrap();
    for v in 1..=10i64 {
        reg.update(None, v.to_le_bytes().to_vec()).unwrap();
    }
    reg.query(None, |_| ()).unwrap();
    let ckpt_off = rt.checkpoint(oid).unwrap();
    reg.update(None, 11i64.to_le_bytes().to_vec()).unwrap();
    reg.query(None, |_| ()).unwrap();

    // A fresh runtime restores from the checkpoint and replays the suffix.
    let rt2 = runtime(&cluster);
    let reg2 = rt2
        .register_object_from_checkpoint(oid, Register::default(), ObjectOptions::default())
        .unwrap();
    assert_eq!(reg2.query(None, |r| r.0).unwrap(), 11);

    // Forget + compact: the checkpointed prefix is physically trimmed once
    // every object (here: the directory too) has forgotten it.
    rt.forget(oid, ckpt_off).unwrap();
    rt.checkpoint(tango::DIRECTORY_OID).unwrap();
    let dir_pos = rt.position();
    rt.forget(tango::DIRECTORY_OID, dir_pos.min(ckpt_off)).unwrap();
    let horizon = rt.compact().unwrap();
    assert!(horizon > 0, "expected a positive trim horizon");
    // Trimmed prefix is gone at the log level.
    assert_eq!(cluster.client().unwrap().read(0).unwrap(), corfu::ReadOutcome::Trimmed);
    // New runtimes still reconstruct from the checkpoint.
    let rt3 = runtime(&cluster);
    let reg3 = rt3
        .register_object_from_checkpoint(oid, Register::default(), ObjectOptions::default())
        .unwrap();
    assert_eq!(reg3.query(None, |r| r.0).unwrap(), 11);
}

#[test]
fn checkpoint_and_trim_driver_bounds_the_log() {
    let cluster = cluster();
    let rt = runtime(&cluster);
    let oid = rt.create_or_open("churn").unwrap();
    let reg = rt.register_object(oid, Register::default(), ObjectOptions::default()).unwrap();

    // Steady-state churn: write a burst, run the driver, repeat. The
    // horizon must chase the tail so the live window stays bounded.
    let mut horizons = Vec::new();
    let mut value = 0i64;
    for _ in 0..5 {
        for _ in 0..20 {
            value += 1;
            reg.update(None, value.to_le_bytes().to_vec()).unwrap();
        }
        reg.query(None, |_| ()).unwrap();
        horizons.push(rt.checkpoint_and_trim().unwrap());
    }
    assert!(horizons.windows(2).all(|w| w[0] <= w[1]), "horizon regressed: {horizons:?}");
    let last = *horizons.last().unwrap();
    assert!(last > 0, "driver never trimmed: {horizons:?}");

    // The trimmed prefix is physically gone, and the live window is small:
    // one burst plus the checkpoint records, not the whole history.
    let client = cluster.client().unwrap();
    assert_eq!(client.read(0).unwrap(), corfu::ReadOutcome::Trimmed);
    let tail = client.check_tail_slow().unwrap();
    assert!(tail - last < 40, "live window {} too wide (tail {tail}, horizon {last})", tail - last);

    // A fresh runtime restores from checkpoints alone.
    let rt2 = runtime(&cluster);
    let reg2 = rt2
        .register_object_from_checkpoint(oid, Register::default(), ObjectOptions::default())
        .unwrap();
    assert_eq!(reg2.query(None, |r| r.0).unwrap(), value);
}

#[test]
fn restore_races_with_advancing_trim_horizon() {
    // Fresh runtimes restore from checkpoints *while* the writer keeps
    // checkpointing and trimming underneath them. Restores must always
    // succeed (the stream layer tolerates the moving horizon) and the
    // restored values must be monotone per reader.
    let cluster = cluster();
    let rt = runtime(&cluster);
    let oid = rt.create_or_open("race").unwrap();
    let reg = rt.register_object(oid, Register::default(), ObjectOptions::default()).unwrap();
    reg.update(None, 0i64.to_le_bytes().to_vec()).unwrap();
    reg.query(None, |_| ()).unwrap();
    // Seed a restore point before the readers start.
    rt.checkpoint_and_trim().unwrap();

    std::thread::scope(|s| {
        for _ in 0..2 {
            s.spawn(|| {
                let mut last = 0i64;
                for _ in 0..12 {
                    let rt2 = runtime(&cluster);
                    let reg2 = rt2
                        .register_object_from_checkpoint(
                            oid,
                            Register::default(),
                            ObjectOptions::default(),
                        )
                        .unwrap();
                    let v = reg2.query(None, |r| r.0).unwrap();
                    assert!(v >= last, "restored value went backwards: {v} < {last}");
                    last = v;
                }
            });
        }
        // The writer churns and trims while the readers restore.
        for v in 1..=120i64 {
            reg.update(None, v.to_le_bytes().to_vec()).unwrap();
            if v % 10 == 0 {
                reg.query(None, |_| ()).unwrap();
                rt.checkpoint_and_trim().unwrap();
            }
        }
    });

    // After the dust settles the final value restores cleanly.
    let rt3 = runtime(&cluster);
    let reg3 = rt3
        .register_object_from_checkpoint(oid, Register::default(), ObjectOptions::default())
        .unwrap();
    assert_eq!(reg3.query(None, |r| r.0).unwrap(), 120);
}

#[test]
fn directory_allocates_unique_oids_under_contention() {
    let cluster = cluster();
    let mut handles = Vec::new();
    for t in 0..4 {
        let client = cluster.client().unwrap();
        handles.push(std::thread::spawn(move || {
            let rt = TangoRuntime::new(client).unwrap();
            (0..5u32)
                .map(|i| {
                    let name = format!("obj-{t}-{i}");
                    rt.create_or_open(&name).unwrap()
                })
                .collect::<Vec<_>>()
        }));
    }
    let mut all: Vec<u32> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
    let before = all.len();
    all.sort_unstable();
    all.dedup();
    assert_eq!(all.len(), before, "oids must be unique");

    // Same name resolves to the same oid everywhere.
    let rt = runtime(&cluster);
    let a = rt.create_or_open("obj-0-0").unwrap();
    let b = rt.create_or_open("obj-0-0").unwrap();
    assert_eq!(a, b);
}

#[test]
fn orphaned_commit_is_aborted_by_peer() {
    // A client crashes between appending speculative entries and the commit
    // record; a peer cleans up with a dummy abort decision (§3.2).
    let cluster = cluster();
    let rt_a = runtime(&cluster);
    let rt_b = runtime(&cluster);
    let oid = rt_a.create_or_open("orphan").unwrap();
    let reg_a = rt_a.register_object(oid, Register::default(), ObjectOptions::default()).unwrap();
    let reg_b = rt_b.register_object(oid, Register::default(), ObjectOptions::default()).unwrap();
    reg_a.update(None, 1i64.to_le_bytes().to_vec()).unwrap();

    // Simulate the orphan: append a commit record by hand whose generator
    // never wrote a decision, reading an object B does not host.
    use tango::{LogRecord, ReadKey, TxId, UpdateRecord};
    let fake_oid = 9999; // B hosts nothing with this id.
    let txid = TxId { client: 424242, seq: 1 };
    let record = LogRecord::Commit {
        txid,
        reads: vec![ReadKey { oid: fake_oid, key: None, version: 0 }],
        updates: vec![UpdateRecord {
            oid,
            key: None,
            data: bytes::Bytes::copy_from_slice(&777i64.to_le_bytes()),
        }],
        speculative: vec![],
        needs_decision: true,
    };
    rt_b.stream()
        .multiappend(&[oid], bytes::Bytes::from(tango_wire::encode_to_vec(&record)))
        .unwrap();

    // B's next accessor hits the undecided commit, times out waiting for
    // the decision, resolves it offline (the fake object was never
    // modified, so version 0 is still current -> COMMIT), and proceeds.
    assert_eq!(reg_b.query(None, |r| r.0).unwrap(), 777);
    // A sees the same outcome (deterministic decisions).
    assert_eq!(reg_a.query(None, |r| r.0).unwrap(), 777);
}
