//! Concurrency tests: optimistic transactions from many client runtimes
//! must be serializable — no lost updates, and all views converge.

use corfu::cluster::{ClusterConfig, LocalCluster};
use tango::{ApplyMeta, ObjectOptions, StateMachine, TangoRuntime, TxStatus};

/// A map of u64 counters. Update format: key u64 | value i64 (absolute).
#[derive(Default)]
struct Counters(std::collections::HashMap<u64, i64>);

impl StateMachine for Counters {
    fn apply(&mut self, data: &[u8], _meta: &ApplyMeta) {
        if data.len() == 16 {
            let k = u64::from_le_bytes(data[0..8].try_into().unwrap());
            let v = i64::from_le_bytes(data[8..16].try_into().unwrap());
            self.0.insert(k, v);
        }
    }
}

fn put(view: &tango::ObjectView<Counters>, k: u64, v: i64) {
    let mut buf = Vec::with_capacity(16);
    buf.extend_from_slice(&k.to_le_bytes());
    buf.extend_from_slice(&v.to_le_bytes());
    view.update(Some(k), buf).unwrap();
}

fn get(view: &tango::ObjectView<Counters>, k: u64) -> i64 {
    view.query(Some(k), |m| m.0.get(&k).copied().unwrap_or(0)).unwrap()
}

fn get_in_tx(view: &tango::ObjectView<Counters>, k: u64) -> i64 {
    view.query_dirty(Some(k), |m| m.0.get(&k).copied().unwrap_or(0)).unwrap()
}

#[test]
fn no_lost_updates_single_key() {
    const THREADS: usize = 4;
    const INCREMENTS: usize = 25;
    let cluster = LocalCluster::new(ClusterConfig::default());
    let bootstrap = TangoRuntime::new(cluster.client().unwrap()).unwrap();
    let oid = bootstrap.create_or_open("hot-counter").unwrap();

    let mut handles = Vec::new();
    for _ in 0..THREADS {
        let client = cluster.client().unwrap();
        handles.push(std::thread::spawn(move || {
            let rt = TangoRuntime::new(client).unwrap();
            let view =
                rt.register_object(oid, Counters::default(), ObjectOptions::default()).unwrap();
            let mut committed = 0usize;
            let mut attempts = 0usize;
            while committed < INCREMENTS {
                attempts += 1;
                assert!(attempts < INCREMENTS * 200, "livelock: too many retries");
                view.query(Some(0), |_| ()).unwrap(); // refresh the view
                rt.begin_tx().unwrap();
                let v = get_in_tx(&view, 0);
                put(&view, 0, v + 1);
                if rt.end_tx().unwrap() == TxStatus::Committed {
                    committed += 1;
                }
            }
            committed
        }));
    }
    let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(total, THREADS * INCREMENTS);

    // Every committed increment survived: the classic lost-update check.
    let rt = TangoRuntime::new(cluster.client().unwrap()).unwrap();
    let view = rt.register_object(oid, Counters::default(), ObjectOptions::default()).unwrap();
    assert_eq!(get(&view, 0), (THREADS * INCREMENTS) as i64);
}

#[test]
fn disjoint_keys_commit_concurrently_and_converge() {
    const THREADS: u64 = 4;
    const OPS: usize = 20;
    let cluster = LocalCluster::new(ClusterConfig::default());
    let bootstrap = TangoRuntime::new(cluster.client().unwrap()).unwrap();
    let oid = bootstrap.create_or_open("sharded-counters").unwrap();

    let mut handles = Vec::new();
    for t in 0..THREADS {
        let client = cluster.client().unwrap();
        handles.push(std::thread::spawn(move || {
            let rt = TangoRuntime::new(client).unwrap();
            let view =
                rt.register_object(oid, Counters::default(), ObjectOptions::default()).unwrap();
            let mut aborts = 0;
            for _ in 0..OPS {
                loop {
                    view.query(Some(t), |_| ()).unwrap();
                    rt.begin_tx().unwrap();
                    let v = get_in_tx(&view, t);
                    put(&view, t, v + 1);
                    if rt.end_tx().unwrap() == TxStatus::Committed {
                        break;
                    }
                    aborts += 1;
                }
            }
            aborts
        }));
    }
    let total_aborts: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    // Disjoint fine-grained keys: no true conflicts exist, so aborts should
    // be rare (they can only come from version-table coarseness, which our
    // per-key table does not have).
    assert_eq!(total_aborts, 0, "disjoint-key transactions must not conflict");

    let rt = TangoRuntime::new(cluster.client().unwrap()).unwrap();
    let view = rt.register_object(oid, Counters::default(), ObjectOptions::default()).unwrap();
    for t in 0..THREADS {
        assert_eq!(get(&view, t), OPS as i64);
    }
}

#[test]
fn cross_object_invariant_under_concurrency() {
    // A bank: money moves between two accounts; the sum is invariant.
    const THREADS: usize = 3;
    const TRANSFERS: usize = 15;
    let cluster = LocalCluster::new(ClusterConfig::default());
    let bootstrap = TangoRuntime::new(cluster.client().unwrap()).unwrap();
    let a = bootstrap.create_or_open("account-a").unwrap();
    let b = bootstrap.create_or_open("account-b").unwrap();
    {
        let va =
            bootstrap.register_object(a, Counters::default(), ObjectOptions::default()).unwrap();
        put(&va, 0, 1000);
    }

    let mut handles = Vec::new();
    for t in 0..THREADS {
        let client = cluster.client().unwrap();
        handles.push(std::thread::spawn(move || {
            let rt = TangoRuntime::new(client).unwrap();
            let va = rt.register_object(a, Counters::default(), ObjectOptions::default()).unwrap();
            let vb = rt.register_object(b, Counters::default(), ObjectOptions::default()).unwrap();
            let amount = (t + 1) as i64;
            let mut done = 0;
            while done < TRANSFERS {
                va.query(Some(0), |_| ()).unwrap();
                rt.begin_tx().unwrap();
                let balance_a = get_in_tx(&va, 0);
                let balance_b = get_in_tx(&vb, 0);
                put(&va, 0, balance_a - amount);
                put(&vb, 0, balance_b + amount);
                if rt.end_tx().unwrap() == TxStatus::Committed {
                    done += 1;
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let rt = TangoRuntime::new(cluster.client().unwrap()).unwrap();
    let va = rt.register_object(a, Counters::default(), ObjectOptions::default()).unwrap();
    let vb = rt.register_object(b, Counters::default(), ObjectOptions::default()).unwrap();
    let sum = get(&va, 0) + get(&vb, 0);
    assert_eq!(sum, 1000, "atomicity violated: money created or destroyed");
    let moved: i64 = (1..=THREADS as i64).map(|amt| amt * TRANSFERS as i64).sum();
    assert_eq!(get(&vb, 0), moved);
}
