//! The cross-log transaction correctness suite (the sharded-log tentpole):
//! optimistic transactions whose read/write sets span objects homed in
//! *different* logs. The home-anchor commit plus the decision-record path
//! must give exactly-one-commit for conflicting writers and forbid torn
//! reads — on the in-process cluster and over real TCP.

use corfu::cluster::{ClusterConfig, LocalCluster, TcpCluster};
use corfu::log_of_offset;
use tango::{ApplyMeta, ObjectOptions, Oid, StateMachine, TangoRuntime, TxStatus};

#[path = "../../corfu/tests/support/mod.rs"]
mod support;

/// A map of u64 counters. Update format: key u64 | value i64 (absolute).
#[derive(Default)]
struct Counters(std::collections::HashMap<u64, i64>);

impl StateMachine for Counters {
    fn apply(&mut self, data: &[u8], _meta: &ApplyMeta) {
        if data.len() == 16 {
            let k = u64::from_le_bytes(data[0..8].try_into().unwrap());
            let v = i64::from_le_bytes(data[8..16].try_into().unwrap());
            self.0.insert(k, v);
        }
    }
}

fn put(view: &tango::ObjectView<Counters>, k: u64, v: i64) {
    let mut buf = Vec::with_capacity(16);
    buf.extend_from_slice(&k.to_le_bytes());
    buf.extend_from_slice(&v.to_le_bytes());
    view.update(Some(k), buf).unwrap();
}

fn get(view: &tango::ObjectView<Counters>, k: u64) -> i64 {
    view.query(Some(k), |m| m.0.get(&k).copied().unwrap_or(0)).unwrap()
}

fn get_in_tx(view: &tango::ObjectView<Counters>, k: u64) -> i64 {
    view.query_dirty(Some(k), |m| m.0.get(&k).copied().unwrap_or(0)).unwrap()
}

/// Registers fresh objects under `tag` until one's oid is homed in `log`.
/// The directory allocates oids sequentially and the shard map hashes
/// them, so a handful of attempts always suffices.
fn object_in_log(rt: &TangoRuntime, proj: &corfu::Projection, log: u32, tag: &str) -> Oid {
    for i in 0..64 {
        let oid = rt.create_or_open(&format!("{tag}-{i}")).unwrap();
        if proj.log_of_stream(oid) == log {
            return oid;
        }
    }
    panic!("no oid hashed into log {log} for tag {tag}");
}

#[test]
fn conflicting_cross_log_writers_commit_exactly_once() {
    // The classic lost-update check, with the conflict spanning logs:
    // every transaction RMWs a shared counter homed in log 0 and writes a
    // private object homed in log 1, so each commit record is a cross-log
    // multiappend whose outcome is arbitrated by the home anchor plus
    // decision records. Exactly one of each pair of racing increments may
    // survive per version.
    const THREADS: usize = 4;
    const INCREMENTS: usize = 8;
    let cluster = LocalCluster::new(ClusterConfig::sharded(2));
    let proj = cluster.client().unwrap().projection();
    let bootstrap = TangoRuntime::new(cluster.client().unwrap()).unwrap();
    let shared = object_in_log(&bootstrap, &proj, 0, "shared");
    let privates: Vec<Oid> =
        (0..THREADS).map(|t| object_in_log(&bootstrap, &proj, 1, &format!("priv{t}"))).collect();

    let mut handles = Vec::new();
    for &mine in &privates {
        let client = cluster.client().unwrap();
        handles.push(std::thread::spawn(move || {
            let rt = TangoRuntime::new(client).unwrap();
            let vs =
                rt.register_object(shared, Counters::default(), ObjectOptions::default()).unwrap();
            let vp =
                rt.register_object(mine, Counters::default(), ObjectOptions::default()).unwrap();
            let mut committed = 0usize;
            let mut attempts = 0usize;
            while committed < INCREMENTS {
                attempts += 1;
                assert!(attempts < INCREMENTS * 200, "livelock: too many retries");
                vs.query(Some(0), |_| ()).unwrap(); // refresh the view
                rt.begin_tx().unwrap();
                let v = get_in_tx(&vs, 0);
                put(&vs, 0, v + 1);
                put(&vp, 0, (committed + 1) as i64);
                if rt.end_tx().unwrap() == TxStatus::Committed {
                    committed += 1;
                }
            }
            committed
        }));
    }
    let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(total, THREADS * INCREMENTS);

    // No lost updates on the shared (log 0) side...
    let rt = TangoRuntime::new(cluster.client().unwrap()).unwrap();
    let vs = rt.register_object(shared, Counters::default(), ObjectOptions::default()).unwrap();
    assert_eq!(get(&vs, 0), (THREADS * INCREMENTS) as i64);
    // ...and the log-1 halves of the same transactions all applied: a
    // commit is atomic across its parts, never one log only.
    for &p in &privates {
        let vp = rt.register_object(p, Counters::default(), ObjectOptions::default()).unwrap();
        assert_eq!(get(&vp, 0), INCREMENTS as i64, "the cross-log half of each commit applied");
    }
}

#[test]
fn read_transactions_never_observe_torn_cross_log_state() {
    // Writers keep the invariant a == b, with A homed in log 0 and B in
    // log 1 — every write is a cross-log commit. Readers observe the pair
    // through *read transactions*: OCC validation of the read set means a
    // committed read transaction saw one consistent cut, even though the
    // two objects play from different logs. (Plain unvalidated queries
    // have no such guarantee — that is precisely what commit/decision
    // records exist for.)
    const WRITES: usize = 20;
    const READS: usize = 30;
    let cluster = LocalCluster::new(ClusterConfig::sharded(2));
    let proj = cluster.client().unwrap().projection();
    let bootstrap = TangoRuntime::new(cluster.client().unwrap()).unwrap();
    let a = object_in_log(&bootstrap, &proj, 0, "torn-a");
    let b = object_in_log(&bootstrap, &proj, 1, "torn-b");

    let writer = {
        let client = cluster.client().unwrap();
        std::thread::spawn(move || {
            let rt = TangoRuntime::new(client).unwrap();
            let va = rt.register_object(a, Counters::default(), ObjectOptions::default()).unwrap();
            let vb = rt.register_object(b, Counters::default(), ObjectOptions::default()).unwrap();
            let mut done = 0usize;
            while done < WRITES {
                va.query(Some(0), |_| ()).unwrap();
                rt.begin_tx().unwrap();
                let v = get_in_tx(&va, 0);
                put(&va, 0, v + 1);
                put(&vb, 0, v + 1);
                if rt.end_tx().unwrap() == TxStatus::Committed {
                    done += 1;
                }
            }
        })
    };

    let reader = {
        let client = cluster.client().unwrap();
        std::thread::spawn(move || {
            let rt = TangoRuntime::new(client).unwrap();
            let va = rt.register_object(a, Counters::default(), ObjectOptions::default()).unwrap();
            let vb = rt.register_object(b, Counters::default(), ObjectOptions::default()).unwrap();
            let mut seen = 0usize;
            let mut aborted = 0usize;
            while seen < READS {
                va.query(Some(0), |_| ()).unwrap();
                rt.begin_tx().unwrap();
                let ra = get_in_tx(&va, 0);
                let rb = get_in_tx(&vb, 0);
                if rt.end_tx().unwrap() == TxStatus::Committed {
                    assert_eq!(ra, rb, "a committed read transaction saw a torn cross-log cut");
                    seen += 1;
                } else {
                    aborted += 1;
                    assert!(aborted < READS * 500, "reader livelock");
                }
            }
            seen
        })
    };

    writer.join().unwrap();
    assert_eq!(reader.join().unwrap(), READS);

    let rt = TangoRuntime::new(cluster.client().unwrap()).unwrap();
    let va = rt.register_object(a, Counters::default(), ObjectOptions::default()).unwrap();
    let vb = rt.register_object(b, Counters::default(), ObjectOptions::default()).unwrap();
    assert_eq!(get(&va, 0), WRITES as i64);
    assert_eq!(get(&vb, 0), WRITES as i64);
}

#[test]
fn cross_log_commit_records_carry_links() {
    // White-box: a committed cross-log transaction's commit record is a
    // linked multiappend — its parts live in both logs and each carries
    // the link naming the home anchor.
    let cluster = LocalCluster::new(ClusterConfig::sharded(2));
    let proj = cluster.client().unwrap().projection();
    let rt = TangoRuntime::new(cluster.client().unwrap()).unwrap();
    let a = object_in_log(&rt, &proj, 0, "link-a");
    let b = object_in_log(&rt, &proj, 1, "link-b");
    let va = rt.register_object(a, Counters::default(), ObjectOptions::default()).unwrap();
    let vb = rt.register_object(b, Counters::default(), ObjectOptions::default()).unwrap();

    va.query(Some(0), |_| ()).unwrap();
    rt.begin_tx().unwrap();
    let v = get_in_tx(&va, 0);
    put(&va, 0, v + 1);
    put(&vb, 0, v + 1);
    assert_eq!(rt.end_tx().unwrap(), TxStatus::Committed);

    // Find the commit record: the newest entry of stream `a` carrying a
    // link, via a raw scan of log 0.
    let corfu = cluster.client().unwrap();
    let tail = corfu.log_tail_fast(0).unwrap();
    let mut found = None;
    for raw in (0..tail).rev() {
        let off = corfu::compose(0, raw);
        if let Ok(entry) = corfu.read_entry(off) {
            if entry.belongs_to(a) {
                if let Some(link) = entry.link {
                    found = Some((off, link));
                    break;
                }
            }
        }
    }
    let (off, link) = found.expect("the cross-log commit record must carry a link");
    assert_eq!(link.home, off, "stream a's part is the home anchor (log 0 is lowest)");
    assert_eq!(link.parts.len(), 2);
    let logs: Vec<u32> = link.parts.iter().map(|&p| log_of_offset(p)).collect();
    assert!(logs.contains(&0) && logs.contains(&1), "one part per participating log");
    // The log-1 part is stream b's copy of the same record.
    let other = link.parts.iter().copied().find(|&p| log_of_offset(p) == 1).unwrap();
    let part = corfu.read_entry(other).unwrap();
    assert!(part.belongs_to(b));
    assert_eq!(part.link.as_ref().map(|l| l.home), Some(off));
}

/// One seeded run of conflicting cross-log transactions under a fault
/// schedule at the `shard1.seq.*` protocol points: drop-% on the log-1
/// sequencer throughout, plus crash-at-nth with a reconfiguration to a
/// replacement mid-run. Two runtimes interleave deterministically from one
/// thread (A reads, B reads the same snapshot, A commits, B commits), so
/// the fault plan's pure `(seed, point, nth)` decisions fully determine
/// every outcome. Returns (per-step outcomes, fault trace, final counter).
fn faulted_tx_scenario(seed: u64) -> (Vec<String>, Vec<support::fault::TraceEvent>, i64) {
    const ROUNDS: usize = 24;
    const CRASH_NTH: u64 = 9;
    let cluster = LocalCluster::new(ClusterConfig::sharded(2));
    let plan = support::fault::FaultPlan::new(seed);
    plan.drop_calls("shard1.seq.next", 25);
    plan.crash_at("shard1.seq.next", CRASH_NTH);
    let registry = cluster.registry().clone();
    plan.on_crash(move |node| registry.kill(&format!("sequencer-{node}")));

    // Oid allocation and recovery go through clean clients so they do not
    // perturb the plan's occurrence counters.
    let clean = cluster.client().unwrap();
    let proj = clean.projection();
    let bootstrap = TangoRuntime::new(cluster.client().unwrap()).unwrap();
    let s = object_in_log(&bootstrap, &proj, 0, "faulted-s");
    let q = object_in_log(&bootstrap, &proj, 1, "faulted-q");

    let faulted_rt = || {
        let client = cluster
            .client_with_factory(
                plan.wrap(cluster.conn_factory()),
                corfu::ClientOptions::default(),
                cluster.metrics().clone(),
            )
            .unwrap();
        let rt = TangoRuntime::new(client).unwrap();
        let vs = rt.register_object(s, Counters::default(), ObjectOptions::default()).unwrap();
        let vq = rt.register_object(q, Counters::default(), ObjectOptions::default()).unwrap();
        (rt, vs, vq)
    };
    let (rt_a, vs_a, vq_a) = faulted_rt();
    let (rt_b, vs_b, vq_b) = faulted_rt();

    let mut outcomes = Vec::new();
    let mut recovered = false;
    for _round in 0..ROUNDS {
        // Both clients observe the same snapshot, then race commits: at
        // most one of the pair may win the round.
        let half = |rt: &TangoRuntime, vs: &tango::ObjectView<Counters>, vq| {
            let _ = vs.query(Some(0), |_| ());
            rt.begin_tx().unwrap();
            let v = get_in_tx(vs, 0);
            let w = get_in_tx(vq, 0);
            (v, w)
        };
        let (va, wa) = half(&rt_a, &vs_a, &vq_a);
        let (vb, wb) = half(&rt_b, &vs_b, &vq_b);
        put(&vs_a, 0, va + 1);
        put(&vq_a, 0, wa + 1);
        put(&vs_b, 0, vb + 1);
        put(&vq_b, 0, wb + 1);
        for (tag, rt) in [("A", &rt_a), ("B", &rt_b)] {
            let outcome = match rt.end_tx() {
                Ok(status) => format!("{tag}:{status:?}"),
                Err(_) => format!("{tag}:Err"),
            };
            outcomes.push(outcome);
        }
        // The crash fires at a seeded call count; once the plan reports
        // it, reconfigure log 1 to a replacement sequencer (through the
        // clean client — recovery traffic is not part of the schedule).
        if !recovered && plan.trace().iter().any(|e| e.action == "crash") {
            let (info, _server) = cluster.spawn_replacement_sequencer_for(1);
            corfu::reconfig::replace_sequencer_in_log(&clean, 1, info, 4).unwrap();
            recovered = true;
            outcomes.push("recovered".to_owned());
        }
    }
    assert!(recovered, "the crash-at-nth rule must have fired within {ROUNDS} rounds");

    // Exactly-one-commit per conflicting pair: A and B observed the same
    // snapshot each round, so both reporting Committed would be a
    // serializability violation.
    let tx_outcomes: Vec<&String> = outcomes.iter().filter(|o| *o != "recovered").collect();
    for pair in tx_outcomes.chunks(2) {
        assert!(
            !pair.iter().all(|o| o.ends_with("Committed")),
            "both sides of a conflicting pair committed: {pair:?}"
        );
    }

    // An `Err` from end_tx means *unknown outcome*, not aborted: a token
    // drop after the speculative commit record landed leaves a record any
    // replayer resolves by validation. So the final counters equal the
    // effective commit count — at least the reported commits, at most
    // reported commits + errors — and the cross-log halves move together.
    let committed = outcomes.iter().filter(|o| o.ends_with("Committed")).count() as i64;
    let errs = outcomes.iter().filter(|o| o.ends_with("Err")).count() as i64;
    let rt = TangoRuntime::new(cluster.client().unwrap()).unwrap();
    let vs = rt.register_object(s, Counters::default(), ObjectOptions::default()).unwrap();
    let vq = rt.register_object(q, Counters::default(), ObjectOptions::default()).unwrap();
    let (final_s, final_q) = (get(&vs, 0), get(&vq, 0));
    assert_eq!(final_s, final_q, "both logs' halves of every effective commit applied");
    assert!(
        final_s >= committed && final_s <= committed + errs,
        "effective commits {final_s} outside [{committed}, {}]",
        committed + errs
    );
    assert!(committed > 0, "some transactions must get through the lossy schedule");

    // The replay-compared slice of the trace: the scheduled protocol
    // points. (The full trace also records timing-dependent polling —
    // tail queries and hole-fill reads whose counts vary with wall-clock
    // sleeps — so only the faulted points are occurrence-deterministic.)
    let scheduled: Vec<support::fault::TraceEvent> =
        plan.trace().into_iter().filter(|e| e.point == "shard1.seq.next").collect();
    (outcomes, scheduled, final_s)
}

#[test]
fn faulted_cross_log_transactions_replay_identically() {
    let seed = support::seed_from_env(0xC0FF_EE00_0108);
    let _guard = support::SeedGuard(seed);
    let first = faulted_tx_scenario(seed);
    let second = faulted_tx_scenario(seed);
    assert_eq!(first.0, second.0, "per-transaction outcomes replay identically");
    assert_eq!(first.1, second.1, "the scheduled-point trace replays byte-equal");
    assert_eq!(first.2, second.2, "the effective commit count replays identically");
    assert!(
        first.1.iter().any(|e| e.action == "crash") && first.1.iter().any(|e| e.action == "drop"),
        "the schedule exercised both crash-at-nth and drop-%"
    );
}

#[test]
fn cross_log_transactions_over_tcp() {
    // The same exactly-one-commit discipline over real sockets: smaller
    // counts (TCP round trips per decision), same invariants.
    const THREADS: usize = 2;
    const INCREMENTS: usize = 4;
    let cluster = TcpCluster::spawn(ClusterConfig::sharded(2)).unwrap();
    let proj = cluster.client().unwrap().projection();
    let bootstrap = TangoRuntime::new(cluster.client().unwrap()).unwrap();
    let shared = object_in_log(&bootstrap, &proj, 0, "tcp-shared");
    let other = object_in_log(&bootstrap, &proj, 1, "tcp-other");

    let mut handles = Vec::new();
    for _ in 0..THREADS {
        let client = cluster.client().unwrap();
        handles.push(std::thread::spawn(move || {
            let rt = TangoRuntime::new(client).unwrap();
            let vs =
                rt.register_object(shared, Counters::default(), ObjectOptions::default()).unwrap();
            let vo =
                rt.register_object(other, Counters::default(), ObjectOptions::default()).unwrap();
            let mut committed = 0usize;
            let mut attempts = 0usize;
            while committed < INCREMENTS {
                attempts += 1;
                assert!(attempts < INCREMENTS * 200, "livelock: too many retries");
                vs.query(Some(0), |_| ()).unwrap();
                rt.begin_tx().unwrap();
                let v = get_in_tx(&vs, 0);
                let w = get_in_tx(&vo, 0);
                put(&vs, 0, v + 1);
                put(&vo, 0, w + 1);
                if rt.end_tx().unwrap() == TxStatus::Committed {
                    committed += 1;
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let rt = TangoRuntime::new(cluster.client().unwrap()).unwrap();
    let vs = rt.register_object(shared, Counters::default(), ObjectOptions::default()).unwrap();
    let vo = rt.register_object(other, Counters::default(), ObjectOptions::default()).unwrap();
    assert_eq!(get(&vs, 0), (THREADS * INCREMENTS) as i64);
    assert_eq!(get(&vo, 0), (THREADS * INCREMENTS) as i64, "both logs' halves applied atomically");
}
