//! A hand-rolled epoll readiness reactor: thousands of connections on a
//! fixed thread budget.
//!
//! The thread-per-connection transport topped out at tens of clients — a
//! CORFU log absorbing fan-in from thousands of Tango views (§5 runs
//! thousands of views against one log) cannot spend a reader thread per
//! socket. The reactor inverts that: **one** event-loop thread owns every
//! nonblocking socket of a server (or of all of a process's client
//! connections), parks in `epoll_wait`, and drives per-connection
//! [`FrameAssembler`] state machines as bytes arrive. Decoded request
//! frames are handed to a small fixed worker pool; response writes are
//! attempted directly on the (nonblocking) socket and spill into a
//! per-connection outbound buffer drained on `EPOLLOUT` when the kernel
//! send queue is full. A socketpair waker lets other threads nudge the
//! loop — shutdown sets a flag and writes one byte, which is also what
//! makes shutting down a wildcard-bound (`0.0.0.0`) server deterministic
//! (the old transport "poked" the listener by dialing its own address,
//! a no-op when bound to a wildcard).
//!
//! In the spirit of the `vendor/` shims there are **no new
//! dependencies**: the four epoll calls are declared directly against the
//! libc that `std` already links, mio-style, in [`sys`].
//!
//! Level-triggered epoll keeps the loop honest: a connection whose frames
//! were not fully drained in one tick (reads are capped per tick for
//! fairness) is simply reported ready again on the next `epoll_wait`.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;
use tango_metrics::{Counter, EventKind, Events, Gauge, TraceContext};

use crate::frame::{write_frame_traced, Frame, FrameAssembler, HEADER_LEN, TRACE_EXT_LEN};
use crate::{Result, RpcError};

/// Minimal epoll bindings against the libc `std` already links — no new
/// crate, just the four calls a readiness loop needs.
mod sys {
    use std::io;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: i32 = 0o2000000;

    /// Kernel `struct epoll_event`. Packed on x86-64 (the kernel ABI packs
    /// it there); naturally aligned everywhere else.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        events: u32,
        data: u64,
    }

    impl EpollEvent {
        pub fn zeroed() -> Self {
            Self { events: 0, data: 0 }
        }

        pub fn events(&self) -> u32 {
            self.events
        }

        pub fn token(&self) -> u64 {
            self.data
        }
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    pub fn create() -> io::Result<i32> {
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(fd)
        }
    }

    fn ctl(epfd: i32, op: i32, fd: i32, interest: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events: interest, data: token };
        if unsafe { epoll_ctl(epfd, op, fd, &mut ev) } < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(())
        }
    }

    pub fn add(epfd: i32, fd: i32, interest: u32, token: u64) -> io::Result<()> {
        ctl(epfd, EPOLL_CTL_ADD, fd, interest, token)
    }

    pub fn modify(epfd: i32, fd: i32, interest: u32, token: u64) -> io::Result<()> {
        ctl(epfd, EPOLL_CTL_MOD, fd, interest, token)
    }

    pub fn del(epfd: i32, fd: i32) -> io::Result<()> {
        ctl(epfd, EPOLL_CTL_DEL, fd, 0, 0)
    }

    pub fn wait(epfd: i32, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        let n = unsafe { epoll_wait(epfd, events.as_mut_ptr(), events.len() as i32, timeout_ms) };
        if n < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(n as usize)
        }
    }

    pub fn close_fd(fd: i32) {
        let _ = unsafe { close(fd) };
    }
}

pub(crate) use sys::{EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};

/// Token of the waker's read end in the epoll set.
const WAKER_TOKEN: u64 = 0;
/// Token of the (optional) listener in the epoll set.
const LISTENER_TOKEN: u64 = 1;
/// First token handed to a registered connection.
const FIRST_CONN_TOKEN: u64 = 2;

/// How many decoded frames one connection may deliver per readiness tick
/// before the loop moves on. Level-triggered epoll re-reports the
/// connection immediately, so a firehose peer cannot starve the others.
const FRAMES_PER_TICK: usize = 32;

/// Upper bound on one connection's outbound spill buffer. A peer that
/// stops reading cannot balloon the process; past this the connection is
/// torn down (the blocking transport got the same effect from its write
/// timeout).
const MAX_OUT_BUF: usize = 128 << 20;

/// Sleep applied after `consecutive` back-to-back `accept` failures, so a
/// persistent error (e.g. EMFILE) degrades to a paced retry instead of a
/// 100%-CPU busy-spin. Grows linearly, capped at 250ms to keep shutdown
/// responsive.
pub(crate) fn accept_backoff(consecutive: u32) -> Duration {
    Duration::from_millis(u64::from(consecutive).saturating_mul(10).min(250))
}

/// Per-connection frame consumer: where the reactor delivers decoded
/// frames and connection-death notice.
///
/// `on_frame` runs on the reactor thread — it must only route (enqueue to
/// workers, rendezvous with a waiter), never block or invoke handlers.
pub(crate) trait Sink: Send + Sync {
    /// A complete frame arrived. Return `false` to close the connection.
    fn on_frame(&self, conn: &Arc<Conn>, frame: Frame) -> bool;
    /// The connection died (EOF, I/O error, reactor shutdown). Called
    /// exactly once, after the connection left the epoll set.
    fn on_close(&self, error: RpcError);
}

/// Outbound spill state: bytes the kernel would not take synchronously.
#[derive(Default)]
struct OutBuf {
    buf: Vec<u8>,
    /// Bytes of `buf` already written.
    pos: usize,
}

impl OutBuf {
    fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }
}

/// One reactor-owned connection: the nonblocking socket, its incremental
/// frame assembler (reactor thread only), and the outbound spill buffer
/// (shared with writer threads).
pub(crate) struct Conn {
    token: u64,
    epfd: i32,
    stream: TcpStream,
    sink: Arc<dyn Sink>,
    assembler: Mutex<FrameAssembler>,
    out: Mutex<OutBuf>,
    closed: AtomicBool,
}

impl Conn {
    /// Encodes and sends one frame. The write is attempted synchronously
    /// on the nonblocking socket; whatever the kernel refuses is buffered
    /// and drained by the reactor on `EPOLLOUT`. May be called from any
    /// thread. A hard I/O error tears the connection down (so peers fail
    /// fast on a desynced stream) and is returned.
    pub(crate) fn send_frame(
        &self,
        id: u64,
        trace: Option<TraceContext>,
        payload: &[u8],
    ) -> Result<()> {
        let mut frame = Vec::with_capacity(HEADER_LEN + TRACE_EXT_LEN + payload.len());
        write_frame_traced(&mut frame, id, trace, payload)?;
        let mut out = self.out.lock();
        if self.closed.load(Ordering::SeqCst) {
            return Err(RpcError::Disconnected);
        }
        if out.pending() > 0 {
            // EPOLLOUT is already armed; just append (bounded).
            if out.pending() + frame.len() > MAX_OUT_BUF {
                drop(out);
                self.close();
                return Err(RpcError::Io("outbound buffer overflow: peer not reading".into()));
            }
            out.buf.extend_from_slice(&frame);
            return Ok(());
        }
        let mut written = 0;
        while written < frame.len() {
            match (&self.stream).write(&frame[written..]) {
                Ok(0) => {
                    drop(out);
                    self.close();
                    return Err(RpcError::Disconnected);
                }
                Ok(n) => written += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    out.buf.clear();
                    out.pos = 0;
                    out.buf.extend_from_slice(&frame[written..]);
                    self.set_writable(true);
                    return Ok(());
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    drop(out);
                    self.close();
                    return Err(e.into());
                }
            }
        }
        Ok(())
    }

    /// Reactor-side: flush the spill buffer on `EPOLLOUT`. `Err` means the
    /// connection must be closed.
    fn drain_out(&self) -> std::result::Result<(), ()> {
        let mut out = self.out.lock();
        while out.pending() > 0 {
            let pos = out.pos;
            match (&self.stream).write(&out.buf[pos..]) {
                Ok(0) => return Err(()),
                Ok(n) => out.pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return Err(()),
            }
        }
        out.buf.clear();
        out.pos = 0;
        self.set_writable(false);
        Ok(())
    }

    /// Re-arms the connection's epoll interest with or without `EPOLLOUT`.
    /// Callers hold the `out` lock, which serializes interest changes.
    fn set_writable(&self, on: bool) {
        let mut interest = EPOLLIN | EPOLLRDHUP;
        if on {
            interest |= EPOLLOUT;
        }
        // The connection may have been deregistered concurrently; a
        // failed MOD on a closing connection is harmless.
        let _ = sys::modify(self.epfd, self.stream.as_raw_fd(), interest, self.token);
    }

    /// Marks the connection closed and shuts the socket down; the reactor
    /// observes the resulting readiness (EOF) and deregisters it. Safe to
    /// call from any thread, any number of times.
    pub(crate) fn close(&self) {
        if !self.closed.swap(true, Ordering::SeqCst) {
            let _ = self.stream.shutdown(Shutdown::Both);
        }
    }
}

/// A listener the reactor accepts on, plus what to do with accepted
/// connections.
pub(crate) struct ListenerConfig {
    pub listener: TcpListener,
    /// Sink shared by every accepted connection.
    pub sink: Arc<dyn Sink>,
    /// Accepted connections beyond this are closed immediately (and
    /// counted in `dropped`) instead of degrading the whole event loop.
    pub max_conns: usize,
    /// Connections dropped at accept: over `max_conns`, or reactor
    /// registration failure (`rpc.accepts_dropped`).
    pub dropped: Counter,
    /// Currently registered server-side connections (`rpc.server_conns`).
    pub connections: Gauge,
    /// Event journal: each accept-time drop is recorded as a
    /// `ConnDropped` event (detail 0 = over the cap, 1 = registration
    /// failure) so the flight recorder shows *when* churn happened.
    pub events: Events,
}

struct Inner {
    epfd: i32,
    shutdown: AtomicBool,
    /// Write end of the waker socketpair; one byte = one nudge.
    waker_tx: UnixStream,
    conns: Mutex<HashMap<u64, Arc<Conn>>>,
    next_token: AtomicU64,
    connections: Gauge,
}

impl Inner {
    fn wake(&self) {
        // WouldBlock means a wake is already pending — good enough.
        let _ = (&self.waker_tx).write(&[1u8]);
    }
}

impl Drop for Inner {
    fn drop(&mut self) {
        sys::close_fd(self.epfd);
    }
}

/// The readiness event loop: one thread, any number of sockets.
///
/// Dropping the reactor shuts it down: the event thread closes every
/// registered connection (each sink gets `on_close`) and exits, and the
/// drop joins it.
pub(crate) struct Reactor {
    inner: Arc<Inner>,
    thread: Option<JoinHandle<()>>,
}

impl Reactor {
    /// Spawns the event loop, optionally owning a listener whose accepted
    /// connections feed `ListenerConfig::sink`.
    pub(crate) fn spawn(name: &str, listener: Option<ListenerConfig>) -> Result<Reactor> {
        let epfd = sys::create()?;
        let pair = match UnixStream::pair() {
            Ok(pair) => pair,
            Err(e) => {
                sys::close_fd(epfd);
                return Err(e.into());
            }
        };
        let (waker_rx, waker_tx) = pair;
        let setup = (|| -> Result<()> {
            waker_rx.set_nonblocking(true)?;
            waker_tx.set_nonblocking(true)?;
            sys::add(epfd, waker_rx.as_raw_fd(), EPOLLIN, WAKER_TOKEN)?;
            if let Some(cfg) = &listener {
                cfg.listener.set_nonblocking(true)?;
                sys::add(epfd, cfg.listener.as_raw_fd(), EPOLLIN, LISTENER_TOKEN)?;
            }
            Ok(())
        })();
        if let Err(e) = setup {
            sys::close_fd(epfd);
            return Err(e);
        }
        let connections = listener.as_ref().map(|cfg| cfg.connections.clone()).unwrap_or_default();
        let inner = Arc::new(Inner {
            epfd,
            shutdown: AtomicBool::new(false),
            waker_tx,
            conns: Mutex::new(HashMap::new()),
            next_token: AtomicU64::new(FIRST_CONN_TOKEN),
            connections,
        });
        let loop_inner = Arc::clone(&inner);
        let thread = std::thread::Builder::new()
            .name(name.to_string())
            .spawn(move || event_loop(loop_inner, listener, waker_rx))
            .map_err(|e| RpcError::Io(e.to_string()))?;
        Ok(Reactor { inner, thread: Some(thread) })
    }

    /// Registers an already-connected stream; decoded frames flow to
    /// `sink`. The stream is switched to nonblocking mode and owned by the
    /// reactor from here on — all writes must go through
    /// [`Conn::send_frame`].
    pub(crate) fn register_conn(
        &self,
        stream: TcpStream,
        sink: Arc<dyn Sink>,
    ) -> Result<Arc<Conn>> {
        if self.inner.shutdown.load(Ordering::SeqCst) {
            return Err(RpcError::Disconnected);
        }
        register(&self.inner, stream, sink)
    }

    /// Number of currently registered connections.
    #[cfg(test)]
    pub(crate) fn conn_count(&self) -> usize {
        self.inner.conns.lock().len()
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.wake();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn register(inner: &Arc<Inner>, stream: TcpStream, sink: Arc<dyn Sink>) -> Result<Arc<Conn>> {
    let _ = stream.set_nodelay(true);
    stream.set_nonblocking(true)?;
    let token = inner.next_token.fetch_add(1, Ordering::Relaxed);
    let conn = Arc::new(Conn {
        token,
        epfd: inner.epfd,
        stream,
        sink,
        assembler: Mutex::new(FrameAssembler::new()),
        out: Mutex::new(OutBuf::default()),
        closed: AtomicBool::new(false),
    });
    inner.conns.lock().insert(token, Arc::clone(&conn));
    if let Err(e) = sys::add(inner.epfd, conn.stream.as_raw_fd(), EPOLLIN | EPOLLRDHUP, token) {
        inner.conns.lock().remove(&token);
        return Err(e.into());
    }
    inner.connections.add(1);
    Ok(conn)
}

/// Removes a connection from the epoll set and delivers its death notice.
/// Idempotent: only the caller that actually removes it from the map runs
/// the teardown.
fn close_conn(inner: &Arc<Inner>, conn: &Arc<Conn>, error: RpcError) {
    if inner.conns.lock().remove(&conn.token).is_none() {
        return;
    }
    let _ = sys::del(inner.epfd, conn.stream.as_raw_fd());
    conn.close();
    inner.connections.sub(1);
    conn.sink.on_close(error);
}

fn event_loop(inner: Arc<Inner>, listener: Option<ListenerConfig>, waker_rx: UnixStream) {
    let mut events = vec![sys::EpollEvent::zeroed(); 128];
    let mut accept_errors: u32 = 0;
    loop {
        if inner.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let n = match sys::wait(inner.epfd, &mut events, -1) {
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            // An unexpected epoll failure: pace the retry so a persistent
            // error cannot spin the loop at 100% CPU.
            Err(_) => {
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        for event in events.iter().take(n) {
            let (ready, token) = (event.events(), event.token());
            match token {
                WAKER_TOKEN => drain_waker(&waker_rx),
                LISTENER_TOKEN => {
                    if let Some(cfg) = &listener {
                        accept_ready(&inner, cfg, &mut accept_errors);
                    }
                }
                token => conn_ready(&inner, token, ready),
            }
        }
    }
    // Teardown: every connection is closed and notified, so blocked
    // callers fail promptly instead of waiting out their timeouts.
    let remaining: Vec<Arc<Conn>> = inner.conns.lock().drain().map(|(_, c)| c).collect();
    for conn in remaining {
        let _ = sys::del(inner.epfd, conn.stream.as_raw_fd());
        conn.close();
        inner.connections.sub(1);
        conn.sink.on_close(RpcError::Disconnected);
    }
}

fn drain_waker(waker_rx: &UnixStream) {
    let mut buf = [0u8; 64];
    loop {
        match (&*waker_rx).read(&mut buf) {
            Ok(0) => return,
            Ok(_) => continue,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return, // WouldBlock: fully drained.
        }
    }
}

fn accept_ready(inner: &Arc<Inner>, cfg: &ListenerConfig, accept_errors: &mut u32) {
    loop {
        match cfg.listener.accept() {
            Ok((stream, _peer)) => {
                *accept_errors = 0;
                if inner.conns.lock().len() >= cfg.max_conns {
                    // Close explicitly and account for it — a silently
                    // vanished connection is undebuggable at 10K peers.
                    cfg.dropped.inc();
                    cfg.events.emit(EventKind::ConnDropped, 0, 0, 0);
                    drop(stream);
                    continue;
                }
                if register(inner, stream, Arc::clone(&cfg.sink)).is_err() {
                    cfg.dropped.inc();
                    cfg.events.emit(EventKind::ConnDropped, 0, 0, 1);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                // EMFILE and friends do not consume the pending
                // connection, so level-triggered epoll would re-report it
                // instantly; pace the retry.
                *accept_errors += 1;
                std::thread::sleep(accept_backoff(*accept_errors));
                return;
            }
        }
    }
}

fn conn_ready(inner: &Arc<Inner>, token: u64, ready: u32) {
    let Some(conn) = inner.conns.lock().get(&token).cloned() else {
        return; // Already closed this tick.
    };
    if ready & EPOLLERR != 0 {
        close_conn(inner, &conn, RpcError::Disconnected);
        return;
    }
    if ready & EPOLLOUT != 0 && conn.drain_out().is_err() {
        close_conn(inner, &conn, RpcError::Disconnected);
        return;
    }
    if ready & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0 {
        read_ready(inner, &conn);
    }
}

fn read_ready(inner: &Arc<Inner>, conn: &Arc<Conn>) {
    let mut assembler = conn.assembler.lock();
    for _ in 0..FRAMES_PER_TICK {
        let mut reader = &conn.stream;
        match assembler.poll(&mut reader) {
            Ok(Some(frame)) => {
                if !conn.sink.on_frame(conn, frame) {
                    drop(assembler);
                    close_conn(inner, conn, RpcError::Disconnected);
                    return;
                }
            }
            // WouldBlock: the socket is drained for now.
            Ok(None) => return,
            Err(e) => {
                drop(assembler);
                close_conn(inner, conn, e);
                return;
            }
        }
    }
    // Frame budget spent; level-triggered epoll re-reports the rest.
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accept_backoff_paces_persistent_errors() {
        assert_eq!(accept_backoff(0), Duration::ZERO);
        let mut last = Duration::ZERO;
        for consecutive in 1..100 {
            let backoff = accept_backoff(consecutive);
            assert!(backoff >= last, "backoff must not shrink");
            assert!(backoff >= Duration::from_millis(10), "errors must yield the CPU");
            assert!(backoff <= Duration::from_millis(250), "cap keeps shutdown responsive");
            last = backoff;
        }
    }

    struct CountingSink {
        frames: Mutex<Vec<Frame>>,
        closed: AtomicBool,
    }

    impl Sink for CountingSink {
        fn on_frame(&self, conn: &Arc<Conn>, frame: Frame) -> bool {
            // Record before echoing: once the client sees the reply, the
            // frame must already be in the log.
            let payload = frame.payload.clone();
            let id = frame.id;
            self.frames.lock().push(frame);
            let _ = conn.send_frame(id, None, &payload);
            true
        }
        fn on_close(&self, _error: RpcError) {
            self.closed.store(true, Ordering::SeqCst);
        }
    }

    #[test]
    fn reactor_registers_echoes_and_tears_down() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let sink = Arc::new(CountingSink {
            frames: Mutex::new(Vec::new()),
            closed: AtomicBool::new(false),
        });
        let reactor = Reactor::spawn(
            "test-reactor",
            Some(ListenerConfig {
                listener,
                sink: Arc::clone(&sink) as Arc<dyn Sink>,
                max_conns: 16,
                dropped: Counter::default(),
                connections: Gauge::default(),
                events: Events::default(),
            }),
        )
        .unwrap();

        let mut client = TcpStream::connect(addr).unwrap();
        client.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut wire = Vec::new();
        crate::frame::write_frame(&mut wire, 9, b"ping").unwrap();
        client.write_all(&wire).unwrap();
        let reply = crate::frame::read_frame(&mut client).unwrap();
        assert_eq!(reply.id, 9);
        assert_eq!(reply.payload, b"ping");
        assert_eq!(sink.frames.lock().len(), 1);
        assert_eq!(reactor.conn_count(), 1);

        drop(reactor); // Shutdown closes the registered connection...
        assert!(sink.closed.load(Ordering::SeqCst), "sink must get its death notice");
        // ...and the peer observes EOF.
        let mut buf = [0u8; 8];
        assert_eq!(client.read(&mut buf).unwrap_or(0), 0);
    }
}
