//! TCP transport: a multiplexed, pipelined client and a worker-pool server.
//!
//! ## Server
//!
//! One reader thread per accepted connection pulls request frames off the
//! socket and hands them to a bounded per-connection worker pool
//! ([`WORKERS_PER_CONNECTION`] threads). Workers invoke the handler and
//! write response frames under a shared writer lock, so responses complete
//! — and are sent — in whatever order they finish, not the order they
//! arrived.
//!
//! ## Client
//!
//! [`TcpConn`] multiplexes many concurrent RPCs over one socket. Each call
//! stamps its request frame with a fresh `u64` id and registers a waiter;
//! writes go through a dedicated writer path (a short critical section that
//! only covers the socket write), while a per-connection reader thread
//! routes response frames back to their waiters by id. A call that times
//! out simply abandons its waiter — a late response is discarded by id with
//! no stream desync, so the connection stays usable. Transparent reconnect
//! (one retry per call) is preserved from the v1 transport.

use std::collections::HashMap;
use std::io::BufReader;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel;
use parking_lot::Mutex;
use tango_metrics::{trace, Counter, Gauge, Histogram, Registry, TraceContext};

use crate::frame::{write_frame, write_frame_traced, FrameAssembler};
use crate::{ClientConn, Result, RpcError, RpcHandler};

/// Size of the per-connection worker pool: how many pipelined requests one
/// connection can have in service concurrently on the server.
pub const WORKERS_PER_CONNECTION: usize = 4;

/// How often blocked reads wake up to poll shutdown/liveness flags.
const POLL_INTERVAL: Duration = Duration::from_millis(200);

/// A running TCP RPC server. Dropping the handle shuts the server down.
pub struct TcpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TcpServer {
    /// Binds to `addr` (use port 0 for an ephemeral port) and starts serving
    /// `handler`: one reader thread plus a bounded worker pool per
    /// connection.
    pub fn spawn(addr: &str, handler: Arc<dyn RpcHandler>) -> Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_thread = std::thread::Builder::new()
            .name(format!("rpc-accept-{local}"))
            .spawn(move || accept_loop(listener, handler, accept_shutdown))
            .map_err(|e| RpcError::Io(e.to_string()))?;
        Ok(Self { addr: local, shutdown, accept_thread: Some(accept_thread) })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections and joins the accept thread. Existing
    /// connection threads exit when their peers disconnect.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Poke the listener so `accept` returns.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Sleep applied after `consecutive` back-to-back `accept` failures, so a
/// persistent error (e.g. EMFILE) degrades to a paced retry instead of a
/// 100%-CPU busy-spin. Grows linearly, capped at 250ms to keep shutdown
/// responsive.
fn accept_backoff(consecutive: u32) -> Duration {
    Duration::from_millis(u64::from(consecutive).saturating_mul(10).min(250))
}

fn accept_loop(listener: TcpListener, handler: Arc<dyn RpcHandler>, shutdown: Arc<AtomicBool>) {
    let mut consecutive_errors: u32 = 0;
    loop {
        let (stream, peer) = match listener.accept() {
            Ok(pair) => {
                consecutive_errors = 0;
                pair
            }
            Err(_) => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                consecutive_errors += 1;
                std::thread::sleep(accept_backoff(consecutive_errors));
                continue;
            }
        };
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let handler = Arc::clone(&handler);
        let conn_shutdown = Arc::clone(&shutdown);
        let _ = std::thread::Builder::new()
            .name(format!("rpc-conn-{peer}"))
            .spawn(move || serve_connection(stream, handler, conn_shutdown));
    }
}

fn serve_connection(stream: TcpStream, handler: Arc<dyn RpcHandler>, shutdown: Arc<AtomicBool>) {
    let _ = stream.set_nodelay(true);
    // A read timeout lets the reader observe shutdown even on idle peers;
    // the FrameAssembler keeps partial progress across timeouts, so a slow
    // peer dribbling a large frame does not desync the stream.
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let writer = match stream.try_clone() {
        Ok(s) => Arc::new(Mutex::new(s)),
        Err(_) => return,
    };
    let (tx, rx) = channel::unbounded::<(u64, Option<TraceContext>, Vec<u8>)>();
    let mut workers = Vec::with_capacity(WORKERS_PER_CONNECTION);
    for i in 0..WORKERS_PER_CONNECTION {
        let rx = rx.clone();
        let handler = Arc::clone(&handler);
        let writer = Arc::clone(&writer);
        let worker = std::thread::Builder::new().name(format!("rpc-worker-{i}")).spawn(move || {
            while let Ok((id, ctx, request)) = rx.recv() {
                let response = {
                    // Install the propagated trace context so spans the
                    // handler opens become children of the caller's span.
                    let _trace_guard = trace::install(ctx);
                    handler.handle(&request)
                };
                let mut w = writer.lock();
                if write_frame(&mut *w, id, &response).is_err() {
                    // A failed (possibly partial) write desyncs the whole
                    // connection; take it down so peers fail fast.
                    let _ = w.shutdown(Shutdown::Both);
                    return;
                }
            }
        });
        if let Ok(worker) = worker {
            workers.push(worker);
        }
    }
    drop(rx);
    if workers.is_empty() {
        return;
    }
    let mut reader = BufReader::new(stream);
    let mut assembler = FrameAssembler::new();
    loop {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        match assembler.poll(&mut reader) {
            Ok(Some(frame)) => {
                if tx.send((frame.id, frame.trace, frame.payload)).is_err() {
                    break;
                }
            }
            // Idle peer, or a timeout mid-frame (progress retained).
            Ok(None) => continue,
            Err(_) => break,
        }
    }
    // Closing the channel lets workers drain queued requests and exit.
    drop(tx);
    for worker in workers {
        let _ = worker.join();
    }
}

/// Transport-level instrumentation shared by every [`TcpConn`] built from
/// the same registry: round-trip latency, payload bytes each way, reconnect
/// count, and in-flight request depth.
#[derive(Clone, Default)]
pub struct ConnMetrics {
    /// Wall-clock latency of successful `call`s, in nanoseconds.
    pub round_trip_ns: Histogram,
    /// Request payload bytes of successful calls.
    pub bytes_out: Counter,
    /// Response payload bytes of successful calls.
    pub bytes_in: Counter,
    /// Connections re-established after a drop (timeout or server restart).
    pub reconnects: Counter,
    /// RPCs currently in flight (sent, response not yet received) across
    /// all connections bound to the registry.
    pub in_flight: Gauge,
}

impl ConnMetrics {
    /// Binds the standard `rpc.*` instrument names in `registry`.
    pub fn from_registry(registry: &Registry) -> Self {
        Self {
            round_trip_ns: registry.histogram("rpc.round_trip_ns"),
            bytes_out: registry.counter("rpc.bytes_out"),
            bytes_in: registry.counter("rpc.bytes_in"),
            reconnects: registry.counter("rpc.reconnects"),
            in_flight: registry.gauge("rpc.in_flight"),
        }
    }

    /// All-no-op instrumentation (the default).
    pub fn disabled() -> Self {
        Self::default()
    }
}

type Waiter = channel::Sender<Result<Vec<u8>>>;

/// State shared between callers and a connection's reader thread.
#[derive(Default)]
struct Shared {
    pending: Mutex<HashMap<u64, Waiter>>,
    dead: AtomicBool,
}

impl Shared {
    /// Marks the connection dead and fails every outstanding waiter.
    fn fail(&self, error: RpcError) {
        self.dead.store(true, Ordering::SeqCst);
        let mut pending = self.pending.lock();
        for (_, waiter) in pending.drain() {
            let _ = waiter.send(Err(error.clone()));
        }
    }
}

/// One live socket: the write half plus the reader-thread rendezvous state.
struct Live {
    writer: Mutex<TcpStream>,
    shared: Arc<Shared>,
}

impl Drop for Live {
    fn drop(&mut self) {
        // Wake the reader thread so it exits promptly instead of idling
        // until its next poll tick.
        self.shared.dead.store(true, Ordering::SeqCst);
        let _ = self.writer.lock().shutdown(Shutdown::Both);
    }
}

fn reader_loop(stream: TcpStream, shared: Arc<Shared>) {
    let mut reader = BufReader::new(stream);
    let mut assembler = FrameAssembler::new();
    loop {
        if shared.dead.load(Ordering::SeqCst) {
            shared.fail(RpcError::Disconnected);
            return;
        }
        match assembler.poll(&mut reader) {
            Ok(Some(frame)) => {
                let waiter = shared.pending.lock().remove(&frame.id);
                if let Some(waiter) = waiter {
                    let _ = waiter.send(Ok(frame.payload));
                }
                // No waiter: the caller timed out and abandoned this id.
                // Discarding the late response by id is what keeps a
                // timeout from desyncing the stream.
            }
            Ok(None) => continue,
            Err(e) => {
                shared.fail(e);
                return;
            }
        }
    }
}

/// A blocking TCP client connection with pipelined multiplexing and
/// transparent reconnect.
///
/// Any number of threads may `call` concurrently over one `TcpConn`: each
/// request is stamped with a fresh id, written under a short writer lock,
/// and matched to its response by the connection's reader thread, so many
/// RPCs are in flight on the socket at once. (The v1 transport allowed one
/// in-flight request per connection and callers opened several connections
/// for pipelining; that is no longer necessary.)
pub struct TcpConn {
    addr: String,
    timeout: Duration,
    live: Mutex<Option<Arc<Live>>>,
    next_id: AtomicU64,
    metrics: ConnMetrics,
}

impl TcpConn {
    /// Creates a lazily-connected client for `addr`.
    pub fn new(addr: impl Into<String>) -> Self {
        Self {
            addr: addr.into(),
            timeout: Duration::from_secs(5),
            live: Mutex::new(None),
            next_id: AtomicU64::new(0),
            metrics: ConnMetrics::disabled(),
        }
    }

    /// Sets the per-call timeout (default 5s).
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Attaches transport instrumentation (off by default).
    pub fn with_metrics(mut self, metrics: ConnMetrics) -> Self {
        self.metrics = metrics;
        self
    }

    fn connect(&self) -> Result<Live> {
        let stream = TcpStream::connect(&self.addr)?;
        stream.set_nodelay(true)?;
        stream.set_write_timeout(Some(self.timeout))?;
        let reader_stream = stream.try_clone()?;
        // The read timeout is a liveness poll for the reader thread; per-call
        // deadlines are enforced by the waiters, not the socket.
        reader_stream.set_read_timeout(Some(POLL_INTERVAL))?;
        let shared = Arc::new(Shared::default());
        let reader_shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name(format!("rpc-reader-{}", self.addr))
            .spawn(move || reader_loop(reader_stream, reader_shared))
            .map_err(|e| RpcError::Io(e.to_string()))?;
        Ok(Live { writer: Mutex::new(stream), shared })
    }

    /// Returns the live connection, dialing a fresh one if none exists or
    /// the cached one has died. The dead handle is dropped *before* the
    /// connect attempt, so a failed reconnect can never leave a known-broken
    /// stream cached for the next caller to waste a round trip on.
    fn live(&self) -> Result<Arc<Live>> {
        let mut guard = self.live.lock();
        if let Some(live) = guard.as_ref() {
            if !live.shared.dead.load(Ordering::SeqCst) {
                return Ok(Arc::clone(live));
            }
        }
        let had_stale = guard.take().is_some();
        let live = Arc::new(self.connect()?);
        if had_stale {
            self.metrics.reconnects.inc();
        }
        *guard = Some(Arc::clone(&live));
        Ok(live)
    }

    fn call_once(&self, request: &[u8]) -> Result<Vec<u8>> {
        let live = self.live()?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        // If the calling thread is inside a sampled trace, stamp its
        // context on the request frame (v3); untraced calls stay v2.
        let ctx = trace::current();
        let (tx, rx) = channel::unbounded();
        live.shared.pending.lock().insert(id, tx);
        self.metrics.in_flight.add(1);
        let result = (|| {
            // The reader may have died between the liveness check and the
            // waiter registration; its drain would miss a later insert.
            if live.shared.dead.load(Ordering::SeqCst) {
                return Err(RpcError::Disconnected);
            }
            {
                let mut writer = live.writer.lock();
                if let Err(e) = write_frame_traced(&mut *writer, id, ctx, request) {
                    // A partial write desyncs the stream for everyone.
                    let _ = writer.shutdown(Shutdown::Both);
                    drop(writer);
                    live.shared.fail(e.clone());
                    return Err(e);
                }
            }
            match rx.recv_timeout(self.timeout) {
                Ok(outcome) => outcome,
                // Abandon the waiter; the reader discards the late response.
                Err(_) => Err(RpcError::Timeout),
            }
        })();
        live.shared.pending.lock().remove(&id);
        self.metrics.in_flight.sub(1);
        result
    }

    fn call_inner(&self, request: &[u8]) -> Result<Vec<u8>> {
        match self.call_once(request) {
            // The connection stays usable after a timeout (responses are
            // matched by id), so there is nothing to retry against.
            Err(RpcError::Timeout) => Err(RpcError::Timeout),
            // Reconnect and retry once: the server may have restarted.
            Err(_) => self.call_once(request),
            ok => ok,
        }
    }
}

impl ClientConn for TcpConn {
    fn call(&self, request: &[u8]) -> Result<Vec<u8>> {
        let timer = self.metrics.round_trip_ns.start();
        match self.call_inner(request) {
            Ok(resp) => {
                self.metrics.bytes_out.add(request.len() as u64);
                self.metrics.bytes_in.add(resp.len() as u64);
                timer.stop();
                Ok(resp)
            }
            Err(e) => {
                // Failed calls would pollute the round-trip histogram.
                timer.discard();
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_response_over_sockets() {
        let mut server = TcpServer::spawn(
            "127.0.0.1:0",
            Arc::new(|req: &[u8]| {
                let mut out = req.to_vec();
                out.reverse();
                out
            }),
        )
        .unwrap();
        let conn = TcpConn::new(server.local_addr().to_string());
        assert_eq!(conn.call(b"abc").unwrap(), b"cba");
        assert_eq!(conn.call(b"tango").unwrap(), b"ognat");
        server.shutdown();
    }

    #[test]
    fn concurrent_clients() {
        let server = TcpServer::spawn("127.0.0.1:0", Arc::new(|req: &[u8]| req.to_vec())).unwrap();
        let addr = server.local_addr().to_string();
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    let conn = TcpConn::new(addr);
                    for j in 0..50u32 {
                        let msg = format!("client-{i}-msg-{j}");
                        assert_eq!(conn.call(msg.as_bytes()).unwrap(), msg.as_bytes());
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
    }

    #[test]
    fn reconnects_after_server_restart() {
        let mut server =
            TcpServer::spawn("127.0.0.1:0", Arc::new(|req: &[u8]| req.to_vec())).unwrap();
        let addr = server.local_addr().to_string();
        let registry = Registry::new();
        let conn = TcpConn::new(addr.clone()).with_metrics(ConnMetrics::from_registry(&registry));
        assert_eq!(conn.call(b"one").unwrap(), b"one");
        server.shutdown();
        drop(server);
        // Restart on the same port.
        let _server2 = TcpServer::spawn(&addr, Arc::new(|req: &[u8]| req.to_vec())).unwrap();
        // The dead server's connection thread may keep serving the old
        // socket for up to its 200ms shutdown-poll interval; keep calling
        // until the client is forced onto a fresh connection.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while registry.snapshot().counter("rpc.reconnects") == 0 {
            assert!(std::time::Instant::now() < deadline, "client never reconnected");
            assert_eq!(conn.call(b"two").unwrap(), b"two");
            std::thread::sleep(Duration::from_millis(20));
        }

        let snap = registry.snapshot();
        assert!(snap.counter("rpc.bytes_out") >= 6);
        assert!(snap.counter("rpc.bytes_in") >= 6);
        assert!(snap.histogram("rpc.round_trip_ns").unwrap().count() >= 2);
        assert_eq!(snap.gauge("rpc.in_flight"), 0);
    }

    #[test]
    fn trace_context_crosses_the_socket() {
        let seen: Arc<Mutex<Vec<Option<TraceContext>>>> = Arc::new(Mutex::new(Vec::new()));
        let seen_handler = Arc::clone(&seen);
        let server = TcpServer::spawn(
            "127.0.0.1:0",
            Arc::new(move |req: &[u8]| {
                seen_handler.lock().push(trace::current());
                req.to_vec()
            }),
        )
        .unwrap();
        let conn = TcpConn::new(server.local_addr().to_string());

        // Untraced call: the handler must see no context.
        conn.call(b"plain").unwrap();
        // Traced call: the handler sees exactly the caller's context.
        let ctx = TraceContext { trace_id: 0xABCD, span_id: 7 };
        {
            let _g = trace::install(Some(ctx));
            conn.call(b"traced").unwrap();
        }
        conn.call(b"plain-again").unwrap();

        let seen = seen.lock();
        assert_eq!(seen.as_slice(), &[None, Some(ctx), None]);
    }

    #[test]
    fn call_to_dead_server_errors() {
        let conn = TcpConn::new("127.0.0.1:1"); // Nothing listens on port 1.
        assert!(conn.call(b"x").is_err());
    }

    #[test]
    fn accept_backoff_paces_persistent_errors() {
        assert_eq!(accept_backoff(0), Duration::ZERO);
        let mut last = Duration::ZERO;
        for consecutive in 1..100 {
            let backoff = accept_backoff(consecutive);
            assert!(backoff >= last, "backoff must not shrink");
            assert!(backoff >= Duration::from_millis(10), "errors must yield the CPU");
            assert!(backoff <= Duration::from_millis(250), "cap keeps shutdown responsive");
            last = backoff;
        }
    }
}
