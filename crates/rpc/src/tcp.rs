//! TCP transport: a thread-per-connection server and a reconnecting client.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;
use tango_metrics::{Counter, Histogram, Registry};

use crate::frame::{read_frame, write_frame};
use crate::{ClientConn, Result, RpcError, RpcHandler};

/// A running TCP RPC server. Dropping the handle shuts the server down.
pub struct TcpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TcpServer {
    /// Binds to `addr` (use port 0 for an ephemeral port) and starts serving
    /// `handler` with one thread per connection.
    pub fn spawn(addr: &str, handler: Arc<dyn RpcHandler>) -> Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_thread = std::thread::Builder::new()
            .name(format!("rpc-accept-{local}"))
            .spawn(move || accept_loop(listener, handler, accept_shutdown))
            .map_err(|e| RpcError::Io(e.to_string()))?;
        Ok(Self { addr: local, shutdown, accept_thread: Some(accept_thread) })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections and joins the accept thread. Existing
    /// connection threads exit when their peers disconnect.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Poke the listener so `accept` returns.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, handler: Arc<dyn RpcHandler>, shutdown: Arc<AtomicBool>) {
    loop {
        let (stream, peer) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let handler = Arc::clone(&handler);
        let conn_shutdown = Arc::clone(&shutdown);
        let _ = std::thread::Builder::new()
            .name(format!("rpc-conn-{peer}"))
            .spawn(move || serve_connection(stream, handler, conn_shutdown));
    }
}

fn serve_connection(stream: TcpStream, handler: Arc<dyn RpcHandler>, shutdown: Arc<AtomicBool>) {
    let _ = stream.set_nodelay(true);
    // A read timeout lets the thread observe shutdown even on idle peers.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut writer = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        match read_frame(&mut reader) {
            Ok(request) => {
                let response = handler.handle(&request);
                if write_frame(&mut writer, &response).is_err() {
                    return;
                }
            }
            Err(RpcError::Timeout) => continue,
            Err(_) => return,
        }
    }
}

/// Transport-level instrumentation shared by every [`TcpConn`] built from
/// the same registry: round-trip latency, payload bytes each way, and
/// reconnect count.
#[derive(Clone, Default)]
pub struct ConnMetrics {
    /// Wall-clock latency of successful `call`s, in nanoseconds.
    pub round_trip_ns: Histogram,
    /// Request payload bytes of successful calls.
    pub bytes_out: Counter,
    /// Response payload bytes of successful calls.
    pub bytes_in: Counter,
    /// Connections re-established after a drop (timeout or server restart).
    pub reconnects: Counter,
}

impl ConnMetrics {
    /// Binds the standard `rpc.*` instrument names in `registry`.
    pub fn from_registry(registry: &Registry) -> Self {
        Self {
            round_trip_ns: registry.histogram("rpc.round_trip_ns"),
            bytes_out: registry.counter("rpc.bytes_out"),
            bytes_in: registry.counter("rpc.bytes_in"),
            reconnects: registry.counter("rpc.reconnects"),
        }
    }

    /// All-no-op instrumentation (the default).
    pub fn disabled() -> Self {
        Self::default()
    }
}

/// A blocking TCP client connection with transparent reconnect.
///
/// One RPC may be in flight at a time per connection; callers that want
/// pipelining (e.g. a CORFU client with a deep append window) open several
/// `TcpConn`s to the same server.
pub struct TcpConn {
    addr: String,
    timeout: Duration,
    stream: Mutex<Option<TcpStream>>,
    metrics: ConnMetrics,
}

impl TcpConn {
    /// Creates a lazily-connected client for `addr`.
    pub fn new(addr: impl Into<String>) -> Self {
        Self {
            addr: addr.into(),
            timeout: Duration::from_secs(5),
            stream: Mutex::new(None),
            metrics: ConnMetrics::disabled(),
        }
    }

    /// Sets the per-call timeout (default 5s).
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Attaches transport instrumentation (off by default).
    pub fn with_metrics(mut self, metrics: ConnMetrics) -> Self {
        self.metrics = metrics;
        self
    }

    fn connect(&self) -> Result<TcpStream> {
        let stream = TcpStream::connect(&self.addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        Ok(stream)
    }

    fn try_call(&self, stream: &mut TcpStream, request: &[u8]) -> Result<Vec<u8>> {
        write_frame(stream, request)?;
        read_frame(stream)
    }
}

impl TcpConn {
    fn call_inner(&self, request: &[u8]) -> Result<Vec<u8>> {
        let mut guard = self.stream.lock();
        if guard.is_none() {
            *guard = Some(self.connect()?);
        }
        let stream = guard.as_mut().expect("just connected");
        match self.try_call(stream, request) {
            Ok(resp) => Ok(resp),
            Err(RpcError::Timeout) => {
                // The response may still arrive later and would desync the
                // stream; drop the connection.
                *guard = None;
                Err(RpcError::Timeout)
            }
            Err(_) => {
                // Reconnect once: the server may have restarted.
                self.metrics.reconnects.inc();
                let mut fresh = self.connect()?;
                let resp = self.try_call(&mut fresh, request)?;
                *guard = Some(fresh);
                Ok(resp)
            }
        }
    }
}

impl ClientConn for TcpConn {
    fn call(&self, request: &[u8]) -> Result<Vec<u8>> {
        let timer = self.metrics.round_trip_ns.start();
        match self.call_inner(request) {
            Ok(resp) => {
                self.metrics.bytes_out.add(request.len() as u64);
                self.metrics.bytes_in.add(resp.len() as u64);
                timer.stop();
                Ok(resp)
            }
            Err(e) => {
                // Failed calls would pollute the round-trip histogram.
                timer.discard();
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_response_over_sockets() {
        let mut server = TcpServer::spawn(
            "127.0.0.1:0",
            Arc::new(|req: &[u8]| {
                let mut out = req.to_vec();
                out.reverse();
                out
            }),
        )
        .unwrap();
        let conn = TcpConn::new(server.local_addr().to_string());
        assert_eq!(conn.call(b"abc").unwrap(), b"cba");
        assert_eq!(conn.call(b"tango").unwrap(), b"ognat");
        server.shutdown();
    }

    #[test]
    fn concurrent_clients() {
        let server = TcpServer::spawn("127.0.0.1:0", Arc::new(|req: &[u8]| req.to_vec())).unwrap();
        let addr = server.local_addr().to_string();
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    let conn = TcpConn::new(addr);
                    for j in 0..50u32 {
                        let msg = format!("client-{i}-msg-{j}");
                        assert_eq!(conn.call(msg.as_bytes()).unwrap(), msg.as_bytes());
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
    }

    #[test]
    fn reconnects_after_server_restart() {
        let mut server =
            TcpServer::spawn("127.0.0.1:0", Arc::new(|req: &[u8]| req.to_vec())).unwrap();
        let addr = server.local_addr().to_string();
        let registry = Registry::new();
        let conn = TcpConn::new(addr.clone()).with_metrics(ConnMetrics::from_registry(&registry));
        assert_eq!(conn.call(b"one").unwrap(), b"one");
        server.shutdown();
        drop(server);
        // Restart on the same port.
        let _server2 = TcpServer::spawn(&addr, Arc::new(|req: &[u8]| req.to_vec())).unwrap();
        // The dead server's connection thread may keep serving the old
        // socket for up to its 200ms shutdown-poll interval; keep calling
        // until the client is forced onto a fresh connection.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while registry.snapshot().counter("rpc.reconnects") == 0 {
            assert!(std::time::Instant::now() < deadline, "client never reconnected");
            assert_eq!(conn.call(b"two").unwrap(), b"two");
            std::thread::sleep(Duration::from_millis(20));
        }

        let snap = registry.snapshot();
        assert!(snap.counter("rpc.bytes_out") >= 6);
        assert!(snap.counter("rpc.bytes_in") >= 6);
        assert!(snap.histogram("rpc.round_trip_ns").unwrap().count() >= 2);
    }

    #[test]
    fn call_to_dead_server_errors() {
        let conn = TcpConn::new("127.0.0.1:1"); // Nothing listens on port 1.
        assert!(conn.call(b"x").is_err());
    }
}
