//! TCP transport: a multiplexed, pipelined client and an epoll-reactor
//! server — thousands of connections on a fixed thread budget.
//!
//! ## Server
//!
//! A [`TcpServer`] runs exactly `1 + SERVER_WORKERS` threads no matter how
//! many connections it is carrying: one [`reactor`](crate::reactor) event
//! loop owns the listener and every accepted (nonblocking) socket, drives a
//! per-connection `FrameAssembler`, and feeds decoded request frames to a
//! fixed pool of [`SERVER_WORKERS`] handler threads. Workers invoke the
//! handler and write the response frame straight onto the nonblocking
//! socket; if the kernel send queue is full the bytes spill into the
//! connection's outbound buffer, drained by the reactor on `EPOLLOUT`.
//! Responses therefore complete — and are sent — in whatever order they
//! finish, not the order they arrived, exactly as before.
//!
//! ## Client
//!
//! [`TcpConn`] multiplexes many concurrent RPCs over one socket. Each call
//! stamps its request frame with a fresh `u64` id and registers a waiter;
//! the write happens directly on the caller's thread, while a single
//! process-wide client reactor reads every connection's responses and
//! routes them back to waiters by id — no reader thread per connection. A
//! call that times out simply abandons its waiter — a late response is
//! discarded by id with no stream desync, so the connection stays usable.
//! Dialing uses `connect_timeout` bounded by the per-call timeout and
//! happens *outside* the connection lock, so one unreachable server cannot
//! stall unrelated callers for the OS dial timeout. Transparent reconnect
//! (one retry per call) is preserved from the v1 transport.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel;
use parking_lot::Mutex;
use tango_metrics::{trace, Counter, Events, Gauge, Histogram, Registry, TraceContext};

use crate::frame::Frame;
use crate::reactor::{self, ListenerConfig, Reactor, Sink};
use crate::{ClientConn, Result, RpcError, RpcHandler};

/// Size of a server's worker pool: how many requests (across *all* of its
/// connections) can be in the handler concurrently. Together with the
/// reactor thread this is the server's entire thread budget.
pub const SERVER_WORKERS: usize = 4;

/// Default cap on concurrently registered server connections; accepts
/// beyond it are closed and counted in `rpc.accepts_dropped`.
pub const DEFAULT_MAX_CONNS: usize = 65_536;

/// Server-side transport instrumentation.
#[derive(Clone, Default)]
pub struct ServerMetrics {
    /// Accepted connections dropped before service: over the connection
    /// cap, or reactor registration failure.
    pub accepts_dropped: Counter,
    /// Connections currently registered with the server's reactor.
    pub connections: Gauge,
    /// Event journal; accept-time drops land as `ConnDropped` records.
    pub events: Events,
}

impl ServerMetrics {
    /// Binds the standard `rpc.*` server instrument names in `registry`.
    pub fn from_registry(registry: &Registry) -> Self {
        Self {
            accepts_dropped: registry.counter("rpc.accepts_dropped"),
            connections: registry.gauge("rpc.server_conns"),
            events: registry.events(),
        }
    }

    /// All-no-op instrumentation (the default).
    pub fn disabled() -> Self {
        Self::default()
    }
}

/// Spawn-time knobs for [`TcpServer`].
pub struct ServerOptions {
    /// Transport instrumentation (off by default).
    pub metrics: ServerMetrics,
    /// Connection cap enforced at accept ([`DEFAULT_MAX_CONNS`]).
    pub max_conns: usize,
}

impl Default for ServerOptions {
    fn default() -> Self {
        Self { metrics: ServerMetrics::disabled(), max_conns: DEFAULT_MAX_CONNS }
    }
}

/// A running TCP RPC server. Dropping the handle shuts the server down.
pub struct TcpServer {
    addr: SocketAddr,
    reactor: Option<Reactor>,
    workers: Vec<JoinHandle<()>>,
}

/// One decoded request on its way to the worker pool.
struct Job {
    conn: Arc<reactor::Conn>,
    id: u64,
    trace: Option<TraceContext>,
    request: Vec<u8>,
}

/// Reactor → worker-pool handoff, shared by every accepted connection.
struct ServerSink {
    jobs: channel::Sender<Job>,
}

impl Sink for ServerSink {
    fn on_frame(&self, conn: &Arc<reactor::Conn>, frame: Frame) -> bool {
        self.jobs
            .send(Job {
                conn: Arc::clone(conn),
                id: frame.id,
                trace: frame.trace,
                request: frame.payload,
            })
            .is_ok()
    }

    fn on_close(&self, _error: RpcError) {}
}

fn worker_loop(jobs: channel::Receiver<Job>, handler: Arc<dyn RpcHandler>) {
    while let Ok(job) = jobs.recv() {
        let response = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // Install the propagated trace context so spans the handler
            // opens become children of the caller's span.
            let _trace_guard = trace::install(job.trace);
            handler.handle(&job.request)
        }));
        // A panicking handler must not shrink the fixed pool; the caller
        // times out on the dropped request. A failed send already tore
        // the connection down so peers fail fast instead of hanging on a
        // desynced stream.
        if let Ok(response) = response {
            let _ = job.conn.send_frame(job.id, None, &response);
        }
    }
}

impl TcpServer {
    /// Binds to `addr` (use port 0 for an ephemeral port) and starts
    /// serving `handler` on the default [`ServerOptions`].
    pub fn spawn(addr: &str, handler: Arc<dyn RpcHandler>) -> Result<Self> {
        Self::spawn_with(addr, handler, ServerOptions::default())
    }

    /// Binds to `addr` and starts serving `handler`: one reactor thread
    /// plus a fixed [`SERVER_WORKERS`] pool, regardless of connection
    /// count.
    pub fn spawn_with(
        addr: &str,
        handler: Arc<dyn RpcHandler>,
        options: ServerOptions,
    ) -> Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let (jobs_tx, jobs_rx) = channel::unbounded::<Job>();
        let mut workers = Vec::with_capacity(SERVER_WORKERS);
        for i in 0..SERVER_WORKERS {
            let jobs = jobs_rx.clone();
            let handler = Arc::clone(&handler);
            let worker = std::thread::Builder::new()
                .name(format!("rpc-worker-{local}-{i}"))
                .spawn(move || worker_loop(jobs, handler))
                .map_err(|e| RpcError::Io(e.to_string()))?;
            workers.push(worker);
        }
        drop(jobs_rx);
        let reactor = Reactor::spawn(
            &format!("rpc-reactor-{local}"),
            Some(ListenerConfig {
                listener,
                sink: Arc::new(ServerSink { jobs: jobs_tx }),
                max_conns: options.max_conns,
                dropped: options.metrics.accepts_dropped,
                connections: options.metrics.connections,
                events: options.metrics.events,
            }),
        )?;
        Ok(Self { addr: local, reactor: Some(reactor), workers })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the server: the reactor waker interrupts the event loop (no
    /// self-connect — that was a no-op for wildcard binds), every live
    /// connection is closed, queued requests drain, and all threads join.
    pub fn shutdown(&mut self) {
        // Dropping the reactor wakes the loop, closes all connections
        // (dropping the last `ServerSink` senders with them), and joins
        // the event thread.
        self.reactor.take();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Transport-level instrumentation shared by every [`TcpConn`] built from
/// the same registry: round-trip latency, payload bytes each way, reconnect
/// count, and in-flight request depth.
#[derive(Clone, Default)]
pub struct ConnMetrics {
    /// Wall-clock latency of successful `call`s, in nanoseconds.
    pub round_trip_ns: Histogram,
    /// Request payload bytes of successful calls.
    pub bytes_out: Counter,
    /// Response payload bytes of successful calls.
    pub bytes_in: Counter,
    /// Connections re-established after a drop (timeout or server restart).
    pub reconnects: Counter,
    /// RPCs currently in flight (sent, response not yet received) across
    /// all connections bound to the registry.
    pub in_flight: Gauge,
}

impl ConnMetrics {
    /// Binds the standard `rpc.*` instrument names in `registry`.
    pub fn from_registry(registry: &Registry) -> Self {
        Self {
            round_trip_ns: registry.histogram("rpc.round_trip_ns"),
            bytes_out: registry.counter("rpc.bytes_out"),
            bytes_in: registry.counter("rpc.bytes_in"),
            reconnects: registry.counter("rpc.reconnects"),
            in_flight: registry.gauge("rpc.in_flight"),
        }
    }

    /// All-no-op instrumentation (the default).
    pub fn disabled() -> Self {
        Self::default()
    }
}

type Waiter = channel::Sender<Result<Vec<u8>>>;

/// State shared between callers and the client reactor's response routing.
#[derive(Default)]
struct Shared {
    pending: Mutex<HashMap<u64, Waiter>>,
    dead: AtomicBool,
}

impl Shared {
    /// Marks the connection dead and fails every outstanding waiter.
    fn fail(&self, error: RpcError) {
        self.dead.store(true, Ordering::SeqCst);
        let mut pending = self.pending.lock();
        for (_, waiter) in pending.drain() {
            let _ = waiter.send(Err(error.clone()));
        }
    }
}

/// Client-side sink: routes response frames to their waiters by id on the
/// client reactor thread.
struct ClientSink {
    shared: Arc<Shared>,
}

impl Sink for ClientSink {
    fn on_frame(&self, _conn: &Arc<reactor::Conn>, frame: Frame) -> bool {
        let waiter = self.shared.pending.lock().remove(&frame.id);
        if let Some(waiter) = waiter {
            let _ = waiter.send(Ok(frame.payload));
        }
        // No waiter: the caller timed out and abandoned this id.
        // Discarding the late response by id is what keeps a timeout
        // from desyncing the stream.
        true
    }

    fn on_close(&self, error: RpcError) {
        self.shared.fail(error);
    }
}

/// One live socket: the reactor-registered connection plus the waiter
/// rendezvous state.
struct Live {
    conn: Arc<reactor::Conn>,
    shared: Arc<Shared>,
}

impl Drop for Live {
    fn drop(&mut self) {
        // Shutting the socket down makes the reactor observe EOF,
        // deregister the connection, and fail any remaining waiters.
        self.shared.dead.store(true, Ordering::SeqCst);
        self.conn.close();
    }
}

/// The process-wide reactor that reads every [`TcpConn`]'s responses: one
/// thread regardless of how many connections the process dials.
fn client_reactor() -> Result<&'static Reactor> {
    static REACTOR: OnceLock<Reactor> = OnceLock::new();
    if let Some(reactor) = REACTOR.get() {
        return Ok(reactor);
    }
    let fresh = Reactor::spawn("rpc-client-reactor", None)?;
    // A racing initializer may win; our spare shuts down cleanly on drop.
    Ok(REACTOR.get_or_init(|| fresh))
}

/// Resolves `addr` and dials with a connect timeout, so an unreachable
/// peer costs at most the per-call deadline instead of the OS dial
/// timeout (which can run to minutes).
fn dial(addr: &str, timeout: Duration) -> Result<TcpStream> {
    let mut last: Option<std::io::Error> = None;
    for sock_addr in addr.to_socket_addrs()? {
        match TcpStream::connect_timeout(&sock_addr, timeout) {
            Ok(stream) => return Ok(stream),
            Err(e) => last = Some(e),
        }
    }
    Err(last
        .map(RpcError::from)
        .unwrap_or_else(|| RpcError::Io(format!("{addr}: no addresses to dial"))))
}

/// A blocking TCP client connection with pipelined multiplexing and
/// transparent reconnect.
///
/// Any number of threads may `call` concurrently over one `TcpConn`: each
/// request is stamped with a fresh id, written directly on the caller's
/// thread, and matched to its response by the shared client reactor, so
/// many RPCs are in flight on the socket at once. (The v1 transport
/// allowed one in-flight request per connection and callers opened several
/// connections for pipelining; that is no longer necessary.)
pub struct TcpConn {
    addr: String,
    timeout: Duration,
    live: Mutex<Option<Arc<Live>>>,
    next_id: AtomicU64,
    metrics: ConnMetrics,
}

impl TcpConn {
    /// Creates a lazily-connected client for `addr`.
    pub fn new(addr: impl Into<String>) -> Self {
        Self {
            addr: addr.into(),
            timeout: Duration::from_secs(5),
            live: Mutex::new(None),
            next_id: AtomicU64::new(0),
            metrics: ConnMetrics::disabled(),
        }
    }

    /// Sets the per-call timeout (default 5s). Also bounds the dial.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Attaches transport instrumentation (off by default).
    pub fn with_metrics(mut self, metrics: ConnMetrics) -> Self {
        self.metrics = metrics;
        self
    }

    fn connect(&self) -> Result<Live> {
        let stream = dial(&self.addr, self.timeout)?;
        let shared = Arc::new(Shared::default());
        let sink = Arc::new(ClientSink { shared: Arc::clone(&shared) });
        let conn = client_reactor()?.register_conn(stream, sink)?;
        Ok(Live { conn, shared })
    }

    /// Returns the live connection, dialing a fresh one if none exists or
    /// the cached one has died. The dial happens *outside* the connection
    /// lock (a stalled dial must not block concurrent callers), and a dead
    /// handle is discarded before installing the replacement, so a failed
    /// reconnect can never leave a known-broken stream cached for the next
    /// caller to waste a round trip on.
    fn live(&self) -> Result<Arc<Live>> {
        {
            let guard = self.live.lock();
            if let Some(live) = guard.as_ref() {
                if !live.shared.dead.load(Ordering::SeqCst) {
                    return Ok(Arc::clone(live));
                }
            }
        }
        let fresh = self.connect();
        let mut guard = self.live.lock();
        // A concurrent caller may have installed a live connection while
        // we dialed; use theirs (our spare, if any, closes on drop).
        if let Some(live) = guard.as_ref() {
            if !live.shared.dead.load(Ordering::SeqCst) {
                return Ok(Arc::clone(live));
            }
        }
        let fresh = Arc::new(fresh?);
        if guard.take().is_some() {
            self.metrics.reconnects.inc();
        }
        *guard = Some(Arc::clone(&fresh));
        Ok(fresh)
    }

    fn call_once(&self, request: &[u8]) -> Result<Vec<u8>> {
        let live = self.live()?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        // If the calling thread is inside a sampled trace, stamp its
        // context on the request frame (v3); untraced calls stay v2.
        let ctx = trace::current();
        let (tx, rx) = channel::unbounded();
        live.shared.pending.lock().insert(id, tx);
        self.metrics.in_flight.add(1);
        let result = (|| {
            // The connection may have died between the liveness check and
            // the waiter registration; its drain would miss a later insert.
            if live.shared.dead.load(Ordering::SeqCst) {
                return Err(RpcError::Disconnected);
            }
            if let Err(e) = live.conn.send_frame(id, ctx, request) {
                // A partial write desyncs the stream for everyone;
                // send_frame already tore the connection down.
                live.shared.fail(e.clone());
                return Err(e);
            }
            match rx.recv_timeout(self.timeout) {
                Ok(outcome) => outcome,
                // Abandon the waiter; the reactor discards the late
                // response by id.
                Err(_) => Err(RpcError::Timeout),
            }
        })();
        live.shared.pending.lock().remove(&id);
        self.metrics.in_flight.sub(1);
        result
    }

    fn call_inner(&self, request: &[u8]) -> Result<Vec<u8>> {
        match self.call_once(request) {
            // The connection stays usable after a timeout (responses are
            // matched by id), so there is nothing to retry against.
            Err(RpcError::Timeout) => Err(RpcError::Timeout),
            // Reconnect and retry once: the server may have restarted.
            Err(_) => self.call_once(request),
            ok => ok,
        }
    }
}

impl ClientConn for TcpConn {
    fn call(&self, request: &[u8]) -> Result<Vec<u8>> {
        let timer = self.metrics.round_trip_ns.start();
        match self.call_inner(request) {
            Ok(resp) => {
                self.metrics.bytes_out.add(request.len() as u64);
                self.metrics.bytes_in.add(resp.len() as u64);
                timer.stop();
                Ok(resp)
            }
            Err(e) => {
                // Failed calls would pollute the round-trip histogram.
                timer.discard();
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_response_over_sockets() {
        let mut server = TcpServer::spawn(
            "127.0.0.1:0",
            Arc::new(|req: &[u8]| {
                let mut out = req.to_vec();
                out.reverse();
                out
            }),
        )
        .unwrap();
        let conn = TcpConn::new(server.local_addr().to_string());
        assert_eq!(conn.call(b"abc").unwrap(), b"cba");
        assert_eq!(conn.call(b"tango").unwrap(), b"ognat");
        server.shutdown();
    }

    #[test]
    fn concurrent_clients() {
        let server = TcpServer::spawn("127.0.0.1:0", Arc::new(|req: &[u8]| req.to_vec())).unwrap();
        let addr = server.local_addr().to_string();
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    let conn = TcpConn::new(addr);
                    for j in 0..50u32 {
                        let msg = format!("client-{i}-msg-{j}");
                        assert_eq!(conn.call(msg.as_bytes()).unwrap(), msg.as_bytes());
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
    }

    #[test]
    fn reconnects_after_server_restart() {
        let mut server =
            TcpServer::spawn("127.0.0.1:0", Arc::new(|req: &[u8]| req.to_vec())).unwrap();
        let addr = server.local_addr().to_string();
        let registry = Registry::new();
        let conn = TcpConn::new(addr.clone()).with_metrics(ConnMetrics::from_registry(&registry));
        assert_eq!(conn.call(b"one").unwrap(), b"one");
        server.shutdown();
        drop(server);
        // Restart on the same port. The reactor closed the old connection
        // during shutdown, so the client is forced onto a fresh dial.
        let _server2 = TcpServer::spawn(&addr, Arc::new(|req: &[u8]| req.to_vec())).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while registry.snapshot().counter("rpc.reconnects") == 0 {
            assert!(std::time::Instant::now() < deadline, "client never reconnected");
            assert_eq!(conn.call(b"two").unwrap(), b"two");
            std::thread::sleep(Duration::from_millis(20));
        }

        let snap = registry.snapshot();
        assert!(snap.counter("rpc.bytes_out") >= 6);
        assert!(snap.counter("rpc.bytes_in") >= 6);
        assert!(snap.histogram("rpc.round_trip_ns").unwrap().count() >= 2);
        assert_eq!(snap.gauge("rpc.in_flight"), 0);
    }

    #[test]
    fn trace_context_crosses_the_socket() {
        let seen: Arc<Mutex<Vec<Option<TraceContext>>>> = Arc::new(Mutex::new(Vec::new()));
        let seen_handler = Arc::clone(&seen);
        let server = TcpServer::spawn(
            "127.0.0.1:0",
            Arc::new(move |req: &[u8]| {
                seen_handler.lock().push(trace::current());
                req.to_vec()
            }),
        )
        .unwrap();
        let conn = TcpConn::new(server.local_addr().to_string());

        // Untraced call: the handler must see no context.
        conn.call(b"plain").unwrap();
        // Traced call: the handler sees exactly the caller's context.
        let ctx = TraceContext { trace_id: 0xABCD, span_id: 7 };
        {
            let _g = trace::install(Some(ctx));
            conn.call(b"traced").unwrap();
        }
        conn.call(b"plain-again").unwrap();

        let seen = seen.lock();
        assert_eq!(seen.as_slice(), &[None, Some(ctx), None]);
    }

    #[test]
    fn call_to_dead_server_errors() {
        let conn = TcpConn::new("127.0.0.1:1"); // Nothing listens on port 1.
        assert!(conn.call(b"x").is_err());
    }

    #[test]
    fn server_thread_budget_is_fixed() {
        // The whole point of the reactor: more connections must not mean
        // more threads. 32 idle connections, zero additional threads.
        let server = TcpServer::spawn("127.0.0.1:0", Arc::new(|req: &[u8]| req.to_vec())).unwrap();
        let addr = server.local_addr();
        let first = TcpStream::connect(addr).unwrap();
        std::thread::sleep(Duration::from_millis(100));
        let before = process_threads();
        let idle: Vec<TcpStream> = (0..32).map(|_| TcpStream::connect(addr).unwrap()).collect();
        std::thread::sleep(Duration::from_millis(200));
        assert_eq!(process_threads(), before, "connections must not spawn threads");
        drop(idle);
        drop(first);
    }

    fn process_threads() -> usize {
        let status = std::fs::read_to_string("/proc/self/status").expect("proc status");
        status
            .lines()
            .find_map(|l| l.strip_prefix("Threads:"))
            .and_then(|v| v.trim().parse().ok())
            .expect("Threads: line")
    }
}
