use std::sync::Arc;

use crate::{ClientConn, Result, RpcHandler};

/// In-process transport: calls the handler directly on the caller's thread.
///
/// Used by unit tests, the examples, and the single-process cluster harness.
/// Because it shares [`ClientConn`] with the TCP transport, every protocol
/// still round-trips through its full wire encoding, so the in-process
/// cluster exercises exactly the bytes a distributed deployment would.
#[derive(Clone)]
pub struct LocalConn {
    handler: Arc<dyn RpcHandler>,
}

impl LocalConn {
    /// Wraps `handler` as a connection.
    pub fn new(handler: Arc<dyn RpcHandler>) -> Self {
        Self { handler }
    }
}

impl ClientConn for LocalConn {
    fn call(&self, request: &[u8]) -> Result<Vec<u8>> {
        Ok(self.handler.handle(request))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo() {
        let conn = LocalConn::new(Arc::new(|req: &[u8]| req.to_vec()));
        assert_eq!(conn.call(b"ping").unwrap(), b"ping");
    }
}
