use std::fmt;

/// Errors surfaced by the transport layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcError {
    /// The peer hung up or the server is shutting down.
    Disconnected,
    /// An operating-system level I/O failure.
    Io(String),
    /// A frame failed validation (bad magic, length bound, or checksum).
    BadFrame(String),
    /// The call did not complete within the configured deadline.
    Timeout,
}

impl fmt::Display for RpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpcError::Disconnected => write!(f, "peer disconnected"),
            RpcError::Io(e) => write!(f, "transport I/O error: {e}"),
            RpcError::BadFrame(e) => write!(f, "bad frame: {e}"),
            RpcError::Timeout => write!(f, "rpc timed out"),
        }
    }
}

impl std::error::Error for RpcError {}

impl From<std::io::Error> for RpcError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::UnexpectedEof
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::BrokenPipe => RpcError::Disconnected,
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => RpcError::Timeout,
            _ => RpcError::Io(e.to_string()),
        }
    }
}
