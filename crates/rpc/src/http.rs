//! A minimal, hand-rolled HTTP/1.1 scrape endpoint for metrics.
//!
//! Every node of a real TCP deployment runs one of these next to its RPC
//! server, exposing its [`Registry`] to anything that speaks HTTP:
//!
//! * `GET /metrics` — human-readable text snapshot (also served at `/`)
//! * `GET /metrics.json` — JSON snapshot
//! * `GET /spans.json` — recorded trace spans plus the slow-request log
//! * `GET /events.json` — this node's structured control-plane event
//!   journal (the flight recorder)
//! * `GET /healthz` — this node's health verdict (`ok` / `degraded` /
//!   `unhealthy`) with machine-readable reasons; `unhealthy` answers 503
//! * `GET /snapshot.bin` — the binary snapshot encoding
//!   ([`Snapshot::to_bytes`]), which is what the cluster aggregator
//!   fetches so nothing ever needs to *parse* JSON (events ride along)
//!
//! Each request re-reads `TANGO_SLOW_MS` into the registry's tracer, so
//! the slow-request threshold can be retuned on a live process between
//! scrapes.
//!
//! The implementation is intentionally tiny: `GET` only, one request per
//! connection (`Connection: close`), no keep-alive, no chunking. Requests
//! are served by a **fixed pool** of [`SCRAPE_WORKERS`] threads behind a
//! bounded queue — an aggressive or misbehaving scraper can at worst get
//! its connections dropped at the queue cap, never exhaust the process's
//! threads (the old endpoint spawned one thread per request). No new
//! dependencies.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel;
use tango_metrics::{
    events_to_json, spans_to_json, HealthPolicy, HealthReport, Registry, Snapshot,
};

use crate::{Result, RpcError};

/// How long a scrape connection may dawdle before being dropped.
const HTTP_IO_TIMEOUT: Duration = Duration::from_secs(2);

/// Size of the fixed scrape-serving pool. Scrapes are a couple of
/// requests per poll interval; two workers ride out one slow client.
pub const SCRAPE_WORKERS: usize = 2;

/// Accepted scrape connections queued beyond this are dropped instead of
/// accumulating without bound.
const SCRAPE_QUEUE_MAX: usize = 256;

/// A running scrape endpoint. Dropping the handle shuts it down.
pub struct HttpScrapeServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl HttpScrapeServer {
    /// Binds `addr` (port 0 for ephemeral) and serves `registry` snapshots
    /// until dropped.
    pub fn spawn(addr: &str, registry: Registry) -> Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let queued = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = channel::unbounded::<TcpStream>();
        let mut workers = Vec::with_capacity(SCRAPE_WORKERS);
        for i in 0..SCRAPE_WORKERS {
            let rx = rx.clone();
            let registry = registry.clone();
            let queued = Arc::clone(&queued);
            let worker = std::thread::Builder::new()
                .name(format!("http-scrape-worker-{i}"))
                .spawn(move || {
                    while let Ok(stream) = rx.recv() {
                        queued.fetch_sub(1, Ordering::AcqRel);
                        serve_request(stream, &registry);
                    }
                })
                .map_err(|e| RpcError::Io(e.to_string()))?;
            workers.push(worker);
        }
        drop(rx);
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_thread = std::thread::Builder::new()
            .name(format!("http-scrape-{local}"))
            .spawn(move || accept_loop(listener, tx, queued, accept_shutdown))
            .map_err(|e| RpcError::Io(e.to_string()))?;
        Ok(Self { addr: local, shutdown, accept_thread: Some(accept_thread), workers })
    }

    /// The address the endpoint is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the endpoint and joins its accept thread and worker pool.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        poke_listener(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // The accept thread owned the queue sender; with it gone the
        // workers drain what is queued and exit.
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for HttpScrapeServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Connects to the listener so a blocked `accept` returns. A listener
/// bound to a wildcard address (`0.0.0.0` / `::`) is not dialable at that
/// address — poke it via the matching loopback instead.
fn poke_listener(addr: SocketAddr) {
    let target = if addr.ip().is_unspecified() {
        let loopback = match addr.ip() {
            IpAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
            IpAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
        };
        SocketAddr::new(loopback, addr.port())
    } else {
        addr
    };
    let _ = TcpStream::connect_timeout(&target, Duration::from_millis(500));
}

fn accept_loop(
    listener: TcpListener,
    tx: channel::Sender<TcpStream>,
    queued: Arc<AtomicUsize>,
    shutdown: Arc<AtomicBool>,
) {
    loop {
        let Ok((stream, _peer)) = listener.accept() else {
            if shutdown.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(Duration::from_millis(10));
            continue;
        };
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Bounded handoff to the fixed pool: past the cap the connection
        // is dropped on the floor, which a scraper sees as a reset — far
        // better than unbounded thread growth.
        if queued.load(Ordering::Acquire) >= SCRAPE_QUEUE_MAX {
            drop(stream);
            continue;
        }
        queued.fetch_add(1, Ordering::AcqRel);
        if tx.send(stream).is_err() {
            return;
        }
    }
}

fn serve_request(stream: TcpStream, registry: &Registry) {
    let _ = stream.set_read_timeout(Some(HTTP_IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(HTTP_IO_TIMEOUT));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return;
    }
    // Drain (and ignore) the headers up to the blank line.
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) if line == "\r\n" || line == "\n" => break,
            Ok(_) => continue,
            Err(_) => return,
        }
    }

    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let mut stream = stream;
    if method != "GET" {
        let _ = write_response(&mut stream, 405, "text/plain", b"method not allowed");
        return;
    }
    let path = path.split('?').next().unwrap_or(path);
    // A live process can be retuned between scrapes: the slow-request
    // threshold follows TANGO_SLOW_MS without a restart.
    registry.tracer().refresh_slow_threshold_from_env();
    let (status, content_type, body): (u16, &str, Vec<u8>) = match path {
        "/" | "/metrics" => {
            (200, "text/plain; charset=utf-8", registry.snapshot().to_text().into_bytes())
        }
        "/metrics.json" => (200, "application/json", registry.snapshot().to_json().into_bytes()),
        "/snapshot.bin" => (200, "application/octet-stream", registry.snapshot().to_bytes()),
        "/spans.json" => {
            let body = format!(
                "{{\"spans\":{},\"slow\":{}}}",
                spans_to_json(&registry.spans()),
                spans_to_json(&registry.slow_spans()),
            );
            (200, "application/json", body.into_bytes())
        }
        "/events.json" => {
            let body = format!("{{\"events\":{}}}", events_to_json(&registry.event_records()));
            (200, "application/json", body.into_bytes())
        }
        "/healthz" => {
            let report = HealthReport::evaluate(&registry.snapshot(), &HealthPolicy::default());
            let status =
                if report.status == tango_metrics::HealthStatus::Unhealthy { 503 } else { 200 };
            (status, "application/json", report.to_json().into_bytes())
        }
        _ => (404, "text/plain", b"not found".to_vec()),
    };
    let _ = write_response(&mut stream, status, content_type, &body);
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Minimal HTTP GET against a scrape endpoint: returns `(status, body)`.
/// Understands exactly what [`HttpScrapeServer`] emits (`Content-Length`
/// + `Connection: close`), which is all the aggregator needs.
pub fn http_get(addr: &str, path: &str, timeout: Duration) -> Result<(u16, Vec<u8>)> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut stream = stream;
    let request = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes())?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| RpcError::BadFrame(format!("bad http status line: {status_line:?}")))?;

    let mut content_length: Option<usize> = None;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        if line == "\r\n" || line == "\n" {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok();
            }
        }
    }

    let body = match content_length {
        Some(len) => {
            let mut body = vec![0u8; len];
            reader.read_exact(&mut body)?;
            body
        }
        None => {
            // Connection: close delimits the body.
            let mut body = Vec::new();
            reader.read_to_end(&mut body)?;
            body
        }
    };
    Ok((status, body))
}

/// Fetches `/snapshot.bin` from a scrape endpoint and decodes it.
pub fn fetch_snapshot(addr: &str, timeout: Duration) -> Result<Snapshot> {
    let (status, body) = http_get(addr, "/snapshot.bin", timeout)?;
    if status != 200 {
        return Err(RpcError::BadFrame(format!("scrape of {addr} returned HTTP {status}")));
    }
    Snapshot::from_bytes(&body).map_err(|e| RpcError::BadFrame(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tango_metrics::SpanKind;

    fn test_registry() -> Registry {
        let r = Registry::new();
        r.counter("ops.total").add(5);
        r.histogram("lat_ns").record(1234);
        r.tracer().root_forced(SpanKind::ClientRead).finish();
        r
    }

    #[test]
    fn serves_text_json_and_binary() {
        let server = HttpScrapeServer::spawn("127.0.0.1:0", test_registry()).unwrap();
        let addr = server.local_addr().to_string();
        let t = Duration::from_secs(2);

        let (status, body) = http_get(&addr, "/metrics", t).unwrap();
        assert_eq!(status, 200);
        assert!(String::from_utf8_lossy(&body).contains("ops.total"));

        let (status, body) = http_get(&addr, "/metrics.json", t).unwrap();
        assert_eq!(status, 200);
        assert!(String::from_utf8_lossy(&body).contains("\"ops.total\":5"));

        let snap = fetch_snapshot(&addr, t).unwrap();
        assert_eq!(snap.counter("ops.total"), 5);
        assert_eq!(snap.histogram("lat_ns").unwrap().count(), 1);

        let (status, body) = http_get(&addr, "/spans.json", t).unwrap();
        assert_eq!(status, 200);
        let text = String::from_utf8_lossy(&body);
        assert!(text.contains("\"spans\":["), "{text}");
        assert!(text.contains("client.read"), "{text}");
    }

    #[test]
    fn root_serves_text_and_unknown_paths_404() {
        let server = HttpScrapeServer::spawn("127.0.0.1:0", test_registry()).unwrap();
        let addr = server.local_addr().to_string();
        let t = Duration::from_secs(2);
        let (status, _) = http_get(&addr, "/", t).unwrap();
        assert_eq!(status, 200);
        let (status, _) = http_get(&addr, "/nope", t).unwrap();
        assert_eq!(status, 404);
        // Query strings are ignored for routing.
        let (status, _) = http_get(&addr, "/metrics?x=1", t).unwrap();
        assert_eq!(status, 200);
    }

    #[test]
    fn serves_events_and_healthz() {
        let registry = test_registry();
        registry.events().emit(tango_metrics::EventKind::Sealed, 3, 1, 42);
        let server = HttpScrapeServer::spawn("127.0.0.1:0", registry).unwrap();
        let addr = server.local_addr().to_string();
        let t = Duration::from_secs(2);

        let (status, body) = http_get(&addr, "/events.json", t).unwrap();
        assert_eq!(status, 200);
        let text = String::from_utf8_lossy(&body);
        assert!(text.starts_with("{\"events\":["), "{text}");
        assert!(text.contains("\"kind\":\"sealed\""), "{text}");

        let (status, body) = http_get(&addr, "/healthz", t).unwrap();
        assert_eq!(status, 200);
        let text = String::from_utf8_lossy(&body);
        assert!(text.starts_with("{\"status\":\"ok\""), "{text}");
    }

    #[test]
    fn unhealthy_healthz_answers_503() {
        let registry = Registry::new();
        let policy = HealthPolicy::default();
        registry
            .gauge(tango_metrics::health::GAUGE_HOLE_BACKLOG)
            .set(policy.max_hole_backlog * 4 + 1);
        let server = HttpScrapeServer::spawn("127.0.0.1:0", registry).unwrap();
        let addr = server.local_addr().to_string();

        let (status, body) = http_get(&addr, "/healthz", Duration::from_secs(2)).unwrap();
        assert_eq!(status, 503);
        let text = String::from_utf8_lossy(&body);
        assert!(text.starts_with("{\"status\":\"unhealthy\""), "{text}");
        assert!(text.contains("hole_backlog"), "{text}");
    }

    #[test]
    fn scrape_applies_tango_slow_ms_to_the_live_registry() {
        let registry = Registry::new();
        let server = HttpScrapeServer::spawn("127.0.0.1:0", registry.clone()).unwrap();
        let addr = server.local_addr().to_string();
        let t = Duration::from_secs(2);
        let before = registry.tracer().slow_threshold().unwrap();

        std::env::set_var(tango_metrics::trace::SLOW_MS_ENV, "1234");
        let (status, _) = http_get(&addr, "/metrics", t).unwrap();
        assert_eq!(status, 200);
        assert_eq!(
            registry.tracer().slow_threshold(),
            Some(Duration::from_millis(1234)),
            "a scrape must re-read the env var into the live tracer"
        );

        // Unset leaves the last applied threshold in place.
        std::env::remove_var(tango_metrics::trace::SLOW_MS_ENV);
        let (status, _) = http_get(&addr, "/metrics", t).unwrap();
        assert_eq!(status, 200);
        assert_eq!(registry.tracer().slow_threshold(), Some(Duration::from_millis(1234)));
        assert_ne!(before, Duration::from_millis(1234), "default differs from the test value");
    }

    #[test]
    fn non_get_is_rejected() {
        let server = HttpScrapeServer::spawn("127.0.0.1:0", test_registry()).unwrap();
        let addr = server.local_addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"POST /metrics HTTP/1.1\r\n\r\n").unwrap();
        let mut response = String::new();
        BufReader::new(stream).read_line(&mut response).unwrap();
        assert!(response.contains("405"), "{response}");
    }

    #[test]
    fn shutdown_is_clean_and_port_reusable() {
        let mut server = HttpScrapeServer::spawn("127.0.0.1:0", test_registry()).unwrap();
        let addr = server.local_addr().to_string();
        server.shutdown();
        assert!(http_get(&addr, "/metrics", Duration::from_millis(300)).is_err());
    }
}
