//! A minimal, hand-rolled HTTP/1.1 scrape endpoint for metrics.
//!
//! Every node of a real TCP deployment runs one of these next to its RPC
//! server, exposing its [`Registry`] to anything that speaks HTTP:
//!
//! * `GET /metrics` — human-readable text snapshot (also served at `/`)
//! * `GET /metrics.json` — JSON snapshot
//! * `GET /spans.json` — recorded trace spans plus the slow-request log
//! * `GET /snapshot.bin` — the binary snapshot encoding
//!   ([`Snapshot::to_bytes`]), which is what the cluster aggregator
//!   fetches so nothing ever needs to *parse* JSON
//!
//! The implementation is intentionally tiny: `GET` only, one request per
//! connection (`Connection: close`), no keep-alive, no chunking. A scrape
//! is a couple of requests per poll interval — worker pools and parsers
//! would be dead weight. No new dependencies.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use tango_metrics::{spans_to_json, Registry, Snapshot};

use crate::{Result, RpcError};

/// How long a scrape connection may dawdle before being dropped.
const HTTP_IO_TIMEOUT: Duration = Duration::from_secs(2);

/// A running scrape endpoint. Dropping the handle shuts it down.
pub struct HttpScrapeServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl HttpScrapeServer {
    /// Binds `addr` (port 0 for ephemeral) and serves `registry` snapshots
    /// until dropped.
    pub fn spawn(addr: &str, registry: Registry) -> Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_thread = std::thread::Builder::new()
            .name(format!("http-scrape-{local}"))
            .spawn(move || accept_loop(listener, registry, accept_shutdown))
            .map_err(|e| RpcError::Io(e.to_string()))?;
        Ok(Self { addr: local, shutdown, accept_thread: Some(accept_thread) })
    }

    /// The address the endpoint is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the endpoint and joins its accept thread.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for HttpScrapeServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, registry: Registry, shutdown: Arc<AtomicBool>) {
    loop {
        let Ok((stream, _peer)) = listener.accept() else {
            if shutdown.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(Duration::from_millis(10));
            continue;
        };
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let registry = registry.clone();
        // One thread per request: scrapes are rare and short-lived.
        let _ = std::thread::Builder::new()
            .name("http-scrape-conn".to_string())
            .spawn(move || serve_request(stream, &registry));
    }
}

fn serve_request(stream: TcpStream, registry: &Registry) {
    let _ = stream.set_read_timeout(Some(HTTP_IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(HTTP_IO_TIMEOUT));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return;
    }
    // Drain (and ignore) the headers up to the blank line.
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) if line == "\r\n" || line == "\n" => break,
            Ok(_) => continue,
            Err(_) => return,
        }
    }

    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let mut stream = stream;
    if method != "GET" {
        let _ = write_response(&mut stream, 405, "text/plain", b"method not allowed");
        return;
    }
    let path = path.split('?').next().unwrap_or(path);
    let (status, content_type, body): (u16, &str, Vec<u8>) = match path {
        "/" | "/metrics" => {
            (200, "text/plain; charset=utf-8", registry.snapshot().to_text().into_bytes())
        }
        "/metrics.json" => (200, "application/json", registry.snapshot().to_json().into_bytes()),
        "/snapshot.bin" => (200, "application/octet-stream", registry.snapshot().to_bytes()),
        "/spans.json" => {
            let body = format!(
                "{{\"spans\":{},\"slow\":{}}}",
                spans_to_json(&registry.spans()),
                spans_to_json(&registry.slow_spans()),
            );
            (200, "application/json", body.into_bytes())
        }
        _ => (404, "text/plain", b"not found".to_vec()),
    };
    let _ = write_response(&mut stream, status, content_type, &body);
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Minimal HTTP GET against a scrape endpoint: returns `(status, body)`.
/// Understands exactly what [`HttpScrapeServer`] emits (`Content-Length`
/// + `Connection: close`), which is all the aggregator needs.
pub fn http_get(addr: &str, path: &str, timeout: Duration) -> Result<(u16, Vec<u8>)> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut stream = stream;
    let request = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes())?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| RpcError::BadFrame(format!("bad http status line: {status_line:?}")))?;

    let mut content_length: Option<usize> = None;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        if line == "\r\n" || line == "\n" {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok();
            }
        }
    }

    let body = match content_length {
        Some(len) => {
            let mut body = vec![0u8; len];
            reader.read_exact(&mut body)?;
            body
        }
        None => {
            // Connection: close delimits the body.
            let mut body = Vec::new();
            reader.read_to_end(&mut body)?;
            body
        }
    };
    Ok((status, body))
}

/// Fetches `/snapshot.bin` from a scrape endpoint and decodes it.
pub fn fetch_snapshot(addr: &str, timeout: Duration) -> Result<Snapshot> {
    let (status, body) = http_get(addr, "/snapshot.bin", timeout)?;
    if status != 200 {
        return Err(RpcError::BadFrame(format!("scrape of {addr} returned HTTP {status}")));
    }
    Snapshot::from_bytes(&body).map_err(|e| RpcError::BadFrame(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tango_metrics::SpanKind;

    fn test_registry() -> Registry {
        let r = Registry::new();
        r.counter("ops.total").add(5);
        r.histogram("lat_ns").record(1234);
        r.tracer().root_forced(SpanKind::ClientRead).finish();
        r
    }

    #[test]
    fn serves_text_json_and_binary() {
        let server = HttpScrapeServer::spawn("127.0.0.1:0", test_registry()).unwrap();
        let addr = server.local_addr().to_string();
        let t = Duration::from_secs(2);

        let (status, body) = http_get(&addr, "/metrics", t).unwrap();
        assert_eq!(status, 200);
        assert!(String::from_utf8_lossy(&body).contains("ops.total"));

        let (status, body) = http_get(&addr, "/metrics.json", t).unwrap();
        assert_eq!(status, 200);
        assert!(String::from_utf8_lossy(&body).contains("\"ops.total\":5"));

        let snap = fetch_snapshot(&addr, t).unwrap();
        assert_eq!(snap.counter("ops.total"), 5);
        assert_eq!(snap.histogram("lat_ns").unwrap().count(), 1);

        let (status, body) = http_get(&addr, "/spans.json", t).unwrap();
        assert_eq!(status, 200);
        let text = String::from_utf8_lossy(&body);
        assert!(text.contains("\"spans\":["), "{text}");
        assert!(text.contains("client.read"), "{text}");
    }

    #[test]
    fn root_serves_text_and_unknown_paths_404() {
        let server = HttpScrapeServer::spawn("127.0.0.1:0", test_registry()).unwrap();
        let addr = server.local_addr().to_string();
        let t = Duration::from_secs(2);
        let (status, _) = http_get(&addr, "/", t).unwrap();
        assert_eq!(status, 200);
        let (status, _) = http_get(&addr, "/nope", t).unwrap();
        assert_eq!(status, 404);
        // Query strings are ignored for routing.
        let (status, _) = http_get(&addr, "/metrics?x=1", t).unwrap();
        assert_eq!(status, 200);
    }

    #[test]
    fn non_get_is_rejected() {
        let server = HttpScrapeServer::spawn("127.0.0.1:0", test_registry()).unwrap();
        let addr = server.local_addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"POST /metrics HTTP/1.1\r\n\r\n").unwrap();
        let mut response = String::new();
        BufReader::new(stream).read_line(&mut response).unwrap();
        assert!(response.contains("405"), "{response}");
    }

    #[test]
    fn shutdown_is_clean_and_port_reusable() {
        let mut server = HttpScrapeServer::spawn("127.0.0.1:0", test_registry()).unwrap();
        let addr = server.local_addr().to_string();
        server.shutdown();
        assert!(http_get(&addr, "/metrics", Duration::from_millis(300)).is_err());
    }
}
