//! Length-prefixed, CRC-checked framing for the TCP transport.
//!
//! Frame layout: `magic u32 | len u32 | crc u32 | payload[len]`, all
//! little-endian. `crc` is the CRC-32C of the payload. `len` is bounded to
//! guard against garbage on the socket.

use std::io::{Read, Write};

use tango_wire::crc32c;

use crate::{Result, RpcError};

const FRAME_MAGIC: u32 = 0x7A_4E_47_01;

/// Upper bound on a frame payload (64 MiB): far above any CORFU entry but
/// small enough to reject corrupted lengths immediately.
pub const MAX_FRAME_LEN: u32 = 64 << 20;

/// Writes one frame to `w`.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<()> {
    if payload.len() as u64 > MAX_FRAME_LEN as u64 {
        return Err(RpcError::BadFrame(format!("payload of {} bytes too large", payload.len())));
    }
    let mut header = [0u8; 12];
    header[0..4].copy_from_slice(&FRAME_MAGIC.to_le_bytes());
    header[4..8].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    header[8..12].copy_from_slice(&crc32c(payload).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame from `r`.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>> {
    let mut header = [0u8; 12];
    r.read_exact(&mut header)?;
    let magic = u32::from_le_bytes(header[0..4].try_into().expect("fixed slice"));
    if magic != FRAME_MAGIC {
        return Err(RpcError::BadFrame(format!("bad magic {magic:#x}")));
    }
    let len = u32::from_le_bytes(header[4..8].try_into().expect("fixed slice"));
    if len > MAX_FRAME_LEN {
        return Err(RpcError::BadFrame(format!("length {len} exceeds bound")));
    }
    let crc = u32::from_le_bytes(header[8..12].try_into().expect("fixed slice"));
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    if crc32c(&payload) != crc {
        return Err(RpcError::BadFrame("payload checksum mismatch".into()));
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello frame").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), b"hello frame");
    }

    #[test]
    fn empty_payload_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn corrupted_payload_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello frame").unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0xFF;
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(read_frame(&mut cursor), Err(RpcError::BadFrame(_))));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"x").unwrap();
        buf[0] ^= 1;
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(read_frame(&mut cursor), Err(RpcError::BadFrame(_))));
    }

    #[test]
    fn truncated_stream_disconnects() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"full payload").unwrap();
        buf.truncate(buf.len() - 3);
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(read_frame(&mut cursor), Err(RpcError::Disconnected)));
    }

    #[test]
    fn insane_length_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&0x7A_4E_47_01u32.to_le_bytes());
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(read_frame(&mut cursor), Err(RpcError::BadFrame(_))));
    }
}
