//! Length-prefixed, CRC-checked framing for the TCP transport (wire v3).
//!
//! Base frame layout: `magic u32 | request_id u64 | len u32 | crc u32 |
//! payload[len]`, all little-endian. The `request_id` lets many RPCs share
//! one socket: the client stamps each request with a fresh id and the server
//! echoes it on the response, so responses may arrive in any order and are
//! routed back to the right caller. `crc` is the CRC-32C of the payload.
//! `len` is bounded to guard against garbage on the socket.
//!
//! v3 adds an *optional* trace extension: a frame written with magic
//! `..03` carries `trace_id u64 | span_id u64` between the base header and
//! the payload, propagating a [`TraceContext`] to the server. Untraced
//! frames keep the v2 magic (`..02`) and the exact v2 layout, so the
//! common case pays zero extra bytes and a v3 decoder accepts every v2
//! stream unchanged (backward-compatible decode). Responses are never
//! traced — the context only flows caller → callee.
//!
//! v1 (magic `..01`) had no request id and therefore forced a strict
//! one-in-flight request/response lockstep per connection; the magic bump to
//! `..02` makes the incompatibility explicit (a v1 peer fails with
//! `BadFrame` instead of misparsing).

use std::io::{Read, Write};

use tango_metrics::TraceContext;
use tango_wire::crc32c;

use crate::{Result, RpcError};

/// Magic for an untraced frame (v2 layout; the low byte is the version,
/// v1 was `0x7A_4E_47_01`).
pub const FRAME_MAGIC: u32 = 0x7A_4E_47_02;

/// Magic for a traced frame: the v2 header followed by a
/// [`TRACE_EXT_LEN`]-byte trace extension, then the payload.
pub const FRAME_MAGIC_TRACED: u32 = 0x7A_4E_47_03;

/// Bytes in a frame header: magic, request id, length, CRC.
pub const HEADER_LEN: usize = 20;

/// Bytes in the v3 trace extension: trace id + span id.
pub const TRACE_EXT_LEN: usize = 16;

/// Upper bound on a frame payload (64 MiB): far above any CORFU entry but
/// small enough to reject corrupted lengths immediately.
pub const MAX_FRAME_LEN: u32 = 64 << 20;

/// One decoded frame: the request id, its payload, and the propagated
/// trace context if the sender included one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Correlates a response with the request that produced it.
    pub id: u64,
    /// The message bytes.
    pub payload: Vec<u8>,
    /// Trace context from a v3 traced frame (`None` for v2 frames).
    pub trace: Option<TraceContext>,
}

/// Writes one untraced frame to `w` (v2 layout).
pub fn write_frame(w: &mut impl Write, id: u64, payload: &[u8]) -> Result<()> {
    write_frame_traced(w, id, None, payload)
}

/// Writes one frame to `w`, as v2 when `trace` is `None` and as a v3
/// traced frame otherwise — so untraced traffic is byte-identical to v2.
pub fn write_frame_traced(
    w: &mut impl Write,
    id: u64,
    trace: Option<TraceContext>,
    payload: &[u8],
) -> Result<()> {
    if payload.len() as u64 > MAX_FRAME_LEN as u64 {
        return Err(RpcError::BadFrame(format!("payload of {} bytes too large", payload.len())));
    }
    let mut header = [0u8; HEADER_LEN + TRACE_EXT_LEN];
    let magic = if trace.is_some() { FRAME_MAGIC_TRACED } else { FRAME_MAGIC };
    header[0..4].copy_from_slice(&magic.to_le_bytes());
    header[4..12].copy_from_slice(&id.to_le_bytes());
    header[12..16].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    header[16..20].copy_from_slice(&crc32c(payload).to_le_bytes());
    let header = if let Some(ctx) = trace {
        header[20..28].copy_from_slice(&ctx.trace_id.to_le_bytes());
        header[28..36].copy_from_slice(&ctx.span_id.to_le_bytes());
        &header[..HEADER_LEN + TRACE_EXT_LEN]
    } else {
        &header[..HEADER_LEN]
    };
    w.write_all(header)?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one complete frame from `r`, treating a read timeout as an error.
///
/// Connection loops that must keep partial progress across timeouts (the
/// server's 200ms shutdown poll, the client's reader thread) use a
/// [`FrameAssembler`] instead.
pub fn read_frame(r: &mut impl Read) -> Result<Frame> {
    let mut assembler = FrameAssembler::new();
    match assembler.poll(r)? {
        Some(frame) => Ok(frame),
        None => Err(RpcError::Timeout),
    }
}

enum AssemblerState {
    Header,
    TraceExt { id: u64, len: u32, crc: u32 },
    Payload { id: u64, crc: u32, trace: Option<TraceContext> },
}

/// Incremental frame reader that survives read timeouts mid-frame.
///
/// Sockets in this transport carry a short read timeout so connection
/// threads can poll a shutdown flag; with a plain `read_exact` a timeout
/// firing after part of a frame has been consumed would discard that
/// progress and desync the stream (the next read would start mid-frame and
/// die with `BadFrame`). The assembler instead buffers whatever has arrived:
/// [`FrameAssembler::poll`] returns `Ok(None)` on a timeout and resumes
/// exactly where it left off on the next call.
pub struct FrameAssembler {
    state: AssemblerState,
    header: [u8; HEADER_LEN],
    header_got: usize,
    ext: [u8; TRACE_EXT_LEN],
    ext_got: usize,
    payload: Vec<u8>,
    payload_got: usize,
}

impl FrameAssembler {
    /// A fresh assembler at a frame boundary.
    pub fn new() -> Self {
        Self {
            state: AssemblerState::Header,
            header: [0u8; HEADER_LEN],
            header_got: 0,
            ext: [0u8; TRACE_EXT_LEN],
            ext_got: 0,
            payload: Vec::new(),
            payload_got: 0,
        }
    }

    /// True if no partial frame is buffered (the stream is at a frame
    /// boundary, so a timeout means the peer is idle).
    pub fn is_idle(&self) -> bool {
        matches!(self.state, AssemblerState::Header) && self.header_got == 0
    }

    /// Drives assembly forward. Returns `Ok(Some(frame))` once a complete
    /// frame is available, `Ok(None)` if the reader timed out (partial
    /// progress is retained; call again), or an error on EOF, I/O failure,
    /// or frame validation failure.
    pub fn poll(&mut self, r: &mut impl Read) -> Result<Option<Frame>> {
        loop {
            match self.state {
                AssemblerState::Header => {
                    while self.header_got < HEADER_LEN {
                        match r.read(&mut self.header[self.header_got..]) {
                            Ok(0) => return Err(RpcError::Disconnected),
                            Ok(n) => self.header_got += n,
                            Err(e) => match Self::classify(e)? {
                                Interruption::Timeout => return Ok(None),
                                Interruption::Retry => continue,
                            },
                        }
                    }
                    let magic =
                        u32::from_le_bytes(self.header[0..4].try_into().expect("fixed slice"));
                    if magic != FRAME_MAGIC && magic != FRAME_MAGIC_TRACED {
                        return Err(RpcError::BadFrame(format!("bad magic {magic:#x}")));
                    }
                    let id =
                        u64::from_le_bytes(self.header[4..12].try_into().expect("fixed slice"));
                    let len =
                        u32::from_le_bytes(self.header[12..16].try_into().expect("fixed slice"));
                    if len > MAX_FRAME_LEN {
                        return Err(RpcError::BadFrame(format!("length {len} exceeds bound")));
                    }
                    let crc =
                        u32::from_le_bytes(self.header[16..20].try_into().expect("fixed slice"));
                    if magic == FRAME_MAGIC_TRACED {
                        self.ext_got = 0;
                        self.state = AssemblerState::TraceExt { id, len, crc };
                    } else {
                        self.payload = vec![0u8; len as usize];
                        self.payload_got = 0;
                        self.state = AssemblerState::Payload { id, crc, trace: None };
                    }
                }
                AssemblerState::TraceExt { id, len, crc } => {
                    while self.ext_got < TRACE_EXT_LEN {
                        match r.read(&mut self.ext[self.ext_got..]) {
                            Ok(0) => return Err(RpcError::Disconnected),
                            Ok(n) => self.ext_got += n,
                            Err(e) => match Self::classify(e)? {
                                Interruption::Timeout => return Ok(None),
                                Interruption::Retry => continue,
                            },
                        }
                    }
                    let trace = Some(TraceContext {
                        trace_id: u64::from_le_bytes(
                            self.ext[0..8].try_into().expect("fixed slice"),
                        ),
                        span_id: u64::from_le_bytes(
                            self.ext[8..16].try_into().expect("fixed slice"),
                        ),
                    });
                    self.payload = vec![0u8; len as usize];
                    self.payload_got = 0;
                    self.state = AssemblerState::Payload { id, crc, trace };
                }
                AssemblerState::Payload { id, crc, trace } => {
                    while self.payload_got < self.payload.len() {
                        match r.read(&mut self.payload[self.payload_got..]) {
                            Ok(0) => return Err(RpcError::Disconnected),
                            Ok(n) => self.payload_got += n,
                            Err(e) => match Self::classify(e)? {
                                Interruption::Timeout => return Ok(None),
                                Interruption::Retry => continue,
                            },
                        }
                    }
                    let payload = std::mem::take(&mut self.payload);
                    self.state = AssemblerState::Header;
                    self.header_got = 0;
                    self.payload_got = 0;
                    if crc32c(&payload) != crc {
                        return Err(RpcError::BadFrame("payload checksum mismatch".into()));
                    }
                    return Ok(Some(Frame { id, payload, trace }));
                }
            }
        }
    }

    fn classify(e: std::io::Error) -> Result<Interruption> {
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
                Ok(Interruption::Timeout)
            }
            std::io::ErrorKind::Interrupted => Ok(Interruption::Retry),
            _ => Err(e.into()),
        }
    }
}

impl Default for FrameAssembler {
    fn default() -> Self {
        Self::new()
    }
}

enum Interruption {
    Timeout,
    Retry,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 7, b"hello frame").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        let frame = read_frame(&mut cursor).unwrap();
        assert_eq!(frame.id, 7);
        assert_eq!(frame.payload, b"hello frame");
        assert_eq!(frame.trace, None);
    }

    #[test]
    fn traced_roundtrip() {
        let ctx = TraceContext { trace_id: 0xDEAD_BEEF, span_id: 42 };
        let mut buf = Vec::new();
        write_frame_traced(&mut buf, 9, Some(ctx), b"traced").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        let frame = read_frame(&mut cursor).unwrap();
        assert_eq!(frame.id, 9);
        assert_eq!(frame.payload, b"traced");
        assert_eq!(frame.trace, Some(ctx));
    }

    #[test]
    fn untraced_write_is_byte_identical_to_v2() {
        // `write_frame_traced(.., None, ..)` must emit exactly the v2
        // layout so old peers keep working with untraced traffic.
        let mut a = Vec::new();
        write_frame(&mut a, 3, b"same").unwrap();
        let mut b = Vec::new();
        write_frame_traced(&mut b, 3, None, b"same").unwrap();
        assert_eq!(a, b);
        assert_eq!(&a[0..4], &FRAME_MAGIC.to_le_bytes());
        assert_eq!(a.len(), HEADER_LEN + 4);
    }

    #[test]
    fn mixed_v2_and_v3_stream_decodes() {
        let ctx = TraceContext { trace_id: 1, span_id: 2 };
        let mut buf = Vec::new();
        write_frame(&mut buf, 1, b"plain").unwrap();
        write_frame_traced(&mut buf, 2, Some(ctx), b"traced").unwrap();
        write_frame(&mut buf, 3, b"plain again").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        let mut assembler = FrameAssembler::new();
        let f1 = assembler.poll(&mut cursor).unwrap().unwrap();
        let f2 = assembler.poll(&mut cursor).unwrap().unwrap();
        let f3 = assembler.poll(&mut cursor).unwrap().unwrap();
        assert_eq!((f1.id, f1.trace), (1, None));
        assert_eq!((f2.id, f2.trace), (2, Some(ctx)));
        assert_eq!((f3.id, f3.trace), (3, None));
    }

    #[test]
    fn empty_payload_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, u64::MAX, b"").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        let frame = read_frame(&mut cursor).unwrap();
        assert_eq!(frame.id, u64::MAX);
        assert_eq!(frame.payload, Vec::<u8>::new());
    }

    #[test]
    fn corrupted_payload_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 1, b"hello frame").unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0xFF;
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(read_frame(&mut cursor), Err(RpcError::BadFrame(_))));
    }

    #[test]
    fn bad_magic_rejected() {
        // Flip a non-version bit: the version byte 0x02 -> 0x03 would be
        // the (valid) traced magic, so corrupt the vendor prefix instead.
        let mut buf = Vec::new();
        write_frame(&mut buf, 1, b"x").unwrap();
        buf[1] ^= 1;
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(read_frame(&mut cursor), Err(RpcError::BadFrame(_))));
        // An unknown *future* version byte is rejected too.
        let mut buf = Vec::new();
        write_frame(&mut buf, 1, b"x").unwrap();
        buf[0] = 0x04;
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(read_frame(&mut cursor), Err(RpcError::BadFrame(_))));
    }

    #[test]
    fn v1_frame_rejected() {
        // A v1 header (old magic, no request id) must not parse as v2.
        let payload = [0x5Au8; 64];
        let mut buf = Vec::new();
        buf.extend_from_slice(&0x7A_4E_47_01u32.to_le_bytes());
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&crc32c(&payload).to_le_bytes());
        buf.extend_from_slice(&payload);
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(read_frame(&mut cursor), Err(RpcError::BadFrame(_))));
    }

    #[test]
    fn truncated_stream_disconnects() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 1, b"full payload").unwrap();
        buf.truncate(buf.len() - 3);
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(read_frame(&mut cursor), Err(RpcError::Disconnected)));
    }

    #[test]
    fn insane_length_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(read_frame(&mut cursor), Err(RpcError::BadFrame(_))));
    }

    /// A reader that yields its bytes a few at a time, interleaved with
    /// timeout errors — the shape of a slow peer behind a read timeout.
    struct Dribble {
        data: Vec<u8>,
        pos: usize,
        chunk: usize,
        timeout_next: bool,
    }

    impl Read for Dribble {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.timeout_next {
                self.timeout_next = false;
                return Err(std::io::Error::from(std::io::ErrorKind::WouldBlock));
            }
            self.timeout_next = true;
            let n = self.chunk.min(self.data.len() - self.pos).min(buf.len());
            if n == 0 {
                return Ok(0);
            }
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn assembler_survives_mid_frame_timeouts() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 42, &vec![0xAB; 1000]).unwrap();
        let mut dribble = Dribble { data: buf, pos: 0, chunk: 3, timeout_next: false };
        let mut assembler = FrameAssembler::new();
        let mut timeouts = 0u32;
        let frame = loop {
            match assembler.poll(&mut dribble).unwrap() {
                Some(frame) => break frame,
                None => timeouts += 1,
            }
        };
        assert_eq!(frame.id, 42);
        assert_eq!(frame.payload, vec![0xAB; 1000]);
        // The frame arrived across many timeouts, several of them mid-frame.
        assert!(timeouts > 100, "expected many interleaved timeouts, got {timeouts}");
    }

    #[test]
    fn assembler_survives_timeouts_inside_trace_extension() {
        let ctx = TraceContext { trace_id: u64::MAX, span_id: 0x0102_0304_0506_0708 };
        let mut buf = Vec::new();
        write_frame_traced(&mut buf, 77, Some(ctx), b"dribbled trace").unwrap();
        // chunk=1 guarantees several timeouts land inside the 16-byte
        // trace extension itself.
        let mut dribble = Dribble { data: buf, pos: 0, chunk: 1, timeout_next: false };
        let mut assembler = FrameAssembler::new();
        let frame = loop {
            if let Some(frame) = assembler.poll(&mut dribble).unwrap() {
                break frame;
            }
        };
        assert_eq!(frame.id, 77);
        assert_eq!(frame.trace, Some(ctx));
        assert_eq!(frame.payload, b"dribbled trace");
        assert!(assembler.is_idle());
    }

    #[test]
    fn assembler_reports_idle_only_at_boundary() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 1, b"abcdef").unwrap();
        let mut dribble = Dribble { data: buf, pos: 0, chunk: 4, timeout_next: false };
        let mut assembler = FrameAssembler::new();
        assert!(assembler.is_idle());
        assert!(assembler.poll(&mut dribble).unwrap().is_none());
        assert!(!assembler.is_idle(), "partial header must not look idle");
        while assembler.poll(&mut dribble).unwrap().is_none() {}
        assert!(assembler.is_idle());
    }
}
