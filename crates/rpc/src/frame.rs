//! Length-prefixed, CRC-checked framing for the TCP transport (wire v2).
//!
//! Frame layout: `magic u32 | request_id u64 | len u32 | crc u32 |
//! payload[len]`, all little-endian. The `request_id` lets many RPCs share
//! one socket: the client stamps each request with a fresh id and the server
//! echoes it on the response, so responses may arrive in any order and are
//! routed back to the right caller. `crc` is the CRC-32C of the payload.
//! `len` is bounded to guard against garbage on the socket.
//!
//! v1 (magic `..01`) had no request id and therefore forced a strict
//! one-in-flight request/response lockstep per connection; the magic bump to
//! `..02` makes the incompatibility explicit (a v1 peer fails with
//! `BadFrame` instead of misparsing).

use std::io::{Read, Write};

use tango_wire::crc32c;

use crate::{Result, RpcError};

/// Magic + wire version. The low byte is the version; v1 was `0x7A_4E_47_01`.
pub const FRAME_MAGIC: u32 = 0x7A_4E_47_02;

/// Bytes in a frame header: magic, request id, length, CRC.
pub const HEADER_LEN: usize = 20;

/// Upper bound on a frame payload (64 MiB): far above any CORFU entry but
/// small enough to reject corrupted lengths immediately.
pub const MAX_FRAME_LEN: u32 = 64 << 20;

/// One decoded frame: the request id and its payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Correlates a response with the request that produced it.
    pub id: u64,
    /// The message bytes.
    pub payload: Vec<u8>,
}

/// Writes one frame to `w`.
pub fn write_frame(w: &mut impl Write, id: u64, payload: &[u8]) -> Result<()> {
    if payload.len() as u64 > MAX_FRAME_LEN as u64 {
        return Err(RpcError::BadFrame(format!("payload of {} bytes too large", payload.len())));
    }
    let mut header = [0u8; HEADER_LEN];
    header[0..4].copy_from_slice(&FRAME_MAGIC.to_le_bytes());
    header[4..12].copy_from_slice(&id.to_le_bytes());
    header[12..16].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    header[16..20].copy_from_slice(&crc32c(payload).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one complete frame from `r`, treating a read timeout as an error.
///
/// Connection loops that must keep partial progress across timeouts (the
/// server's 200ms shutdown poll, the client's reader thread) use a
/// [`FrameAssembler`] instead.
pub fn read_frame(r: &mut impl Read) -> Result<Frame> {
    let mut assembler = FrameAssembler::new();
    match assembler.poll(r)? {
        Some(frame) => Ok(frame),
        None => Err(RpcError::Timeout),
    }
}

enum AssemblerState {
    Header,
    Payload { id: u64, crc: u32 },
}

/// Incremental frame reader that survives read timeouts mid-frame.
///
/// Sockets in this transport carry a short read timeout so connection
/// threads can poll a shutdown flag; with a plain `read_exact` a timeout
/// firing after part of a frame has been consumed would discard that
/// progress and desync the stream (the next read would start mid-frame and
/// die with `BadFrame`). The assembler instead buffers whatever has arrived:
/// [`FrameAssembler::poll`] returns `Ok(None)` on a timeout and resumes
/// exactly where it left off on the next call.
pub struct FrameAssembler {
    state: AssemblerState,
    header: [u8; HEADER_LEN],
    header_got: usize,
    payload: Vec<u8>,
    payload_got: usize,
}

impl FrameAssembler {
    /// A fresh assembler at a frame boundary.
    pub fn new() -> Self {
        Self {
            state: AssemblerState::Header,
            header: [0u8; HEADER_LEN],
            header_got: 0,
            payload: Vec::new(),
            payload_got: 0,
        }
    }

    /// True if no partial frame is buffered (the stream is at a frame
    /// boundary, so a timeout means the peer is idle).
    pub fn is_idle(&self) -> bool {
        matches!(self.state, AssemblerState::Header) && self.header_got == 0
    }

    /// Drives assembly forward. Returns `Ok(Some(frame))` once a complete
    /// frame is available, `Ok(None)` if the reader timed out (partial
    /// progress is retained; call again), or an error on EOF, I/O failure,
    /// or frame validation failure.
    pub fn poll(&mut self, r: &mut impl Read) -> Result<Option<Frame>> {
        loop {
            match self.state {
                AssemblerState::Header => {
                    while self.header_got < HEADER_LEN {
                        match r.read(&mut self.header[self.header_got..]) {
                            Ok(0) => return Err(RpcError::Disconnected),
                            Ok(n) => self.header_got += n,
                            Err(e) => match Self::classify(e)? {
                                Interruption::Timeout => return Ok(None),
                                Interruption::Retry => continue,
                            },
                        }
                    }
                    let magic =
                        u32::from_le_bytes(self.header[0..4].try_into().expect("fixed slice"));
                    if magic != FRAME_MAGIC {
                        return Err(RpcError::BadFrame(format!("bad magic {magic:#x}")));
                    }
                    let id =
                        u64::from_le_bytes(self.header[4..12].try_into().expect("fixed slice"));
                    let len =
                        u32::from_le_bytes(self.header[12..16].try_into().expect("fixed slice"));
                    if len > MAX_FRAME_LEN {
                        return Err(RpcError::BadFrame(format!("length {len} exceeds bound")));
                    }
                    let crc =
                        u32::from_le_bytes(self.header[16..20].try_into().expect("fixed slice"));
                    self.payload = vec![0u8; len as usize];
                    self.payload_got = 0;
                    self.state = AssemblerState::Payload { id, crc };
                }
                AssemblerState::Payload { id, crc } => {
                    while self.payload_got < self.payload.len() {
                        match r.read(&mut self.payload[self.payload_got..]) {
                            Ok(0) => return Err(RpcError::Disconnected),
                            Ok(n) => self.payload_got += n,
                            Err(e) => match Self::classify(e)? {
                                Interruption::Timeout => return Ok(None),
                                Interruption::Retry => continue,
                            },
                        }
                    }
                    let payload = std::mem::take(&mut self.payload);
                    self.state = AssemblerState::Header;
                    self.header_got = 0;
                    self.payload_got = 0;
                    if crc32c(&payload) != crc {
                        return Err(RpcError::BadFrame("payload checksum mismatch".into()));
                    }
                    return Ok(Some(Frame { id, payload }));
                }
            }
        }
    }

    fn classify(e: std::io::Error) -> Result<Interruption> {
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
                Ok(Interruption::Timeout)
            }
            std::io::ErrorKind::Interrupted => Ok(Interruption::Retry),
            _ => Err(e.into()),
        }
    }
}

impl Default for FrameAssembler {
    fn default() -> Self {
        Self::new()
    }
}

enum Interruption {
    Timeout,
    Retry,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 7, b"hello frame").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        let frame = read_frame(&mut cursor).unwrap();
        assert_eq!(frame.id, 7);
        assert_eq!(frame.payload, b"hello frame");
    }

    #[test]
    fn empty_payload_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, u64::MAX, b"").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        let frame = read_frame(&mut cursor).unwrap();
        assert_eq!(frame.id, u64::MAX);
        assert_eq!(frame.payload, Vec::<u8>::new());
    }

    #[test]
    fn corrupted_payload_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 1, b"hello frame").unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0xFF;
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(read_frame(&mut cursor), Err(RpcError::BadFrame(_))));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 1, b"x").unwrap();
        buf[0] ^= 1;
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(read_frame(&mut cursor), Err(RpcError::BadFrame(_))));
    }

    #[test]
    fn v1_frame_rejected() {
        // A v1 header (old magic, no request id) must not parse as v2.
        let payload = [0x5Au8; 64];
        let mut buf = Vec::new();
        buf.extend_from_slice(&0x7A_4E_47_01u32.to_le_bytes());
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&crc32c(&payload).to_le_bytes());
        buf.extend_from_slice(&payload);
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(read_frame(&mut cursor), Err(RpcError::BadFrame(_))));
    }

    #[test]
    fn truncated_stream_disconnects() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 1, b"full payload").unwrap();
        buf.truncate(buf.len() - 3);
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(read_frame(&mut cursor), Err(RpcError::Disconnected)));
    }

    #[test]
    fn insane_length_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(read_frame(&mut cursor), Err(RpcError::BadFrame(_))));
    }

    /// A reader that yields its bytes a few at a time, interleaved with
    /// timeout errors — the shape of a slow peer behind a read timeout.
    struct Dribble {
        data: Vec<u8>,
        pos: usize,
        chunk: usize,
        timeout_next: bool,
    }

    impl Read for Dribble {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.timeout_next {
                self.timeout_next = false;
                return Err(std::io::Error::from(std::io::ErrorKind::WouldBlock));
            }
            self.timeout_next = true;
            let n = self.chunk.min(self.data.len() - self.pos).min(buf.len());
            if n == 0 {
                return Ok(0);
            }
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn assembler_survives_mid_frame_timeouts() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 42, &vec![0xAB; 1000]).unwrap();
        let mut dribble = Dribble { data: buf, pos: 0, chunk: 3, timeout_next: false };
        let mut assembler = FrameAssembler::new();
        let mut timeouts = 0u32;
        let frame = loop {
            match assembler.poll(&mut dribble).unwrap() {
                Some(frame) => break frame,
                None => timeouts += 1,
            }
        };
        assert_eq!(frame.id, 42);
        assert_eq!(frame.payload, vec![0xAB; 1000]);
        // The frame arrived across many timeouts, several of them mid-frame.
        assert!(timeouts > 100, "expected many interleaved timeouts, got {timeouts}");
    }

    #[test]
    fn assembler_reports_idle_only_at_boundary() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 1, b"abcdef").unwrap();
        let mut dribble = Dribble { data: buf, pos: 0, chunk: 4, timeout_next: false };
        let mut assembler = FrameAssembler::new();
        assert!(assembler.is_idle());
        assert!(assembler.poll(&mut dribble).unwrap().is_none());
        assert!(!assembler.is_idle(), "partial header must not look idle");
        while assembler.poll(&mut dribble).unwrap().is_none() {}
        assert!(assembler.is_idle());
    }
}
