use crate::Result;

/// The server side of a service: turns request bytes into response bytes.
///
/// Handlers must be safe to invoke concurrently: a TCP server calls `handle`
/// from a worker pool per connection, so several requests from the *same*
/// connection may be in `handle` simultaneously and complete out of order.
pub trait RpcHandler: Send + Sync {
    /// Processes one request and produces its response.
    fn handle(&self, request: &[u8]) -> Vec<u8>;
}

impl<F> RpcHandler for F
where
    F: Fn(&[u8]) -> Vec<u8> + Send + Sync,
{
    fn handle(&self, request: &[u8]) -> Vec<u8> {
        self(request)
    }
}

/// The client side of a service: a blocking request/response call.
///
/// Implementations are shared across threads; concurrent `call`s on one
/// connection are allowed and (for the TCP transport) pipelined over a
/// single socket.
pub trait ClientConn: Send + Sync {
    /// Sends `request` and waits for the response.
    fn call(&self, request: &[u8]) -> Result<Vec<u8>>;
}
