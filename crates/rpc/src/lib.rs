#![warn(missing_docs)]
//! Transport layer for the CORFU/Tango services.
//!
//! Tango runtimes on different machines never talk to each other; all
//! interaction flows through the shared log's services (sequencer, storage
//! nodes, layout). This crate provides the request/response plumbing those
//! services run over:
//!
//! * [`RpcHandler`] — the server side: a function from request bytes to
//!   response bytes.
//! * [`ClientConn`] — the client side: a blocking `call`.
//! * [`LocalConn`] — in-process transport used by tests, examples, and the
//!   single-process cluster harness.
//! * [`TcpServer`] / [`TcpConn`] — a real socket transport: length-framed,
//!   CRC-checked messages over TCP with a thread per connection and
//!   transparent reconnect on the client.
//!
//! The framing is deliberately minimal (no streaming, no multiplexing):
//! CORFU's protocol is strictly request/response and clients that want
//! pipelining open several connections.

mod error;
mod frame;
mod local;
mod tcp;
mod traits;

pub use error::RpcError;
pub use local::LocalConn;
pub use tcp::{ConnMetrics, TcpConn, TcpServer};
pub use traits::{ClientConn, RpcHandler};

/// Convenience alias for transport results.
pub type Result<T> = std::result::Result<T, RpcError>;
