#![warn(missing_docs)]
//! Transport layer for the CORFU/Tango services.
//!
//! Tango runtimes on different machines never talk to each other; all
//! interaction flows through the shared log's services (sequencer, storage
//! nodes, layout). This crate provides the request/response plumbing those
//! services run over:
//!
//! * [`RpcHandler`] — the server side: a function from request bytes to
//!   response bytes.
//! * [`ClientConn`] — the client side: a blocking `call`.
//! * [`LocalConn`] — in-process transport used by tests, examples, and the
//!   single-process cluster harness.
//! * [`TcpServer`] / [`TcpConn`] — a real socket transport: length-framed,
//!   CRC-checked messages over TCP. Frames carry a `u64` request id (wire
//!   v3, see [`frame`]), so a single connection multiplexes many pipelined
//!   RPCs: the client matches responses to callers by id, and the server
//!   completes requests out of order on a fixed worker pool fed by an
//!   epoll readiness reactor — one event-loop thread owns every accepted
//!   socket, so the thread budget stays constant from 1 connection to
//!   10K+. The client side shares one process-wide reactor for response
//!   routing (no reader thread per connection). Clients reconnect
//!   transparently with a dial bounded by the per-call timeout. Traced
//!   calls carry their `TraceContext` in the frame (v2 frames — untraced
//!   — still decode).
//! * [`HttpScrapeServer`] / [`http_get`] / [`fetch_snapshot`] — a minimal
//!   hand-rolled HTTP endpoint serving metric snapshots and trace spans,
//!   run next to each RPC server so a real deployment is observable from
//!   outside the process.
//!
//! The framing is still deliberately minimal — request/response only, no
//! streaming — because CORFU's protocol needs nothing more.

mod error;
pub mod frame;
mod http;
mod local;
mod reactor;
mod tcp;
mod traits;

pub use error::RpcError;
pub use http::{fetch_snapshot, http_get, HttpScrapeServer, SCRAPE_WORKERS};
pub use local::LocalConn;
pub use tcp::{
    ConnMetrics, ServerMetrics, ServerOptions, TcpConn, TcpServer, DEFAULT_MAX_CONNS,
    SERVER_WORKERS,
};
pub use traits::{ClientConn, RpcHandler};

/// Convenience alias for transport results.
pub type Result<T> = std::result::Result<T, RpcError>;
