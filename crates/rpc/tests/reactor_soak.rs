//! Thread-budget soak: one reactor server under hundreds of mixed
//! idle/active connections. Asserts (a) responses stay correct under
//! pipelining while idle connections pile up, and (b) the process thread
//! count stays constant as the connection count grows — the property the
//! reactor exists to provide.

use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use tango_metrics::Registry;
use tango_rpc::{ClientConn, RpcHandler, ServerMetrics, ServerOptions, TcpConn, TcpServer};

struct Reverse;
impl RpcHandler for Reverse {
    fn handle(&self, request: &[u8]) -> Vec<u8> {
        let mut out = request.to_vec();
        out.reverse();
        out
    }
}

fn process_threads() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").unwrap();
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .unwrap()
}

/// One round of pipelined traffic: `threads` caller threads share the
/// given connections and verify every response matches its request.
fn traffic_round(conns: &[Arc<TcpConn>], threads: usize, calls_per_thread: usize) {
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let conn = Arc::clone(&conns[t % conns.len()]);
            std::thread::spawn(move || {
                for c in 0..calls_per_thread {
                    let msg = format!("soak-{t}-{c}");
                    let mut expected = msg.clone().into_bytes();
                    expected.reverse();
                    assert_eq!(
                        conn.call(msg.as_bytes()).expect("call failed under soak"),
                        expected,
                        "response routed to the wrong caller"
                    );
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
}

#[test]
fn hundreds_of_connections_on_a_fixed_thread_budget() {
    let registry = Registry::new();
    let options =
        ServerOptions { metrics: ServerMetrics::from_registry(&registry), ..Default::default() };
    let server = TcpServer::spawn_with("127.0.0.1:0", Arc::new(Reverse), options).unwrap();
    let addr = server.local_addr().to_string();

    // Active connections: a handful of multiplexed clients shared by many
    // caller threads, all routed through the one process-wide client
    // reactor.
    let actives: Vec<Arc<TcpConn>> = (0..4)
        .map(|_| Arc::new(TcpConn::new(addr.clone()).with_timeout(Duration::from_secs(10))))
        .collect();

    // Warm up so every long-lived thread exists (server reactor + worker
    // pool, client reactor, and this test's own caller threads are
    // spawned fresh each round so they don't count).
    traffic_round(&actives, 8, 5);
    let baseline = process_threads();

    // Grow an idle population in batches; after each batch the thread
    // count must not have moved and pipelined traffic must stay correct.
    let mut idles: Vec<TcpStream> = Vec::new();
    for batch in 0..4 {
        for _ in 0..75 {
            idles.push(TcpStream::connect(&addr).unwrap());
        }
        // Let the reactor register the batch.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        let want = (idles.len() + actives.len()) as i64;
        while registry.gauge("rpc.server_conns").get() < want {
            assert!(
                std::time::Instant::now() < deadline,
                "reactor registered {} of {want} connections",
                registry.gauge("rpc.server_conns").get()
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        traffic_round(&actives, 8, 10);
        let now = process_threads();
        assert_eq!(
            now,
            baseline,
            "thread count moved with connection count ({} conns, batch {batch})",
            idles.len()
        );
    }
    assert!(idles.len() >= 300, "soak must cover hundreds of connections");
    assert_eq!(registry.counter("rpc.accepts_dropped").get(), 0);

    // Idle connections come and go without disturbing the budget.
    idles.truncate(50);
    traffic_round(&actives, 8, 10);
    assert_eq!(process_threads(), baseline);
}
