//! Regression tests for the `rpc.in_flight` gauge: it must return to
//! zero when a timed-out call abandons its waiter and when the
//! connection dies with a call in flight — a leak here would poison
//! every dashboard built on the gauge.

use std::io::Read;
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use tango_metrics::Registry;
use tango_rpc::{ClientConn, ConnMetrics, RpcError, TcpConn, TcpServer};

#[test]
fn gauge_returns_to_zero_after_timeout_abandons_waiter() {
    let release = Arc::new(AtomicBool::new(false));
    let handler_release = Arc::clone(&release);
    let server = TcpServer::spawn(
        "127.0.0.1:0",
        Arc::new(move |req: &[u8]| {
            // Stall until the test lets the late response go out.
            while !handler_release.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(5));
            }
            req.to_vec()
        }),
    )
    .unwrap();

    let registry = Registry::new();
    let conn = TcpConn::new(server.local_addr().to_string())
        .with_timeout(Duration::from_millis(100))
        .with_metrics(ConnMetrics::from_registry(&registry));

    let err = conn.call(b"slow").unwrap_err();
    assert!(matches!(err, RpcError::Timeout), "expected timeout, got {err:?}");
    assert_eq!(
        registry.snapshot().gauge("rpc.in_flight"),
        0,
        "timed-out call must decrement in_flight when it abandons its waiter"
    );

    // Let the server finish; the late response is discarded by id and
    // must not drive the gauge negative.
    release.store(true, Ordering::SeqCst);
    std::thread::sleep(Duration::from_millis(200));
    assert_eq!(registry.snapshot().gauge("rpc.in_flight"), 0);

    // The connection is still usable after the timeout (and the gauge
    // still balances on the success path).
    assert_eq!(conn.call(b"ok").unwrap(), b"ok");
    assert_eq!(registry.snapshot().gauge("rpc.in_flight"), 0);
}

#[test]
fn gauge_returns_to_zero_when_connection_dies_mid_flight() {
    // A raw listener stands in for a server that accepts, reads the
    // request, and then drops the socket with the response outstanding.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let acceptor = std::thread::spawn(move || {
        // Two accepts: the initial call and the transport's one retry.
        for _ in 0..2 {
            let (mut stream, _) = listener.accept().unwrap();
            let mut buf = [0u8; 64];
            let _ = stream.read(&mut buf); // swallow part of the frame
            drop(stream); // connection dies mid-flight
        }
    });

    let registry = Registry::new();
    let conn = TcpConn::new(addr)
        .with_timeout(Duration::from_secs(5))
        .with_metrics(ConnMetrics::from_registry(&registry));

    let err = conn.call(b"doomed").unwrap_err();
    assert!(!matches!(err, RpcError::Timeout), "death should surface before the timeout: {err:?}");
    assert_eq!(
        registry.snapshot().gauge("rpc.in_flight"),
        0,
        "a dead connection must fail its waiters and decrement in_flight"
    );
    acceptor.join().unwrap();
}

#[test]
fn gauge_balances_under_concurrent_mixed_outcomes() {
    // Handlers echo quickly; some calls race a server shutdown. Whatever
    // mix of successes and failures results, the gauge must end at zero.
    let server = TcpServer::spawn("127.0.0.1:0", Arc::new(|req: &[u8]| req.to_vec())).unwrap();
    let addr = server.local_addr().to_string();
    let registry = Registry::new();
    let conn = Arc::new(
        TcpConn::new(addr)
            .with_timeout(Duration::from_millis(500))
            .with_metrics(ConnMetrics::from_registry(&registry)),
    );

    let threads: Vec<_> = (0..8)
        .map(|_| {
            let conn = Arc::clone(&conn);
            std::thread::spawn(move || {
                for _ in 0..25 {
                    let _ = conn.call(b"ping");
                }
            })
        })
        .collect();
    // Kill the server partway through to force some in-flight failures.
    std::thread::sleep(Duration::from_millis(30));
    drop(server);
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(registry.snapshot().gauge("rpc.in_flight"), 0);
}
