//! Integration tests for the multiplexed, pipelined TCP transport.
//!
//! These exercise the wire-v2 request-id machinery end to end over real
//! sockets: many threads sharing ONE `TcpConn`, responses completing out of
//! order on the server's per-connection worker pool, frames dribbling in
//! slower than the server's read timeout, and reconnect behaviour when a
//! dial fails.

use std::io::Write;
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use tango_rpc::frame::{read_frame, write_frame};
use tango_rpc::{ClientConn, RpcError, TcpConn, TcpServer};

/// Handler protocol used by these tests: requests look like
/// `"<sleep_ms>:<tag>"`; the handler sleeps `sleep_ms` then echoes the
/// whole request back.
fn sleepy_echo(req: &[u8]) -> Vec<u8> {
    let text = std::str::from_utf8(req).expect("test requests are utf-8");
    let (ms, _) = text.split_once(':').expect("test requests are `<ms>:<tag>`");
    let ms: u64 = ms.parse().expect("sleep prefix is a number");
    if ms > 0 {
        thread::sleep(Duration::from_millis(ms));
    }
    req.to_vec()
}

#[test]
fn pipelining_stress_many_threads_one_conn() {
    // N threads × M RPCs, all multiplexed over a single shared TcpConn.
    // Jittered handler sleeps force responses to interleave arbitrarily;
    // every caller must still get exactly its own response back.
    let server = TcpServer::spawn("127.0.0.1:0", Arc::new(sleepy_echo)).unwrap();
    let conn = Arc::new(TcpConn::new(server.local_addr().to_string()));

    const THREADS: usize = 8;
    const CALLS: usize = 25;
    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let conn = Arc::clone(&conn);
            thread::spawn(move || {
                for c in 0..CALLS {
                    let sleep_ms = (t * 7 + c * 3) % 13;
                    let msg = format!("{sleep_ms}:stress-{t}-{c}");
                    let reply = conn.call(msg.as_bytes()).unwrap();
                    assert_eq!(reply, msg.as_bytes(), "response routed to wrong waiter");
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
}

#[test]
fn responses_complete_out_of_order() {
    // A slow request issued first and a fast request issued second over the
    // SAME connection: the fast one must come back first, which is only
    // possible if the server services them concurrently and the client
    // routes responses by id rather than by arrival order.
    let server = TcpServer::spawn("127.0.0.1:0", Arc::new(sleepy_echo)).unwrap();
    let conn = Arc::new(TcpConn::new(server.local_addr().to_string()));
    let order: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));

    let slow = {
        let (conn, order) = (Arc::clone(&conn), Arc::clone(&order));
        thread::spawn(move || {
            assert_eq!(conn.call(b"600:slow").unwrap(), b"600:slow");
            order.lock().unwrap().push("slow");
        })
    };
    // Make sure the slow request is on the wire before the fast one.
    thread::sleep(Duration::from_millis(100));
    let fast = {
        let (conn, order) = (Arc::clone(&conn), Arc::clone(&order));
        thread::spawn(move || {
            let started = Instant::now();
            assert_eq!(conn.call(b"0:fast").unwrap(), b"0:fast");
            assert!(
                started.elapsed() < Duration::from_millis(400),
                "fast call was serialized behind the slow one"
            );
            order.lock().unwrap().push("fast");
        })
    };
    slow.join().unwrap();
    fast.join().unwrap();
    assert_eq!(*order.lock().unwrap(), vec!["fast", "slow"]);
}

#[test]
fn slow_dribbled_frame_survives_read_timeouts() {
    // Regression for the mid-frame desync bug: the server's connection
    // reader polls with a 200ms read timeout. A client that dribbles a
    // frame in chunks slower than that used to have its partial bytes
    // dropped, desyncing the stream and killing the connection with
    // BadFrame. The resumable assembler must ride out the stalls.
    let server = TcpServer::spawn("127.0.0.1:0", Arc::new(sleepy_echo)).unwrap();
    let mut sock = TcpStream::connect(server.local_addr()).unwrap();
    sock.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
    sock.set_nodelay(true).unwrap();

    let payload = format!("0:dribble-{}", "x".repeat(64));
    let mut frame = Vec::new();
    write_frame(&mut frame, 42, payload.as_bytes()).unwrap();

    // Dribble in 7-byte chunks, stalling well past the server's 200ms poll
    // interval between each, so the frame arrives across many timeouts.
    for chunk in frame.chunks(7) {
        sock.write_all(chunk).unwrap();
        sock.flush().unwrap();
        thread::sleep(Duration::from_millis(250));
    }

    let reply = read_frame(&mut sock).unwrap();
    assert_eq!(reply.id, 42, "response must carry the request's id");
    assert_eq!(reply.payload, payload.as_bytes());

    // The connection must still be healthy for a normal, undribbled frame.
    let mut second = Vec::new();
    write_frame(&mut second, 43, b"0:after-dribble").unwrap();
    sock.write_all(&second).unwrap();
    let reply = read_frame(&mut sock).unwrap();
    assert_eq!(reply.id, 43);
    assert_eq!(reply.payload, b"0:after-dribble");
}

#[test]
fn failed_reconnect_is_not_cached() {
    // Regression for the stale-stream bug: when a reconnect attempt failed,
    // the old client left the known-broken stream cached, so later calls
    // kept failing against it even once the server was back. The broken
    // stream must be discarded BEFORE dialing, so recovery needs nothing
    // but a listening server.
    let mut server = TcpServer::spawn("127.0.0.1:0", Arc::new(sleepy_echo)).unwrap();
    let addr = server.local_addr().to_string();
    let conn = TcpConn::new(addr.clone()).with_timeout(Duration::from_secs(2));
    assert_eq!(conn.call(b"0:up").unwrap(), b"0:up");

    server.shutdown();
    drop(server);
    // With nothing listening, calls must fail (possibly after the dead
    // server's poll interval drains) — and each failure includes a failed
    // reconnect attempt that must not leave junk behind.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match conn.call(b"0:down") {
            Err(RpcError::Io(_)) | Err(RpcError::Disconnected) => break,
            Err(other) => panic!("unexpected error while down: {other:?}"),
            Ok(_) => {
                assert!(Instant::now() < deadline, "old socket never died");
                thread::sleep(Duration::from_millis(20));
            }
        }
    }
    // One more failed call for good measure: a failed reconnect right now
    // is exactly the state the bug used to poison.
    assert!(conn.call(b"0:still-down").is_err());

    let _server2 = TcpServer::spawn(&addr, Arc::new(sleepy_echo)).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match conn.call(b"0:back") {
            Ok(reply) => {
                assert_eq!(reply, b"0:back");
                break;
            }
            Err(_) => {
                assert!(Instant::now() < deadline, "client never recovered after server restart");
                thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

#[test]
fn timed_out_call_does_not_poison_the_connection() {
    // A call that exceeds the client timeout abandons its waiter; the late
    // response is discarded by id and later calls proceed normally on the
    // same connection.
    let server = TcpServer::spawn("127.0.0.1:0", Arc::new(sleepy_echo)).unwrap();
    let conn =
        TcpConn::new(server.local_addr().to_string()).with_timeout(Duration::from_millis(300));
    match conn.call(b"900:too-slow") {
        Err(RpcError::Timeout) => {}
        other => panic!("expected timeout, got {other:?}"),
    }
    // The slow handler is still running server-side; subsequent calls on
    // the same connection must not be confused by its late response.
    for i in 0..5 {
        let msg = format!("0:after-timeout-{i}");
        assert_eq!(conn.call(msg.as_bytes()).unwrap(), msg.as_bytes());
    }
}
