//! Regression tests for the four transport bugs fixed alongside the
//! reactor port:
//!
//! 1. `TcpConn::live()` used to hold the connection mutex across a
//!    `TcpStream::connect` with no connect timeout — one unreachable
//!    server stalled every concurrent caller for the OS dial timeout.
//! 2. `accept_loop` used to silently drop an accepted connection when
//!    per-connection thread spawn failed; drops (now: over-cap accepts
//!    and reactor registration failures) must be counted.
//! 3. `TcpServer::shutdown` used to self-poke via
//!    `TcpStream::connect(self.addr)`, a no-op for wildcard binds.
//! 4. The HTTP scrape endpoint used to spawn one unbounded thread per
//!    request.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tango_metrics::Registry;
use tango_rpc::{
    http_get, ClientConn, HttpScrapeServer, RpcHandler, ServerMetrics, ServerOptions, TcpConn,
    TcpServer,
};

struct Echo;
impl RpcHandler for Echo {
    fn handle(&self, request: &[u8]) -> Vec<u8> {
        request.to_vec()
    }
}

/// Number of threads in this process, from /proc/self/status.
fn process_threads() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").unwrap();
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .unwrap()
}

/// A listener that accepts nothing and whose accept queue is full, so new
/// connection attempts to it hang until the dialer's own timeout: the
/// closest thing to a blackholed address that works without real network
/// access. Returns the address and the streams keeping the queue full.
fn blackholed_addr() -> (SocketAddr, Vec<TcpStream>) {
    // A zero-backlog listener via the libc std already links; Rust's
    // TcpListener hardcodes a backlog of 128, far too big to fill.
    extern "C" {
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn bind(fd: i32, addr: *const u8, len: u32) -> i32;
        fn listen(fd: i32, backlog: i32) -> i32;
        fn getsockname(fd: i32, addr: *mut u8, len: *mut u32) -> i32;
    }
    const AF_INET: i32 = 2;
    const SOCK_STREAM: i32 = 1;
    // struct sockaddr_in: family(2) + port(2, BE) + addr(4, BE) + zero(8)
    let mut sa = [0u8; 16];
    sa[0] = AF_INET as u8;
    sa[4..8].copy_from_slice(&[127, 0, 0, 1]);
    let fd = unsafe { socket(AF_INET, SOCK_STREAM, 0) };
    assert!(fd >= 0, "socket() failed");
    let rc = unsafe { bind(fd, sa.as_ptr(), sa.len() as u32) };
    assert_eq!(rc, 0, "bind() failed");
    let rc = unsafe { listen(fd, 0) };
    assert_eq!(rc, 0, "listen() failed");
    let mut len = sa.len() as u32;
    let rc = unsafe { getsockname(fd, sa.as_mut_ptr(), &mut len) };
    assert_eq!(rc, 0, "getsockname() failed");
    let port = u16::from_be_bytes([sa[2], sa[3]]);
    let addr: SocketAddr = format!("127.0.0.1:{port}").parse().unwrap();
    // Leak the listener fd for the test's lifetime (never accepts).
    // Fill the accept queue until a connect attempt times out: from then
    // on the address blackholes new dials.
    let mut fillers = Vec::new();
    for _ in 0..16 {
        match TcpStream::connect_timeout(&addr, Duration::from_millis(250)) {
            Ok(s) => fillers.push(s),
            Err(_) => return (addr, fillers),
        }
    }
    panic!("could not fill the accept queue of a zero-backlog listener");
}

/// Bug 1: a dial to an unreachable server must be bounded by the per-call
/// timeout, and a concurrent caller on the same `TcpConn` must not be
/// serialized behind it (the dial happens outside the connection lock).
#[test]
fn blackholed_dial_is_bounded_and_does_not_serialize_callers() {
    let (addr, _fillers) = blackholed_addr();
    let timeout = Duration::from_millis(1500);
    let conn = Arc::new(TcpConn::new(addr.to_string()).with_timeout(timeout));

    let start = Instant::now();
    let mut callers = Vec::new();
    for _ in 0..2 {
        let conn = Arc::clone(&conn);
        callers.push(std::thread::spawn(move || {
            let t0 = Instant::now();
            let result = conn.call(b"ping");
            (result, t0.elapsed())
        }));
    }
    for caller in callers {
        let (result, elapsed) = caller.join().unwrap();
        assert!(result.is_err(), "call to a blackholed address must fail");
        // The old code had no connect timeout at all: a dial sat in the
        // OS handshake for minutes. Per-call timeout plus retry slack is
        // the ceiling now.
        assert!(
            elapsed < timeout * 2 + Duration::from_millis(500),
            "caller took {elapsed:?}, dial not bounded by per-call timeout"
        );
    }
    // Both callers dialed concurrently. Were the mutex still held across
    // the dial, the second caller would queue behind the first and total
    // wall time would be at least two full dial timeouts.
    let wall = start.elapsed();
    assert!(
        wall < timeout * 2,
        "callers serialized: {wall:?} wall for two concurrent {timeout:?} dials"
    );
}

/// Bug 2: accepted connections the server cannot service (here: over the
/// connection cap) are closed explicitly and counted in
/// `rpc.accepts_dropped`, not silently leaked.
#[test]
fn over_cap_accepts_are_closed_and_counted() {
    let registry = Registry::new();
    let options = ServerOptions { metrics: ServerMetrics::from_registry(&registry), max_conns: 2 };
    let server = TcpServer::spawn_with("127.0.0.1:0", Arc::new(Echo), options).unwrap();
    let addr = server.local_addr().to_string();

    // Two connections fit under the cap and answer RPCs.
    let a = TcpConn::new(addr.clone()).with_timeout(Duration::from_secs(5));
    let b = TcpConn::new(addr.clone()).with_timeout(Duration::from_secs(5));
    assert_eq!(a.call(b"one").unwrap(), b"one");
    assert_eq!(b.call(b"two").unwrap(), b"two");
    assert_eq!(registry.gauge("rpc.server_conns").get(), 2);

    // The third is accepted by the kernel, then closed by the reactor:
    // the peer observes EOF (or a reset), never a hung socket.
    let mut third = TcpStream::connect(&addr).unwrap();
    third.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut buf = [0u8; 1];
    match third.read(&mut buf) {
        Ok(0) => {} // clean close
        Err(e) if e.kind() == std::io::ErrorKind::ConnectionReset => {}
        other => panic!("over-cap connection saw {other:?}, expected EOF/reset"),
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    while registry.counter("rpc.accepts_dropped").get() == 0 {
        assert!(Instant::now() < deadline, "accepts_dropped never incremented");
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(registry.counter("rpc.accepts_dropped").get(), 1);

    // The two in-cap connections still work after the drop.
    assert_eq!(a.call(b"still").unwrap(), b"still");
}

/// Bug 3: shutting down a server bound to a wildcard address completes
/// promptly. The old self-poke (`connect(self.addr)`) dialed
/// `0.0.0.0:port`, which does not reach the listener deterministically;
/// the reactor waker does not care what the listener is bound to.
#[test]
fn wildcard_bound_server_shuts_down_promptly() {
    let mut server = TcpServer::spawn("0.0.0.0:0", Arc::new(Echo)).unwrap();
    let start = Instant::now();
    server.shutdown();
    assert!(
        start.elapsed() < Duration::from_secs(2),
        "wildcard server shutdown took {:?}",
        start.elapsed()
    );
}

/// Bug 3 (scrape plane): the HTTP endpoint had the same self-poke flaw.
#[test]
fn wildcard_bound_scrape_server_shuts_down_promptly() {
    let mut server = HttpScrapeServer::spawn("0.0.0.0:0", Registry::new()).unwrap();
    let start = Instant::now();
    server.shutdown();
    assert!(
        start.elapsed() < Duration::from_secs(2),
        "wildcard scrape server shutdown took {:?}",
        start.elapsed()
    );
}

/// Bug 4: a burst of concurrent scrapes is served by the fixed pool; the
/// server spawns no per-request threads no matter how many connections
/// pile up.
#[test]
fn scrape_burst_is_served_without_thread_growth() {
    let registry = Registry::new();
    registry.counter("burst.probe").add(7);
    let server = HttpScrapeServer::spawn("127.0.0.1:0", registry).unwrap();
    let addr = server.local_addr().to_string();

    // Warm up: one scrape so every server-side thread exists.
    let (status, _) = http_get(&addr, "/metrics", Duration::from_secs(2)).unwrap();
    assert_eq!(status, 200);
    let baseline = process_threads();

    // Pile up 24 connections that have not sent their request yet. The
    // old endpoint spawned a thread per accepted connection right here.
    let mut streams: Vec<TcpStream> = (0..24)
        .map(|_| {
            let s = TcpStream::connect(&addr).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            s
        })
        .collect();
    std::thread::sleep(Duration::from_millis(300));
    let during = process_threads();
    assert!(
        during <= baseline,
        "server grew threads under connection burst: {baseline} -> {during}"
    );

    // Every queued connection is still served once it speaks.
    for s in &mut streams {
        s.write_all(b"GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
    }
    let mut served = 0;
    for mut s in streams {
        let mut response = String::new();
        if s.read_to_string(&mut response).is_ok() && response.contains("burst.probe") {
            served += 1;
        }
    }
    assert_eq!(served, 24, "queued scrapes must all be answered by the pool");
}
