//! Property test: for arbitrary interleavings of multi-stream appends and
//! crashed tokens (holes), every stream's reconstructed playback equals the
//! ground-truth subsequence of the log.

use bytes::Bytes;
use corfu::cluster::{ClusterConfig, LocalCluster};
use corfu_stream::StreamClient;
use proptest::prelude::*;

/// One scripted log event.
#[derive(Debug, Clone)]
enum Event {
    /// Append to this non-empty set of streams (ids 0..4).
    Append(Vec<u32>),
    /// Reserve a token for these streams and crash (hole, later filled).
    CrashedToken(Vec<u32>),
}

fn streams_strategy() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::btree_set(0u32..4, 1..3).prop_map(|s| s.into_iter().collect())
}

fn event_strategy() -> impl Strategy<Value = Event> {
    prop_oneof![
        4 => streams_strategy().prop_map(Event::Append),
        1 => streams_strategy().prop_map(Event::CrashedToken),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn playback_matches_ground_truth(
        events in proptest::collection::vec(event_strategy(), 1..60),
        sync_every in 1usize..20,
    ) {
        let mut config = ClusterConfig::tiny();
        // Keep hole-filling fast so crashed tokens do not slow the test.
        config.client_options.hole_fill_timeout = std::time::Duration::from_millis(1);
        let cluster = LocalCluster::new(config);
        let writer = StreamClient::new(cluster.client().unwrap());
        let raw = cluster.client().unwrap();

        // Ground truth: stream -> ordered (offset, payload).
        let mut truth: Vec<Vec<(u64, Bytes)>> = vec![Vec::new(); 4];
        for (i, event) in events.iter().enumerate() {
            match event {
                Event::Append(streams) => {
                    let payload = Bytes::from(format!("e{i}").into_bytes());
                    let off = writer.multiappend(streams, payload.clone()).unwrap();
                    for &s in streams {
                        truth[s as usize].push((off, payload.clone()));
                    }
                }
                Event::CrashedToken(streams) => {
                    let tok = raw.token(streams).unwrap();
                    raw.fill(tok.offset).unwrap();
                }
            }
        }

        // A fresh reader reconstructs each stream, syncing periodically to
        // exercise both short (within-K) and long (striding) catch-ups.
        let reader = StreamClient::new(cluster.client().unwrap());
        for s in 0..4u32 {
            reader.open(s);
        }
        let mut played: Vec<Vec<(u64, Bytes)>> = vec![Vec::new(); 4];
        let mut synced = 0usize;
        loop {
            reader.sync(&[0, 1, 2, 3]).unwrap();
            for s in 0..4u32 {
                while let Some((off, entry)) = reader.readnext(s).unwrap() {
                    played[s as usize].push((off, entry.payload.clone()));
                }
            }
            synced += sync_every;
            if synced >= events.len() {
                break;
            }
        }
        for s in 0..4 {
            prop_assert_eq!(&played[s], &truth[s], "stream {} diverged", s);
        }
    }
}
