//! End-to-end tests of the streaming layer over an in-process CORFU cluster.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use corfu::cluster::{ClusterConfig, LocalCluster};
use corfu::{ConnFactory, NodeInfo, StreamId};
use corfu_stream::StreamClient;
use tango_rpc::ClientConn;

fn payload(i: u64) -> Bytes {
    Bytes::from(format!("p{i}").into_bytes())
}

fn cluster_with_client() -> (LocalCluster, StreamClient) {
    let cluster = LocalCluster::new(ClusterConfig::default());
    let client = StreamClient::new(cluster.client().unwrap());
    (cluster, client)
}

/// Plays a stream to its synced end, returning (offset, payload) pairs.
fn drain(client: &StreamClient, stream: StreamId) -> Vec<(u64, Bytes)> {
    let mut out = Vec::new();
    while let Some((off, entry)) = client.readnext(stream).unwrap() {
        out.push((off, entry.payload.clone()));
    }
    out
}

#[test]
fn single_stream_playback_in_order() {
    let (_cluster, client) = cluster_with_client();
    client.open(1);
    let mut expected = Vec::new();
    for i in 0..20 {
        let off = client.multiappend(&[1], payload(i)).unwrap();
        expected.push((off, payload(i)));
    }
    client.sync(&[1]).unwrap();
    assert_eq!(drain(&client, 1), expected);
    // Nothing more until new appends + sync.
    assert!(client.readnext(1).unwrap().is_none());
}

#[test]
fn interleaved_streams_are_filtered() {
    let (_cluster, client) = cluster_with_client();
    client.open(1);
    client.open(2);
    let mut exp1 = Vec::new();
    let mut exp2 = Vec::new();
    for i in 0..30 {
        let stream = if i % 3 == 0 { 1 } else { 2 };
        let off = client.multiappend(&[stream], payload(i)).unwrap();
        if stream == 1 {
            exp1.push((off, payload(i)));
        } else {
            exp2.push((off, payload(i)));
        }
    }
    client.sync(&[1, 2]).unwrap();
    assert_eq!(drain(&client, 1), exp1);
    assert_eq!(drain(&client, 2), exp2);
}

#[test]
fn multiappend_appears_in_every_stream() {
    let (_cluster, client) = cluster_with_client();
    client.open(1);
    client.open(2);
    client.multiappend(&[1], payload(0)).unwrap();
    let shared = client.multiappend(&[1, 2], payload(1)).unwrap();
    client.multiappend(&[2], payload(2)).unwrap();
    client.sync(&[1, 2]).unwrap();
    let s1 = drain(&client, 1);
    let s2 = drain(&client, 2);
    assert!(s1.iter().any(|(off, _)| *off == shared));
    assert!(s2.iter().any(|(off, _)| *off == shared));
    // It occupies a single log position: same offset in both streams.
    assert_eq!(s1.last().unwrap().0, shared);
    assert_eq!(s2.first().unwrap().0, shared);
}

#[test]
fn reader_sees_writes_from_other_clients() {
    let (cluster, writer) = cluster_with_client();
    let reader = StreamClient::new(cluster.client().unwrap());
    reader.open(5);
    for i in 0..10 {
        writer.multiappend(&[5], payload(i)).unwrap();
    }
    reader.sync(&[5]).unwrap();
    let got = drain(&reader, 5);
    assert_eq!(got.len(), 10);
    assert_eq!(got[3].1, payload(3));
    // Incremental: more writes, another sync.
    for i in 10..15 {
        writer.multiappend(&[5], payload(i)).unwrap();
    }
    reader.sync(&[5]).unwrap();
    let more = drain(&reader, 5);
    assert_eq!(more.len(), 5);
    assert_eq!(more[0].1, payload(10));
}

#[test]
fn backward_reconstruction_beyond_k() {
    // Write far more entries than K=4 between syncs; the reader must stride
    // backward through headers to rebuild the full list.
    let (cluster, writer) = cluster_with_client();
    let reader = StreamClient::new(cluster.client().unwrap());
    reader.open(9);
    for i in 0..200 {
        writer.multiappend(&[9], payload(i)).unwrap();
    }
    reader.sync(&[9]).unwrap();
    let got = drain(&reader, 9);
    assert_eq!(got.len(), 200);
    for (i, (_, p)) in got.iter().enumerate() {
        assert_eq!(*p, payload(i as u64));
    }
}

#[test]
fn junk_in_chain_falls_back_to_scan() {
    let (cluster, writer) = cluster_with_client();
    // Interleave entries of stream 3 with reserved-but-never-written tokens
    // for the same stream; fill the holes; a late reader must still recover
    // every real entry.
    let raw = cluster.client().unwrap();
    let mut real = Vec::new();
    for i in 0..20 {
        if i % 5 == 4 {
            // Crash simulation: token issued for stream 3, never written.
            let tok = raw.token(&[3]).unwrap();
            raw.fill(tok.offset).unwrap();
        } else {
            let off = writer.multiappend(&[3], payload(i)).unwrap();
            real.push((off, payload(i)));
        }
    }
    let reader = StreamClient::new(cluster.client().unwrap());
    reader.open(3);
    reader.sync(&[3]).unwrap();
    assert_eq!(drain(&reader, 3), real);
}

#[test]
fn junk_at_stream_tail_is_skipped() {
    let (cluster, writer) = cluster_with_client();
    let raw = cluster.client().unwrap();
    writer.multiappend(&[4], payload(0)).unwrap();
    // The most recent issued offset for the stream is junk.
    let tok = raw.token(&[4]).unwrap();
    raw.fill(tok.offset).unwrap();
    let reader = StreamClient::new(cluster.client().unwrap());
    reader.open(4);
    reader.sync(&[4]).unwrap();
    let got = drain(&reader, 4);
    assert_eq!(got.len(), 1);
    assert_eq!(got[0].1, payload(0));
}

#[test]
fn sync_many_streams_single_round_trip() {
    let (_cluster, client) = cluster_with_client();
    for s in 1..=8 {
        client.open(s);
        client.multiappend(&[s], payload(s as u64)).unwrap();
    }
    let tail = client.sync(&[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
    assert_eq!(tail, 8);
    for s in 1..=8 {
        let got = drain(&client, s);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1, payload(s as u64));
    }
}

#[test]
fn seek_supports_replay_and_skip() {
    let (_cluster, client) = cluster_with_client();
    client.open(1);
    let mut offs = Vec::new();
    for i in 0..10 {
        offs.push(client.multiappend(&[1], payload(i)).unwrap());
    }
    client.sync(&[1]).unwrap();
    drain(&client, 1);
    // Rewind to the 5th entry and replay.
    client.seek(1, offs[5]);
    let replay = drain(&client, 1);
    assert_eq!(replay.len(), 5);
    assert_eq!(replay[0].1, payload(5));
}

#[test]
fn forget_below_releases_state() {
    let (_cluster, client) = cluster_with_client();
    client.open(1);
    let mut offs = Vec::new();
    for i in 0..10 {
        offs.push(client.multiappend(&[1], payload(i)).unwrap());
    }
    client.sync(&[1]).unwrap();
    drain(&client, 1);
    client.forget_below(1, offs[6]);
    assert_eq!(client.known_offsets(1), offs[6..].to_vec());
}

#[test]
fn appender_does_not_need_to_play_the_stream() {
    // Remote writes (§4.1 case A): a client can append to a stream it never
    // opened or synced.
    let (cluster, producer) = cluster_with_client();
    let consumer = StreamClient::new(cluster.client().unwrap());
    consumer.open(7);
    producer.multiappend(&[7], payload(1)).unwrap();
    consumer.sync(&[7]).unwrap();
    assert_eq!(drain(&consumer, 7).len(), 1);
}

/// Wraps a connection factory so that calls to storage nodes sleep while
/// `gate` is set — a stand-in for one slow storage node.
struct DelayFactory {
    inner: Arc<dyn ConnFactory>,
    gate: Arc<AtomicBool>,
    delay: Duration,
}

struct DelayConn {
    inner: Arc<dyn ClientConn>,
    gate: Arc<AtomicBool>,
    delay: Duration,
}

impl ClientConn for DelayConn {
    fn call(&self, request: &[u8]) -> tango_rpc::Result<Vec<u8>> {
        if self.gate.load(Ordering::Relaxed) {
            std::thread::sleep(self.delay);
        }
        self.inner.call(request)
    }
}

impl ConnFactory for DelayFactory {
    fn connect(&self, node: &NodeInfo) -> Arc<dyn ClientConn> {
        let conn = self.inner.connect(node);
        if node.addr.starts_with("storage") {
            Arc::new(DelayConn { inner: conn, gate: Arc::clone(&self.gate), delay: self.delay })
        } else {
            conn
        }
    }
}

#[test]
fn slow_backpointer_walk_does_not_block_other_streams() {
    // Regression test: `sync` used to hold the client-wide lock across the
    // blocking storage reads of a backpointer walk, so a slow storage node
    // stalled `readnext`/`peek` on *every* stream. With the split cursor /
    // cache locks, an in-flight walk on stream 1 must not delay playback of
    // the already-cached stream 2.
    let cluster = LocalCluster::new(ClusterConfig::default());
    let gate = Arc::new(AtomicBool::new(false));
    let factory = Arc::new(DelayFactory {
        inner: cluster.conn_factory(),
        gate: Arc::clone(&gate),
        delay: Duration::from_millis(30),
    });
    let client = Arc::new(StreamClient::new(
        cluster
            .client_with_factory(
                factory,
                cluster.config().client_options.clone(),
                cluster.metrics().clone(),
            )
            .unwrap(),
    ));
    client.open(1);
    client.open(2);
    // Stream 2 is synced and cache-seeded before the node slows down.
    for i in 0..10 {
        client.multiappend(&[2], payload(i)).unwrap();
    }
    client.sync(&[2]).unwrap();
    // Stream 1 grows via a different client, so syncing it forces a real
    // backpointer walk (60 entries, K=4 -> ~15 strides) against storage.
    let writer = StreamClient::new(cluster.client().unwrap());
    for i in 0..60 {
        writer.multiappend(&[1], payload(100 + i)).unwrap();
    }
    gate.store(true, Ordering::Relaxed);
    let walker = std::thread::spawn({
        let client = Arc::clone(&client);
        move || client.sync(&[1]).unwrap()
    });
    // Give the walk time to get in flight, then play stream 2.
    std::thread::sleep(Duration::from_millis(60));
    let start = Instant::now();
    assert_eq!(drain(&client, 2).len(), 10);
    assert!(client.peek(2).is_none());
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_millis(100),
        "cached playback stalled behind the walk: {elapsed:?}"
    );
    assert!(!walker.is_finished(), "walk finished too fast to exercise the race");
    walker.join().unwrap();
    gate.store(false, Ordering::Relaxed);
    // The walk itself was correct.
    let drained = drain(&client, 1);
    assert_eq!(drained.len(), 60);
}

#[test]
fn prefetch_makes_incremental_readnext_cache_hits() {
    let (cluster, writer) = cluster_with_client();
    let reader = StreamClient::new(cluster.client().unwrap());
    reader.open(6);
    for i in 0..10 {
        writer.multiappend(&[6], payload(i)).unwrap();
    }
    reader.sync(&[6]).unwrap();
    drain(&reader, 6);
    // Incremental catch-up: K=4 new entries arrive, so the sequencer's
    // backpointer window covers them all and no walk is needed. The
    // readahead prefetcher pulls them in during `sync`; the subsequent
    // readnext calls must not touch the log.
    for i in 10..14 {
        writer.multiappend(&[6], payload(i)).unwrap();
    }
    reader.sync(&[6]).unwrap();
    let (_, misses_before) = reader.cache_stats();
    let got = drain(&reader, 6);
    assert_eq!(got.len(), 4);
    let (_, misses_after) = reader.cache_stats();
    assert_eq!(misses_after, misses_before, "readnext after sync went to the log");
}

#[test]
fn cache_avoids_refetching_multiappend_entries() {
    let (_cluster, client) = cluster_with_client();
    client.open(1);
    client.open(2);
    for i in 0..10 {
        client.multiappend(&[1, 2], payload(i)).unwrap();
    }
    client.sync(&[1, 2]).unwrap();
    drain(&client, 1);
    drain(&client, 2);
    let (hits, misses) = client.cache_stats();
    // Every playback fetch should hit the append-seeded cache.
    assert_eq!(misses, 0, "hits={hits} misses={misses}");
    assert!(hits >= 20);
}
