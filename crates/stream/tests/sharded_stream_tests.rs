//! The streaming layer over a sharded log: cross-log multiappend playback,
//! link resolution (the home-anchor decision seen from a reader), and
//! remap — a stream moved between logs must replay identically, with no
//! entry lost or duplicated.

use bytes::Bytes;
use corfu::cluster::{ClusterConfig, LocalCluster};
use corfu::reconfig::remap_stream;
use corfu::{log_of_offset, CrossLogLink, EntryEnvelope, Projection, StreamHeader, StreamId};
use corfu_stream::StreamClient;

fn stream_in_log(proj: &Projection, log: u32, from: StreamId) -> StreamId {
    (from..).find(|&s| proj.log_of_stream(s) == log).expect("shard map is total")
}

fn payload(i: u64) -> Bytes {
    Bytes::from(format!("p{i}").into_bytes())
}

/// A fresh client's full replay of `stream`: open, sync, drain.
fn replay(cluster: &LocalCluster, stream: StreamId) -> Vec<(u64, Bytes)> {
    let client = StreamClient::new(cluster.client().unwrap());
    client.open(stream);
    client.sync(&[stream]).unwrap();
    let mut out = Vec::new();
    while let Some((off, entry)) = client.readnext(stream).unwrap() {
        out.push((off, entry.payload.clone()));
    }
    out
}

#[test]
fn cross_log_multiappend_plays_back_in_both_logs() {
    let cluster = LocalCluster::new(ClusterConfig::sharded(2));
    let client = StreamClient::new(cluster.client().unwrap());
    let proj = client.corfu().projection();
    let s0 = stream_in_log(&proj, 0, 1);
    let s1 = stream_in_log(&proj, 1, 1);
    client.open(s0);
    client.open(s1);

    client.multiappend(&[s0], payload(0)).unwrap();
    let home = client.multiappend(&[s0, s1], payload(1)).unwrap();
    client.multiappend(&[s1], payload(2)).unwrap();
    assert_eq!(log_of_offset(home), 0, "the returned offset is the home anchor's");

    // Each stream plays the shared entry at its *own log's* part offset,
    // with the shared payload.
    let p0 = replay(&cluster, s0);
    let p1 = replay(&cluster, s1);
    assert_eq!(p0.iter().map(|(_, p)| p.clone()).collect::<Vec<_>>(), vec![payload(0), payload(1)]);
    assert_eq!(p1.iter().map(|(_, p)| p.clone()).collect::<Vec<_>>(), vec![payload(1), payload(2)]);
    assert_eq!(p0[1].0, home, "s0 sees the shared entry at the home anchor");
    let s1_shared = p1[0].0;
    assert_eq!(log_of_offset(s1_shared), 1, "s1 sees it at its log-1 part");
    assert_ne!(s1_shared, home, "one multiappend, one offset per participating log");
}

#[test]
fn committed_link_resolves_and_caches_both_sides() {
    // Manufacture a committed cross-log pair by hand (token + raw writes),
    // exactly the bytes `append_streams` would produce, then read the
    // non-home body: the reader must chase the link to the home anchor,
    // see the matching link, and deliver the entry.
    let cluster = LocalCluster::new(ClusterConfig::sharded(2));
    let corfu = cluster.client().unwrap();
    let proj = corfu.projection();
    let s0 = stream_in_log(&proj, 0, 1);
    let s1 = stream_in_log(&proj, 1, 1);

    let t0 = corfu.token(&[s0]).unwrap();
    let t1 = corfu.token(&[s1]).unwrap();
    let link = CrossLogLink { home: t0.offset, parts: vec![t0.offset, t1.offset] };
    let body = EntryEnvelope {
        headers: vec![StreamHeader { stream: s1, backpointers: t1.backpointers[0].clone() }],
        payload: Bytes::from_static(b"linked"),
        link: Some(link.clone()),
    };
    let anchor = EntryEnvelope {
        headers: vec![StreamHeader { stream: s0, backpointers: t0.backpointers[0].clone() }],
        payload: Bytes::from_static(b"linked"),
        link: Some(link.clone()),
    };
    corfu.write_at(t1.offset, &body.encode(t1.offset).unwrap()).unwrap();
    corfu.write_at(t0.offset, &anchor.encode(t0.offset).unwrap()).unwrap();

    let reader = StreamClient::new(cluster.client().unwrap());
    let got = reader.read_at(t1.offset).unwrap().expect("committed body must be delivered");
    assert_eq!(got.payload, Bytes::from_static(b"linked"));
    assert_eq!(got.link.as_ref(), Some(&link));
    // Resolution cached both sides: the home read is now a cache hit.
    let (hits_before, misses_before) = reader.cache_stats();
    let anchor_read = reader.read_at(t0.offset).unwrap().expect("anchor is data");
    assert_eq!(anchor_read.payload, Bytes::from_static(b"linked"));
    let (hits_after, misses_after) = reader.cache_stats();
    assert_eq!(hits_after, hits_before + 1, "the home anchor was cached by link resolution");
    assert_eq!(misses_after, misses_before);
}

#[test]
fn body_with_junked_home_resolves_aborted() {
    // The stranded-body shape a lost-token race leaves behind: the body
    // landed but the home slot got hole-filled. Readers must suppress it.
    let cluster = LocalCluster::new(ClusterConfig::sharded(2));
    let corfu = cluster.client().unwrap();
    let proj = corfu.projection();
    let s0 = stream_in_log(&proj, 0, 1);
    let s1 = stream_in_log(&proj, 1, 1);

    let t0 = corfu.token(&[s0]).unwrap();
    let t1 = corfu.token(&[s1]).unwrap();
    let link = CrossLogLink { home: t0.offset, parts: vec![t0.offset, t1.offset] };
    let body = EntryEnvelope {
        headers: vec![StreamHeader { stream: s1, backpointers: t1.backpointers[0].clone() }],
        payload: Bytes::from_static(b"stranded"),
        link: Some(link),
    };
    corfu.write_at(t1.offset, &body.encode(t1.offset).unwrap()).unwrap();
    corfu.fill(t0.offset).unwrap();

    let reader = StreamClient::new(cluster.client().unwrap());
    assert!(reader.read_at(t1.offset).unwrap().is_none(), "aborted body must be suppressed");
}

#[test]
fn body_with_foreign_home_entry_resolves_aborted() {
    // The home slot holds a *different* entry (a retry's fresh attempt, or
    // an unrelated append that won the slot): the old body's link does not
    // match and it must resolve aborted — never deliver under the wrong
    // commit decision.
    let cluster = LocalCluster::new(ClusterConfig::sharded(2));
    let corfu = cluster.client().unwrap();
    let proj = corfu.projection();
    let s0 = stream_in_log(&proj, 0, 1);
    let s1 = stream_in_log(&proj, 1, 1);

    let t0 = corfu.token(&[s0]).unwrap();
    let t1 = corfu.token(&[s1]).unwrap();
    let link = CrossLogLink { home: t0.offset, parts: vec![t0.offset, t1.offset] };
    let body = EntryEnvelope {
        headers: vec![StreamHeader { stream: s1, backpointers: t1.backpointers[0].clone() }],
        payload: Bytes::from_static(b"loser"),
        link: Some(link),
    };
    corfu.write_at(t1.offset, &body.encode(t1.offset).unwrap()).unwrap();
    // An unlinked entry wins the home slot.
    let foreign = EntryEnvelope::raw(Bytes::from_static(b"winner"));
    corfu.write_at(t0.offset, &foreign.encode(t0.offset).unwrap()).unwrap();

    let reader = StreamClient::new(cluster.client().unwrap());
    assert!(reader.read_at(t1.offset).unwrap().is_none(), "mismatched link must abort");
    // The foreign home entry itself is perfectly readable.
    let home = reader.read_at(t0.offset).unwrap().expect("the winner is data");
    assert_eq!(home.payload, Bytes::from_static(b"winner"));
}

#[test]
fn waiting_reader_forces_the_decision_on_an_undecided_body() {
    // Body written, home still unwritten: a waiting reader plays the
    // hole-fill protocol on the home slot — the in-flight multiappend
    // loses and the body resolves aborted. This is §3.2's hole filling
    // acting as the cross-log decision.
    let cluster = LocalCluster::new(ClusterConfig::sharded(2));
    let corfu = cluster.client().unwrap();
    let proj = corfu.projection();
    let s0 = stream_in_log(&proj, 0, 1);
    let s1 = stream_in_log(&proj, 1, 1);

    let t0 = corfu.token(&[s0]).unwrap();
    let t1 = corfu.token(&[s1]).unwrap();
    let link = CrossLogLink { home: t0.offset, parts: vec![t0.offset, t1.offset] };
    let body = EntryEnvelope {
        headers: vec![StreamHeader { stream: s1, backpointers: t1.backpointers[0].clone() }],
        payload: Bytes::from_static(b"undecided"),
        link: Some(link),
    };
    corfu.write_at(t1.offset, &body.encode(t1.offset).unwrap()).unwrap();

    let reader = StreamClient::new(cluster.client().unwrap());
    assert!(reader.read_at(t1.offset).unwrap().is_none(), "forced decision must abort");
    // The decision is durable: the writer's late anchor write loses the
    // slot, so a re-read still aborts.
    assert_eq!(
        corfu.read(t0.offset).unwrap(),
        corfu::ReadOutcome::Junk,
        "the home slot was junk-filled by the reader"
    );
}

#[test]
fn remap_replays_identically_and_new_appends_follow() {
    // Satellite: remap never loses or duplicates a stream's entries. The
    // per-stream replay is byte-identical before and after the remap, and
    // appends after it land in the target log and extend the same replay.
    let cluster = LocalCluster::new(ClusterConfig::sharded(2));
    let writer = StreamClient::new(cluster.client().unwrap());
    let proj = writer.corfu().projection();
    let stream = stream_in_log(&proj, 0, 1);
    writer.open(stream);

    for i in 0..12u64 {
        writer.multiappend(&[stream], payload(i)).unwrap();
    }
    let before = replay(&cluster, stream);
    assert_eq!(before.len(), 12);
    assert!(before.iter().all(|(off, _)| log_of_offset(*off) == 0));

    remap_stream(writer.corfu(), stream, 1).unwrap();

    let after = replay(&cluster, stream);
    assert_eq!(after, before, "remap must not lose, duplicate, or reorder entries");

    // New appends land in log 1 and extend the replay in order.
    let fresh_writer = StreamClient::new(cluster.client().unwrap());
    fresh_writer.open(stream);
    for i in 12..18u64 {
        fresh_writer.multiappend(&[stream], payload(i)).unwrap();
    }
    let extended = replay(&cluster, stream);
    assert_eq!(extended.len(), 18);
    assert_eq!(&extended[..12], &before[..], "the pre-remap prefix is untouched");
    for (i, (off, p)) in extended[12..].iter().enumerate() {
        assert_eq!(log_of_offset(*off), 1, "post-remap entries live in the target log");
        assert_eq!(p, &payload(12 + i as u64));
    }

    // A remap back is equally lossless.
    remap_stream(writer.corfu(), stream, 0).unwrap();
    assert_eq!(replay(&cluster, stream), extended);
    let (off, _) = writer.corfu().append_streams(&[stream], payload(99)).unwrap();
    assert_eq!(log_of_offset(off), 0, "the second remap re-homes appends to log 0");
    assert_eq!(replay(&cluster, stream).len(), 19);
}

#[test]
fn remap_preserves_cross_log_entries() {
    // A stream that shares multiappends with a neighbor in another log is
    // remapped; the shared entries (whose parts live in *both* logs) must
    // survive with their links intact.
    let cluster = LocalCluster::new(ClusterConfig::sharded(2));
    let writer = StreamClient::new(cluster.client().unwrap());
    let proj = writer.corfu().projection();
    let s0 = stream_in_log(&proj, 0, 1);
    let s1 = stream_in_log(&proj, 1, 1);
    writer.open(s0);
    writer.open(s1);

    writer.multiappend(&[s0], payload(0)).unwrap();
    writer.multiappend(&[s0, s1], payload(1)).unwrap();
    writer.multiappend(&[s0], payload(2)).unwrap();
    let before = replay(&cluster, s0);
    assert_eq!(before.len(), 3);

    remap_stream(writer.corfu(), s0, 1).unwrap();
    let after = replay(&cluster, s0);
    assert_eq!(after, before, "cross-log entries must survive the remap");

    // The shared entry still resolves committed from s1's side too.
    let p1 = replay(&cluster, s1);
    assert_eq!(p1.len(), 1);
    assert_eq!(p1[0].1, payload(1));

    // And both streams now append into log 1, sharing single-log entries.
    let off = writer.multiappend(&[s0, s1], payload(3)).unwrap();
    assert_eq!(log_of_offset(off), 1);
    let final0 = replay(&cluster, s0);
    let final1 = replay(&cluster, s1);
    assert_eq!(final0.last().unwrap(), &(off, payload(3)));
    assert_eq!(final1.last().unwrap(), &(off, payload(3)), "co-homed: one offset, no link");
    assert_eq!(log_of_offset(final1[0].0), 1, "s1's part of the shared entry lives in log 1");
}
