#![warn(missing_docs)]
//! Streams over the CORFU shared log (§5 of the Tango paper).
//!
//! A stream is the subsequence of log entries tagged with a stream id. Each
//! Tango object lives on its own stream, which is what lets a client
//! selectively consume only the objects it hosts ("layered partitioning",
//! §4) instead of playing the whole log.
//!
//! Stream membership is materialized client-side as a linked list of
//! offsets, reconstructed lazily from the per-entry backpointer headers: the
//! sequencer reports the last K offsets issued for a stream, and the client
//! strides backward through entry headers (N/K round trips for N entries,
//! each stride fetching its K-entry window in one bulk `ReadBatch`) until
//! it reconnects with what it already knows. Junk entries — holes patched
//! after a client crash — carry no headers and break the chain; the client
//! then falls back to a backward linear scan, exactly as described in the
//! paper (also batched). After `sync`, a readahead prefetcher bulk-fetches
//! the next window of member entries so steady-state `readnext` is served
//! from the decoded-entry cache without touching the network.
//!
//! [`StreamClient::sync`] brings a stream's linked list up to date and must
//! be called before [`StreamClient::readnext`] for linearizable semantics;
//! [`StreamClient::multiappend`] appends one entry to several streams
//! atomically (it occupies a single log position).

mod cache;
mod client;
mod cursor;

pub use cache::EntryCache;
pub use client::{StreamClient, StreamConfig};
pub use cursor::StreamCursor;

pub use corfu::{EntryEnvelope, LogOffset, StreamId};
