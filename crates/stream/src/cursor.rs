use corfu::{LogOffset, StreamId};

/// Client-side state for one stream: the reconstructed linked list of
/// member offsets plus an iterator over it.
///
/// Invariant: `offsets` is sorted ascending and, below `synced_tail`,
/// contains *every* offset the sequencer issued for this stream (some of
/// which may turn out to hold junk — `readnext` skips those lazily).
#[derive(Debug, Clone)]
pub struct StreamCursor {
    /// The stream this cursor tracks.
    pub id: StreamId,
    /// Known member offsets, ascending.
    offsets: Vec<LogOffset>,
    /// Index into `offsets` of the next entry to deliver.
    next: usize,
    /// Membership is complete for all offsets below this global tail.
    synced_tail: LogOffset,
}

impl StreamCursor {
    /// Creates an empty cursor.
    pub fn new(id: StreamId) -> Self {
        Self { id, offsets: Vec::new(), next: 0, synced_tail: 0 }
    }

    /// The highest known member offset.
    pub fn max_known(&self) -> Option<LogOffset> {
        self.offsets.last().copied()
    }

    /// The global tail through which membership is known.
    pub fn synced_tail(&self) -> LogOffset {
        self.synced_tail
    }

    /// All known member offsets (ascending).
    pub fn offsets(&self) -> &[LogOffset] {
        &self.offsets
    }

    /// The offset the next `readnext` will deliver, if any is known.
    pub fn peek(&self) -> Option<LogOffset> {
        self.offsets.get(self.next).copied()
    }

    /// Marks the head entry consumed and returns its offset.
    pub fn advance(&mut self) -> Option<LogOffset> {
        let off = self.peek()?;
        self.next += 1;
        Some(off)
    }

    /// Removes the entry at the iterator head without delivering it (used
    /// when it turns out to hold junk).
    pub fn drop_current(&mut self) {
        if self.next < self.offsets.len() {
            self.offsets.remove(self.next);
        }
    }

    /// Integrates newly discovered offsets (any order; duplicates of
    /// already-known offsets are dropped) and advances the synced tail.
    ///
    /// Discoveries may sort *below* the known suffix: a stream remapped
    /// back to a lower-numbered log gets numerically smaller offsets for
    /// newer entries. Those are merged into the membership list — keeping
    /// the list complete for `offsets`/`seek`/fresh replays — but the
    /// iterator never rewinds below its consumed watermark: offsets
    /// inserted at or below the last delivered offset are not delivered
    /// by this cursor, while insertions between the watermark and the
    /// next pending entry are.
    pub fn extend(&mut self, mut discovered: Vec<LogOffset>, tail: LogOffset) {
        discovered.sort_unstable();
        discovered.dedup();
        let watermark = self.next.checked_sub(1).map(|i| self.offsets[i]);
        let mut merged = Vec::with_capacity(self.offsets.len() + discovered.len());
        let mut a = self.offsets.iter().copied().peekable();
        let mut b = discovered.into_iter().peekable();
        loop {
            let next = match (a.peek(), b.peek()) {
                (Some(&x), Some(&y)) if x <= y => {
                    if x == y {
                        b.next();
                    }
                    a.next()
                }
                (Some(_), Some(_)) | (None, Some(_)) => b.next(),
                (Some(_), None) => a.next(),
                (None, None) => break,
            };
            merged.extend(next);
        }
        self.offsets = merged;
        self.next = match watermark {
            Some(w) => self.offsets.partition_point(|&o| o <= w),
            None => 0,
        };
        self.synced_tail = self.synced_tail.max(tail);
    }

    /// Repositions the iterator so the next delivered offset is the first
    /// one `>= offset`. Returns the number of entries skipped or rewound.
    pub fn seek(&mut self, offset: LogOffset) -> usize {
        let target = self.offsets.partition_point(|&o| o < offset);
        let moved = target.abs_diff(self.next);
        self.next = target;
        moved
    }

    /// Number of known-but-unconsumed entries.
    pub fn backlog(&self) -> usize {
        self.offsets.len() - self.next
    }

    /// The next (up to) `n` unconsumed member offsets, in delivery order —
    /// what the upcoming `readnext` calls will try to fetch. Feeds the
    /// readahead prefetcher.
    pub fn upcoming(&self, n: usize) -> &[LogOffset] {
        let end = self.next.saturating_add(n).min(self.offsets.len());
        &self.offsets[self.next..end]
    }

    /// Forgets membership below `horizon` (after a checkpoint + trim). The
    /// iterator position is preserved relative to the remaining entries.
    pub fn forget_below(&mut self, horizon: LogOffset) {
        let cut = self.offsets.partition_point(|&o| o < horizon);
        self.offsets.drain(..cut);
        self.next = self.next.saturating_sub(cut);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extend_and_iterate() {
        let mut c = StreamCursor::new(1);
        c.extend(vec![5, 2, 9], 10);
        assert_eq!(c.offsets(), &[2, 5, 9]);
        assert_eq!(c.peek(), Some(2));
        assert_eq!(c.advance(), Some(2));
        assert_eq!(c.advance(), Some(5));
        assert_eq!(c.backlog(), 1);
        c.extend(vec![12], 13);
        assert_eq!(c.advance(), Some(9));
        assert_eq!(c.advance(), Some(12));
        assert_eq!(c.advance(), None);
        assert_eq!(c.synced_tail(), 13);
    }

    #[test]
    fn extend_merges_below_the_known_suffix_without_rewinding() {
        let mut c = StreamCursor::new(1);
        c.extend(vec![10, 20], 30);
        assert_eq!(c.advance(), Some(10));
        // A remapped-back stream discovers offsets below the suffix: they
        // join the membership list, the iterator position is preserved.
        c.extend(vec![5, 15, 25], 30);
        assert_eq!(c.offsets(), &[5, 10, 15, 20, 25]);
        assert_eq!(c.advance(), Some(15), "position stays at the old next entry");
        assert_eq!(c.advance(), Some(20));
        assert_eq!(c.advance(), Some(25));
        // Fully consumed, then a below-max discovery arrives: skipped, not
        // rewound to; later above-max discoveries still deliver.
        c.extend(vec![1], 30);
        assert_eq!(c.peek(), None);
        c.extend(vec![40], 41);
        assert_eq!(c.advance(), Some(40));
        assert_eq!(c.offsets(), &[1, 5, 10, 15, 20, 25, 40]);
    }

    #[test]
    fn drop_current_skips_junk() {
        let mut c = StreamCursor::new(1);
        c.extend(vec![1, 2, 3], 4);
        assert_eq!(c.advance(), Some(1));
        c.drop_current(); // 2 turned out to be junk
        assert_eq!(c.advance(), Some(3));
        assert_eq!(c.offsets(), &[1, 3]);
    }

    #[test]
    fn seek_both_directions() {
        let mut c = StreamCursor::new(1);
        c.extend(vec![10, 20, 30, 40], 50);
        assert_eq!(c.seek(25), 2); // skips 10, 20
        assert_eq!(c.peek(), Some(30));
        assert_eq!(c.seek(0), 2); // rewind to start
        assert_eq!(c.peek(), Some(10));
        assert_eq!(c.seek(40), 3);
        assert_eq!(c.peek(), Some(40));
        assert_eq!(c.seek(41), 1);
        assert_eq!(c.peek(), None);
    }

    #[test]
    fn upcoming_windows_from_iterator_position() {
        let mut c = StreamCursor::new(1);
        c.extend(vec![10, 20, 30, 40], 50);
        assert_eq!(c.upcoming(2), &[10, 20]);
        c.advance();
        assert_eq!(c.upcoming(2), &[20, 30]);
        assert_eq!(c.upcoming(100), &[20, 30, 40]);
        assert_eq!(c.upcoming(usize::MAX), &[20, 30, 40]);
        assert_eq!(c.upcoming(0), &[] as &[LogOffset]);
    }

    #[test]
    fn forget_below_preserves_position() {
        let mut c = StreamCursor::new(1);
        c.extend(vec![1, 2, 3, 4, 5], 6);
        c.advance();
        c.advance();
        c.advance(); // next points at 4
        c.forget_below(3);
        assert_eq!(c.offsets(), &[3, 4, 5]);
        assert_eq!(c.peek(), Some(4));
    }
}
