use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use bytes::Bytes;
use corfu::{
    compose, log_of_offset, CorfuClient, CorfuError, EntryEnvelope, LogOffset, ReadOutcome,
    StreamId,
};
use parking_lot::Mutex;
use tango_metrics::{Counter, Events, Histogram, Registry, SpanKind, Tracer};

use crate::cache::EntryCache;
use crate::cursor::StreamCursor;

/// Tuning for the stream layer.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Capacity of the decoded-entry cache.
    pub cache_capacity: usize,
    /// Offsets fetched per bulk-read round trip on the batched paths
    /// (backpointer windows, linear scans, readahead, playback prefetch).
    /// A value `<= 1` disables batching and degrades to the serial
    /// per-offset read path — kept selectable so benchmarks can compare.
    pub read_batch: usize,
    /// After `sync`, up to this many known-but-uncached upcoming member
    /// offsets per stream are bulk-fetched so steady-state `readnext` is a
    /// cache hit. `0` disables readahead.
    pub prefetch_window: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self { cache_capacity: 65_536, read_batch: 32, prefetch_window: 32 }
    }
}

/// Stream-layer instruments (`stream.*`), bound to the CORFU client's
/// registry at construction.
#[derive(Clone)]
struct StreamMetrics {
    sync_latency_ns: Histogram,
    backpointer_walk: Histogram,
    read_batch_size: Histogram,
    cache_hits: Counter,
    cache_misses: Counter,
    tracer: Tracer,
    events: Events,
}

impl StreamMetrics {
    fn from_registry(registry: &Registry) -> Self {
        Self {
            sync_latency_ns: registry.histogram("stream.sync_latency_ns"),
            backpointer_walk: registry.histogram("stream.backpointer_walk"),
            read_batch_size: registry.histogram("stream.read_batch_size"),
            cache_hits: registry.counter("stream.cache_hits"),
            cache_misses: registry.counter("stream.cache_misses"),
            tracer: registry.tracer(),
            events: registry.events(),
        }
    }
}

/// The streaming interface over the shared log (§5).
///
/// Safe to share across threads. Cursor state and the entry cache are
/// locked independently, and neither lock is ever held across a network
/// read: a backpointer walk for one stream (which may block for up to the
/// hole-fill timeout) does not stall `readnext`/`peek` on other streams.
pub struct StreamClient {
    corfu: CorfuClient,
    config: StreamConfig,
    /// Cursor table. `learn` computes its walk against a floor snapshot
    /// and re-validates under this lock before integrating.
    cursors: Mutex<HashMap<StreamId, StreamCursor>>,
    /// Decoded-entry cache. Lookups and inserts bracket the (lock-free)
    /// network fetches.
    cache: Mutex<EntryCache>,
    /// Lowest possibly-live composite offset per log, raised by
    /// [`StreamClient::forget_below`] after checkpoint-driven trims.
    /// Backpointer walks and linear-scan fallbacks never descend below it:
    /// everything underneath is reclaimed and would read as `Trimmed`.
    trim_floor: Mutex<HashMap<u32, LogOffset>>,
    metrics: StreamMetrics,
}

impl StreamClient {
    /// Wraps a CORFU client.
    pub fn new(corfu: CorfuClient) -> Self {
        Self::with_config(corfu, StreamConfig::default())
    }

    /// Wraps a CORFU client with explicit configuration. The stream layer
    /// records `stream.*` metrics into the CORFU client's registry.
    pub fn with_config(corfu: CorfuClient, config: StreamConfig) -> Self {
        let metrics = StreamMetrics::from_registry(corfu.metrics());
        Self {
            corfu,
            cursors: Mutex::new(HashMap::new()),
            cache: Mutex::new(EntryCache::new(config.cache_capacity)),
            trim_floor: Mutex::new(HashMap::new()),
            config,
            metrics,
        }
    }

    /// The underlying CORFU client.
    pub fn corfu(&self) -> &CorfuClient {
        &self.corfu
    }

    /// The metrics registry this client records into (shared with the
    /// underlying CORFU client).
    pub fn metrics(&self) -> &Registry {
        self.corfu.metrics()
    }

    /// The configuration in effect.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// Registers a stream for playback. Idempotent.
    pub fn open(&self, stream: StreamId) {
        let mut cursors = self.cursors.lock();
        cursors.entry(stream).or_insert_with(|| StreamCursor::new(stream));
    }

    /// Appends `payload` to one or more streams atomically: the entry
    /// occupies a single position in the global total order (§4.1).
    /// A client does *not* need to play a stream to append to it.
    pub fn multiappend(&self, streams: &[StreamId], payload: Bytes) -> corfu::Result<LogOffset> {
        let (offset, envelope) = self.corfu.append_streams(streams, payload)?;
        self.cache.lock().insert(offset, Arc::new(envelope));
        Ok(offset)
    }

    /// Brings the membership lists of `streams` up to date in one sequencer
    /// round trip and returns the global tail. Call before `readnext` for
    /// linearizable semantics (the paper's explicit `sync`).
    ///
    /// After membership is integrated, the next [`StreamConfig::
    /// prefetch_window`] upcoming member offsets of each stream are
    /// bulk-fetched into the cache, so steady-state `readnext` never goes
    /// to the network.
    pub fn sync(&self, streams: &[StreamId]) -> corfu::Result<LogOffset> {
        // Sampled root span: the sequencer round trip below records a
        // `seq.query` child under it when the sample hits.
        let _span = self.metrics.tracer.root(SpanKind::ClientSync);
        let timer = self.metrics.sync_latency_ns.start();
        let (tail, backs) = self.corfu.tail_info(streams)?;
        for (&stream, seq_backs) in streams.iter().zip(backs.iter()) {
            self.learn(stream, tail, seq_backs)?;
        }
        if self.config.prefetch_window > 0 {
            let mut upcoming: Vec<LogOffset> = Vec::new();
            {
                let cursors = self.cursors.lock();
                for &stream in streams {
                    if let Some(c) = cursors.get(&stream) {
                        upcoming.extend_from_slice(c.upcoming(self.config.prefetch_window));
                    }
                }
            }
            upcoming.sort_unstable();
            upcoming.dedup();
            // Readahead must not stall on (or junk-fill) an in-flight
            // writer, so it reads without wait semantics; a hole left by a
            // slow writer is simply not cached and readnext waits it out.
            self.fetch_many(&upcoming, false)?;
        }
        timer.stop();
        Ok(tail)
    }

    /// Returns the next entry of `stream`, or `None` when the cursor has
    /// delivered everything discovered by the last `sync`. Junk entries
    /// (patched holes) are skipped transparently.
    pub fn readnext(
        &self,
        stream: StreamId,
    ) -> corfu::Result<Option<(LogOffset, Arc<EntryEnvelope>)>> {
        loop {
            let offset = {
                let cursors = self.cursors.lock();
                let cursor = cursors
                    .get(&stream)
                    .ok_or_else(|| CorfuError::Layout(format!("stream {stream} not open")))?;
                match cursor.peek() {
                    Some(off) => off,
                    None => return Ok(None),
                }
            };
            // Fetch outside the lock: wait_read may block on a hole.
            match self.fetch(offset)? {
                Some(entry) => {
                    let mut cursors = self.cursors.lock();
                    let cursor = cursors.get_mut(&stream).expect("checked above");
                    // Re-check: another thread may have advanced past us.
                    if cursor.peek() == Some(offset) {
                        cursor.advance();
                        if entry.belongs_to(stream) {
                            return Ok(Some((offset, entry)));
                        }
                        // Data entry that does not actually carry our
                        // header (can happen after a linear-scan fallback
                        // over-approximation): skip it.
                        continue;
                    }
                    continue;
                }
                None => {
                    // Junk or trimmed: remove from the membership list.
                    let mut cursors = self.cursors.lock();
                    let cursor = cursors.get_mut(&stream).expect("checked above");
                    if cursor.peek() == Some(offset) {
                        cursor.drop_current();
                    }
                    continue;
                }
            }
        }
    }

    /// The offset the next `readnext(stream)` would deliver, if known.
    pub fn peek(&self, stream: StreamId) -> Option<LogOffset> {
        self.cursors.lock().get(&stream).and_then(|c| c.peek())
    }

    /// Snapshot of the known member offsets of `stream` (ascending).
    pub fn known_offsets(&self, stream: StreamId) -> Vec<LogOffset> {
        self.cursors.lock().get(&stream).map(|c| c.offsets().to_vec()).unwrap_or_default()
    }

    /// The next (up to `limit`) unconsumed member offsets of `stream`
    /// strictly below `below`, in delivery order. Playback uses this to
    /// bulk-prefetch the exact range it is about to apply.
    pub fn pending_below(
        &self,
        stream: StreamId,
        below: LogOffset,
        limit: usize,
    ) -> Vec<LogOffset> {
        self.cursors
            .lock()
            .get(&stream)
            .map(|c| c.upcoming(limit).iter().copied().take_while(|&o| o < below).collect())
            .unwrap_or_default()
    }

    /// The global tail through which `stream`'s membership is known.
    pub fn synced_tail(&self, stream: StreamId) -> LogOffset {
        self.cursors.lock().get(&stream).map(|c| c.synced_tail()).unwrap_or(0)
    }

    /// Repositions `stream`'s iterator so the next delivered entry has
    /// offset `>= offset` (supports checkpoint restore and history
    /// rollback).
    pub fn seek(&self, stream: StreamId, offset: LogOffset) {
        if let Some(c) = self.cursors.lock().get_mut(&stream) {
            c.seek(offset);
        }
    }

    /// Reads and decodes the entry at `offset` (cache-through). Returns
    /// `None` for junk or trimmed offsets; waits out and finally fills holes.
    pub fn read_at(&self, offset: LogOffset) -> corfu::Result<Option<Arc<EntryEnvelope>>> {
        self.fetch(offset)
    }

    /// Bulk cache-through read: like [`StreamClient::read_at`] for every
    /// offset, but misses travel in `ReadBatch` round trips. Results come
    /// back in input order.
    pub fn read_many_at(
        &self,
        offsets: &[LogOffset],
    ) -> corfu::Result<Vec<Option<Arc<EntryEnvelope>>>> {
        self.fetch_many(offsets, true)
    }

    /// Bulk-fetches `offsets` into the entry cache and discards the
    /// decoded entries. Playback calls this ahead of its in-order delivery
    /// loop so the per-entry reads inside the loop are cache hits.
    pub fn fetch_into_cache(&self, offsets: &[LogOffset]) -> corfu::Result<()> {
        self.fetch_many(offsets, true).map(|_| ())
    }

    /// Forgets stream membership and cached entries below `horizon`
    /// (called after a checkpoint makes the prefix collectable), and
    /// raises the horizon's log's trim floor so later backpointer walks
    /// and scan fallbacks stop there instead of reading reclaimed slots.
    pub fn forget_below(&self, stream: StreamId, horizon: LogOffset) {
        if let Some(c) = self.cursors.lock().get_mut(&stream) {
            c.forget_below(horizon);
        }
        self.cache.lock().evict_below(horizon);
        let mut floors = self.trim_floor.lock();
        let slot = floors.entry(log_of_offset(horizon)).or_insert(horizon);
        *slot = (*slot).max(horizon);
    }

    /// The lowest composite offset of `log` that may still hold live data
    /// (`compose(log, 0)` until a trim is observed). Walks clamp here.
    pub fn trim_floor(&self, log: u32) -> LogOffset {
        self.trim_floor.lock().get(&log).copied().unwrap_or_else(|| compose(log, 0))
    }

    /// Cache (hits, misses), read from the same `stream.cache_hits` /
    /// `stream.cache_misses` counters the metrics snapshot reports.
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.metrics.cache_hits.get(), self.metrics.cache_misses.get())
    }

    /// The one cache-through fetch path (single-offset form). Waits out
    /// holes; `None` means junk or trimmed.
    fn fetch(&self, offset: LogOffset) -> corfu::Result<Option<Arc<EntryEnvelope>>> {
        if let Some(hit) = self.cache.lock().get(offset) {
            self.metrics.cache_hits.inc();
            return Ok(Some(hit));
        }
        self.metrics.cache_misses.inc();
        self.fetch_miss(offset, true)
    }

    /// Bulk cache-through fetch. Cached offsets are answered from the
    /// cache under one short lock; misses go out in `read_batch`-sized
    /// `read_many` round trips. With `wait`, unwritten offsets get
    /// `wait_read` semantics (poll, then junk-fill — never `Unwritten`);
    /// without it (readahead) they come back `None` and are *not* cached,
    /// so a prefetch racing an in-flight writer neither stalls nor
    /// junk-fills it.
    fn fetch_many(
        &self,
        offsets: &[LogOffset],
        wait: bool,
    ) -> corfu::Result<Vec<Option<Arc<EntryEnvelope>>>> {
        let mut out: Vec<Option<Arc<EntryEnvelope>>> = vec![None; offsets.len()];
        let mut misses: Vec<(usize, LogOffset)> = Vec::new();
        {
            let cache = self.cache.lock();
            for (idx, &off) in offsets.iter().enumerate() {
                match cache.get(off) {
                    Some(hit) => out[idx] = Some(hit),
                    None => misses.push((idx, off)),
                }
            }
        }
        self.metrics.cache_hits.add((offsets.len() - misses.len()) as u64);
        self.metrics.cache_misses.add(misses.len() as u64);
        if misses.is_empty() {
            return Ok(out);
        }
        if self.config.read_batch <= 1 {
            // Batching disabled: the serial per-offset path.
            for &(idx, off) in &misses {
                out[idx] = self.fetch_miss(off, wait)?;
            }
            return Ok(out);
        }
        for chunk in misses.chunks(self.config.read_batch) {
            let addrs: Vec<LogOffset> = chunk.iter().map(|&(_, off)| off).collect();
            self.metrics.read_batch_size.record(addrs.len() as u64);
            let outcomes = if wait {
                self.corfu.wait_read_many(&addrs)?
            } else {
                self.corfu.read_many(&addrs)?
            };
            // Cross-log bodies (link whose home is elsewhere) need a read
            // of their anchor to resolve commit/abort; collect them and
            // resolve outside the cache lock.
            let mut linked: Vec<(usize, LogOffset, Arc<EntryEnvelope>)> = Vec::new();
            {
                let mut cache = self.cache.lock();
                for (&(idx, off), outcome) in chunk.iter().zip(outcomes) {
                    out[idx] = match outcome {
                        ReadOutcome::Data(bytes) => {
                            let entry = Arc::new(EntryEnvelope::decode(&bytes, off)?);
                            if entry.link.as_ref().is_none_or(|l| l.home == off) {
                                cache.insert(off, Arc::clone(&entry));
                                Some(entry)
                            } else {
                                linked.push((idx, off, entry));
                                None
                            }
                        }
                        ReadOutcome::Junk | ReadOutcome::Trimmed => None,
                        ReadOutcome::Unwritten if !wait => None,
                        ReadOutcome::Unwritten => {
                            return Err(CorfuError::Unwritten { offset: off })
                        }
                    };
                }
            }
            for (idx, off, entry) in linked {
                out[idx] = self.resolve_link(off, entry, wait)?;
            }
        }
        Ok(out)
    }

    /// Resolves one cache miss against the log and caches data outcomes.
    fn fetch_miss(
        &self,
        offset: LogOffset,
        wait: bool,
    ) -> corfu::Result<Option<Arc<EntryEnvelope>>> {
        let outcome = if wait { self.corfu.wait_read(offset)? } else { self.corfu.read(offset)? };
        match outcome {
            ReadOutcome::Data(bytes) => {
                let entry = Arc::new(EntryEnvelope::decode(&bytes, offset)?);
                if entry.link.as_ref().is_none_or(|l| l.home == offset) {
                    self.cache.lock().insert(offset, Arc::clone(&entry));
                    Ok(Some(entry))
                } else {
                    self.resolve_link(offset, entry, wait)
                }
            }
            ReadOutcome::Junk | ReadOutcome::Trimmed => Ok(None),
            ReadOutcome::Unwritten if !wait => Ok(None),
            ReadOutcome::Unwritten => Err(CorfuError::Unwritten { offset }),
        }
    }

    /// Resolves a cross-log append body against its anchor (§"Sharded
    /// log"). The body at `offset` carries a link whose `home` is in
    /// another log: the append committed iff the home slot holds a data
    /// entry carrying the *same* link (the anchor is written last, so its
    /// write-once success is the atomic commit point). A junk-filled or
    /// foreign home means the append's token was lost after this body
    /// landed: the body is permanently dead and reads as absent, exactly
    /// like junk.
    ///
    /// Committed bodies are cached; an undecided body (`wait == false` and
    /// the home still unwritten) is not, so a later read re-resolves it.
    fn resolve_link(
        &self,
        offset: LogOffset,
        entry: Arc<EntryEnvelope>,
        wait: bool,
    ) -> corfu::Result<Option<Arc<EntryEnvelope>>> {
        let link = entry.link.as_ref().expect("caller checked the link");
        let outcome =
            if wait { self.corfu.wait_read(link.home)? } else { self.corfu.read(link.home)? };
        match outcome {
            ReadOutcome::Data(bytes) => {
                let home = Arc::new(EntryEnvelope::decode(&bytes, link.home)?);
                if home.link.as_ref() == Some(link) {
                    let mut cache = self.cache.lock();
                    cache.insert(link.home, home);
                    cache.insert(offset, Arc::clone(&entry));
                    Ok(Some(entry))
                } else {
                    // The home slot went to someone else: this body's
                    // append aborted.
                    Ok(None)
                }
            }
            // Junk home: the appender's home token was lost and the slot
            // was patched — aborted. Trimmed home: the decision is gone,
            // which can only happen after the whole append's prefix was
            // checkpointed; the body is below any live read.
            ReadOutcome::Junk | ReadOutcome::Trimmed => Ok(None),
            ReadOutcome::Unwritten => Ok(None),
        }
    }

    /// Integrates the sequencer's last-K issued offsets for `stream` into
    /// its cursor, striding backward through entry headers until the chain
    /// reconnects with known state. Falls back to a backward linear scan
    /// when junk breaks the backpointer chain.
    ///
    /// Reconnection is a *membership* check, not a numeric floor: once a
    /// stream has been remapped between logs, composite offsets no longer
    /// sort in stream order (a stream returning to a lower-numbered log
    /// gets numerically smaller offsets for newer entries). A known
    /// offset's older chain was walked when it was first learned, so
    /// touching any known offset ends the walk — regardless of where the
    /// offsets sort.
    ///
    /// Each stride fetches its whole backpointer window in one bulk read
    /// (the window's entries are due for playback anyway, so the batch
    /// doubles as a cache warmer), and no cursor lock is held across any
    /// of the network reads: the known set is snapshotted up front and the
    /// discoveries merged into the live cursor at the end.
    fn learn(
        &self,
        stream: StreamId,
        tail: LogOffset,
        seq_backs: &[LogOffset],
    ) -> corfu::Result<()> {
        let known: Vec<LogOffset> = {
            let mut cursors = self.cursors.lock();
            cursors.entry(stream).or_insert_with(|| StreamCursor::new(stream)).offsets().to_vec()
        };
        let is_known = |off: LogOffset| known.binary_search(&off).is_ok();

        // Offsets below a log's trim floor are reclaimed — a stale
        // sequencer backpointer landing there must not seed a walk into
        // trimmed territory.
        let above_floor = |off: LogOffset| off >= self.trim_floor(log_of_offset(off));
        let mut discovered: Vec<LogOffset> = seq_backs
            .iter()
            .copied()
            .filter(|&o| o != u64::MAX && !is_known(o) && above_floor(o))
            .collect();
        // The playback side of a remap: fresh discoveries landing in a
        // different log than anything the cursor knew means this stream's
        // home moved (or its entries span logs). Journalled so a cluster
        // timeline shows readers reacting to the remap, not just the
        // coordinator performing it.
        if let (Some(&newest), Some(&prev)) = (discovered.first(), known.last()) {
            if log_of_offset(newest) != log_of_offset(prev) {
                self.metrics.events.emit(
                    tango_metrics::EventKind::ShardRemapped,
                    self.corfu.epoch(),
                    log_of_offset(newest) as u64,
                    stream as u64,
                );
            }
        }
        // Entries fetched while striding/scanning backward (the walk).
        let mut walked = 0u64;

        let reconnected_at_seq = seq_backs.iter().any(|&o| o != u64::MAX && is_known(o));
        if !discovered.is_empty() && !reconnected_at_seq {
            // Windows are most-recent-first in *stream order*, so each
            // stride anchors on the window's last element — its
            // stream-oldest entry. The anchor set guards termination (a
            // monotonically decreasing offset cannot, across a remap).
            let mut window: Vec<LogOffset> = discovered.clone();
            let mut anchors: HashSet<LogOffset> = HashSet::new();
            loop {
                let oldest = *window.last().expect("window is non-empty");
                if !anchors.insert(oldest) {
                    // Defensive: never re-stride an anchor.
                    break;
                }
                // NOTE: the bulk fetch may block while writers finish.
                let fetched = self.fetch_many(&window, true)?;
                walked += window.len() as u64;
                let header = match fetched.last().expect("one result per offset") {
                    // Junk broke the chain — and a member entry written
                    // without its header cannot happen with our client, but
                    // be defensive: linear backward scan (§5), batched,
                    // over the anchor's own log segment.
                    None => None,
                    Some(entry) => entry.header_for(stream).cloned(),
                };
                let Some(header) = header else {
                    let log = log_of_offset(oldest);
                    // Scan down to the newest known member in this log, or
                    // to the log's trim floor — never into reclaimed slots.
                    let lo = known
                        .iter()
                        .rev()
                        .copied()
                        .find(|&o| log_of_offset(o) == log)
                        .map(|o| o + 1)
                        .unwrap_or_else(|| compose(log, 0))
                        .max(self.trim_floor(log));
                    walked += self.scan_backward(stream, lo, oldest, &mut discovered)?;
                    break;
                };
                let older: Vec<LogOffset> = header
                    .backpointers
                    .iter()
                    .copied()
                    .filter(|&o| o != u64::MAX && !is_known(o) && above_floor(o))
                    .collect();
                let at_stream_start = header.backpointers.is_empty()
                    || header.backpointers.iter().all(|&o| o == u64::MAX);
                let reconnected = header.backpointers.iter().any(|&o| o != u64::MAX && is_known(o));
                discovered.extend(older.iter().copied());
                if at_stream_start || reconnected || older.is_empty() {
                    break;
                }
                window = older;
            }
        }
        discovered.sort_unstable();
        discovered.dedup();
        let mut cursors = self.cursors.lock();
        let cursor = cursors.entry(stream).or_insert_with(|| StreamCursor::new(stream));
        // A concurrent sync of the same stream may have integrated part of
        // the walk already; `extend` merges and drops duplicates.
        cursor.extend(discovered, tail);
        self.metrics.backpointer_walk.record(walked);
        Ok(())
    }

    /// Batched linear backward scan of `(lo..hi)`, pushing the offsets
    /// whose entries carry `stream`'s header. Returns entries walked.
    fn scan_backward(
        &self,
        stream: StreamId,
        lo: LogOffset,
        hi: LogOffset,
        discovered: &mut Vec<LogOffset>,
    ) -> corfu::Result<u64> {
        let mut walked = 0u64;
        let step = self.config.read_batch.max(1) as u64;
        let mut end = hi;
        while end > lo {
            let start = end.saturating_sub(step).max(lo);
            let range: Vec<LogOffset> = (start..end).collect();
            let fetched = self.fetch_many(&range, true)?;
            walked += range.len() as u64;
            for (&off, entry) in range.iter().zip(fetched.iter()) {
                if entry.as_ref().map(|e| e.belongs_to(stream)).unwrap_or(false) {
                    discovered.push(off);
                }
            }
            end = start;
        }
        Ok(walked)
    }
}
