use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use corfu::{CorfuClient, CorfuError, EntryEnvelope, LogOffset, ReadOutcome, StreamId};
use parking_lot::Mutex;
use tango_metrics::{Counter, Histogram, Registry, SpanKind, Tracer};

use crate::cache::EntryCache;
use crate::cursor::StreamCursor;

/// Tuning for the stream layer.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Capacity of the decoded-entry cache.
    pub cache_capacity: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self { cache_capacity: 65_536 }
    }
}

struct Inner {
    cursors: HashMap<StreamId, StreamCursor>,
    cache: EntryCache,
}

/// Stream-layer instruments (`stream.*`), bound to the CORFU client's
/// registry at construction.
#[derive(Clone)]
struct StreamMetrics {
    sync_latency_ns: Histogram,
    backpointer_walk: Histogram,
    cache_hits: Counter,
    cache_misses: Counter,
    tracer: Tracer,
}

impl StreamMetrics {
    fn from_registry(registry: &Registry) -> Self {
        Self {
            sync_latency_ns: registry.histogram("stream.sync_latency_ns"),
            backpointer_walk: registry.histogram("stream.backpointer_walk"),
            cache_hits: registry.counter("stream.cache_hits"),
            cache_misses: registry.counter("stream.cache_misses"),
            tracer: registry.tracer(),
        }
    }
}

/// The streaming interface over the shared log (§5).
///
/// Safe to share across threads; a mutex serializes cursor/cache mutation
/// (the Tango runtime serializes playback anyway).
pub struct StreamClient {
    corfu: CorfuClient,
    inner: Mutex<Inner>,
    metrics: StreamMetrics,
}

impl StreamClient {
    /// Wraps a CORFU client.
    pub fn new(corfu: CorfuClient) -> Self {
        Self::with_config(corfu, StreamConfig::default())
    }

    /// Wraps a CORFU client with explicit configuration. The stream layer
    /// records `stream.*` metrics into the CORFU client's registry.
    pub fn with_config(corfu: CorfuClient, config: StreamConfig) -> Self {
        let metrics = StreamMetrics::from_registry(corfu.metrics());
        Self {
            corfu,
            inner: Mutex::new(Inner {
                cursors: HashMap::new(),
                cache: EntryCache::new(config.cache_capacity),
            }),
            metrics,
        }
    }

    /// The underlying CORFU client.
    pub fn corfu(&self) -> &CorfuClient {
        &self.corfu
    }

    /// The metrics registry this client records into (shared with the
    /// underlying CORFU client).
    pub fn metrics(&self) -> &Registry {
        self.corfu.metrics()
    }

    /// Registers a stream for playback. Idempotent.
    pub fn open(&self, stream: StreamId) {
        let mut inner = self.inner.lock();
        inner.cursors.entry(stream).or_insert_with(|| StreamCursor::new(stream));
    }

    /// Appends `payload` to one or more streams atomically: the entry
    /// occupies a single position in the global total order (§4.1).
    /// A client does *not* need to play a stream to append to it.
    pub fn multiappend(&self, streams: &[StreamId], payload: Bytes) -> corfu::Result<LogOffset> {
        let (offset, envelope) = self.corfu.append_streams(streams, payload)?;
        self.inner.lock().cache.insert(offset, Arc::new(envelope));
        Ok(offset)
    }

    /// Brings the membership lists of `streams` up to date in one sequencer
    /// round trip and returns the global tail. Call before `readnext` for
    /// linearizable semantics (the paper's explicit `sync`).
    pub fn sync(&self, streams: &[StreamId]) -> corfu::Result<LogOffset> {
        // Sampled root span: the sequencer round trip below records a
        // `seq.query` child under it when the sample hits.
        let _span = self.metrics.tracer.root(SpanKind::ClientSync);
        let timer = self.metrics.sync_latency_ns.start();
        let (tail, backs) = self.corfu.tail_info(streams)?;
        let mut inner = self.inner.lock();
        for (&stream, seq_backs) in streams.iter().zip(backs.iter()) {
            self.learn(&mut inner, stream, tail, seq_backs)?;
        }
        timer.stop();
        Ok(tail)
    }

    /// Returns the next entry of `stream`, or `None` when the cursor has
    /// delivered everything discovered by the last `sync`. Junk entries
    /// (patched holes) are skipped transparently.
    pub fn readnext(
        &self,
        stream: StreamId,
    ) -> corfu::Result<Option<(LogOffset, Arc<EntryEnvelope>)>> {
        loop {
            let offset = {
                let inner = self.inner.lock();
                let cursor = inner
                    .cursors
                    .get(&stream)
                    .ok_or_else(|| CorfuError::Layout(format!("stream {stream} not open")))?;
                match cursor.peek() {
                    Some(off) => off,
                    None => return Ok(None),
                }
            };
            // Fetch outside the lock: wait_read may block on a hole.
            match self.fetch(offset)? {
                Some(entry) => {
                    let mut inner = self.inner.lock();
                    let cursor = inner.cursors.get_mut(&stream).expect("checked above");
                    // Re-check: another thread may have advanced past us.
                    if cursor.peek() == Some(offset) {
                        cursor.advance();
                        if entry.belongs_to(stream) {
                            return Ok(Some((offset, entry)));
                        }
                        // Data entry that does not actually carry our
                        // header (can happen after a linear-scan fallback
                        // over-approximation): skip it.
                        continue;
                    }
                    continue;
                }
                None => {
                    // Junk or trimmed: remove from the membership list.
                    let mut inner = self.inner.lock();
                    let cursor = inner.cursors.get_mut(&stream).expect("checked above");
                    if cursor.peek() == Some(offset) {
                        cursor.drop_current();
                    }
                    continue;
                }
            }
        }
    }

    /// The offset the next `readnext(stream)` would deliver, if known.
    pub fn peek(&self, stream: StreamId) -> Option<LogOffset> {
        self.inner.lock().cursors.get(&stream).and_then(|c| c.peek())
    }

    /// Snapshot of the known member offsets of `stream` (ascending).
    pub fn known_offsets(&self, stream: StreamId) -> Vec<LogOffset> {
        self.inner.lock().cursors.get(&stream).map(|c| c.offsets().to_vec()).unwrap_or_default()
    }

    /// The global tail through which `stream`'s membership is known.
    pub fn synced_tail(&self, stream: StreamId) -> LogOffset {
        self.inner.lock().cursors.get(&stream).map(|c| c.synced_tail()).unwrap_or(0)
    }

    /// Repositions `stream`'s iterator so the next delivered entry has
    /// offset `>= offset` (supports checkpoint restore and history
    /// rollback).
    pub fn seek(&self, stream: StreamId, offset: LogOffset) {
        if let Some(c) = self.inner.lock().cursors.get_mut(&stream) {
            c.seek(offset);
        }
    }

    /// Reads and decodes the entry at `offset` (cache-through). Returns
    /// `None` for junk or trimmed offsets; waits out and finally fills holes.
    pub fn read_at(&self, offset: LogOffset) -> corfu::Result<Option<Arc<EntryEnvelope>>> {
        self.fetch(offset)
    }

    /// Forgets stream membership and cached entries below `horizon`
    /// (called after a checkpoint makes the prefix collectable).
    pub fn forget_below(&self, stream: StreamId, horizon: LogOffset) {
        let mut inner = self.inner.lock();
        if let Some(c) = inner.cursors.get_mut(&stream) {
            c.forget_below(horizon);
        }
        inner.cache.evict_below(horizon);
    }

    /// Cache hit/miss counters, for tests and benchmarks.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.inner.lock().cache.stats()
    }

    fn fetch(&self, offset: LogOffset) -> corfu::Result<Option<Arc<EntryEnvelope>>> {
        if let Some(hit) = self.inner.lock().cache.get(offset) {
            self.metrics.cache_hits.inc();
            return Ok(Some(hit));
        }
        self.metrics.cache_misses.inc();
        match self.corfu.wait_read(offset)? {
            ReadOutcome::Data(bytes) => {
                let entry = Arc::new(EntryEnvelope::decode(&bytes, offset)?);
                self.inner.lock().cache.insert(offset, Arc::clone(&entry));
                Ok(Some(entry))
            }
            ReadOutcome::Junk | ReadOutcome::Trimmed => Ok(None),
            ReadOutcome::Unwritten => Err(CorfuError::Unwritten { offset }),
        }
    }

    /// Integrates the sequencer's last-K issued offsets for `stream` into
    /// its cursor, striding backward through entry headers until the chain
    /// reconnects with known state. Falls back to a backward linear scan
    /// when junk breaks the backpointer chain.
    fn learn(
        &self,
        inner: &mut Inner,
        stream: StreamId,
        tail: LogOffset,
        seq_backs: &[LogOffset],
    ) -> corfu::Result<()> {
        let cursor = inner.cursors.entry(stream).or_insert_with(|| StreamCursor::new(stream));
        let floor = cursor.max_known(); // Collect strictly greater offsets.
        let beyond = |off: LogOffset| floor.map(|f| off > f).unwrap_or(true);

        let mut discovered: Vec<LogOffset> =
            seq_backs.iter().copied().filter(|&o| o != u64::MAX && beyond(o)).collect();
        if discovered.is_empty() {
            cursor.extend(Vec::new(), tail);
            self.metrics.backpointer_walk.record(0);
            return Ok(());
        }
        // Entries fetched while striding/scanning backward (the walk).
        let mut walked = 0u64;

        // Walk backward from the oldest entry the sequencer told us about.
        // Backpointer lists are contiguous most-recent-first windows, so if
        // any reported offset is at or below `floor`, everything newer is
        // already in `discovered` and the chain has reconnected.
        let mut oldest = *discovered.iter().min().expect("non-empty");
        let mut chain_complete = seq_backs.iter().any(|&o| o != u64::MAX && !beyond(o));
        while !chain_complete {
            // We need entries of this stream older than `oldest` (down to
            // floor, exclusive). Read `oldest`'s headers.
            // NOTE: the fetch below may block while a writer finishes.
            walked += 1;
            let fetched = match self.fetch_unlocked(inner, oldest)? {
                Some(entry) => entry,
                None => {
                    // Junk broke the chain: linear backward scan (§5).
                    let lo = floor.map(|f| f + 1).unwrap_or(0);
                    for off in (lo..oldest).rev() {
                        walked += 1;
                        match self.fetch_unlocked(inner, off)? {
                            Some(entry) if entry.belongs_to(stream) => discovered.push(off),
                            _ => {}
                        }
                    }
                    break;
                }
            };
            let Some(header) = fetched.header_for(stream) else {
                // The offset was issued for this stream but written without
                // its header (cannot happen with our client; be defensive).
                let lo = floor.map(|f| f + 1).unwrap_or(0);
                for off in (lo..oldest).rev() {
                    walked += 1;
                    match self.fetch_unlocked(inner, off)? {
                        Some(entry) if entry.belongs_to(stream) => discovered.push(off),
                        _ => {}
                    }
                }
                break;
            };
            let older: Vec<LogOffset> = header
                .backpointers
                .iter()
                .copied()
                .filter(|&o| o != u64::MAX && beyond(o))
                .collect();
            let at_stream_start = header.backpointers.is_empty()
                || header.backpointers.iter().all(|&o| o == u64::MAX);
            let reconnected = header.backpointers.iter().any(|&o| o != u64::MAX && !beyond(o));
            if at_stream_start || reconnected || older.is_empty() {
                discovered.extend(older);
                chain_complete = true;
            } else {
                let new_oldest = *older.iter().min().expect("non-empty");
                discovered.extend(older);
                discovered.sort_unstable();
                discovered.dedup();
                if new_oldest >= oldest {
                    // Defensive: no progress; avoid an infinite loop.
                    chain_complete = true;
                } else {
                    oldest = new_oldest;
                }
            }
        }
        discovered.sort_unstable();
        discovered.dedup();
        let cursor = inner.cursors.get_mut(&stream).expect("inserted above");
        cursor.extend(discovered, tail);
        self.metrics.backpointer_walk.record(walked);
        Ok(())
    }

    /// Cache-through fetch that uses the already-held `inner` borrow.
    fn fetch_unlocked(
        &self,
        inner: &mut Inner,
        offset: LogOffset,
    ) -> corfu::Result<Option<Arc<EntryEnvelope>>> {
        if let Some(hit) = inner.cache.get(offset) {
            self.metrics.cache_hits.inc();
            return Ok(Some(hit));
        }
        self.metrics.cache_misses.inc();
        match self.corfu.wait_read(offset)? {
            ReadOutcome::Data(bytes) => {
                let entry = Arc::new(EntryEnvelope::decode(&bytes, offset)?);
                inner.cache.insert(offset, Arc::clone(&entry));
                Ok(Some(entry))
            }
            ReadOutcome::Junk | ReadOutcome::Trimmed => Ok(None),
            ReadOutcome::Unwritten => Err(CorfuError::Unwritten { offset }),
        }
    }
}
