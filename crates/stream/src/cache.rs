use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use corfu::{EntryEnvelope, LogOffset};

/// A bounded FIFO cache of decoded log entries.
///
/// A commit record appended to multiple streams is encountered once per
/// stream during playback; the cache ensures it is fetched from the log only
/// once. The generating client also seeds the cache on append, so it usually
/// replays its own writes without any log reads.
pub struct EntryCache {
    map: HashMap<LogOffset, Arc<EntryEnvelope>>,
    order: VecDeque<LogOffset>,
    capacity: usize,
}

impl EntryCache {
    /// Creates a cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        Self { map: HashMap::new(), order: VecDeque::new(), capacity }
    }

    /// Looks up the entry at `offset`. Hit/miss accounting lives in the
    /// stream client's `stream.cache_hits/misses` counters, not here.
    pub fn get(&self, offset: LogOffset) -> Option<Arc<EntryEnvelope>> {
        self.map.get(&offset).map(Arc::clone)
    }

    /// Inserts an entry, evicting the oldest if full.
    pub fn insert(&mut self, offset: LogOffset, entry: Arc<EntryEnvelope>) {
        if self.map.contains_key(&offset) {
            return;
        }
        if self.map.len() >= self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.map.remove(&old);
            }
        }
        self.map.insert(offset, entry);
        self.order.push_back(offset);
    }

    /// Drops every cached entry below `horizon` (after a prefix trim).
    pub fn evict_below(&mut self, horizon: LogOffset) {
        self.map.retain(|&off, _| off >= horizon);
        self.order.retain(|&off| off >= horizon);
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn entry(tag: u8) -> Arc<EntryEnvelope> {
        Arc::new(EntryEnvelope::raw(Bytes::from(vec![tag])))
    }

    #[test]
    fn fifo_eviction() {
        let mut c = EntryCache::new(2);
        c.insert(1, entry(1));
        c.insert(2, entry(2));
        c.insert(3, entry(3));
        assert!(c.get(1).is_none());
        assert!(c.get(2).is_some());
        assert!(c.get(3).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn duplicate_insert_is_noop() {
        let mut c = EntryCache::new(2);
        c.insert(1, entry(1));
        c.insert(1, entry(9));
        assert_eq!(c.get(1).unwrap().payload, Bytes::from(vec![1]));
    }

    #[test]
    fn evict_below_horizon() {
        let mut c = EntryCache::new(10);
        for off in 0..5 {
            c.insert(off, entry(off as u8));
        }
        c.evict_below(3);
        assert!(c.get(2).is_none());
        assert!(c.get(3).is_some());
        assert_eq!(c.len(), 2);
    }
}
