/// An append-only encoder over a growable byte buffer.
///
/// All multi-byte integers are little-endian. Variable-length values use
/// LEB128 varints. Byte strings and UTF-8 strings are varint-length-prefixed.
#[derive(Debug, Default, Clone)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self { buf: Vec::new() }
    }

    /// Creates a writer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        Self { buf: Vec::with_capacity(cap) }
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    /// Returns the bytes encoded so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Returns the number of bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns true if nothing has been encoded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a LEB128 varint (1–10 bytes).
    pub fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Appends raw bytes with no length prefix.
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a varint-length-prefixed byte string.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_varint(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a varint-length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }

    /// Appends a `bool` as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }
}
