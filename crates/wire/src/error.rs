use std::fmt;

/// Errors produced while decoding wire data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the value was fully decoded.
    Truncated {
        /// Bytes needed to make progress.
        needed: usize,
        /// Bytes remaining in the input.
        remaining: usize,
    },
    /// An enum tag byte had no corresponding variant.
    InvalidTag {
        /// The record type being decoded.
        what: &'static str,
        /// The offending tag value.
        tag: u64,
    },
    /// A length-prefixed string was not valid UTF-8.
    InvalidUtf8,
    /// A varint was longer than the maximum encodable width.
    VarintOverflow,
    /// A declared length exceeded a sanity bound.
    LengthOutOfRange {
        /// The declared length.
        declared: u64,
        /// The maximum permitted.
        max: u64,
    },
    /// A checksum did not match its payload.
    ChecksumMismatch,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, remaining } => {
                write!(f, "truncated input: needed {needed} bytes, {remaining} remaining")
            }
            WireError::InvalidTag { what, tag } => {
                write!(f, "invalid tag {tag} while decoding {what}")
            }
            WireError::InvalidUtf8 => write!(f, "length-prefixed string is not valid UTF-8"),
            WireError::VarintOverflow => write!(f, "varint exceeds 64 bits"),
            WireError::LengthOutOfRange { declared, max } => {
                write!(f, "declared length {declared} exceeds bound {max}")
            }
            WireError::ChecksumMismatch => write!(f, "checksum mismatch"),
        }
    }
}

impl std::error::Error for WireError {}
