use bytes::Bytes;

use crate::{Reader, Result, WireError, Writer};

/// Maximum collection length accepted while decoding, as a corruption guard.
const MAX_SEQ_LEN: u64 = 1 << 28;

/// A value that can be serialized to the wire format.
pub trait Encode {
    /// Appends the encoding of `self` to `w`.
    fn encode(&self, w: &mut Writer);
}

/// A value that can be deserialized from the wire format.
pub trait Decode: Sized {
    /// Decodes a value from `r`, consuming exactly its encoding.
    fn decode(r: &mut Reader<'_>) -> Result<Self>;
}

/// Encodes `value` into a fresh byte vector.
pub fn encode_to_vec<T: Encode + ?Sized>(value: &T) -> Vec<u8> {
    let mut w = Writer::new();
    value.encode(&mut w);
    w.into_vec()
}

/// Decodes a value from `buf`, requiring the whole buffer to be consumed.
pub fn decode_from_slice<T: Decode>(buf: &[u8]) -> Result<T> {
    let mut r = Reader::new(buf);
    let value = T::decode(&mut r)?;
    if !r.is_empty() {
        return Err(WireError::LengthOutOfRange {
            declared: buf.len() as u64,
            max: r.position() as u64,
        });
    }
    Ok(value)
}

impl<T: Encode + ?Sized> Encode for &T {
    fn encode(&self, w: &mut Writer) {
        (**self).encode(w);
    }
}

macro_rules! int_impl {
    ($ty:ty, $put:ident, $get:ident) => {
        impl Encode for $ty {
            fn encode(&self, w: &mut Writer) {
                w.$put(*self);
            }
        }
        impl Decode for $ty {
            fn decode(r: &mut Reader<'_>) -> Result<Self> {
                r.$get()
            }
        }
    };
}

int_impl!(u8, put_u8, get_u8);
int_impl!(u16, put_u16, get_u16);
int_impl!(u32, put_u32, get_u32);
int_impl!(u64, put_u64, get_u64);
int_impl!(i64, put_i64, get_i64);
int_impl!(bool, put_bool, get_bool);

impl Encode for usize {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(*self as u64);
    }
}

impl Decode for usize {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(r.get_varint()? as usize)
    }
}

impl Encode for str {
    fn encode(&self, w: &mut Writer) {
        w.put_str(self);
    }
}

impl Encode for String {
    fn encode(&self, w: &mut Writer) {
        w.put_str(self);
    }
}

impl Decode for String {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(r.get_str()?.to_owned())
    }
}

impl Encode for [u8] {
    fn encode(&self, w: &mut Writer) {
        w.put_bytes(self);
    }
}

impl Encode for Bytes {
    fn encode(&self, w: &mut Writer) {
        w.put_bytes(self);
    }
}

impl Decode for Bytes {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(Bytes::copy_from_slice(r.get_bytes()?))
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.len() as u64);
        for item in self {
            item.encode(w);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let len = r.get_len(MAX_SEQ_LEN)?;
        let mut out = Vec::with_capacity(len.min(1024));
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, w: &mut Writer) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(WireError::InvalidTag { what: "Option", tag: tag as u64 }),
        }
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: Encode, B: Encode, C: Encode> Encode for (A, B, C) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
        self.2.encode(w);
    }
}

impl<A: Decode, B: Decode, C: Decode> Decode for (A, B, C) {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip_boundaries() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut w = Writer::new();
            w.put_varint(v);
            let mut r = Reader::new(w.as_slice());
            assert_eq!(r.get_varint().unwrap(), v);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn varint_overflow_rejected() {
        // 11 continuation bytes cannot encode a u64.
        let buf = [0xFFu8; 11];
        let mut r = Reader::new(&buf);
        assert_eq!(r.get_varint(), Err(WireError::VarintOverflow));
    }

    #[test]
    fn truncated_inputs_error() {
        let mut w = Writer::new();
        w.put_u64(42);
        let buf = w.into_vec();
        let mut r = Reader::new(&buf[..7]);
        assert!(matches!(r.get_u64(), Err(WireError::Truncated { .. })));
    }

    #[test]
    fn bytes_length_cannot_exceed_input() {
        // Declared length 100 but only 2 bytes of payload follow.
        let mut w = Writer::new();
        w.put_varint(100);
        w.put_raw(&[1, 2]);
        let buf = w.into_vec();
        let mut r = Reader::new(&buf);
        assert!(matches!(r.get_bytes(), Err(WireError::Truncated { .. })));
    }

    #[test]
    fn composite_roundtrip() {
        let value: (u64, Option<String>, Vec<u32>) = (7, Some("hello".to_owned()), vec![1, 2, 3]);
        let bytes = encode_to_vec(&value);
        let back: (u64, Option<String>, Vec<u32>) = decode_from_slice(&bytes).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = encode_to_vec(&42u64);
        bytes.push(0);
        assert!(decode_from_slice::<u64>(&bytes).is_err());
    }

    #[test]
    fn invalid_option_tag_rejected() {
        let buf = [7u8];
        assert!(matches!(
            decode_from_slice::<Option<u8>>(&buf),
            Err(WireError::InvalidTag { what: "Option", tag: 7 })
        ));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut w = Writer::new();
        w.put_bytes(&[0xFF, 0xFE]);
        let buf = w.into_vec();
        assert_eq!(decode_from_slice::<String>(&buf), Err(WireError::InvalidUtf8));
    }
}
