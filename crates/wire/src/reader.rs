use crate::{Result, WireError};

/// A bounds-checked decoder over a byte slice.
///
/// Every accessor returns a [`WireError`] instead of panicking when the input
/// is malformed, so arbitrary (possibly corrupted) log entries can be decoded
/// safely.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `buf`, positioned at its start.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Returns the number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Returns true if the whole input has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Returns the current read position.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(WireError::Truncated { needed: n, remaining: self.remaining() });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a single byte.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64> {
        Ok(self.get_u64()? as i64)
    }

    /// Reads a LEB128 varint.
    pub fn get_varint(&mut self) -> Result<u64> {
        let mut out = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.get_u8()?;
            if shift == 63 && byte > 1 {
                return Err(WireError::VarintOverflow);
            }
            out |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(out);
            }
            shift += 7;
            if shift > 63 {
                return Err(WireError::VarintOverflow);
            }
        }
    }

    /// Reads `n` raw bytes with no length prefix.
    pub fn get_raw(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n)
    }

    /// Reads a varint-length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.get_varint()?;
        if len > self.remaining() as u64 {
            return Err(WireError::Truncated { needed: len as usize, remaining: self.remaining() });
        }
        self.take(len as usize)
    }

    /// Reads a varint-length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<&'a str> {
        std::str::from_utf8(self.get_bytes()?).map_err(|_| WireError::InvalidUtf8)
    }

    /// Reads a `bool` encoded as one byte.
    pub fn get_bool(&mut self) -> Result<bool> {
        Ok(self.get_u8()? != 0)
    }

    /// Reads a varint and checks it against a sanity bound, for use as a
    /// collection length before allocating.
    pub fn get_len(&mut self, max: u64) -> Result<usize> {
        let declared = self.get_varint()?;
        if declared > max {
            return Err(WireError::LengthOutOfRange { declared, max });
        }
        Ok(declared as usize)
    }
}
