//! CRC-32C (Castagnoli), table-driven.
//!
//! Used to checksum flash page headers and TCP frames. The Castagnoli
//! polynomial (0x1EDC6F41) is the one used by iSCSI, ext4 and most modern
//! storage systems; we compute it reflected, which gives the conventional
//! `0xE3069283` check value for `"123456789"`.

/// The reflected Castagnoli polynomial.
const POLY: u32 = 0x82F6_3B78;

/// Lazily built 256-entry lookup table.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            }
            *slot = crc;
        }
        t
    })
}

/// Computes the CRC-32C of `data`.
pub fn crc32c(data: &[u8]) -> u32 {
    let t = table();
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ t[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32C check value.
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(b""), 0);
        // RFC 3720 appendix B.4 test vector: 32 bytes of zeros.
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        // 32 bytes of 0xFF.
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let base = crc32c(data);
        let mut corrupted = data.to_vec();
        for byte in 0..corrupted.len() {
            for bit in 0..8 {
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc32c(&corrupted), base, "flip at {byte}:{bit} undetected");
                corrupted[byte] ^= 1 << bit;
            }
        }
    }
}
