#![warn(missing_docs)]
//! Binary wire format for the Tango/CORFU stack.
//!
//! A shared-log system controls its own on-disk and on-the-wire layout, so
//! this crate implements a small, explicit binary codec instead of pulling in
//! a serialization framework:
//!
//! * [`Writer`] / [`Reader`] — little-endian primitives, LEB128 varints, and
//!   length-prefixed byte strings over a growable buffer.
//! * [`Encode`] / [`Decode`] — record traits implemented by every RPC message
//!   and log-record type in the workspace.
//! * [`crc32c`] — the Castagnoli CRC used to checksum flash pages and TCP
//!   frames.
//!
//! All decoding is fallible and total: malformed input yields a [`WireError`]
//! rather than a panic, because log entries and frames can be corrupted or
//! truncated (junk fills, torn writes).

mod crc;
mod error;
mod reader;
mod traits;
mod writer;

pub use crc::crc32c;
pub use error::WireError;
pub use reader::Reader;
pub use traits::{decode_from_slice, encode_to_vec, Decode, Encode};
pub use writer::Writer;

/// Convenience alias for results produced by decoding.
pub type Result<T> = std::result::Result<T, WireError>;
