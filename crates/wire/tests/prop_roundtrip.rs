//! Property tests: every encodable value round-trips, and arbitrary byte
//! soup never panics the decoder.

use proptest::prelude::*;
use tango_wire::{decode_from_slice, encode_to_vec, Reader, Writer};

proptest! {
    #[test]
    fn u64_roundtrip(v in any::<u64>()) {
        let bytes = encode_to_vec(&v);
        prop_assert_eq!(decode_from_slice::<u64>(&bytes).unwrap(), v);
    }

    #[test]
    fn varint_roundtrip(v in any::<u64>()) {
        let mut w = Writer::new();
        w.put_varint(v);
        let mut r = Reader::new(w.as_slice());
        prop_assert_eq!(r.get_varint().unwrap(), v);
        prop_assert!(r.is_empty());
    }

    #[test]
    fn varint_is_minimal_length(v in any::<u64>()) {
        let mut w = Writer::new();
        w.put_varint(v);
        let expected = if v == 0 { 1 } else { (64 - v.leading_zeros() as usize).div_ceil(7) };
        prop_assert_eq!(w.len(), expected);
    }

    #[test]
    fn string_roundtrip(s in ".*") {
        let bytes = encode_to_vec(&s);
        prop_assert_eq!(decode_from_slice::<String>(&bytes).unwrap(), s);
    }

    #[test]
    fn vec_of_pairs_roundtrip(v in proptest::collection::vec((any::<u64>(), any::<u32>()), 0..64)) {
        let bytes = encode_to_vec(&v);
        prop_assert_eq!(decode_from_slice::<Vec<(u64, u32)>>(&bytes).unwrap(), v);
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Any of these may error, but none may panic.
        let _ = decode_from_slice::<Vec<(u64, String)>>(&bytes);
        let _ = decode_from_slice::<Option<Vec<u64>>>(&bytes);
        let _ = decode_from_slice::<(String, Vec<u8>)>(&bytes);
        let mut r = Reader::new(&bytes);
        let _ = r.get_varint();
        let _ = r.get_bytes();
    }

    #[test]
    fn crc_differs_for_different_inputs(a in proptest::collection::vec(any::<u8>(), 1..64),
                                        b in proptest::collection::vec(any::<u8>(), 1..64)) {
        prop_assume!(a != b);
        // Not a strict guarantee for a 32-bit CRC, but collisions in this
        // space at proptest scale indicate an implementation bug.
        prop_assert!(tango_wire::crc32c(&a) != tango_wire::crc32c(&b) || a == b);
    }
}
