use crate::{KeyDist, SplitMix64};

/// A generated transaction: the keys it reads and the keys it writes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxSpec {
    /// Keys read (distinct).
    pub reads: Vec<u64>,
    /// Keys written (distinct, disjoint from `reads` when possible).
    pub writes: Vec<u64>,
}

/// Generates the paper's transaction shape: "each transaction reads three
/// keys and writes three other keys to the map" (§6.2), with configurable
/// counts and key distribution.
#[derive(Debug, Clone)]
pub struct TxMix {
    dist: KeyDist,
    reads_per_tx: usize,
    writes_per_tx: usize,
}

impl TxMix {
    /// The paper's 3-read / 3-write mix over `dist`.
    pub fn paper(dist: KeyDist) -> Self {
        Self { dist, reads_per_tx: 3, writes_per_tx: 3 }
    }

    /// A custom mix.
    pub fn new(dist: KeyDist, reads_per_tx: usize, writes_per_tx: usize) -> Self {
        Self { dist, reads_per_tx, writes_per_tx }
    }

    /// The key distribution in use.
    pub fn dist(&self) -> &KeyDist {
        &self.dist
    }

    /// Draws one transaction. Keys within each set are distinct; when the
    /// key space is large enough the read and write sets are also disjoint
    /// ("three keys and three *other* keys").
    pub fn sample(&self, rng: &mut SplitMix64) -> TxSpec {
        let want_distinct = self.reads_per_tx + self.writes_per_tx;
        let n = self.dist.n();
        let mut keys: Vec<u64> = Vec::with_capacity(want_distinct);
        // With tiny key spaces full distinctness is impossible; cap the
        // effort and allow overlap, matching how contention is *supposed*
        // to rise as the key count shrinks.
        let max_attempts = want_distinct * 20;
        let mut attempts = 0;
        while keys.len() < want_distinct && attempts < max_attempts {
            attempts += 1;
            let k = self.dist.sample(rng);
            if !keys.contains(&k) {
                keys.push(k);
            }
        }
        while keys.len() < want_distinct {
            keys.push(self.dist.sample(rng)); // Key space smaller than tx.
        }
        let _ = n;
        let writes = keys.split_off(self.reads_per_tx);
        TxSpec { reads: keys, writes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mix_shape() {
        let mix = TxMix::paper(KeyDist::uniform(100_000));
        let mut rng = SplitMix64::new(1);
        for _ in 0..100 {
            let tx = mix.sample(&mut rng);
            assert_eq!(tx.reads.len(), 3);
            assert_eq!(tx.writes.len(), 3);
            // Large key space: all six keys distinct.
            let mut all = tx.reads.clone();
            all.extend(&tx.writes);
            all.sort_unstable();
            all.dedup();
            assert_eq!(all.len(), 6);
        }
    }

    #[test]
    fn tiny_key_space_still_generates() {
        let mix = TxMix::paper(KeyDist::uniform(2));
        let mut rng = SplitMix64::new(1);
        let tx = mix.sample(&mut rng);
        assert_eq!(tx.reads.len(), 3);
        assert_eq!(tx.writes.len(), 3);
        assert!(tx.reads.iter().chain(&tx.writes).all(|&k| k < 2));
    }

    #[test]
    fn zipf_mix_hits_hot_keys() {
        let mix = TxMix::paper(KeyDist::zipf_ycsb(10));
        let mut rng = SplitMix64::new(9);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            for k in mix.sample(&mut rng).reads {
                counts[k as usize] += 1;
            }
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max > min * 3, "zipf skew not visible: {counts:?}");
    }
}
