/// SplitMix64: a tiny, high-quality, seedable PRNG (Steele, Lea & Flood,
/// "Fast Splittable Pseudorandom Number Generators", OOPSLA 2014).
///
/// Used everywhere determinism matters: the simulator must produce
/// identical results for identical seeds.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, bound)`. `bound` must be positive.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        // Lemire's multiply-shift rejection method.
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound || low >= low.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// A uniform float in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// True with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Forks an independent generator (for per-actor streams).
    pub fn fork(&mut self) -> Self {
        Self::new(self.next_u64())
    }

    /// An exponentially distributed value with the given mean.
    pub fn gen_exp(&mut self, mean: f64) -> f64 {
        let u = 1.0 - self.gen_f64(); // (0, 1]
        -mean * u.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(SplitMix64::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn known_reference_values() {
        // Reference sequence for seed 0 (matches the published algorithm).
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(rng.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = SplitMix64::new(7);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX / 2] {
            for _ in 0..200 {
                assert!(rng.gen_range(bound) < bound);
            }
        }
    }

    #[test]
    fn uniformity_rough_check() {
        let mut rng = SplitMix64::new(1);
        let mut buckets = [0usize; 10];
        let samples = 100_000;
        for _ in 0..samples {
            buckets[rng.gen_range(10) as usize] += 1;
        }
        let expected = samples / 10;
        for count in buckets {
            assert!((count as i64 - expected as i64).abs() < expected as i64 / 10);
        }
    }

    #[test]
    fn exp_mean_rough_check() {
        let mut rng = SplitMix64::new(5);
        let mean = 40.0;
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen_exp(mean)).sum();
        let observed = sum / n as f64;
        assert!((observed - mean).abs() < mean * 0.05, "observed mean {observed}");
    }
}
