#![warn(missing_docs)]
//! Deterministic workload generation for benchmarks and the simulator.
//!
//! The paper's transaction experiments (§6.2) choose keys either uniformly
//! or with "a highly skewed zipf distribution (corresponding to workload 'a'
//! of the Yahoo! Cloud Serving Benchmark)". This crate provides:
//!
//! * [`SplitMix64`] — a tiny, fast, seedable PRNG (deterministic runs are a
//!   hard requirement for the discrete-event simulator).
//! * [`Zipf`] — a YCSB-style zipf sampler over `0..n` with parameter
//!   `theta` (YCSB uses 0.99), using the precomputed-zeta formulation from
//!   Gray et al., "Quickly Generating Billion-Record Synthetic Databases".
//! * [`KeyDist`] — the uniform/zipf choice as one type.
//! * [`TxMix`] — read/write-set generation for the paper's 3-read/3-write
//!   transactions.

mod rng;
mod txmix;
mod zipf;

pub use rng::SplitMix64;
pub use txmix::{TxMix, TxSpec};
pub use zipf::Zipf;

/// A key distribution over `0..n`.
#[derive(Debug, Clone)]
pub enum KeyDist {
    /// Uniform over `0..n`.
    Uniform {
        /// Number of keys.
        n: u64,
    },
    /// YCSB-style zipf.
    Zipf(Zipf),
}

impl KeyDist {
    /// A uniform distribution over `0..n`.
    pub fn uniform(n: u64) -> Self {
        KeyDist::Uniform { n }
    }

    /// A zipf distribution over `0..n` with YCSB's default skew (0.99).
    pub fn zipf_ycsb(n: u64) -> Self {
        KeyDist::Zipf(Zipf::new(n, 0.99))
    }

    /// Draws one key.
    pub fn sample(&self, rng: &mut SplitMix64) -> u64 {
        match self {
            KeyDist::Uniform { n } => rng.gen_range(*n),
            KeyDist::Zipf(z) => z.sample(rng),
        }
    }

    /// The number of distinct keys.
    pub fn n(&self) -> u64 {
        match self {
            KeyDist::Uniform { n } => *n,
            KeyDist::Zipf(z) => z.n(),
        }
    }
}
