use crate::SplitMix64;

/// A YCSB-style zipfian sampler over `0..n` with skew `theta`.
///
/// Implements the closed-form inversion of Gray et al. ("Quickly Generating
/// Billion-Record Synthetic Databases", SIGMOD 1994), the same generator
/// YCSB uses; `theta = 0.99` reproduces YCSB workload A's "highly skewed"
/// key choice (§6.2). Ranks are scrambled with a multiplicative hash so hot
/// keys are spread over the key space, as in YCSB's scrambled-zipfian.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    scramble: bool,
}

fn zeta(n: u64, theta: f64) -> f64 {
    // Exact for small n; a two-point integral bound for large n keeps
    // construction O(1)-ish while staying within ~0.1% of the true value.
    if n <= 10_000_000 {
        let mut sum = 0.0;
        for i in 1..=n {
            sum += 1.0 / (i as f64).powf(theta);
        }
        sum
    } else {
        let head = zeta(10_000_000, theta);
        // Integral approximation of the tail.
        let a = 1.0 - theta;
        head + ((n as f64).powf(a) - 10_000_000f64.powf(a)) / a
    }
}

impl Zipf {
    /// Creates a sampler over `0..n` with skew `theta` in (0, 1).
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "zipf needs at least one key");
        assert!(theta > 0.0 && theta < 1.0, "theta must be in (0, 1)");
        let zetan = zeta(n, theta);
        let zeta2 = 1.0 + 0.5f64.powf(theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Self { n, theta, alpha, zetan, eta, scramble: true }
    }

    /// Disables rank scrambling: rank 0 is the hottest key.
    pub fn unscrambled(mut self) -> Self {
        self.scramble = false;
        self
    }

    /// The number of keys.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Draws one key.
    pub fn sample(&self, rng: &mut SplitMix64) -> u64 {
        let u = rng.gen_f64();
        let uz = u * self.zetan;
        let rank = if uz < 1.0 {
            0
        } else if uz < 1.0 + 0.5f64.powf(self.theta) {
            1
        } else {
            (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64
        };
        let rank = rank.min(self.n - 1);
        if self.scramble {
            // Multiplicative scramble, folded back into range (rank+1 so
            // the hottest rank does not map to key 0).
            rank.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15) % self.n
        } else {
            rank
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hottest_key_frequency_matches_theory() {
        // With theta = 0.99 over n keys, P(rank 0) = 1/zeta(n).
        let n = 1000;
        let z = Zipf::new(n, 0.99).unscrambled();
        let mut rng = SplitMix64::new(99);
        let samples = 200_000;
        let hits = (0..samples).filter(|_| z.sample(&mut rng) == 0).count();
        let expected = samples as f64 / zeta(n, 0.99);
        let observed = hits as f64;
        assert!(
            (observed - expected).abs() < expected * 0.1,
            "observed {observed}, expected {expected}"
        );
    }

    #[test]
    fn skew_orders_ranks() {
        let z = Zipf::new(100, 0.99).unscrambled();
        let mut rng = SplitMix64::new(3);
        let mut counts = vec![0usize; 100];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        // Rank 0 dominates rank 10 dominates rank 90.
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[90]);
        // Every key is reachable... at least most of the head is.
        assert!(counts[0] > 0 && counts[1] > 0 && counts[2] > 0);
    }

    #[test]
    fn samples_stay_in_range() {
        for n in [1u64, 2, 10, 1000, 1_000_000] {
            let z = Zipf::new(n, 0.5);
            let mut rng = SplitMix64::new(n);
            for _ in 0..1000 {
                assert!(z.sample(&mut rng) < n);
            }
        }
    }

    #[test]
    fn scrambling_preserves_skew_but_moves_hotspot() {
        let z = Zipf::new(1000, 0.99);
        let mut rng = SplitMix64::new(17);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..50_000 {
            *counts.entry(z.sample(&mut rng)).or_insert(0usize) += 1;
        }
        let (&hot, &hits) = counts.iter().max_by_key(|(_, &c)| c).unwrap();
        // The hottest key is still very hot, but not key 0.
        assert!(hits > 2_000, "hottest key only {hits} hits");
        assert_ne!(hot, 0);
    }
}
