//! Criterion micro-benchmarks of the *real* implementation (in-process
//! cluster): wire codec, flash unit, CORFU append/read, stream sync,
//! Tango object operations, and the transaction commit path.
//!
//! These complement the figure binaries (which model the paper's testbed):
//! absolute numbers here reflect one laptop-class machine with an
//! in-memory transport, not the paper's cluster.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use tango_wire::{decode_from_slice, encode_to_vec};

fn bench_wire(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire");
    let record = tango::LogRecord::Commit {
        txid: tango::TxId { client: 7, seq: 9 },
        reads: (0..3).map(|i| tango::ReadKey { oid: 1, key: Some(i), version: i * 10 }).collect(),
        updates: (0..3)
            .map(|i| tango::UpdateRecord { oid: 1, key: Some(i), data: Bytes::from(vec![0u8; 64]) })
            .collect(),
        speculative: vec![],
        needs_decision: false,
    };
    let encoded = encode_to_vec(&record);
    group.throughput(Throughput::Bytes(encoded.len() as u64));
    group.bench_function("encode_commit_record", |b| {
        b.iter(|| encode_to_vec(std::hint::black_box(&record)))
    });
    group.bench_function("decode_commit_record", |b| {
        b.iter(|| decode_from_slice::<tango::LogRecord>(std::hint::black_box(&encoded)).unwrap())
    });
    group.bench_function("crc32c_4k", |b| {
        let buf = vec![0xA5u8; 4096];
        b.iter(|| tango_wire::crc32c(std::hint::black_box(&buf)))
    });
    group.finish();
}

fn bench_flash(c: &mut Criterion) {
    let mut group = c.benchmark_group("flash");
    group.bench_function("write_64_4k_pages", |b| {
        let payload = vec![7u8; 4096];
        b.iter_batched(
            || tango_flash::FlashUnit::in_memory(4096),
            |mut unit| {
                for addr in 0..64 {
                    unit.write(addr, &payload).unwrap();
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("read_4k_page", |b| {
        let mut unit = tango_flash::FlashUnit::in_memory(4096);
        unit.write(0, &vec![7u8; 4096]).unwrap();
        b.iter(|| unit.read(0).unwrap())
    });
    group.finish();
}

fn bench_corfu(c: &mut Criterion) {
    let mut group = c.benchmark_group("corfu");
    let cluster = corfu::cluster::LocalCluster::new(corfu::cluster::ClusterConfig::default());
    let client = cluster.client().unwrap();
    let payload = Bytes::from(vec![1u8; 512]);
    group.bench_function("append", |b| b.iter(|| client.append(payload.clone()).unwrap()));
    // The same append through a client whose instruments are disabled
    // no-ops, on its own fresh cluster so both benches start from an empty
    // log: the spread between this and "append" is the total metrics
    // overhead on the hot path (budget: <= 5%).
    let cluster2 = corfu::cluster::LocalCluster::new(corfu::cluster::ClusterConfig::default());
    let unmetered = cluster2.client_with_metrics(tango_metrics::Registry::disabled()).unwrap();
    group.bench_function("append_unmetered", |b| {
        b.iter(|| unmetered.append(payload.clone()).unwrap())
    });
    let off = client.append(payload.clone()).unwrap();
    group.bench_function("read", |b| b.iter(|| client.read(off).unwrap()));
    group.bench_function("check_tail_fast", |b| b.iter(|| client.check_tail_fast().unwrap()));
    group.finish();
}

fn bench_stream(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream");
    group.sample_size(20);
    group.bench_function("sync_and_drain_100", |b| {
        let cluster = corfu::cluster::LocalCluster::new(corfu::cluster::ClusterConfig::default());
        let writer = corfu_stream::StreamClient::new(cluster.client().unwrap());
        b.iter_batched(
            || {
                for i in 0..100u64 {
                    writer.multiappend(&[1], Bytes::from(i.to_le_bytes().to_vec())).unwrap();
                }
                let reader = corfu_stream::StreamClient::new(cluster.client().unwrap());
                reader.open(1);
                reader
            },
            |reader| {
                reader.sync(&[1]).unwrap();
                let mut n = 0;
                while reader.readnext(1).unwrap().is_some() {
                    n += 1;
                }
                assert!(n >= 100);
            },
            BatchSize::PerIteration,
        )
    });
    group.finish();
}

fn bench_tango(c: &mut Criterion) {
    use tango::TangoRuntime;
    use tango_objects::TangoMap;

    let mut group = c.benchmark_group("tango");
    let cluster = corfu::cluster::LocalCluster::new(corfu::cluster::ClusterConfig::default());
    let rt = TangoRuntime::new(cluster.client().unwrap()).unwrap();
    let map: TangoMap<u64, u64> = TangoMap::open(&rt, "bench-map").unwrap();

    group.bench_function("map_put", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            map.put(&k, &k).unwrap()
        })
    });
    group.bench_function("map_get_linearizable", |b| {
        map.put(&1, &1).unwrap();
        b.iter(|| map.get(&1).unwrap())
    });
    group.bench_function("tx_commit_single_object", |b| {
        let mut k = 1_000_000u64;
        b.iter(|| {
            k += 1;
            rt.begin_tx().unwrap();
            let _ = map.get(&1).unwrap();
            map.put(&k, &k).unwrap();
            rt.end_tx().unwrap()
        })
    });
    group.finish();
}

fn bench_workload(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload");
    let zipf = workload::Zipf::new(1_000_000, 0.99);
    let mut rng = workload::SplitMix64::new(1);
    group.bench_function("zipf_sample", |b| b.iter(|| zipf.sample(&mut rng)));
    let mix = workload::TxMix::paper(workload::KeyDist::zipf_ycsb(1_000_000));
    group.bench_function("txmix_sample", |b| b.iter(|| mix.sample(&mut rng)));
    group.finish();
}

criterion_group!(
    benches,
    bench_wire,
    bench_flash,
    bench_corfu,
    bench_stream,
    bench_tango,
    bench_workload
);
criterion_main!(benches);
