//! Shared plumbing for the figure-reproduction binaries.

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

/// Where figure outputs land (`results/` at the workspace root, or
/// `TANGO_RESULTS_DIR`).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("TANGO_RESULTS_DIR").unwrap_or_else(|_| "results".to_owned());
    let path = PathBuf::from(dir);
    let _ = fs::create_dir_all(&path);
    path
}

/// Writes CSV rows (also echoed to stdout) for one figure.
pub struct FigureOutput {
    name: String,
    lines: Vec<String>,
}

impl FigureOutput {
    /// Starts a figure output with a CSV header.
    pub fn new(name: &str, header: &str) -> Self {
        println!("# {name}");
        println!("{header}");
        Self { name: name.to_owned(), lines: vec![header.to_owned()] }
    }

    /// Adds one row.
    pub fn row(&mut self, row: String) {
        println!("{row}");
        self.lines.push(row);
    }

    /// Writes the collected rows to `results/<name>.csv`.
    pub fn save(&self) {
        let path = results_dir().join(format!("{}.csv", self.name));
        match fs::File::create(&path) {
            Ok(mut f) => {
                for line in &self.lines {
                    let _ = writeln!(f, "{line}");
                }
                eprintln!("wrote {}", path.display());
            }
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
    }
}

/// Quick-mode scaling: figure binaries honour `TANGO_QUICK=1` to run
/// abbreviated sweeps (used by CI-ish checks).
pub fn quick() -> bool {
    std::env::var("TANGO_QUICK").map(|v| v == "1").unwrap_or(false)
}
