//! Figure 10: layered partitions — linear scaling with partitioned
//! objects until the log saturates (left), cross-partition transactions
//! vs the 2PL baseline (middle), and transactions on a shared object
//! (right).

use simcluster::experiments::{fig10_left, fig10_middle_2pl, fig10_middle_tango, fig10_right};
use tango_bench::FigureOutput;

fn run_left(quick: bool) {
    let mut out = FigureOutput::new("fig10_left", "clients,ks_txes_18server,ks_txes_6server");
    let clients: Vec<usize> =
        if quick { vec![2, 8, 18] } else { vec![2, 4, 6, 8, 10, 12, 14, 16, 18] };
    for &n in &clients {
        let large = fig10_left(n, 9, 42); // 18-server log
        let small = fig10_left(n, 3, 42); // 6-server log
        out.row(format!("{n},{large:.1},{small:.1}"));
    }
    out.save();
}

fn run_middle(quick: bool) {
    let mut out = FigureOutput::new("fig10_middle", "cross_pct,ks_txes_tango,ks_txes_2pl");
    let pcts: Vec<f64> = if quick {
        vec![0.0, 16.0, 100.0]
    } else {
        vec![0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 100.0]
    };
    let clients = 18;
    for &pct in &pcts {
        let tango = fig10_middle_tango(clients, pct, 42);
        let twopl = fig10_middle_2pl(clients, pct, 42);
        out.row(format!("{pct},{tango:.1},{twopl:.1}"));
    }
    out.save();
}

fn run_right(quick: bool) {
    let mut out = FigureOutput::new("fig10_right", "common_pct,ks_txes_per_sec");
    let pcts: Vec<f64> = if quick {
        vec![0.0, 1.0, 16.0, 100.0]
    } else {
        vec![0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 100.0]
    };
    for &pct in &pcts {
        let tput = fig10_right(4, pct, 42);
        out.row(format!("{pct},{tput:.1}"));
    }
    out.save();
}

fn main() {
    let quick = tango_bench::quick();
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_owned());
    match which.as_str() {
        "left" => run_left(quick),
        "middle" => run_middle(quick),
        "right" => run_right(quick),
        _ => {
            run_left(quick);
            run_middle(quick);
            run_right(quick);
        }
    }
}
