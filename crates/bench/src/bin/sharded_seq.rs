//! Sharded-log scaling: aggregate append throughput at N = 1, 2, 4 logs.
//!
//! The single sequencer is Tango's append-path ceiling (~570K tokens/s,
//! fig. 2): every append in the cluster pays one round trip to one
//! single-threaded network service, no matter how many replica sets the
//! address space stripes over. Sharding the stream namespace gives each
//! log its own sequencer, so aggregate token throughput scales with N.
//!
//! The in-process harness dispatches RPCs as direct function calls, which
//! hides exactly the property under test — a real sequencer serves its
//! port from one thread. The [`GatedSeqFactory`] restores it: calls to a
//! sequencer node serialize behind that node's mutex and pay a fixed
//! service time inside it, the same modeling choice as `simcluster`'s
//! `SequencerActor` (fig. 2). Storage and layout traffic pass through
//! ungated. With one gate (N=1) the appenders all queue on one mutex;
//! with N logs the gates — like the real sequencers — are independent.
//!
//! Output: `results/sharded_seq.csv` with
//! `num_logs,threads,appends,elapsed_ms,appends_per_sec,speedup_vs_single`.

use std::collections::HashMap;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use bytes::Bytes;
use corfu::cluster::{ClusterConfig, LocalCluster, SEQUENCER_BASE_ID, STORAGE_REPLACEMENT_BASE_ID};
use corfu::{ClientOptions, ConnFactory, NodeId, NodeInfo, StreamId};
use parking_lot::Mutex;
use tango_bench::{quick, FigureOutput};
use tango_metrics::Registry;
use tango_rpc::ClientConn;

/// Per-token service time of the modeled sequencer. Large relative to the
/// harness's per-append CPU cost so the gate, not the host CPU, is the
/// measured bottleneck (the paper's sequencer sustains ~1.75us/token; the
/// model only needs the *ratio* across N to be meaningful).
const SEQ_SERVICE: Duration = Duration::from_micros(100);

struct GatedSeqFactory {
    inner: Arc<dyn ConnFactory>,
    gates: Mutex<HashMap<NodeId, Arc<Mutex<()>>>>,
}

struct GatedConn {
    inner: Arc<dyn ClientConn>,
    gate: Arc<Mutex<()>>,
}

impl ClientConn for GatedConn {
    fn call(&self, request: &[u8]) -> tango_rpc::Result<Vec<u8>> {
        let _serialized = self.gate.lock();
        thread::sleep(SEQ_SERVICE);
        self.inner.call(request)
    }
}

impl ConnFactory for GatedSeqFactory {
    fn connect(&self, node: &NodeInfo) -> Arc<dyn ClientConn> {
        let inner = self.inner.connect(node);
        if (SEQUENCER_BASE_ID..STORAGE_REPLACEMENT_BASE_ID).contains(&node.id) {
            let gate = Arc::clone(self.gates.lock().entry(node.id).or_default());
            Arc::new(GatedConn { inner, gate })
        } else {
            inner
        }
    }
}

/// First stream id at or after `from` homed in `log`.
fn stream_in_log(proj: &corfu::Projection, log: u32, from: StreamId) -> StreamId {
    (from..).find(|&s| proj.log_of_stream(s) == log).expect("shard map is total")
}

/// Aggregate appends/s of `threads` closed-loop appenders, each pinned to
/// a stream homed in log `t % num_logs`.
fn run_point(num_logs: usize, threads: usize, per_thread: usize) -> f64 {
    let cluster = LocalCluster::new(ClusterConfig::sharded(num_logs));
    let factory = Arc::new(GatedSeqFactory {
        inner: cluster.conn_factory(),
        gates: Mutex::new(HashMap::new()),
    });
    let client = Arc::new(
        cluster
            .client_with_factory(factory, ClientOptions::default(), Registry::disabled())
            .expect("client"),
    );
    let proj = client.projection();
    let streams: Vec<StreamId> = (0..threads)
        .map(|t| stream_in_log(&proj, (t % num_logs) as u32, 100 + 10 * t as StreamId))
        .collect();

    let started = Instant::now();
    thread::scope(|s| {
        for (t, &stream) in streams.iter().enumerate() {
            let client = Arc::clone(&client);
            s.spawn(move || {
                for i in 0..per_thread {
                    client
                        .append_streams(&[stream], Bytes::from(format!("sharded-{t}-{i}")))
                        .expect("append");
                }
            });
        }
    });
    (threads * per_thread) as f64 / started.elapsed().as_secs_f64()
}

fn main() {
    let quick = quick();
    let (threads, per_thread) = if quick { (8, 60) } else { (8, 400) };
    let log_counts: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4] };
    let mut out = FigureOutput::new(
        "sharded_seq",
        "num_logs,threads,appends,elapsed_ms,appends_per_sec,speedup_vs_single",
    );
    let mut single = None;
    for &n in log_counts {
        let started = Instant::now();
        let tput = run_point(n, threads, per_thread);
        let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
        let base = *single.get_or_insert(tput);
        let speedup = tput / base;
        out.row(format!(
            "{n},{threads},{},{elapsed_ms:.1},{tput:.0},{speedup:.2}",
            threads * per_thread
        ));
        eprintln!("N={n}: {tput:.0} appends/s ({speedup:.2}x vs single log)");
    }
    out.save();
}
