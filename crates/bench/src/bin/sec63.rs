//! §6.3 "Other Data Structures", treated as a table:
//!
//! * TangoZK: ~200K txes/sec across 18 independent namespaces; ~20K
//!   txes/sec when every transaction atomically moves a file between
//!   namespaces (a capability ZooKeeper itself does not have).
//! * TangoBK: ~200K 4KB ledger writes/sec on the 18-node log.
//! * Code size: the paper's TangoZK is <1K lines vs >13K for ZooKeeper;
//!   TangoBK ~300 lines. We report our implementations' line counts.
//!
//! The performance rows run on the simulator: ZK transactions have the
//! same log footprint as TangoMap transactions (commit records on one or
//! two streams), and ledger writes are plain entry appends.

use simcluster::experiments::{fig10_left, fig10_middle_tango, sec63_bk};
use tango_bench::FigureOutput;

fn loc(source: &str) -> usize {
    source
        .lines()
        .filter(|l| {
            let t = l.trim();
            !t.is_empty() && !t.starts_with("//")
        })
        .count()
}

fn main() {
    let mut out = FigureOutput::new("sec63_other_structures", "metric,value");

    // TangoZK over 18 independent namespaces (same log footprint as the
    // partitioned TangoMap experiment).
    let zk_independent = fig10_left(18, 9, 42);
    out.row(format!("tangozk_independent_ks_txes,{zk_independent:.1}"));

    // Every transaction moves a file across namespaces: a remote-write
    // transaction with a decision record.
    let zk_moves = fig10_middle_tango(18, 100.0, 42);
    out.row(format!("tangozk_crossnamespace_moves_ks_txes,{zk_moves:.1}"));

    // TangoBK: 4KB ledger appends from 18 writers.
    let bk_writes = sec63_bk(18, 42);
    out.row(format!("tangobk_ks_4kb_writes,{bk_writes:.1}"));

    // Code-size comparison (non-blank, non-comment lines).
    let zk_lines = loc(include_str!("../../../objects/src/zk.rs"));
    let bk_lines = loc(include_str!("../../../objects/src/bk.rs"));
    out.row(format!("tangozk_loc,{zk_lines}"));
    out.row(format!("tangobk_loc,{bk_lines}"));
    out.row("zookeeper_loc_paper_reference,13000".to_owned());
    out.save();
}
