//! Figure 8: single-object linearizability — latency/throughput for mixed
//! workloads on one view (left), a primary/backup pair (middle), and read
//! elasticity with N views over two log sizes (right).

use simcluster::experiments::{fig8_left, fig8_middle, fig8_right};
use tango_bench::FigureOutput;

fn run_left(quick: bool) {
    let mut out = FigureOutput::new(
        "fig8_left",
        "write_ratio,window,ks_ops_per_sec,mean_latency_ms,p99_latency_ms",
    );
    let ratios = [1.0, 0.9, 0.5, 0.1, 0.0];
    let windows: Vec<usize> = if quick { vec![8, 64, 256] } else { vec![8, 16, 32, 64, 128, 256] };
    for &ratio in &ratios {
        for &window in &windows {
            let (ops, mean_ms, p99_ms) = fig8_left(ratio, window, 42);
            out.row(format!("{ratio},{window},{ops:.1},{mean_ms:.3},{p99_ms:.3}"));
        }
    }
    out.save();
}

fn run_middle(quick: bool) {
    let mut out = FigureOutput::new(
        "fig8_middle",
        "target_write_ops,ks_reads_per_sec,ks_writes_per_sec,read_latency_ms",
    );
    let targets: Vec<f64> = if quick {
        vec![0.0, 20_000.0, 40_000.0]
    } else {
        vec![0.0, 5_000.0, 10_000.0, 15_000.0, 20_000.0, 25_000.0, 30_000.0, 35_000.0, 40_000.0]
    };
    for &t in &targets {
        let (reads, writes, lat) = fig8_middle(t, 42);
        out.row(format!("{t},{reads:.1},{writes:.1},{lat:.3}"));
    }
    out.save();
}

fn run_right(quick: bool) {
    let mut out = FigureOutput::new("fig8_right", "readers,ks_reads_18server,ks_reads_2server");
    let readers: Vec<usize> =
        if quick { vec![2, 8, 18] } else { vec![2, 4, 6, 8, 10, 12, 14, 16, 18] };
    for &n in &readers {
        let large = fig8_right(n, 9, 42); // 9x2 = 18-server log
        let small = fig8_right(n, 1, 42); // 1x2 = 2-server log
        out.row(format!("{n},{large:.1},{small:.1}"));
    }
    out.save();
}

fn main() {
    let quick = tango_bench::quick();
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_owned());
    match which.as_str() {
        "left" => run_left(quick),
        "middle" => run_middle(quick),
        "right" => run_right(quick),
        _ => {
            run_left(quick);
            run_middle(quick);
            run_right(quick);
        }
    }
}
