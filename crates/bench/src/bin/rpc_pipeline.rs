//! Transport ablation: multiplexed pipelining and sequencer token batching.
//!
//! Part 1 measures raw RPC throughput with many threads sharing one
//! connection. The serial baseline emulates the v1 lock-step transport by
//! forcing one call in flight at a time (a mutex around the connection);
//! the pipelined mode is the wire-v2 `TcpConn` as shipped, where every
//! thread's request is in flight concurrently over the same socket.
//!
//! Part 2 measures sequencer pressure under concurrent appends to a TCP
//! cluster: `seq_batch = 1` pays one sequencer round trip per append, while
//! [`ClientOptions::batched`] (batch = 4, §5) amortizes it roughly 4x.
//!
//! Output: `results/rpc_pipeline.csv` with
//! `section,mode,threads,ops,elapsed_ms,ops_per_sec,seq_rpcs_per_op`.

use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use bytes::Bytes;
use corfu::cluster::{ClusterConfig, TcpCluster};
use corfu::ClientOptions;
use parking_lot::Mutex;
use tango_bench::{quick, FigureOutput};
use tango_rpc::{ClientConn, TcpConn, TcpServer};

fn rpc_round(conn: &(dyn Fn(&[u8]) -> Vec<u8> + Sync), threads: usize, per_thread: usize) -> f64 {
    let started = Instant::now();
    thread::scope(|s| {
        for t in 0..threads {
            s.spawn(move || {
                let msg = format!("payload-from-{t}");
                for _ in 0..per_thread {
                    let reply = conn(msg.as_bytes());
                    assert_eq!(reply, msg.as_bytes());
                }
            });
        }
    });
    started.elapsed().as_secs_f64()
}

fn bench_rpc(
    out: &mut FigureOutput,
    section: &str,
    service: Duration,
    threads: usize,
    per_thread: usize,
) -> (f64, f64) {
    let handler = Arc::new(move |req: &[u8]| {
        if !service.is_zero() {
            // Emulate a storage node's per-request service time.
            thread::sleep(service);
        }
        req.to_vec()
    });
    let server = TcpServer::spawn("127.0.0.1:0", handler).expect("spawn echo server");
    let addr = server.local_addr().to_string();
    let ops = (threads * per_thread) as f64;

    // Serial baseline: the v1 transport allowed one request in flight per
    // connection; a mutex around the shared connection reproduces that.
    let serial_conn = Mutex::new(TcpConn::new(addr.clone()));
    let serial_secs =
        rpc_round(&|req| serial_conn.lock().call(req).expect("serial call"), threads, per_thread);
    let serial_tput = ops / serial_secs;
    out.row(format!(
        "{section},serial,{threads},{},{:.1},{serial_tput:.0},",
        threads * per_thread,
        serial_secs * 1e3
    ));

    // Pipelined: same socket count (one), but calls multiplex by request id.
    let pipelined_conn = TcpConn::new(addr);
    let pipelined_secs =
        rpc_round(&|req| pipelined_conn.call(req).expect("pipelined call"), threads, per_thread);
    let pipelined_tput = ops / pipelined_secs;
    out.row(format!(
        "{section},pipelined,{threads},{},{:.1},{pipelined_tput:.0},",
        threads * per_thread,
        pipelined_secs * 1e3
    ));
    (serial_tput, pipelined_tput)
}

fn bench_appends(
    out: &mut FigureOutput,
    mode: &str,
    opts: ClientOptions,
    threads: usize,
    per_thread: usize,
) -> f64 {
    let cluster = TcpCluster::spawn(ClusterConfig::default()).expect("spawn tcp cluster");
    let client = Arc::new(cluster.client_with_options(opts).expect("client"));
    let started = Instant::now();
    thread::scope(|s| {
        for t in 0..threads {
            let client = Arc::clone(&client);
            s.spawn(move || {
                for i in 0..per_thread {
                    client.append(Bytes::from(format!("bench-{t}-{i}"))).expect("append");
                }
            });
        }
    });
    let secs = started.elapsed().as_secs_f64();
    let ops = (threads * per_thread) as f64;
    let snap = cluster.metrics().snapshot();
    // Sequencer round trips actually issued: every token() either paid an
    // RPC (Next or NextBatch) or was served from the client-side pool.
    let seq_rpcs =
        snap.counter("corfu.client.tokens") - snap.counter("corfu.client.token_pool_hits");
    let per_op = seq_rpcs as f64 / ops;
    out.row(format!(
        "append,{mode},{threads},{},{:.1},{:.0},{per_op:.3}",
        threads * per_thread,
        secs * 1e3,
        ops / secs
    ));
    per_op
}

fn main() {
    let (threads, per_thread, appends) = if quick() { (4, 200, 50) } else { (8, 2000, 400) };
    let mut out = FigureOutput::new(
        "rpc_pipeline",
        "section,mode,threads,ops,elapsed_ms,ops_per_sec,seq_rpcs_per_op",
    );

    let (serial, pipelined) = bench_rpc(&mut out, "rpc_0us", Duration::ZERO, threads, per_thread);
    eprintln!(
        "rpc (0us handler): pipelined/serial speedup = {:.2}x ({:.0} vs {:.0} ops/s, \
         {threads} threads)",
        pipelined / serial,
        pipelined,
        serial
    );
    // With a realistic per-request service time (a flash page program is
    // O(100us)), serialized callers stack the service times end to end
    // while the pipelined connection overlaps them across the server's
    // worker pool.
    let svc_per_thread = per_thread / 10;
    let (serial, pipelined) = bench_rpc(
        &mut out,
        "rpc_200us",
        Duration::from_micros(200),
        threads,
        svc_per_thread.max(20),
    );
    eprintln!(
        "rpc (200us handler): pipelined/serial speedup = {:.2}x ({:.0} vs {:.0} ops/s, \
         {threads} threads)",
        pipelined / serial,
        pipelined,
        serial
    );

    let unbatched = bench_appends(&mut out, "batch1", ClientOptions::default(), 4, appends);
    let batched = bench_appends(&mut out, "batch4", ClientOptions::batched(), 4, appends);
    eprintln!(
        "appends: sequencer RPCs per append {unbatched:.3} -> {batched:.3} \
         ({:.2}x amortization)",
        unbatched / batched
    );

    out.save();
}
