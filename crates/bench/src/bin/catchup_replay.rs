//! Cold-client catch-up replay over real TCP sockets.
//!
//! A writer fills one stream with N entries; a cold reader then opens the
//! stream, syncs (backpointer walk over the whole log), and drains it with
//! `readnext`. The walk dominates: with the per-offset read path every
//! entry costs a storage round trip, while the batched path fetches each
//! backpointer window in one `ReadBatch` per replica set, fanned out in
//! parallel over the pipelined transport. K is set to 16 so the window —
//! and therefore the realizable batch — is meaningfully wide.
//!
//! Honors `TANGO_QUICK=1` (fewer entries) for CI smoke runs.

use std::time::Instant;

use bytes::Bytes;
use corfu::cluster::{ClusterConfig, TcpCluster};
use corfu_stream::{StreamClient, StreamConfig};
use tango_bench::FigureOutput;

fn main() {
    let entries: u64 = if tango_bench::quick() { 200 } else { 2000 };
    let config = ClusterConfig {
        num_sets: 2,
        replication: 2,
        k_backpointers: 16,
        ..ClusterConfig::default()
    };
    let cluster = TcpCluster::spawn(config).unwrap();
    let writer = StreamClient::new(cluster.client().unwrap());
    let payload = Bytes::from(vec![7u8; 256]);
    for _ in 0..entries {
        writer.multiappend(&[1], payload.clone()).unwrap();
    }

    let mut out = FigureOutput::new(
        "catchup_replay",
        "mode,read_batch,prefetch_window,entries,secs,entries_per_sec",
    );
    let mut rates = Vec::new();
    let trials = 3;
    for (mode, read_batch, prefetch_window) in
        [("per_offset", 1usize, 0usize), ("batch8", 8, 8), ("batch32", 32, 32)]
    {
        // Best of `trials` cold replays: each trial gets a fresh reader
        // (empty cache, full walk), so the minimum is the least-noisy
        // estimate of the read path itself.
        let mut best_secs = f64::INFINITY;
        for _ in 0..trials {
            let cfg = StreamConfig { read_batch, prefetch_window, ..StreamConfig::default() };
            let reader = StreamClient::with_config(cluster.client().unwrap(), cfg);
            reader.open(1);
            let start = Instant::now();
            reader.sync(&[1]).unwrap();
            let mut drained = 0u64;
            while reader.readnext(1).unwrap().is_some() {
                drained += 1;
            }
            let secs = start.elapsed().as_secs_f64();
            assert_eq!(drained, entries, "replay must deliver the whole stream");
            best_secs = best_secs.min(secs);
        }
        let rate = entries as f64 / best_secs;
        rates.push((mode, rate));
        out.row(format!(
            "{mode},{read_batch},{prefetch_window},{entries},{best_secs:.4},{rate:.0}"
        ));
        eprintln!("catchup_replay: {mode:>10} {entries} entries in {best_secs:.3}s ({rate:.0}/s)");
    }
    out.save();
    let base = rates[0].1;
    let best = rates[rates.len() - 1].1;
    eprintln!("catchup_replay: batch32 is {:.2}x per_offset", best / base);
}
