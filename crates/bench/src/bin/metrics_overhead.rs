//! Measures the cost of the tango-metrics instrumentation on the CORFU
//! append hot path: the same workload through a fully metered client and
//! through one built with `Registry::disabled()`, interleaved in paired
//! blocks so ambient noise (allocator growth, CPU throttling) hits both
//! sides equally. Reports the median per-block overhead; the budget is 5%.
//!
//! The metered side includes request tracing at the default 1-in-16
//! sampling: sampled appends open a root span whose context propagates to
//! the sequencer and storage servers, each recording child spans into the
//! registry's span ring — so the number below is the price of the whole
//! observability plane, not just the counters.
//!
//! Also dumps the metered run's snapshot, as a smoke test that every
//! `corfu.*` instrument on the append path actually recorded.

use std::time::Instant;

use bytes::Bytes;
use corfu::cluster::{ClusterConfig, LocalCluster};
use tango_bench::FigureOutput;
use tango_metrics::Registry;

fn main() {
    let quick = tango_bench::quick();
    let (warmup, block, blocks) = if quick { (1_000, 200, 30) } else { (5_000, 1_000, 100) };

    let payload = Bytes::from(vec![1u8; 512]);
    let cluster_m = LocalCluster::new(ClusterConfig::default());
    let metered = cluster_m.client().unwrap();
    let cluster_u = LocalCluster::new(ClusterConfig::default());
    let unmetered = cluster_u.client_with_metrics(Registry::disabled()).unwrap();

    for _ in 0..warmup {
        metered.append(payload.clone()).unwrap();
        unmetered.append(payload.clone()).unwrap();
    }

    let mut ratios = Vec::with_capacity(blocks);
    let (mut total_m, mut total_u) = (0u128, 0u128);
    for _ in 0..blocks {
        let start = Instant::now();
        for _ in 0..block {
            metered.append(payload.clone()).unwrap();
        }
        let tm = start.elapsed().as_nanos();
        let start = Instant::now();
        for _ in 0..block {
            unmetered.append(payload.clone()).unwrap();
        }
        let tu = start.elapsed().as_nanos();
        total_m += tm;
        total_u += tu;
        ratios.push(tm as f64 / tu as f64);
    }
    ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median_pct = (ratios[ratios.len() / 2] - 1.0) * 100.0;
    let iters = (block * blocks) as f64;

    let mut out =
        FigureOutput::new("metrics_overhead", "variant,ns_per_append,median_overhead_pct");
    out.row(format!("metered,{:.1},{median_pct:.2}", total_m as f64 / iters));
    out.row(format!("unmetered,{:.1},", total_u as f64 / iters));
    out.save();

    let snap = cluster_m.metrics().snapshot();
    println!("\nmetered client snapshot:\n{}", snap.to_text());
    let appends = (warmup + block * blocks) as u64;
    assert!(snap.counter("corfu.client.tokens") >= appends, "token counter must be exact");
    assert!(snap.counter("corfu.storage.writes") >= appends, "replicated writes recorded");
    assert!(
        snap.histogram("corfu.client.append_latency_ns").is_some_and(|h| h.count() > 0),
        "sampled append latency recorded"
    );
    assert!(snap.counter("trace.spans_recorded") > 0, "sampled appends recorded trace spans");
    assert!(
        cluster_m.metrics().spans().iter().any(|s| s.is_root()),
        "span ring holds at least one root span"
    );
    assert_eq!(
        Registry::disabled().snapshot().non_zero_count(),
        0,
        "disabled registry stays empty"
    );
    println!("median metrics overhead on append: {median_pct:.2}% (budget 5%)");
}
