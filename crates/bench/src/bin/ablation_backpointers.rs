//! Ablation: the backpointer redundancy factor K (§5).
//!
//! "A higher redundancy factor K for the backpointers translates into a
//! longer stride length and allows for faster construction of the linked
//! list." This runs on the REAL stack: one writer interleaves entries of
//! 8 streams; a cold reader then reconstructs one stream's membership, and
//! we count the storage reads the backward walk needed. Expected shape:
//! reads fall roughly as N/K until the sequencer's last-K window and entry
//! caching dominate.

use bytes::Bytes;
use corfu::cluster::{ClusterConfig, LocalCluster};
use corfu_stream::StreamClient;
use tango_bench::FigureOutput;

fn storage_reads(cluster: &LocalCluster) -> u64 {
    cluster.storage().iter().map(|s| s.stats().reads).sum()
}

fn main() {
    let entries_per_stream = 500u64;
    let streams = 8u32;
    let mut out = FigureOutput::new(
        "ablation_backpointers",
        "k,storage_reads_for_cold_sync,entries_in_stream",
    );
    for k in [1usize, 2, 4, 8, 16] {
        let config = ClusterConfig { k_backpointers: k, ..ClusterConfig::default() };
        let cluster = LocalCluster::new(config);
        let writer = StreamClient::new(cluster.client().unwrap());
        for i in 0..entries_per_stream {
            for s in 0..streams {
                writer.multiappend(&[s], Bytes::from(format!("{s}:{i}").into_bytes())).unwrap();
            }
        }
        let before = storage_reads(&cluster);
        // A cold reader reconstructs stream 3's membership (no payload
        // consumption yet — just the backward walk).
        let reader = StreamClient::new(cluster.client().unwrap());
        reader.open(3);
        reader.sync(&[3]).unwrap();
        let walk_reads = storage_reads(&cluster) - before;
        assert_eq!(
            reader.known_offsets(3).len() as u64,
            entries_per_stream,
            "reconstruction must be complete"
        );
        out.row(format!("{k},{walk_reads},{entries_per_stream}"));
    }
    out.save();
}
