//! Ablation: the backpointer redundancy factor K (§5).
//!
//! "A higher redundancy factor K for the backpointers translates into a
//! longer stride length and allows for faster construction of the linked
//! list." This runs on the REAL stack: one writer interleaves entries of
//! 8 streams; a cold reader then reconstructs one stream's membership, and
//! we count the storage *round trips* the backward walk needed. With the
//! batched read path each stride fetches its whole K-entry window in one
//! `ReadBatch`, so round trips fall roughly as N/K while the pages touched
//! stay ~N (every member entry is read once and cached for playback).
//! Both columns are reported.

use bytes::Bytes;
use corfu::cluster::{ClusterConfig, LocalCluster};
use corfu_stream::StreamClient;
use tango_bench::FigureOutput;

/// (storage round trips, pages served) from the cluster-wide registry.
/// A plain `Read` is one round trip serving one page; a `ReadBatch` is one
/// round trip serving `batch` pages (the `reads` counter counts pages, the
/// `read_batch` histogram one record per batch).
fn storage_traffic(cluster: &LocalCluster) -> (u64, u64) {
    let pages = cluster.metrics().counter("corfu.storage.reads").get();
    let batch = cluster.metrics().histogram("corfu.storage.read_batch");
    let round_trips = pages - batch.sum() + batch.count();
    (round_trips, pages)
}

fn main() {
    let entries_per_stream = 500u64;
    let streams = 8u32;
    let mut out = FigureOutput::new(
        "ablation_backpointers",
        "k,storage_round_trips_for_cold_sync,pages_read,entries_in_stream",
    );
    for k in [1usize, 2, 4, 8, 16] {
        let config = ClusterConfig { k_backpointers: k, ..ClusterConfig::default() };
        let cluster = LocalCluster::new(config);
        let writer = StreamClient::new(cluster.client().unwrap());
        for i in 0..entries_per_stream {
            for s in 0..streams {
                writer.multiappend(&[s], Bytes::from(format!("{s}:{i}").into_bytes())).unwrap();
            }
        }
        let (trips_before, pages_before) = storage_traffic(&cluster);
        // A cold reader reconstructs stream 3's membership (no payload
        // consumption yet — just the backward walk).
        let reader = StreamClient::new(cluster.client().unwrap());
        reader.open(3);
        reader.sync(&[3]).unwrap();
        let (trips_after, pages_after) = storage_traffic(&cluster);
        let round_trips = trips_after - trips_before;
        let pages = pages_after - pages_before;
        assert_eq!(
            reader.known_offsets(3).len() as u64,
            entries_per_stream,
            "reconstruction must be complete"
        );
        out.row(format!("{k},{round_trips},{pages},{entries_per_stream}"));
    }
    out.save();
}
