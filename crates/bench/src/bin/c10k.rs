//! c10k curve: one reactor-backed `TcpServer`, a growing population of
//! idle connections, and a fixed active load measured at each step.
//!
//! The thread-per-connection transport this repo shipped before the
//! reactor would need one thread (plus stack) per idle socket; the
//! reactor holds them all on one event-loop thread, so throughput and
//! latency of the *active* load should stay flat as the idle population
//! grows — and the process thread count should not move at all.
//!
//! Output: `results/c10k.csv` with
//! `connections,threads,ops,elapsed_ms,ops_per_sec,p50_us,p99_us,process_threads,server_conns`.

use std::net::TcpStream;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use tango_bench::{quick, FigureOutput};
use tango_metrics::Registry;
use tango_rpc::{
    ClientConn, ConnMetrics, RpcHandler, ServerMetrics, ServerOptions, TcpConn, TcpServer,
};

/// Callers hammering the active connections while the idle herd sits.
const CALLERS: usize = 32;
/// Active multiplexed client connections shared by the callers.
const ACTIVE_CONNS: usize = 4;

/// Raise the fd soft limit to the hard limit so thousands of sockets fit.
fn raise_fd_limit() {
    const RLIMIT_NOFILE: i32 = 7;
    #[repr(C)]
    struct Rlimit {
        cur: u64,
        max: u64,
    }
    extern "C" {
        fn getrlimit(resource: i32, rlim: *mut Rlimit) -> i32;
        fn setrlimit(resource: i32, rlim: *const Rlimit) -> i32;
    }
    unsafe {
        let mut lim = Rlimit { cur: 0, max: 0 };
        if getrlimit(RLIMIT_NOFILE, &mut lim) == 0 && lim.cur < lim.max {
            lim.cur = lim.max;
            let _ = setrlimit(RLIMIT_NOFILE, &lim);
        }
    }
}

fn process_threads() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines().find_map(|l| l.strip_prefix("Threads:")).and_then(|v| v.trim().parse().ok())
        })
        .unwrap_or(0)
}

struct Echo;
impl RpcHandler for Echo {
    fn handle(&self, request: &[u8]) -> Vec<u8> {
        request.to_vec()
    }
}

fn wait_for_conns(registry: &Registry, want: i64) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while registry.gauge("rpc.server_conns").get() != want {
        if Instant::now() >= deadline {
            eprintln!(
                "warning: server_conns stuck at {} (want {want})",
                registry.gauge("rpc.server_conns").get()
            );
            return;
        }
        thread::sleep(Duration::from_millis(10));
    }
}

fn main() {
    raise_fd_limit();
    let sweep: &[usize] = if quick() { &[64, 256, 512] } else { &[64, 256, 1024, 2048, 4096] };
    let per_caller: usize = if quick() { 200 } else { 500 };

    let server_registry = Registry::new();
    let options = ServerOptions {
        metrics: ServerMetrics::from_registry(&server_registry),
        ..Default::default()
    };
    let server =
        TcpServer::spawn_with("127.0.0.1:0", Arc::new(Echo), options).expect("spawn echo server");
    let addr = server.local_addr().to_string();

    let mut out = FigureOutput::new(
        "c10k",
        "connections,threads,ops,elapsed_ms,ops_per_sec,p50_us,p99_us,process_threads,server_conns",
    );

    for &idle_count in sweep {
        // Grow the idle herd for this step.
        let idles: Vec<TcpStream> = (0..idle_count)
            .map(|i| {
                TcpStream::connect(&addr)
                    .unwrap_or_else(|e| panic!("idle connect {i}/{idle_count}: {e}"))
            })
            .collect();

        // Fresh active clients per step so the latency histogram is
        // per-step, not cumulative.
        let client_registry = Registry::new();
        let actives: Vec<Arc<TcpConn>> = (0..ACTIVE_CONNS)
            .map(|_| {
                Arc::new(
                    TcpConn::new(addr.clone())
                        .with_timeout(Duration::from_secs(30))
                        .with_metrics(ConnMetrics::from_registry(&client_registry)),
                )
            })
            .collect();
        // First call on each active conn dials it.
        for conn in &actives {
            assert_eq!(conn.call(b"warm").expect("warmup call"), b"warm");
        }
        wait_for_conns(&server_registry, (idle_count + ACTIVE_CONNS) as i64);

        let started = Instant::now();
        thread::scope(|s| {
            for t in 0..CALLERS {
                let conn = Arc::clone(&actives[t % actives.len()]);
                s.spawn(move || {
                    let msg = format!("c10k-payload-{t}");
                    for _ in 0..per_caller {
                        let reply = conn.call(msg.as_bytes()).expect("call under load");
                        assert_eq!(reply, msg.as_bytes());
                    }
                });
            }
        });
        let elapsed = started.elapsed();

        let ops = (CALLERS * per_caller) as f64;
        let snap = client_registry.snapshot();
        let rt = snap.histogram("rpc.round_trip_ns");
        let (p50_us, p99_us) =
            rt.map(|h| (h.p50() as f64 / 1_000.0, h.p99() as f64 / 1_000.0)).unwrap_or((0.0, 0.0));
        out.row(format!(
            "{},{},{},{:.1},{:.0},{:.1},{:.1},{},{}",
            idle_count + ACTIVE_CONNS,
            CALLERS,
            ops as u64,
            elapsed.as_secs_f64() * 1_000.0,
            ops / elapsed.as_secs_f64(),
            p50_us,
            p99_us,
            process_threads(),
            server_registry.gauge("rpc.server_conns").get(),
        ));

        // Tear the step down and wait for the reactor to reap the herd so
        // the next step starts clean.
        drop(actives);
        drop(idles);
        wait_for_conns(&server_registry, 0);
    }
    out.save();
}
