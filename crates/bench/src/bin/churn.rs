//! Bounded-occupancy churn over tiered storage, end to end.
//!
//! A Tango runtime hammers a counter over a real TCP cluster whose storage
//! nodes run on [`TieredStore`] backends with background compactors. Two
//! phases, fresh cluster each:
//!
//! - `baseline`: append-only churn, no reclamation — occupancy grows
//!   linearly with the log.
//! - `trim`: the same churn, but the runtime's checkpoint-driven trim
//!   driver (`checkpoint_and_trim`) runs after every round — occupancy
//!   must stay flat at roughly one round's worth of pages while the
//!   workload writes an order of magnitude more than the hot set holds.
//!
//! The bench fails loudly if trim-phase occupancy is unbounded or if the
//! reclamation loop costs more than a fraction of baseline throughput.
//! Honors `TANGO_QUICK=1` (fewer entries) for CI smoke runs.

use std::path::Path;
use std::time::Instant;

use corfu::cluster::{ClusterConfig, TcpCluster};
use tango::TangoRuntime;
use tango_bench::FigureOutput;
use tango_objects::TangoCounter;

/// Cold-tier segment size and per-node hot (RAM) page budget.
const PAGES_PER_SEGMENT: u64 = 64;
const HOT_CAPACITY: usize = 64;
/// Storage geometry: 2 sets x 2 replicas = 4 tiered nodes.
const NUM_SETS: usize = 2;
const REPLICATION: usize = 2;

fn spawn_cluster(root: &Path) -> TcpCluster {
    let config =
        ClusterConfig { num_sets: NUM_SETS, replication: REPLICATION, ..Default::default() }
            .with_tiered_storage(root, PAGES_PER_SEGMENT, HOT_CAPACITY);
    TcpCluster::spawn(config).unwrap()
}

/// Max live pages and min trim horizon across the storage nodes, plus the
/// total pages reclaimed so far.
fn storage_sample(cluster: &TcpCluster) -> (u64, u64, u64) {
    let mut occupancy = 0u64;
    let mut horizon = u64::MAX;
    let mut reclaimed = 0u64;
    for id in 0..(NUM_SETS * REPLICATION) as u32 {
        if let Some(server) = cluster.storage_server(id) {
            occupancy = occupancy.max(server.occupancy());
            horizon = horizon.min(server.trim_horizon());
            reclaimed += server.tier_stats().reclaimed_pages;
        }
    }
    (occupancy, if horizon == u64::MAX { 0 } else { horizon }, reclaimed)
}

struct PhaseResult {
    appends_per_sec: f64,
    /// Per-round (round index, appended so far, occupancy, horizon,
    /// reclaimed) samples.
    samples: Vec<(u64, u64, u64, u64, u64)>,
}

fn run_phase(root: &Path, entries: u64, round: u64, trim: bool) -> PhaseResult {
    let cluster = spawn_cluster(root);
    let rt = TangoRuntime::new(cluster.client().unwrap()).unwrap();
    let counter = TangoCounter::open(&rt, "churn").unwrap();
    let rounds = entries / round;
    let mut samples = Vec::new();
    let start = Instant::now();
    for r in 0..rounds {
        for _ in 0..round {
            counter.add(1).unwrap();
        }
        if trim {
            rt.checkpoint_and_trim().unwrap();
        }
        let (occupancy, horizon, reclaimed) = storage_sample(&cluster);
        samples.push(((r + 1), (r + 1) * round, occupancy, horizon, reclaimed));
    }
    let secs = start.elapsed().as_secs_f64();
    drop(counter);
    drop(rt);
    PhaseResult { appends_per_sec: entries as f64 / secs, samples }
}

fn main() {
    let quick = tango_bench::quick();
    let entries: u64 = if quick { 2_000 } else { 10_000 };
    let round: u64 = if quick { 200 } else { 500 };
    let base = std::env::temp_dir().join(format!("tango-churn-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    // The workload must dwarf the hot set for "bounded" to mean anything:
    // each node sees ~entries/NUM_SETS addresses against HOT_CAPACITY hot
    // pages.
    let per_node = entries / NUM_SETS as u64;
    assert!(
        per_node >= 10 * HOT_CAPACITY as u64,
        "churn ({per_node}/node) must cover >=10x the hot set ({HOT_CAPACITY})"
    );

    let mut out = FigureOutput::new(
        "churn",
        "phase,round,appended,occupancy_max,trim_horizon_min,reclaimed_pages,appends_per_sec",
    );

    let baseline = run_phase(&base.join("baseline"), entries, round, false);
    for &(r, appended, occ, horizon, reclaimed) in &baseline.samples {
        out.row(format!(
            "baseline,{r},{appended},{occ},{horizon},{reclaimed},{:.0}",
            baseline.appends_per_sec
        ));
    }
    let trimmed = run_phase(&base.join("trim"), entries, round, true);
    for &(r, appended, occ, horizon, reclaimed) in &trimmed.samples {
        out.row(format!(
            "trim,{r},{appended},{occ},{horizon},{reclaimed},{:.0}",
            trimmed.appends_per_sec
        ));
    }
    out.save();
    let _ = std::fs::remove_dir_all(&base);

    // Baseline occupancy grows with the log; the trim phase must not.
    let last = |p: &PhaseResult| p.samples.last().unwrap().2;
    let peak = |p: &PhaseResult, range: std::ops::Range<usize>| {
        p.samples[range].iter().map(|s| s.2).max().unwrap()
    };
    let n = trimmed.samples.len();
    let early_peak = peak(&trimmed, 0..n / 2);
    let late_peak = peak(&trimmed, n / 2..n);
    eprintln!(
        "churn: baseline occupancy {} pages, trim occupancy early/late peak {}/{} pages",
        last(&baseline),
        early_peak,
        late_peak
    );
    // Flat within a bound: the steady state holds about one round of
    // entries per set plus checkpoint records, and never drifts upward
    // across the second half of a >=10x-hot-set run.
    let bound = 3 * round / NUM_SETS as u64 + 2 * HOT_CAPACITY as u64;
    assert!(
        late_peak <= bound,
        "trim-phase occupancy {late_peak} exceeds bound {bound}: reclamation is not keeping up"
    );
    assert!(
        late_peak <= early_peak + round / NUM_SETS as u64,
        "trim-phase occupancy drifts upward ({early_peak} -> {late_peak})"
    );
    assert!(
        last(&baseline) > 2 * bound,
        "baseline too small to demonstrate growth ({} pages)",
        last(&baseline)
    );

    let ratio = trimmed.appends_per_sec / baseline.appends_per_sec;
    eprintln!(
        "churn: baseline {:.0}/s, with checkpoint+trim {:.0}/s ({:.1}% of baseline)",
        baseline.appends_per_sec,
        trimmed.appends_per_sec,
        100.0 * ratio
    );
    assert!(ratio >= 0.8, "reclamation cost too high: {:.1}% of baseline", 100.0 * ratio);

    // Keep the runtime driver honest about what it reclaimed.
    let (_, horizon, reclaimed) = trimmed.samples.last().copied().map(|s| (s.1, s.3, s.4)).unwrap();
    assert!(horizon > 0, "trim horizon never advanced");
    assert!(reclaimed > 0, "no whole segments were ever reclaimed");
}
