//! Figure 2: sequencer throughput vs number of clients.
//!
//! Paper: "as we add clients to the system, sequencer throughput increases
//! until it plateaus at around 570K requests/sec … with a batch size of 4
//! the sequencer can run at over 2M requests/sec."

use simcluster::experiments::fig2_sequencer;
use tango_bench::FigureOutput;

fn main() {
    let quick = tango_bench::quick();
    let mut out = FigureOutput::new("fig2_sequencer", "clients,ks_requests_per_sec,ks_batched4");
    let client_counts: Vec<usize> = if quick {
        vec![1, 4, 16, 36]
    } else {
        vec![1, 2, 4, 6, 8, 10, 12, 16, 20, 24, 28, 32, 36, 40]
    };
    for &clients in &client_counts {
        let plain = fig2_sequencer(clients, 8, 1, 42);
        let batched = fig2_sequencer(clients, 8, 4, 42);
        out.row(format!("{clients},{plain:.1},{batched:.1}"));
    }
    out.save();
}
