//! Ablation: commit-record batching (the paper batches 4 records per 4KB
//! entry). Batching amortizes sequencer tokens, chain writes, and playback
//! fetches across records; this sweep shows how much of the Figure 9
//! throughput depends on it.

use simcluster::experiments::fig9_with_batch;
use tango_bench::FigureOutput;

fn main() {
    let mut out = FigureOutput::new("ablation_batch", "batch,ks_txes_per_sec,ks_goodput");
    for batch in [1usize, 2, 4, 8] {
        let (tput, goodput) = fig9_with_batch(4, 100_000, batch, 42);
        out.row(format!("{batch},{tput:.1},{goodput:.1}"));
    }
    out.save();
}
