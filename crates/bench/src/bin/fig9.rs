//! Figure 9: transaction throughput and goodput on a single fully
//! replicated TangoMap, varying the number of nodes, the key count, and
//! the key distribution (uniform vs YCSB-A zipf).
//!
//! Paper: goodput is low with tens/hundreds of keys but reaches 99%
//! (uniform) / 70% (zipf) of throughput at 10K+ keys; throughput plateaus
//! at three nodes — the playback bottleneck.

use simcluster::experiments::fig9;
use tango_bench::FigureOutput;

fn main() {
    let quick = tango_bench::quick();
    let mut out = FigureOutput::new(
        "fig9_tx_contention",
        "dist,total_keys,nodes,ks_txes_per_sec,ks_goodput_per_sec",
    );
    let key_counts: Vec<u64> = if quick {
        vec![100, 10_000, 1_000_000]
    } else {
        vec![10, 100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000]
    };
    let node_counts: Vec<usize> = if quick { vec![2, 4, 8] } else { vec![2, 3, 4, 5, 6, 7, 8] };
    for &zipf in &[true, false] {
        let dist = if zipf { "zipf" } else { "uniform" };
        for &keys in &key_counts {
            for &nodes in &node_counts {
                let (tput, goodput) = fig9(nodes, keys, zipf, 42);
                out.row(format!("{dist},{keys},{nodes},{tput:.1},{goodput:.1}"));
            }
        }
    }
    out.save();
}
