//! Shared helpers for the object library.

use tango_wire::{encode_to_vec, Encode};

/// FNV-1a hash of a byte string, used to derive fine-grained versioning
/// keys (§3.2 "Versioning") from encoded map/tree keys.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// The fine-grained versioning key for an encodable map key.
pub fn key_hash<K: Encode + ?Sized>(key: &K) -> u64 {
    fnv1a(&encode_to_vec(key))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv1a(b"foobar"), 0x85944171F73967E8);
    }

    #[test]
    fn distinct_keys_distinct_hashes() {
        let a = key_hash("alpha");
        let b = key_hash("beta");
        assert_ne!(a, b);
        // Stable across calls.
        assert_eq!(a, key_hash("alpha"));
    }
}
