//! TangoBK: the BookKeeper single-writer ledger abstraction over Tango
//! (§6.3).
//!
//! "Ledger writes directly translate into stream appends (with some
//! metadata added to enforce the single-writer property), and hence run at
//! the speed of the underlying shared log": `add_entry` is a plain
//! (non-transactional) append tagged with the writer id; the apply upcall
//! drops entries from fenced writers deterministically on every view. The
//! view stores only *log offsets* per entry, so ledgers of any size keep a
//! small in-memory footprint and `read_entry` fetches payloads straight
//! from flash.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use bytes::Bytes;
use tango::{ApplyMeta, ObjectOptions, ObjectView, StateMachine, TangoRuntime, TxStatus};
use tango_wire::{decode_from_slice, encode_to_vec, Decode, Encode, Reader, WireError, Writer};

/// A ledger identifier.
pub type LedgerId = u64;

/// BookKeeper-style errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BkError {
    /// Unknown ledger id.
    NoLedger,
    /// The ledger is closed (or this writer was fenced).
    LedgerClosed,
    /// The caller is not the ledger's current writer.
    Fenced,
    /// Entry id out of range.
    NoEntry,
    /// The underlying runtime failed.
    Tango(tango::TangoError),
}

impl fmt::Display for BkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BkError::NoLedger => write!(f, "no such ledger"),
            BkError::LedgerClosed => write!(f, "ledger is closed"),
            BkError::Fenced => write!(f, "writer was fenced"),
            BkError::NoEntry => write!(f, "no such entry"),
            BkError::Tango(e) => write!(f, "runtime error: {e}"),
        }
    }
}

impl std::error::Error for BkError {}

impl From<tango::TangoError> for BkError {
    fn from(e: tango::TangoError) -> Self {
        BkError::Tango(e)
    }
}

/// Convenience alias.
pub type BkResult<T> = Result<T, BkError>;

#[derive(Debug, Clone)]
struct Ledger {
    writer: u64,
    closed: bool,
    /// Log offset of each accepted entry, in entry-id order.
    entries: Vec<u64>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum BkRecord {
    CreateLedger {
        id: LedgerId,
        writer: u64,
    },
    /// Accepted only while the ledger is open and `writer` matches — the
    /// single-writer enforcement metadata.
    AddEntry {
        ledger: LedgerId,
        writer: u64,
        payload: Bytes,
    },
    /// Fence the ledger: change its writer (recovery) without closing.
    Fence {
        ledger: LedgerId,
        new_writer: u64,
    },
    Close {
        ledger: LedgerId,
    },
}

impl Encode for BkRecord {
    fn encode(&self, w: &mut Writer) {
        match self {
            BkRecord::CreateLedger { id, writer } => {
                w.put_u8(0);
                w.put_u64(*id);
                w.put_u64(*writer);
            }
            BkRecord::AddEntry { ledger, writer, payload } => {
                w.put_u8(1);
                w.put_u64(*ledger);
                w.put_u64(*writer);
                w.put_bytes(payload);
            }
            BkRecord::Fence { ledger, new_writer } => {
                w.put_u8(2);
                w.put_u64(*ledger);
                w.put_u64(*new_writer);
            }
            BkRecord::Close { ledger } => {
                w.put_u8(3);
                w.put_u64(*ledger);
            }
        }
    }
}

impl Decode for BkRecord {
    fn decode(r: &mut Reader<'_>) -> tango_wire::Result<Self> {
        match r.get_u8()? {
            0 => Ok(BkRecord::CreateLedger { id: r.get_u64()?, writer: r.get_u64()? }),
            1 => Ok(BkRecord::AddEntry {
                ledger: r.get_u64()?,
                writer: r.get_u64()?,
                payload: Bytes::copy_from_slice(r.get_bytes()?),
            }),
            2 => Ok(BkRecord::Fence { ledger: r.get_u64()?, new_writer: r.get_u64()? }),
            3 => Ok(BkRecord::Close { ledger: r.get_u64()? }),
            tag => Err(WireError::InvalidTag { what: "BkRecord", tag: tag as u64 }),
        }
    }
}

/// The ledger-store view.
#[derive(Default)]
pub struct BkState {
    ledgers: HashMap<LedgerId, Ledger>,
    next_id: LedgerId,
}

impl StateMachine for BkState {
    fn apply(&mut self, data: &[u8], meta: &ApplyMeta) {
        let Ok(record) = decode_from_slice::<BkRecord>(data) else { return };
        match record {
            BkRecord::CreateLedger { id, writer } => {
                self.ledgers.entry(id).or_insert(Ledger {
                    writer,
                    closed: false,
                    entries: Vec::new(),
                });
                self.next_id = self.next_id.max(id + 1);
            }
            BkRecord::AddEntry { ledger, writer, .. } => {
                if let Some(l) = self.ledgers.get_mut(&ledger) {
                    // The single-writer property, enforced deterministically
                    // at every view: stale writers' appends are dropped.
                    if !l.closed && l.writer == writer {
                        l.entries.push(meta.offset);
                    }
                }
            }
            BkRecord::Fence { ledger, new_writer } => {
                if let Some(l) = self.ledgers.get_mut(&ledger) {
                    l.writer = new_writer;
                }
            }
            BkRecord::Close { ledger } => {
                if let Some(l) = self.ledgers.get_mut(&ledger) {
                    l.closed = true;
                }
            }
        }
    }

    fn checkpoint(&self) -> Option<Vec<u8>> {
        let mut w = Writer::new();
        let mut ids: Vec<&LedgerId> = self.ledgers.keys().collect();
        ids.sort();
        w.put_varint(self.ledgers.len() as u64);
        for id in ids {
            let l = &self.ledgers[id];
            w.put_u64(*id);
            w.put_u64(l.writer);
            w.put_bool(l.closed);
            w.put_varint(l.entries.len() as u64);
            for &off in &l.entries {
                w.put_u64(off);
            }
        }
        w.put_u64(self.next_id);
        Some(w.into_vec())
    }

    fn restore(&mut self, data: &[u8]) -> tango::Result<()> {
        let mut r = Reader::new(data);
        let mut fresh = BkState::default();
        let parse = (|| -> tango_wire::Result<()> {
            let n = r.get_len(1 << 24)?;
            for _ in 0..n {
                let id = r.get_u64()?;
                let writer = r.get_u64()?;
                let closed = r.get_bool()?;
                let count = r.get_len(1 << 28)?;
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    entries.push(r.get_u64()?);
                }
                fresh.ledgers.insert(id, Ledger { writer, closed, entries });
            }
            fresh.next_id = r.get_u64()?;
            Ok(())
        })();
        parse.map_err(|e| tango::TangoError::Codec(e.to_string()))?;
        *self = fresh;
        Ok(())
    }
}

/// A BookKeeper-style ledger store over the shared log.
#[derive(Clone)]
pub struct TangoBK {
    view: ObjectView<BkState>,
    writer_id: u64,
}

impl TangoBK {
    /// Opens (creating if needed) the ledger store named `name`. This
    /// client's writer identity is the runtime's client id.
    pub fn open(runtime: &Arc<TangoRuntime>, name: &str) -> tango::Result<Self> {
        let oid = runtime.create_or_open(name)?;
        let view = runtime.register_object(oid, BkState::default(), ObjectOptions::default())?;
        let writer_id = runtime.options().client_id;
        Ok(Self { view, writer_id })
    }

    /// The object id.
    pub fn oid(&self) -> tango::Oid {
        self.view.oid()
    }

    /// This client's writer identity.
    pub fn writer_id(&self) -> u64 {
        self.writer_id
    }

    /// Creates a new ledger owned by this writer and returns its id.
    pub fn create_ledger(&self) -> BkResult<LedgerId> {
        let runtime = self.view.runtime().clone();
        loop {
            self.view.query(None, |_| ())?;
            runtime.begin_tx().map_err(BkError::Tango)?;
            let id = self.view.query_dirty(None, |s| s.next_id)?;
            let record = BkRecord::CreateLedger { id, writer: self.writer_id };
            self.view.update(None, encode_to_vec(&record))?;
            if runtime.end_tx().map_err(BkError::Tango)? == TxStatus::Committed {
                return Ok(id);
            }
        }
    }

    /// Appends an entry to an open ledger. This is a plain stream append —
    /// no transaction, no log playback — so it runs at the speed of the
    /// shared log. Returns the tentative entry id; a fenced writer's
    /// appends are dropped by every view (confirm with
    /// [`TangoBK::last_add_confirmed`]).
    pub fn add_entry(&self, ledger: LedgerId, payload: &[u8]) -> BkResult<()> {
        let record = BkRecord::AddEntry {
            ledger,
            writer: self.writer_id,
            payload: Bytes::copy_from_slice(payload),
        };
        // Fine-grained key: appends to different ledgers never conflict.
        self.view.update(Some(ledger), encode_to_vec(&record))?;
        Ok(())
    }

    /// The id of the last entry visible in this ledger (-1 if empty).
    pub fn last_add_confirmed(&self, ledger: LedgerId) -> BkResult<i64> {
        self.view
            .query(Some(ledger), |s| s.ledgers.get(&ledger).map(|l| l.entries.len() as i64 - 1))?
            .ok_or(BkError::NoLedger)
    }

    /// Reads one entry's payload by ledger-relative entry id, following the
    /// view's offset pointer into the log.
    pub fn read_entry(&self, ledger: LedgerId, entry_id: u64) -> BkResult<Bytes> {
        let offset = self
            .view
            .query(Some(ledger), |s| {
                s.ledgers.get(&ledger).map(|l| l.entries.get(entry_id as usize).copied())
            })?
            .ok_or(BkError::NoLedger)?
            .ok_or(BkError::NoEntry)?;
        let runtime = self.view.runtime();
        for update in runtime.read_updates_at(offset)? {
            if update.oid != self.view.oid() {
                continue;
            }
            if let Ok(BkRecord::AddEntry { ledger: l, payload, .. }) =
                decode_from_slice::<BkRecord>(&update.data)
            {
                if l == ledger {
                    return Ok(payload);
                }
            }
        }
        Err(BkError::NoEntry)
    }

    /// Reads a range of entries `[first, last]` (inclusive), BookKeeper
    /// style.
    pub fn read_entries(&self, ledger: LedgerId, first: u64, last: u64) -> BkResult<Vec<Bytes>> {
        let mut out = Vec::new();
        for id in first..=last {
            out.push(self.read_entry(ledger, id)?);
        }
        Ok(out)
    }

    /// Fences the ledger to this writer (recovery): the previous writer's
    /// in-flight appends are dropped by every view from the fence onward.
    pub fn fence(&self, ledger: LedgerId) -> BkResult<()> {
        let runtime = self.view.runtime().clone();
        loop {
            self.view.query(None, |_| ())?;
            runtime.begin_tx().map_err(BkError::Tango)?;
            let exists =
                self.view.query_dirty(Some(ledger), |s| s.ledgers.contains_key(&ledger))?;
            if !exists {
                let _ = runtime.abort_tx();
                return Err(BkError::NoLedger);
            }
            let record = BkRecord::Fence { ledger, new_writer: self.writer_id };
            self.view.update(Some(ledger), encode_to_vec(&record))?;
            if runtime.end_tx().map_err(BkError::Tango)? == TxStatus::Committed {
                return Ok(());
            }
        }
    }

    /// Closes the ledger; no further appends are accepted by any view.
    pub fn close(&self, ledger: LedgerId) -> BkResult<()> {
        let runtime = self.view.runtime().clone();
        loop {
            self.view.query(None, |_| ())?;
            runtime.begin_tx().map_err(BkError::Tango)?;
            let state = self
                .view
                .query_dirty(Some(ledger), |s| s.ledgers.get(&ledger).map(|l| l.closed))?;
            match state {
                None => {
                    let _ = runtime.abort_tx();
                    return Err(BkError::NoLedger);
                }
                Some(true) => {
                    let _ = runtime.abort_tx();
                    return Ok(()); // Idempotent.
                }
                Some(false) => {}
            }
            let record = BkRecord::Close { ledger };
            self.view.update(Some(ledger), encode_to_vec(&record))?;
            if runtime.end_tx().map_err(BkError::Tango)? == TxStatus::Committed {
                return Ok(());
            }
        }
    }

    /// True if the ledger is closed.
    pub fn is_closed(&self, ledger: LedgerId) -> BkResult<bool> {
        self.view
            .query(Some(ledger), |s| s.ledgers.get(&ledger).map(|l| l.closed))?
            .ok_or(BkError::NoLedger)
    }
}
