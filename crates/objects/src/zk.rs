//! TangoZK: the ZooKeeper interface over Tango (§6.3).
//!
//! A hierarchical namespace of versioned znodes with create/delete/
//! set-data/get-data/exists/get-children, sequential nodes, watches, and
//! multi-ops — in a few hundred lines instead of ZooKeeper's 13K, because
//! consistency, persistence and high availability come from the shared
//! log. Unlike ZooKeeper, several TangoZK instances can partition a
//! namespace *and* move nodes between partitions transactionally (the
//! cross-namespace move measured in the paper's evaluation); see
//! [`move_node`].
//!
//! Differences from Apache ZooKeeper, by design: sessions and ephemeral
//! nodes are out of scope (they need liveness tracking, orthogonal to the
//! paper), watches are persistent rather than one-shot, and ACLs are
//! omitted (the paper's line count excludes them too).

use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::Arc;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use tango::{ApplyMeta, ObjectOptions, ObjectView, StateMachine, TangoRuntime, TxStatus};
use tango_wire::{decode_from_slice, encode_to_vec, Decode, Encode, Reader, WireError, Writer};

use crate::util::fnv1a;

/// ZooKeeper-style errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZkError {
    /// The node (or its parent) does not exist.
    NoNode,
    /// A node already exists at the path.
    NodeExists,
    /// Delete of a node that still has children.
    NotEmpty,
    /// A conditional operation's expected version did not match.
    BadVersion,
    /// The path is syntactically invalid.
    BadPath(String),
    /// The underlying runtime failed.
    Tango(tango::TangoError),
}

impl fmt::Display for ZkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ZkError::NoNode => write!(f, "no such node"),
            ZkError::NodeExists => write!(f, "node already exists"),
            ZkError::NotEmpty => write!(f, "node has children"),
            ZkError::BadVersion => write!(f, "version mismatch"),
            ZkError::BadPath(p) => write!(f, "bad path: {p}"),
            ZkError::Tango(e) => write!(f, "runtime error: {e}"),
        }
    }
}

impl std::error::Error for ZkError {}

impl From<tango::TangoError> for ZkError {
    fn from(e: tango::TangoError) -> Self {
        ZkError::Tango(e)
    }
}

/// Convenience alias.
pub type ZkResult<T> = Result<T, ZkError>;

/// Node metadata, in the spirit of ZooKeeper's `Stat`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stat {
    /// Data version: bumped by each `set_data`.
    pub version: i64,
    /// Log offset of the entry that created the node.
    pub czxid: u64,
    /// Log offset of the entry that last modified the node's data.
    pub mzxid: u64,
    /// Number of children.
    pub num_children: usize,
}

/// Creation modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CreateMode {
    /// A plain persistent node.
    Persistent,
    /// A persistent node whose name gets a monotonically increasing
    /// 10-digit suffix allocated under the parent.
    PersistentSequential,
}

/// Events delivered to watchers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WatchEvent {
    /// The node was created.
    Created(String),
    /// The node's data changed.
    DataChanged(String),
    /// The node was deleted.
    Deleted(String),
    /// The node's child list changed.
    ChildrenChanged(String),
}

#[derive(Debug, Clone)]
struct Znode {
    data: Bytes,
    version: i64,
    czxid: u64,
    mzxid: u64,
    children: BTreeSet<String>,
    seq_counter: u64,
}

impl Znode {
    fn new(data: Bytes, zxid: u64) -> Self {
        Self {
            data,
            version: 0,
            czxid: zxid,
            mzxid: zxid,
            children: BTreeSet::new(),
            seq_counter: 0,
        }
    }
}

/// Log-record vocabulary. Preconditions are validated inside the
/// transaction that emits these, so applies are unconditional.
#[derive(Debug, Clone, PartialEq, Eq)]
enum ZkRecord {
    PutNode { path: String, data: Bytes },
    RemoveNode { path: String },
    AddChild { parent: String, name: String, bump_seq: bool },
    RemoveChild { parent: String, name: String },
    SetData { path: String, data: Bytes },
}

impl Encode for ZkRecord {
    fn encode(&self, w: &mut Writer) {
        match self {
            ZkRecord::PutNode { path, data } => {
                w.put_u8(0);
                w.put_str(path);
                w.put_bytes(data);
            }
            ZkRecord::RemoveNode { path } => {
                w.put_u8(1);
                w.put_str(path);
            }
            ZkRecord::AddChild { parent, name, bump_seq } => {
                w.put_u8(2);
                w.put_str(parent);
                w.put_str(name);
                w.put_bool(*bump_seq);
            }
            ZkRecord::RemoveChild { parent, name } => {
                w.put_u8(3);
                w.put_str(parent);
                w.put_str(name);
            }
            ZkRecord::SetData { path, data } => {
                w.put_u8(4);
                w.put_str(path);
                w.put_bytes(data);
            }
        }
    }
}

impl Decode for ZkRecord {
    fn decode(r: &mut Reader<'_>) -> tango_wire::Result<Self> {
        match r.get_u8()? {
            0 => Ok(ZkRecord::PutNode {
                path: r.get_str()?.to_owned(),
                data: Bytes::copy_from_slice(r.get_bytes()?),
            }),
            1 => Ok(ZkRecord::RemoveNode { path: r.get_str()?.to_owned() }),
            2 => Ok(ZkRecord::AddChild {
                parent: r.get_str()?.to_owned(),
                name: r.get_str()?.to_owned(),
                bump_seq: r.get_bool()?,
            }),
            3 => Ok(ZkRecord::RemoveChild {
                parent: r.get_str()?.to_owned(),
                name: r.get_str()?.to_owned(),
            }),
            4 => Ok(ZkRecord::SetData {
                path: r.get_str()?.to_owned(),
                data: Bytes::copy_from_slice(r.get_bytes()?),
            }),
            tag => Err(WireError::InvalidTag { what: "ZkRecord", tag: tag as u64 }),
        }
    }
}

/// The namespace view.
pub struct ZkState {
    nodes: HashMap<String, Znode>,
    data_watches: HashMap<String, Vec<Sender<WatchEvent>>>,
    child_watches: HashMap<String, Vec<Sender<WatchEvent>>>,
}

impl Default for ZkState {
    fn default() -> Self {
        let mut nodes = HashMap::new();
        nodes.insert("/".to_owned(), Znode::new(Bytes::new(), 0));
        Self { nodes, data_watches: HashMap::new(), child_watches: HashMap::new() }
    }
}

impl ZkState {
    fn fire_data(&self, path: &str, event: WatchEvent) {
        if let Some(watchers) = self.data_watches.get(path) {
            for w in watchers {
                let _ = w.send(event.clone());
            }
        }
    }

    fn fire_children(&self, path: &str, event: WatchEvent) {
        if let Some(watchers) = self.child_watches.get(path) {
            for w in watchers {
                let _ = w.send(event.clone());
            }
        }
    }
}

impl StateMachine for ZkState {
    fn apply(&mut self, data: &[u8], meta: &ApplyMeta) {
        let Ok(record) = decode_from_slice::<ZkRecord>(data) else { return };
        match record {
            ZkRecord::PutNode { path, data } => {
                self.nodes.insert(path.clone(), Znode::new(data, meta.offset));
                self.fire_data(&path, WatchEvent::Created(path.clone()));
            }
            ZkRecord::RemoveNode { path } => {
                self.nodes.remove(&path);
                self.fire_data(&path, WatchEvent::Deleted(path.clone()));
            }
            ZkRecord::AddChild { parent, name, bump_seq } => {
                if let Some(node) = self.nodes.get_mut(&parent) {
                    node.children.insert(name);
                    if bump_seq {
                        node.seq_counter += 1;
                    }
                }
                self.fire_children(&parent, WatchEvent::ChildrenChanged(parent.clone()));
            }
            ZkRecord::RemoveChild { parent, name } => {
                if let Some(node) = self.nodes.get_mut(&parent) {
                    node.children.remove(&name);
                }
                self.fire_children(&parent, WatchEvent::ChildrenChanged(parent.clone()));
            }
            ZkRecord::SetData { path, data } => {
                if let Some(node) = self.nodes.get_mut(&path) {
                    node.data = data;
                    node.version += 1;
                    node.mzxid = meta.offset;
                }
                self.fire_data(&path, WatchEvent::DataChanged(path.clone()));
            }
        }
    }

    fn checkpoint(&self) -> Option<Vec<u8>> {
        let mut w = Writer::new();
        let mut paths: Vec<&String> = self.nodes.keys().collect();
        paths.sort();
        w.put_varint(paths.len() as u64);
        for path in paths {
            let node = &self.nodes[path];
            w.put_str(path);
            w.put_bytes(&node.data);
            w.put_i64(node.version);
            w.put_u64(node.czxid);
            w.put_u64(node.mzxid);
            w.put_u64(node.seq_counter);
            w.put_varint(node.children.len() as u64);
            for child in &node.children {
                w.put_str(child);
            }
        }
        Some(w.into_vec())
    }

    fn restore(&mut self, data: &[u8]) -> tango::Result<()> {
        let mut r = Reader::new(data);
        let mut fresh: HashMap<String, Znode> = HashMap::new();
        let parse = (|| -> tango_wire::Result<()> {
            let n = r.get_len(1 << 24)?;
            for _ in 0..n {
                let path = r.get_str()?.to_owned();
                let data = Bytes::copy_from_slice(r.get_bytes()?);
                let version = r.get_i64()?;
                let czxid = r.get_u64()?;
                let mzxid = r.get_u64()?;
                let seq_counter = r.get_u64()?;
                let nchildren = r.get_len(1 << 24)?;
                let mut children = BTreeSet::new();
                for _ in 0..nchildren {
                    children.insert(r.get_str()?.to_owned());
                }
                fresh.insert(path, Znode { data, version, czxid, mzxid, children, seq_counter });
            }
            Ok(())
        })();
        parse.map_err(|e| tango::TangoError::Codec(e.to_string()))?;
        self.nodes = fresh;
        Ok(())
    }
}

/// One operation of a `multi` batch (ZooKeeper's multi-op, §6.3).
#[derive(Debug, Clone)]
pub enum ZkOp {
    /// Create a node.
    Create {
        /// Absolute path.
        path: String,
        /// Initial data.
        data: Bytes,
        /// Plain or sequential.
        mode: CreateMode,
    },
    /// Delete a node, optionally at an expected version.
    Delete {
        /// Absolute path.
        path: String,
        /// Expected data version, or `None` for unconditional.
        version: Option<i64>,
    },
    /// Overwrite a node's data, optionally at an expected version.
    SetData {
        /// Absolute path.
        path: String,
        /// New data.
        data: Bytes,
        /// Expected data version, or `None` for unconditional.
        version: Option<i64>,
    },
    /// Assert a node's version without modifying it.
    Check {
        /// Absolute path.
        path: String,
        /// Expected data version.
        version: i64,
    },
}

/// A ZooKeeper-style namespace backed by the shared log.
#[derive(Clone)]
pub struct TangoZK {
    view: ObjectView<ZkState>,
}

fn validate(path: &str) -> ZkResult<()> {
    if path == "/" {
        return Ok(());
    }
    if !path.starts_with('/') || path.ends_with('/') || path.contains("//") {
        return Err(ZkError::BadPath(path.to_owned()));
    }
    Ok(())
}

fn parent_of(path: &str) -> ZkResult<(String, String)> {
    let idx = path.rfind('/').ok_or_else(|| ZkError::BadPath(path.to_owned()))?;
    let parent = if idx == 0 { "/".to_owned() } else { path[..idx].to_owned() };
    let name = path[idx + 1..].to_owned();
    if name.is_empty() {
        return Err(ZkError::BadPath(path.to_owned()));
    }
    Ok((parent, name))
}

fn node_key(path: &str) -> u64 {
    fnv1a(format!("n:{path}").as_bytes())
}

fn children_key(path: &str) -> u64 {
    fnv1a(format!("c:{path}").as_bytes())
}

impl TangoZK {
    /// Opens (creating if needed) the namespace named `name`.
    pub fn open(runtime: &Arc<TangoRuntime>, name: &str) -> tango::Result<Self> {
        Self::open_with(runtime, name, ObjectOptions::default())
    }

    /// Opens with explicit object options (partitioned namespaces written
    /// across clients should set `needs_decision`).
    pub fn open_with(
        runtime: &Arc<TangoRuntime>,
        name: &str,
        options: ObjectOptions,
    ) -> tango::Result<Self> {
        let oid = runtime.create_or_open(name)?;
        let view = runtime.register_object(oid, ZkState::default(), options)?;
        Ok(Self { view })
    }

    /// The object id.
    pub fn oid(&self) -> tango::Oid {
        self.view.oid()
    }

    /// The runtime this namespace lives on.
    pub fn runtime(&self) -> &Arc<TangoRuntime> {
        self.view.runtime()
    }

    // --------------------------------------------------------------
    // Accessors
    // --------------------------------------------------------------

    /// True if a node exists at `path` (linearizable).
    pub fn exists(&self, path: &str) -> ZkResult<bool> {
        validate(path)?;
        Ok(self.view.query(Some(node_key(path)), |s| s.nodes.contains_key(path))?)
    }

    /// Reads a node's data and stat.
    pub fn get_data(&self, path: &str) -> ZkResult<(Bytes, Stat)> {
        validate(path)?;
        self.view
            .query(Some(node_key(path)), |s| {
                s.nodes.get(path).map(|n| {
                    (
                        n.data.clone(),
                        Stat {
                            version: n.version,
                            czxid: n.czxid,
                            mzxid: n.mzxid,
                            num_children: n.children.len(),
                        },
                    )
                })
            })?
            .ok_or(ZkError::NoNode)
    }

    /// Lists a node's children (sorted).
    pub fn get_children(&self, path: &str) -> ZkResult<Vec<String>> {
        validate(path)?;
        self.view
            .query(Some(children_key(path)), |s| {
                s.nodes.get(path).map(|n| n.children.iter().cloned().collect())
            })?
            .ok_or(ZkError::NoNode)
    }

    /// Registers a persistent watch on a node's data (created / changed /
    /// deleted events).
    pub fn watch_data(&self, path: &str) -> ZkResult<Receiver<WatchEvent>> {
        validate(path)?;
        let (tx, rx) = unbounded();
        self.install_watch(path, tx, WatchKind::Data)?;
        Ok(rx)
    }

    /// Registers a persistent watch on a node's child list.
    pub fn watch_children(&self, path: &str) -> ZkResult<Receiver<WatchEvent>> {
        validate(path)?;
        let (tx, rx) = unbounded();
        self.install_watch(path, tx, WatchKind::Children)?;
        Ok(rx)
    }

    fn install_watch(&self, path: &str, tx: Sender<WatchEvent>, kind: WatchKind) -> ZkResult<()> {
        // Watch installation is local-only state; it does not go through
        // the log.
        self.with_state_mut(|s| match kind {
            WatchKind::Data => s.data_watches.entry(path.to_owned()).or_default().push(tx),
            WatchKind::Children => s.child_watches.entry(path.to_owned()).or_default().push(tx),
        });
        Ok(())
    }

    /// Local mutable access for watch registration only — watches are
    /// local callbacks, not replicated state.
    fn with_state_mut(&self, f: impl FnOnce(&mut ZkState)) {
        f(&mut self.view.local_state().lock());
    }

    // --------------------------------------------------------------
    // Mutators (each is a transaction with internal retry)
    // --------------------------------------------------------------

    /// Creates a node, returning its actual path (which differs from the
    /// requested one for sequential nodes).
    pub fn create(&self, path: &str, data: &[u8], mode: CreateMode) -> ZkResult<String> {
        self.retry_tx(|zk| zk.create_in_tx(path, data, mode))
    }

    /// Deletes a node; `version` of `None` deletes unconditionally.
    pub fn delete(&self, path: &str, version: Option<i64>) -> ZkResult<()> {
        self.retry_tx(|zk| zk.delete_in_tx(path, version))
    }

    /// Overwrites a node's data, returning the new version.
    pub fn set_data(&self, path: &str, data: &[u8], version: Option<i64>) -> ZkResult<i64> {
        self.retry_tx(|zk| zk.set_data_in_tx(path, data, version))
    }

    /// Executes a batch of operations atomically (ZooKeeper's `multi`).
    /// Either all succeed or none do. Returns created paths for `Create`
    /// ops (empty strings for the others).
    pub fn multi(&self, ops: &[ZkOp]) -> ZkResult<Vec<String>> {
        self.retry_tx(|zk| {
            let mut results = Vec::with_capacity(ops.len());
            for op in ops {
                match op {
                    ZkOp::Create { path, data, mode } => {
                        results.push(zk.create_in_tx(path, data, *mode)?);
                    }
                    ZkOp::Delete { path, version } => {
                        zk.delete_in_tx(path, *version)?;
                        results.push(String::new());
                    }
                    ZkOp::SetData { path, data, version } => {
                        zk.set_data_in_tx(path, data, *version)?;
                        results.push(String::new());
                    }
                    ZkOp::Check { path, version } => {
                        zk.check_in_tx(path, *version)?;
                        results.push(String::new());
                    }
                }
            }
            Ok(results)
        })
    }

    /// Runs `body` in a transaction, retrying on OCC aborts; precondition
    /// failures (`ZkError`) abort the transaction and surface immediately.
    fn retry_tx<R>(&self, body: impl Fn(&Self) -> ZkResult<R>) -> ZkResult<R> {
        let runtime = self.view.runtime().clone();
        loop {
            // Refresh the view so the snapshot is current.
            self.view.query(None, |_| ())?;
            runtime.begin_tx().map_err(ZkError::Tango)?;
            match body(self) {
                Ok(value) => match runtime.end_tx().map_err(ZkError::Tango)? {
                    TxStatus::Committed => return Ok(value),
                    TxStatus::Aborted => continue,
                },
                Err(e) => {
                    let _ = runtime.abort_tx();
                    return Err(e);
                }
            }
        }
    }

    /// Create inside an active transaction (used by `create`, `multi`, and
    /// cross-namespace moves).
    pub fn create_in_tx(&self, path: &str, data: &[u8], mode: CreateMode) -> ZkResult<String> {
        validate(path)?;
        let (parent, name) = parent_of(path)?;
        // Read the parent (its child list / sequence counter region).
        let parent_info = self.view.query_dirty(Some(children_key(&parent)), |s| {
            s.nodes.get(&parent).map(|n| n.seq_counter)
        })?;
        let Some(seq) = parent_info else { return Err(ZkError::NoNode) };
        let (actual_path, actual_name, bump_seq) = match mode {
            CreateMode::Persistent => (path.to_owned(), name, false),
            CreateMode::PersistentSequential => {
                let seq_name = format!("{name}{seq:010}");
                (format!("{}/{seq_name}", if parent == "/" { "" } else { &parent }), seq_name, true)
            }
        };
        // The target path must be free.
        let exists = self
            .view
            .query_dirty(Some(node_key(&actual_path)), |s| s.nodes.contains_key(&actual_path))?;
        if exists {
            return Err(ZkError::NodeExists);
        }
        self.view.update(
            Some(node_key(&actual_path)),
            encode_to_vec(&ZkRecord::PutNode {
                path: actual_path.clone(),
                data: Bytes::copy_from_slice(data),
            }),
        )?;
        self.view.update(
            Some(children_key(&parent)),
            encode_to_vec(&ZkRecord::AddChild { parent, name: actual_name, bump_seq }),
        )?;
        Ok(actual_path)
    }

    /// Delete inside an active transaction.
    pub fn delete_in_tx(&self, path: &str, version: Option<i64>) -> ZkResult<()> {
        validate(path)?;
        if path == "/" {
            return Err(ZkError::BadPath("/".to_owned()));
        }
        let (parent, name) = parent_of(path)?;
        let info = self.view.query_dirty(Some(node_key(path)), |s| {
            s.nodes.get(path).map(|n| (n.version, n.children.len()))
        })?;
        let Some((node_version, nchildren)) = info else { return Err(ZkError::NoNode) };
        if let Some(expected) = version {
            if expected != node_version {
                return Err(ZkError::BadVersion);
            }
        }
        if nchildren > 0 {
            return Err(ZkError::NotEmpty);
        }
        self.view.update(
            Some(node_key(path)),
            encode_to_vec(&ZkRecord::RemoveNode { path: path.to_owned() }),
        )?;
        self.view.update(
            Some(children_key(&parent)),
            encode_to_vec(&ZkRecord::RemoveChild { parent, name }),
        )?;
        Ok(())
    }

    /// Set-data inside an active transaction; returns the new version.
    pub fn set_data_in_tx(&self, path: &str, data: &[u8], version: Option<i64>) -> ZkResult<i64> {
        validate(path)?;
        let current = self
            .view
            .query_dirty(Some(node_key(path)), |s| s.nodes.get(path).map(|n| n.version))?;
        let Some(current) = current else { return Err(ZkError::NoNode) };
        if let Some(expected) = version {
            if expected != current {
                return Err(ZkError::BadVersion);
            }
        }
        self.view.update(
            Some(node_key(path)),
            encode_to_vec(&ZkRecord::SetData {
                path: path.to_owned(),
                data: Bytes::copy_from_slice(data),
            }),
        )?;
        Ok(current + 1)
    }

    /// Version check inside an active transaction.
    pub fn check_in_tx(&self, path: &str, version: i64) -> ZkResult<()> {
        validate(path)?;
        let current = self
            .view
            .query_dirty(Some(node_key(path)), |s| s.nodes.get(path).map(|n| n.version))?;
        match current {
            None => Err(ZkError::NoNode),
            Some(v) if v == version => Ok(()),
            Some(_) => Err(ZkError::BadVersion),
        }
    }

    /// Reads data inside an active transaction (dirty read + read-set
    /// registration), for composing with cross-namespace moves.
    pub fn get_data_in_tx(&self, path: &str) -> ZkResult<Bytes> {
        validate(path)?;
        self.view
            .query_dirty(Some(node_key(path)), |s| s.nodes.get(path).map(|n| n.data.clone()))?
            .ok_or(ZkError::NoNode)
    }
}

enum WatchKind {
    Data,
    Children,
}

/// Transactionally moves a node from one namespace to another — the
/// capability the paper highlights as impossible in ZooKeeper itself
/// (§6.3: "atomically move a file from one namespace to another").
/// Both namespaces must be hosted by the same runtime.
pub fn move_node(src: &TangoZK, dst: &TangoZK, src_path: &str, dst_path: &str) -> ZkResult<()> {
    let runtime = src.runtime().clone();
    loop {
        // Refresh both views before transacting.
        src.exists(src_path)?;
        dst.exists(dst_path)?;
        runtime.begin_tx().map_err(ZkError::Tango)?;
        let result = (|| -> ZkResult<()> {
            let data = src.get_data_in_tx(src_path)?;
            src.delete_in_tx(src_path, None)?;
            dst.create_in_tx(dst_path, &data, CreateMode::Persistent)?;
            Ok(())
        })();
        match result {
            Ok(()) => match runtime.end_tx().map_err(ZkError::Tango)? {
                TxStatus::Committed => return Ok(()),
                TxStatus::Aborted => continue,
            },
            Err(e) => {
                let _ = runtime.abort_tx();
                return Err(e);
            }
        }
    }
}
