#![warn(missing_docs)]
//! The standard Tango object library.
//!
//! The paper argues that developers should not be forced to funnel all
//! state through one data structure (§2): "imagine if the C++ STL provided
//! just a hash map, or Java Collections came with just a TreeSet!". This
//! crate is the equivalent of those collection libraries over a shared
//! log — every structure here is persistent, strongly consistent, highly
//! available, and transactional, in a few hundred lines each:
//!
//! * [`TangoRegister`] — the paper's Figure 3 example, typed.
//! * [`TangoCounter`] — a 64-bit counter with atomic add.
//! * [`TangoMap`] — a hash map with fine-grained per-key conflict
//!   detection.
//! * [`TangoOffsetMap`] — a map whose view stores *log offsets* instead of
//!   values, acting as an index over log-structured storage (§3.1).
//! * [`TangoTreeMap`] / [`TangoTreeSet`] — ordered structures with range
//!   queries, first/last extraction (the membership-service workloads of
//!   §2).
//! * [`TangoList`] — a sequence with positional access.
//! * [`TangoQueue`] — a multi-producer multi-consumer queue whose dequeue
//!   is a transaction.
//! * [`zk::TangoZK`] — the ZooKeeper interface over Tango (§6.3):
//!   hierarchical namespace, versioned znodes, sequential nodes, watches,
//!   and multi-ops; supports cross-namespace moves that ZooKeeper itself
//!   cannot express.
//! * [`bk::TangoBK`] — the BookKeeper single-writer ledger abstraction
//!   over Tango (§6.3), with fencing.

pub mod bk;
mod counter;
mod list;
mod map;
mod offset_map;
mod queue;
mod register;
mod set;
mod treemap;
pub mod util;
pub mod zk;

pub use counter::TangoCounter;
pub use list::TangoList;
pub use map::TangoMap;
pub use offset_map::TangoOffsetMap;
pub use queue::TangoQueue;
pub use register::TangoRegister;
pub use set::TangoTreeSet;
pub use treemap::TangoTreeMap;
