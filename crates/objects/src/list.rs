//! A replicated sequence with positional access.

use std::marker::PhantomData;
use std::sync::Arc;

use tango::{ApplyMeta, ObjectOptions, ObjectView, StateMachine, TangoRuntime, TxStatus};
use tango_wire::{decode_from_slice, encode_to_vec, Decode, Encode, Reader, WireError, Writer};

#[derive(Debug, Clone, PartialEq, Eq)]
enum ListOp<T> {
    PushBack(T),
    PushFront(T),
    Insert(u64, T),
    RemoveAt(u64),
    Set(u64, T),
    Clear,
}

impl<T: Encode> Encode for ListOp<T> {
    fn encode(&self, w: &mut Writer) {
        match self {
            ListOp::PushBack(v) => {
                w.put_u8(0);
                v.encode(w);
            }
            ListOp::PushFront(v) => {
                w.put_u8(1);
                v.encode(w);
            }
            ListOp::Insert(i, v) => {
                w.put_u8(2);
                w.put_varint(*i);
                v.encode(w);
            }
            ListOp::RemoveAt(i) => {
                w.put_u8(3);
                w.put_varint(*i);
            }
            ListOp::Set(i, v) => {
                w.put_u8(4);
                w.put_varint(*i);
                v.encode(w);
            }
            ListOp::Clear => w.put_u8(5),
        }
    }
}

impl<T: Decode> Decode for ListOp<T> {
    fn decode(r: &mut Reader<'_>) -> tango_wire::Result<Self> {
        match r.get_u8()? {
            0 => Ok(ListOp::PushBack(T::decode(r)?)),
            1 => Ok(ListOp::PushFront(T::decode(r)?)),
            2 => Ok(ListOp::Insert(r.get_varint()?, T::decode(r)?)),
            3 => Ok(ListOp::RemoveAt(r.get_varint()?)),
            4 => Ok(ListOp::Set(r.get_varint()?, T::decode(r)?)),
            5 => Ok(ListOp::Clear),
            tag => Err(WireError::InvalidTag { what: "ListOp", tag: tag as u64 }),
        }
    }
}

/// Internal view state.
pub struct ListState<T> {
    items: Vec<T>,
}

impl<T> Default for ListState<T> {
    fn default() -> Self {
        Self { items: Vec::new() }
    }
}

impl<T> StateMachine for ListState<T>
where
    T: Encode + Decode + Send + 'static,
{
    fn apply(&mut self, data: &[u8], _meta: &ApplyMeta) {
        match decode_from_slice::<ListOp<T>>(data) {
            Ok(ListOp::PushBack(v)) => self.items.push(v),
            Ok(ListOp::PushFront(v)) => self.items.insert(0, v),
            Ok(ListOp::Insert(i, v)) => {
                let i = (i as usize).min(self.items.len());
                self.items.insert(i, v);
            }
            Ok(ListOp::RemoveAt(i)) => {
                if (i as usize) < self.items.len() {
                    self.items.remove(i as usize);
                }
            }
            Ok(ListOp::Set(i, v)) => {
                if let Some(slot) = self.items.get_mut(i as usize) {
                    *slot = v;
                }
            }
            Ok(ListOp::Clear) => self.items.clear(),
            Err(_) => {}
        }
    }

    fn checkpoint(&self) -> Option<Vec<u8>> {
        let mut w = Writer::new();
        w.put_varint(self.items.len() as u64);
        for item in &self.items {
            item.encode(&mut w);
        }
        Some(w.into_vec())
    }

    fn restore(&mut self, data: &[u8]) -> tango::Result<()> {
        let mut r = Reader::new(data);
        let mut fresh = Vec::new();
        let parse = (|| -> tango_wire::Result<()> {
            let n = r.get_len(1 << 28)?;
            for _ in 0..n {
                fresh.push(T::decode(&mut r)?);
            }
            Ok(())
        })();
        parse.map_err(|e| tango::TangoError::Codec(e.to_string()))?;
        self.items = fresh;
        Ok(())
    }
}

/// A persistent, linearizable, transactional list.
///
/// Positional operations use whole-object versioning: index semantics
/// depend on the entire sequence, so any concurrent structural change is a
/// genuine conflict.
pub struct TangoList<T> {
    view: ObjectView<ListState<T>>,
    _marker: PhantomData<T>,
}

impl<T> Clone for TangoList<T> {
    fn clone(&self) -> Self {
        Self { view: self.view.clone(), _marker: PhantomData }
    }
}

impl<T> TangoList<T>
where
    T: Encode + Decode + Clone + Send + 'static,
{
    /// Opens (creating if needed) the list named `name`.
    pub fn open(runtime: &Arc<TangoRuntime>, name: &str) -> tango::Result<Self> {
        let oid = runtime.create_or_open(name)?;
        let view = runtime.register_object(oid, ListState::default(), ObjectOptions::default())?;
        Ok(Self { view, _marker: PhantomData })
    }

    /// The object id.
    pub fn oid(&self) -> tango::Oid {
        self.view.oid()
    }

    /// Appends at the back.
    pub fn push_back(&self, value: &T) -> tango::Result<()> {
        self.view.update(None, encode_to_vec(&ListOp::PushBack(value.clone())))
    }

    /// Prepends at the front.
    pub fn push_front(&self, value: &T) -> tango::Result<()> {
        self.view.update(None, encode_to_vec(&ListOp::PushFront(value.clone())))
    }

    /// Inserts at `index` (clamped to the length).
    pub fn insert(&self, index: usize, value: &T) -> tango::Result<()> {
        self.view.update(None, encode_to_vec(&ListOp::Insert(index as u64, value.clone())))
    }

    /// Removes the item at `index` transactionally, returning it (or `None`
    /// if the index is out of bounds at commit time).
    pub fn remove(&self, index: usize) -> tango::Result<Option<T>> {
        let runtime = self.view.runtime().clone();
        loop {
            self.view.query(None, |_| ())?;
            runtime.begin_tx()?;
            let current = self.view.query_dirty(None, |s| s.items.get(index).cloned())?;
            if current.is_none() {
                runtime.abort_tx()?;
                return Ok(None);
            }
            self.view.update(None, encode_to_vec(&ListOp::<T>::RemoveAt(index as u64)))?;
            if runtime.end_tx()? == TxStatus::Committed {
                return Ok(current);
            }
        }
    }

    /// Overwrites the item at `index` (no-op if out of bounds).
    pub fn set(&self, index: usize, value: &T) -> tango::Result<()> {
        self.view.update(None, encode_to_vec(&ListOp::Set(index as u64, value.clone())))
    }

    /// Reads the item at `index`.
    pub fn get(&self, index: usize) -> tango::Result<Option<T>> {
        self.view.query(None, |s| s.items.get(index).cloned())
    }

    /// The number of items.
    pub fn len(&self) -> tango::Result<usize> {
        self.view.query(None, |s| s.items.len())
    }

    /// True if empty.
    pub fn is_empty(&self) -> tango::Result<bool> {
        Ok(self.len()? == 0)
    }

    /// A point-in-time snapshot of the whole sequence.
    pub fn snapshot(&self) -> tango::Result<Vec<T>> {
        self.view.query(None, |s| s.items.clone())
    }
}
