//! A typed register: the paper's Figure 3 example, generalized.

use std::marker::PhantomData;
use std::sync::Arc;

use tango::{ApplyMeta, ObjectOptions, ObjectView, StateMachine, TangoRuntime, TxStatus};
use tango_wire::{decode_from_slice, encode_to_vec, Decode, Encode};

/// Internal view state: the last written value.
pub struct RegisterState<T> {
    value: Option<T>,
}

impl<T> Default for RegisterState<T> {
    fn default() -> Self {
        Self { value: None }
    }
}

impl<T: Encode + Decode + Send + 'static> StateMachine for RegisterState<T> {
    fn apply(&mut self, data: &[u8], _meta: &ApplyMeta) {
        if let Ok(v) = decode_from_slice::<T>(data) {
            self.value = Some(v);
        }
    }

    fn checkpoint(&self) -> Option<Vec<u8>> {
        Some(match &self.value {
            Some(v) => {
                let mut out = vec![1u8];
                out.extend_from_slice(&encode_to_vec(v));
                out
            }
            None => vec![0u8],
        })
    }

    fn restore(&mut self, data: &[u8]) -> tango::Result<()> {
        self.value = match data.split_first() {
            Some((1, rest)) => Some(
                decode_from_slice::<T>(rest)
                    .map_err(|e| tango::TangoError::Codec(e.to_string()))?,
            ),
            Some((0, _)) => None,
            _ => return Err(tango::TangoError::Codec("bad register checkpoint tag".to_owned())),
        };
        Ok(())
    }
}

/// A linearizable, highly available, persistent register (the paper's
/// `TangoRegister`, Figure 3).
pub struct TangoRegister<T> {
    view: ObjectView<RegisterState<T>>,
    _marker: PhantomData<T>,
}

impl<T> Clone for TangoRegister<T> {
    fn clone(&self) -> Self {
        Self { view: self.view.clone(), _marker: PhantomData }
    }
}

impl<T: Encode + Decode + Clone + Send + 'static> TangoRegister<T> {
    /// Opens (creating if needed) the register named `name`.
    pub fn open(runtime: &Arc<TangoRuntime>, name: &str) -> tango::Result<Self> {
        let oid = runtime.create_or_open(name)?;
        let view =
            runtime.register_object(oid, RegisterState::default(), ObjectOptions::default())?;
        Ok(Self { view, _marker: PhantomData })
    }

    /// Opens an existing oid directly (for tests and advanced wiring).
    pub fn at(runtime: &Arc<TangoRuntime>, oid: tango::Oid) -> tango::Result<Self> {
        let view =
            runtime.register_object(oid, RegisterState::default(), ObjectOptions::default())?;
        Ok(Self { view, _marker: PhantomData })
    }

    /// The object id.
    pub fn oid(&self) -> tango::Oid {
        self.view.oid()
    }

    /// Writes a new value (the mutator: an append to the shared log).
    pub fn write(&self, value: &T) -> tango::Result<()> {
        self.view.update(None, encode_to_vec(value))
    }

    /// Reads the current value (the accessor: syncs with the log tail).
    pub fn read(&self) -> tango::Result<Option<T>> {
        self.view.query(None, |s| s.value.clone())
    }

    /// Compare-and-swap via a transaction: writes `new` iff the current
    /// value equals `expected`. Returns true on success.
    pub fn compare_and_swap(&self, expected: Option<&T>, new: &T) -> tango::Result<bool>
    where
        T: PartialEq,
    {
        let runtime = self.view.runtime().clone();
        runtime.begin_tx()?;
        let current = self.view.query_dirty(None, |s| s.value.clone())?;
        let matches = match (expected, &current) {
            (None, None) => true,
            (Some(e), Some(c)) => e == c,
            _ => false,
        };
        if !matches {
            runtime.abort_tx()?;
            return Ok(false);
        }
        self.view.update(None, encode_to_vec(new))?;
        Ok(runtime.end_tx()? == TxStatus::Committed)
    }
}
