//! A multi-producer multi-consumer queue: the producer-consumer use case
//! of §4.1, where producers can enqueue with remote-write transactions
//! without hosting (or playing) the queue at all.

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::sync::Arc;

use tango::{ApplyMeta, ObjectOptions, ObjectView, StateMachine, TangoRuntime, TxStatus};
use tango_wire::{decode_from_slice, encode_to_vec, Decode, Encode, Reader, WireError, Writer};

#[derive(Debug, Clone, PartialEq, Eq)]
enum QueueOp<T> {
    Enqueue(T),
    /// Pop the front; deterministic across all views.
    Dequeue,
}

impl<T: Encode> Encode for QueueOp<T> {
    fn encode(&self, w: &mut Writer) {
        match self {
            QueueOp::Enqueue(v) => {
                w.put_u8(0);
                v.encode(w);
            }
            QueueOp::Dequeue => w.put_u8(1),
        }
    }
}

impl<T: Decode> Decode for QueueOp<T> {
    fn decode(r: &mut Reader<'_>) -> tango_wire::Result<Self> {
        match r.get_u8()? {
            0 => Ok(QueueOp::Enqueue(T::decode(r)?)),
            1 => Ok(QueueOp::Dequeue),
            tag => Err(WireError::InvalidTag { what: "QueueOp", tag: tag as u64 }),
        }
    }
}

/// Internal view state.
pub struct QueueState<T> {
    items: VecDeque<T>,
}

impl<T> Default for QueueState<T> {
    fn default() -> Self {
        Self { items: VecDeque::new() }
    }
}

impl<T> StateMachine for QueueState<T>
where
    T: Encode + Decode + Send + 'static,
{
    fn apply(&mut self, data: &[u8], _meta: &ApplyMeta) {
        match decode_from_slice::<QueueOp<T>>(data) {
            Ok(QueueOp::Enqueue(v)) => self.items.push_back(v),
            Ok(QueueOp::Dequeue) => {
                self.items.pop_front();
            }
            Err(_) => {}
        }
    }

    fn checkpoint(&self) -> Option<Vec<u8>> {
        let mut w = Writer::new();
        w.put_varint(self.items.len() as u64);
        for item in &self.items {
            item.encode(&mut w);
        }
        Some(w.into_vec())
    }

    fn restore(&mut self, data: &[u8]) -> tango::Result<()> {
        let mut r = Reader::new(data);
        let mut fresh = VecDeque::new();
        let parse = (|| -> tango_wire::Result<()> {
            let n = r.get_len(1 << 28)?;
            for _ in 0..n {
                fresh.push_back(T::decode(&mut r)?);
            }
            Ok(())
        })();
        parse.map_err(|e| tango::TangoError::Codec(e.to_string()))?;
        self.items = fresh;
        Ok(())
    }
}

/// A persistent, linearizable FIFO queue. `dequeue` is a transaction:
/// concurrent consumers never receive the same item.
pub struct TangoQueue<T> {
    view: ObjectView<QueueState<T>>,
    _marker: PhantomData<T>,
}

impl<T> Clone for TangoQueue<T> {
    fn clone(&self) -> Self {
        Self { view: self.view.clone(), _marker: PhantomData }
    }
}

impl<T> TangoQueue<T>
where
    T: Encode + Decode + Clone + Send + 'static,
{
    /// Opens (creating if needed) the queue named `name`.
    pub fn open(runtime: &Arc<TangoRuntime>, name: &str) -> tango::Result<Self> {
        Self::open_with(runtime, name, ObjectOptions::default())
    }

    /// Opens with explicit object options. Queues fed by remote-write
    /// producers should set `needs_decision`.
    pub fn open_with(
        runtime: &Arc<TangoRuntime>,
        name: &str,
        options: ObjectOptions,
    ) -> tango::Result<Self> {
        let oid = runtime.create_or_open(name)?;
        let view = runtime.register_object(oid, QueueState::default(), options)?;
        Ok(Self { view, _marker: PhantomData })
    }

    /// The object id.
    pub fn oid(&self) -> tango::Oid {
        self.view.oid()
    }

    /// Encodes an enqueue op for remote producers (used with
    /// [`TangoRuntime::update_remote`]).
    pub fn encode_enqueue(value: &T) -> Vec<u8> {
        encode_to_vec(&QueueOp::Enqueue(value.clone()))
    }

    /// Appends an item to the back.
    pub fn enqueue(&self, value: &T) -> tango::Result<()> {
        self.view.update(None, Self::encode_enqueue(value))
    }

    /// Transactionally removes and returns the front item, or `None` when
    /// the queue is empty. Retries internally on consumer races.
    pub fn dequeue(&self) -> tango::Result<Option<T>> {
        let runtime = self.view.runtime().clone();
        loop {
            self.view.query(None, |_| ())?;
            runtime.begin_tx()?;
            let front = self.view.query_dirty(None, |s| s.items.front().cloned())?;
            if front.is_none() {
                runtime.abort_tx()?;
                // Validate emptiness against the tail: another producer may
                // have raced us.
                let still_empty = self.view.query(None, |s| s.items.is_empty())?;
                if still_empty {
                    return Ok(None);
                }
                continue;
            }
            self.view.update(None, encode_to_vec(&QueueOp::<T>::Dequeue))?;
            if runtime.end_tx()? == TxStatus::Committed {
                return Ok(front);
            }
        }
    }

    /// Reads the front item without removing it.
    pub fn peek(&self) -> tango::Result<Option<T>> {
        self.view.query(None, |s| s.items.front().cloned())
    }

    /// The number of queued items.
    pub fn len(&self) -> tango::Result<usize> {
        self.view.query(None, |s| s.items.len())
    }

    /// True if empty.
    pub fn is_empty(&self) -> tango::Result<bool> {
        Ok(self.len()? == 0)
    }
}
