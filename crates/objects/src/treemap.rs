//! An ordered map with range queries — the kind of workload-tuned
//! structure §2 argues coordination services cannot offer ("searching the
//! namespace on some index, extracting the oldest/newest inserted name").

use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::ops::RangeBounds;
use std::sync::Arc;

use tango::{ApplyMeta, ObjectOptions, ObjectView, StateMachine, TangoRuntime};
use tango_wire::{decode_from_slice, encode_to_vec, Decode, Encode, Reader, Writer};

use crate::map::MapOp;
use crate::util::key_hash;

/// Internal view state.
pub struct TreeMapState<K, V> {
    entries: BTreeMap<K, V>,
}

impl<K, V> Default for TreeMapState<K, V> {
    fn default() -> Self {
        Self { entries: BTreeMap::new() }
    }
}

impl<K, V> StateMachine for TreeMapState<K, V>
where
    K: Encode + Decode + Ord + Send + 'static,
    V: Encode + Decode + Send + 'static,
{
    fn apply(&mut self, data: &[u8], _meta: &ApplyMeta) {
        match decode_from_slice::<MapOp<K, V>>(data) {
            Ok(MapOp::Put { key, value }) => {
                self.entries.insert(key, value);
            }
            Ok(MapOp::Remove { key }) => {
                self.entries.remove(&key);
            }
            Ok(MapOp::Clear) => self.entries.clear(),
            Err(_) => {}
        }
    }

    fn checkpoint(&self) -> Option<Vec<u8>> {
        let mut w = Writer::new();
        w.put_varint(self.entries.len() as u64);
        for (k, v) in &self.entries {
            k.encode(&mut w);
            v.encode(&mut w);
        }
        Some(w.into_vec())
    }

    fn restore(&mut self, data: &[u8]) -> tango::Result<()> {
        let mut r = Reader::new(data);
        let mut fresh = BTreeMap::new();
        let parse = (|| -> tango_wire::Result<()> {
            let n = r.get_len(1 << 28)?;
            for _ in 0..n {
                let k = K::decode(&mut r)?;
                let v = V::decode(&mut r)?;
                fresh.insert(k, v);
            }
            Ok(())
        })();
        parse.map_err(|e| tango::TangoError::Codec(e.to_string()))?;
        self.entries = fresh;
        Ok(())
    }
}

/// A persistent, linearizable, transactional ordered map.
pub struct TangoTreeMap<K, V> {
    view: ObjectView<TreeMapState<K, V>>,
    _marker: PhantomData<(K, V)>,
}

impl<K, V> Clone for TangoTreeMap<K, V> {
    fn clone(&self) -> Self {
        Self { view: self.view.clone(), _marker: PhantomData }
    }
}

impl<K, V> TangoTreeMap<K, V>
where
    K: Encode + Decode + Ord + Clone + Send + 'static,
    V: Encode + Decode + Clone + Send + 'static,
{
    /// Opens (creating if needed) the tree map named `name`.
    pub fn open(runtime: &Arc<TangoRuntime>, name: &str) -> tango::Result<Self> {
        let oid = runtime.create_or_open(name)?;
        let view =
            runtime.register_object(oid, TreeMapState::default(), ObjectOptions::default())?;
        Ok(Self { view, _marker: PhantomData })
    }

    /// The object id.
    pub fn oid(&self) -> tango::Oid {
        self.view.oid()
    }

    /// Inserts or replaces a key.
    pub fn put(&self, key: &K, value: &V) -> tango::Result<()> {
        let op: MapOp<&K, &V> = MapOp::Put { key, value };
        self.view.update(Some(key_hash(key)), encode_to_vec(&op))
    }

    /// Removes a key.
    pub fn remove(&self, key: &K) -> tango::Result<()> {
        let op: MapOp<&K, &V> = MapOp::Remove { key };
        self.view.update(Some(key_hash(key)), encode_to_vec(&op))
    }

    /// Looks up a key.
    pub fn get(&self, key: &K) -> tango::Result<Option<V>> {
        self.view.query(Some(key_hash(key)), |s| s.entries.get(key).cloned())
    }

    /// Number of entries.
    pub fn len(&self) -> tango::Result<usize> {
        self.view.query(None, |s| s.entries.len())
    }

    /// True if empty.
    pub fn is_empty(&self) -> tango::Result<bool> {
        Ok(self.len()? == 0)
    }

    /// The smallest key and its value.
    pub fn first(&self) -> tango::Result<Option<(K, V)>> {
        self.view.query(None, |s| s.entries.iter().next().map(|(k, v)| (k.clone(), v.clone())))
    }

    /// The largest key and its value.
    pub fn last(&self) -> tango::Result<Option<(K, V)>> {
        self.view.query(None, |s| s.entries.iter().next_back().map(|(k, v)| (k.clone(), v.clone())))
    }

    /// All entries within `range`, in key order ("list all files starting
    /// with the letter B", §3.1).
    pub fn range<R: RangeBounds<K>>(&self, range: R) -> tango::Result<Vec<(K, V)>> {
        self.view
            .query(None, |s| s.entries.range(range).map(|(k, v)| (k.clone(), v.clone())).collect())
    }
}
