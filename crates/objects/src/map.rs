//! A hash map over the shared log with fine-grained per-key conflict
//! detection (§3.2 "Versioning"): transactions touching disjoint keys
//! commit concurrently.

use std::collections::HashMap;
use std::hash::Hash;
use std::marker::PhantomData;
use std::sync::Arc;

use tango::{ApplyMeta, ObjectOptions, ObjectView, StateMachine, TangoRuntime};
use tango_wire::{decode_from_slice, encode_to_vec, Decode, Encode, Reader, WireError, Writer};

use crate::util::key_hash;

/// Map mutations, shared by [`crate::TangoMap`], [`crate::TangoTreeMap`]
/// and [`crate::TangoOffsetMap`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum MapOp<K, V> {
    Put { key: K, value: V },
    Remove { key: K },
    Clear,
}

impl<K: Encode, V: Encode> Encode for MapOp<K, V> {
    fn encode(&self, w: &mut Writer) {
        match self {
            MapOp::Put { key, value } => {
                w.put_u8(0);
                key.encode(w);
                value.encode(w);
            }
            MapOp::Remove { key } => {
                w.put_u8(1);
                key.encode(w);
            }
            MapOp::Clear => w.put_u8(2),
        }
    }
}

impl<K: Decode, V: Decode> Decode for MapOp<K, V> {
    fn decode(r: &mut Reader<'_>) -> tango_wire::Result<Self> {
        match r.get_u8()? {
            0 => Ok(MapOp::Put { key: K::decode(r)?, value: V::decode(r)? }),
            1 => Ok(MapOp::Remove { key: K::decode(r)? }),
            2 => Ok(MapOp::Clear),
            tag => Err(WireError::InvalidTag { what: "MapOp", tag: tag as u64 }),
        }
    }
}

/// Internal view state.
pub struct MapState<K, V> {
    entries: HashMap<K, V>,
}

impl<K, V> Default for MapState<K, V> {
    fn default() -> Self {
        Self { entries: HashMap::new() }
    }
}

impl<K, V> StateMachine for MapState<K, V>
where
    K: Encode + Decode + Hash + Eq + Send + 'static,
    V: Encode + Decode + Send + 'static,
{
    fn apply(&mut self, data: &[u8], _meta: &ApplyMeta) {
        match decode_from_slice::<MapOp<K, V>>(data) {
            Ok(MapOp::Put { key, value }) => {
                self.entries.insert(key, value);
            }
            Ok(MapOp::Remove { key }) => {
                self.entries.remove(&key);
            }
            Ok(MapOp::Clear) => self.entries.clear(),
            Err(_) => {}
        }
    }

    fn checkpoint(&self) -> Option<Vec<u8>> {
        let mut w = Writer::new();
        w.put_varint(self.entries.len() as u64);
        for (k, v) in &self.entries {
            k.encode(&mut w);
            v.encode(&mut w);
        }
        Some(w.into_vec())
    }

    fn restore(&mut self, data: &[u8]) -> tango::Result<()> {
        let mut r = Reader::new(data);
        let mut fresh = HashMap::new();
        let parse = (|| -> tango_wire::Result<()> {
            let n = r.get_len(1 << 28)?;
            for _ in 0..n {
                let k = K::decode(&mut r)?;
                let v = V::decode(&mut r)?;
                fresh.insert(k, v);
            }
            Ok(())
        })();
        parse.map_err(|e| tango::TangoError::Codec(e.to_string()))?;
        self.entries = fresh;
        Ok(())
    }
}

/// A persistent, linearizable, transactional hash map (the paper's
/// `TangoMap`).
pub struct TangoMap<K, V> {
    view: ObjectView<MapState<K, V>>,
    _marker: PhantomData<(K, V)>,
}

impl<K, V> Clone for TangoMap<K, V> {
    fn clone(&self) -> Self {
        Self { view: self.view.clone(), _marker: PhantomData }
    }
}

impl<K, V> TangoMap<K, V>
where
    K: Encode + Decode + Hash + Eq + Clone + Send + 'static,
    V: Encode + Decode + Clone + Send + 'static,
{
    /// Opens (creating if needed) the map named `name`.
    pub fn open(runtime: &Arc<TangoRuntime>, name: &str) -> tango::Result<Self> {
        Self::open_with(runtime, name, ObjectOptions::default())
    }

    /// Opens with explicit object options (e.g. `needs_decision` for maps
    /// written remotely by partitioned writers).
    pub fn open_with(
        runtime: &Arc<TangoRuntime>,
        name: &str,
        options: ObjectOptions,
    ) -> tango::Result<Self> {
        let oid = runtime.create_or_open(name)?;
        let view = runtime.register_object(oid, MapState::default(), options)?;
        Ok(Self { view, _marker: PhantomData })
    }

    /// Opens the map, restoring from its latest checkpoint record (if any)
    /// instead of replaying the whole stream; required after the history
    /// below the checkpoint has been compacted away.
    pub fn open_from_checkpoint(runtime: &Arc<TangoRuntime>, name: &str) -> tango::Result<Self> {
        let oid = runtime.create_or_open(name)?;
        let view = runtime.register_object_from_checkpoint(
            oid,
            MapState::default(),
            ObjectOptions::default(),
        )?;
        Ok(Self { view, _marker: PhantomData })
    }

    /// The object id.
    pub fn oid(&self) -> tango::Oid {
        self.view.oid()
    }

    /// Inserts or replaces a key (fine-grained conflict footprint: this
    /// key only).
    pub fn put(&self, key: &K, value: &V) -> tango::Result<()> {
        let op: MapOp<&K, &V> = MapOp::Put { key, value };
        self.view.update(Some(key_hash(key)), encode_to_vec(&op))
    }

    /// Removes a key.
    pub fn remove(&self, key: &K) -> tango::Result<()> {
        let op: MapOp<&K, &V> = MapOp::Remove { key };
        self.view.update(Some(key_hash(key)), encode_to_vec(&op))
    }

    /// Removes every key (whole-object write: conflicts with everything).
    pub fn clear(&self) -> tango::Result<()> {
        let op: MapOp<K, V> = MapOp::Clear;
        self.view.update(None, encode_to_vec(&op))
    }

    /// Looks up a key (linearizable; fine-grained read footprint).
    pub fn get(&self, key: &K) -> tango::Result<Option<V>> {
        self.view.query(Some(key_hash(key)), |s| s.entries.get(key).cloned())
    }

    /// True if the key is present.
    pub fn contains_key(&self, key: &K) -> tango::Result<bool> {
        self.view.query(Some(key_hash(key)), |s| s.entries.contains_key(key))
    }

    /// Number of entries (whole-object read footprint).
    pub fn len(&self) -> tango::Result<usize> {
        self.view.query(None, |s| s.entries.len())
    }

    /// True if the map is empty.
    pub fn is_empty(&self) -> tango::Result<bool> {
        Ok(self.len()? == 0)
    }

    /// A point-in-time snapshot of all entries (whole-object read).
    pub fn snapshot(&self) -> tango::Result<Vec<(K, V)>> {
        self.view.query(None, |s| s.entries.iter().map(|(k, v)| (k.clone(), v.clone())).collect())
    }
}
