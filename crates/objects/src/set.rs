//! An ordered set (the Java-Collections `TreeSet` of §1).

use std::collections::BTreeSet;
use std::marker::PhantomData;
use std::ops::RangeBounds;
use std::sync::Arc;

use tango::{ApplyMeta, ObjectOptions, ObjectView, StateMachine, TangoRuntime};
use tango_wire::{decode_from_slice, encode_to_vec, Decode, Encode, Reader, WireError, Writer};

use crate::util::key_hash;

#[derive(Debug, Clone, PartialEq, Eq)]
enum SetOp<T> {
    Insert(T),
    Remove(T),
    Clear,
}

impl<T: Encode> Encode for SetOp<T> {
    fn encode(&self, w: &mut Writer) {
        match self {
            SetOp::Insert(v) => {
                w.put_u8(0);
                v.encode(w);
            }
            SetOp::Remove(v) => {
                w.put_u8(1);
                v.encode(w);
            }
            SetOp::Clear => w.put_u8(2),
        }
    }
}

impl<T: Decode> Decode for SetOp<T> {
    fn decode(r: &mut Reader<'_>) -> tango_wire::Result<Self> {
        match r.get_u8()? {
            0 => Ok(SetOp::Insert(T::decode(r)?)),
            1 => Ok(SetOp::Remove(T::decode(r)?)),
            2 => Ok(SetOp::Clear),
            tag => Err(WireError::InvalidTag { what: "SetOp", tag: tag as u64 }),
        }
    }
}

/// Internal view state.
pub struct SetState<T> {
    items: BTreeSet<T>,
}

impl<T> Default for SetState<T> {
    fn default() -> Self {
        Self { items: BTreeSet::new() }
    }
}

impl<T> StateMachine for SetState<T>
where
    T: Encode + Decode + Ord + Send + 'static,
{
    fn apply(&mut self, data: &[u8], _meta: &ApplyMeta) {
        match decode_from_slice::<SetOp<T>>(data) {
            Ok(SetOp::Insert(v)) => {
                self.items.insert(v);
            }
            Ok(SetOp::Remove(v)) => {
                self.items.remove(&v);
            }
            Ok(SetOp::Clear) => self.items.clear(),
            Err(_) => {}
        }
    }

    fn checkpoint(&self) -> Option<Vec<u8>> {
        let mut w = Writer::new();
        w.put_varint(self.items.len() as u64);
        for item in &self.items {
            item.encode(&mut w);
        }
        Some(w.into_vec())
    }

    fn restore(&mut self, data: &[u8]) -> tango::Result<()> {
        let mut r = Reader::new(data);
        let mut fresh = BTreeSet::new();
        let parse = (|| -> tango_wire::Result<()> {
            let n = r.get_len(1 << 28)?;
            for _ in 0..n {
                fresh.insert(T::decode(&mut r)?);
            }
            Ok(())
        })();
        parse.map_err(|e| tango::TangoError::Codec(e.to_string()))?;
        self.items = fresh;
        Ok(())
    }
}

/// A persistent, linearizable, transactional ordered set.
pub struct TangoTreeSet<T> {
    view: ObjectView<SetState<T>>,
    _marker: PhantomData<T>,
}

impl<T> Clone for TangoTreeSet<T> {
    fn clone(&self) -> Self {
        Self { view: self.view.clone(), _marker: PhantomData }
    }
}

impl<T> TangoTreeSet<T>
where
    T: Encode + Decode + Ord + Clone + Send + 'static,
{
    /// Opens (creating if needed) the set named `name`.
    pub fn open(runtime: &Arc<TangoRuntime>, name: &str) -> tango::Result<Self> {
        let oid = runtime.create_or_open(name)?;
        let view = runtime.register_object(oid, SetState::default(), ObjectOptions::default())?;
        Ok(Self { view, _marker: PhantomData })
    }

    /// The object id.
    pub fn oid(&self) -> tango::Oid {
        self.view.oid()
    }

    /// Inserts an item.
    pub fn insert(&self, item: &T) -> tango::Result<()> {
        self.view.update(Some(key_hash(item)), encode_to_vec(&SetOp::Insert(item.clone())))
    }

    /// Removes an item.
    pub fn remove(&self, item: &T) -> tango::Result<()> {
        self.view.update(Some(key_hash(item)), encode_to_vec(&SetOp::Remove(item.clone())))
    }

    /// Membership test.
    pub fn contains(&self, item: &T) -> tango::Result<bool> {
        self.view.query(Some(key_hash(item)), |s| s.items.contains(item))
    }

    /// Number of items.
    pub fn len(&self) -> tango::Result<usize> {
        self.view.query(None, |s| s.items.len())
    }

    /// True if empty.
    pub fn is_empty(&self) -> tango::Result<bool> {
        Ok(self.len()? == 0)
    }

    /// The smallest item.
    pub fn first(&self) -> tango::Result<Option<T>> {
        self.view.query(None, |s| s.items.iter().next().cloned())
    }

    /// The largest item.
    pub fn last(&self) -> tango::Result<Option<T>> {
        self.view.query(None, |s| s.items.iter().next_back().cloned())
    }

    /// All items within `range`, in order.
    pub fn range<R: RangeBounds<T>>(&self, range: R) -> tango::Result<Vec<T>> {
        self.view.query(None, |s| s.items.range(range).cloned().collect())
    }
}
