//! A distributed 64-bit counter (e.g. the job-id allocator of §4's job
//! scheduler example).

use std::sync::Arc;

use tango::{ApplyMeta, ObjectOptions, ObjectView, StateMachine, TangoRuntime, TxStatus};
use tango_wire::{decode_from_slice, encode_to_vec, Decode, Encode, Reader, WireError, Writer};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CounterOp {
    /// Add a (possibly negative) delta.
    Add(i64),
    /// Overwrite the value.
    Set(i64),
}

impl Encode for CounterOp {
    fn encode(&self, w: &mut Writer) {
        match self {
            CounterOp::Add(d) => {
                w.put_u8(0);
                w.put_i64(*d);
            }
            CounterOp::Set(v) => {
                w.put_u8(1);
                w.put_i64(*v);
            }
        }
    }
}

impl Decode for CounterOp {
    fn decode(r: &mut Reader<'_>) -> tango_wire::Result<Self> {
        match r.get_u8()? {
            0 => Ok(CounterOp::Add(r.get_i64()?)),
            1 => Ok(CounterOp::Set(r.get_i64()?)),
            tag => Err(WireError::InvalidTag { what: "CounterOp", tag: tag as u64 }),
        }
    }
}

/// Internal view state.
#[derive(Default)]
pub struct CounterState {
    value: i64,
}

impl StateMachine for CounterState {
    fn apply(&mut self, data: &[u8], _meta: &ApplyMeta) {
        match decode_from_slice::<CounterOp>(data) {
            Ok(CounterOp::Add(d)) => self.value = self.value.wrapping_add(d),
            Ok(CounterOp::Set(v)) => self.value = v,
            Err(_) => {}
        }
    }

    fn checkpoint(&self) -> Option<Vec<u8>> {
        Some(self.value.to_le_bytes().to_vec())
    }

    fn restore(&mut self, data: &[u8]) -> tango::Result<()> {
        let bytes = <[u8; 8]>::try_from(data).map_err(|_| {
            tango::TangoError::Codec("counter checkpoint must be 8 bytes".to_owned())
        })?;
        self.value = i64::from_le_bytes(bytes);
        Ok(())
    }
}

/// A persistent, linearizable counter. `add` commutes, so blind increments
/// never conflict; `fetch_add` provides the transactional read-modify-write
/// variant when the caller needs the pre-increment value.
#[derive(Clone)]
pub struct TangoCounter {
    view: ObjectView<CounterState>,
}

impl TangoCounter {
    /// Opens (creating if needed) the counter named `name`.
    pub fn open(runtime: &Arc<TangoRuntime>, name: &str) -> tango::Result<Self> {
        let oid = runtime.create_or_open(name)?;
        let view =
            runtime.register_object(oid, CounterState::default(), ObjectOptions::default())?;
        Ok(Self { view })
    }

    /// The object id.
    pub fn oid(&self) -> tango::Oid {
        self.view.oid()
    }

    /// Adds `delta` without reading (commutative: never aborts).
    pub fn add(&self, delta: i64) -> tango::Result<()> {
        self.view.update(None, encode_to_vec(&CounterOp::Add(delta)))
    }

    /// Overwrites the value.
    pub fn set(&self, value: i64) -> tango::Result<()> {
        self.view.update(None, encode_to_vec(&CounterOp::Set(value)))
    }

    /// Reads the current value (linearizable).
    pub fn get(&self) -> tango::Result<i64> {
        self.view.query(None, |s| s.value)
    }

    /// Atomically reads the value and adds `delta`, returning the
    /// pre-increment value. Retries internally on conflict.
    pub fn fetch_add(&self, delta: i64) -> tango::Result<i64> {
        let runtime = self.view.runtime().clone();
        loop {
            // Refresh, then transact against the fresh snapshot.
            self.view.query(None, |_| ())?;
            runtime.begin_tx()?;
            let before = self.view.query_dirty(None, |s| s.value)?;
            self.view.update(None, encode_to_vec(&CounterOp::Set(before + delta)))?;
            if runtime.end_tx()? == TxStatus::Committed {
                return Ok(before);
            }
        }
    }
}
