//! A map whose view is an *index over log-structured storage* (§3.1
//! "Durability"): the in-memory state holds only `key -> log offset`, and
//! `get` issues a random read to the shared log to fetch the value. This
//! keeps the view small for large values at the cost of one log read per
//! lookup.

use std::collections::HashMap;
use std::hash::Hash;
use std::marker::PhantomData;
use std::sync::Arc;

use tango::{ApplyMeta, ObjectOptions, ObjectView, StateMachine, TangoRuntime};
use tango_wire::{decode_from_slice, encode_to_vec, Decode, Encode};

use crate::map::MapOp;
use crate::util::key_hash;

/// Internal view state: keys map to the log offset of the entry that last
/// set them.
pub struct OffsetMapState<K> {
    offsets: HashMap<K, u64>,
}

impl<K> Default for OffsetMapState<K> {
    fn default() -> Self {
        Self { offsets: HashMap::new() }
    }
}

/// The apply upcall decodes only the key and records `meta.offset`,
/// discarding the value bytes — that is the whole point.
impl<K> StateMachine for OffsetMapState<K>
where
    K: Encode + Decode + Hash + Eq + Send + 'static,
{
    fn apply(&mut self, data: &[u8], meta: &ApplyMeta) {
        match decode_from_slice::<MapOp<K, bytes::Bytes>>(data) {
            Ok(MapOp::Put { key, .. }) => {
                self.offsets.insert(key, meta.offset);
            }
            Ok(MapOp::Remove { key }) => {
                self.offsets.remove(&key);
            }
            Ok(MapOp::Clear) => self.offsets.clear(),
            Err(_) => {}
        }
    }
}

/// A persistent map that stores values in the log and only offsets in RAM.
pub struct TangoOffsetMap<K, V> {
    view: ObjectView<OffsetMapState<K>>,
    oid: tango::Oid,
    _marker: PhantomData<(K, V)>,
}

impl<K, V> Clone for TangoOffsetMap<K, V> {
    fn clone(&self) -> Self {
        Self { view: self.view.clone(), oid: self.oid, _marker: PhantomData }
    }
}

impl<K, V> TangoOffsetMap<K, V>
where
    K: Encode + Decode + Hash + Eq + Clone + Send + 'static,
    V: Encode + Decode + Clone + Send + 'static,
{
    /// Opens (creating if needed) the offset map named `name`.
    pub fn open(runtime: &Arc<TangoRuntime>, name: &str) -> tango::Result<Self> {
        let oid = runtime.create_or_open(name)?;
        let view =
            runtime.register_object(oid, OffsetMapState::default(), ObjectOptions::default())?;
        Ok(Self { view, oid, _marker: PhantomData })
    }

    /// The object id.
    pub fn oid(&self) -> tango::Oid {
        self.oid
    }

    /// Inserts or replaces a key. The value travels in the update record
    /// and stays in the log.
    pub fn put(&self, key: &K, value: &V) -> tango::Result<()> {
        let op: MapOp<&K, bytes::Bytes> =
            MapOp::Put { key, value: bytes::Bytes::from(encode_to_vec(value)) };
        self.view.update(Some(key_hash(key)), encode_to_vec(&op))
    }

    /// Removes a key.
    pub fn remove(&self, key: &K) -> tango::Result<()> {
        let op: MapOp<&K, bytes::Bytes> = MapOp::Remove { key };
        self.view.update(Some(key_hash(key)), encode_to_vec(&op))
    }

    /// Looks up a key: consults the in-memory offset index, then issues a
    /// random read to the shared log for the value.
    pub fn get(&self, key: &K) -> tango::Result<Option<V>> {
        let offset = self.view.query(Some(key_hash(key)), |s| s.offsets.get(key).copied())?;
        let Some(offset) = offset else { return Ok(None) };
        let runtime = self.view.runtime();
        for update in runtime.read_updates_at(offset)? {
            if update.oid != self.oid {
                continue;
            }
            if let Ok(MapOp::Put { key: k, value }) =
                decode_from_slice::<MapOp<K, bytes::Bytes>>(&update.data)
            {
                if &k == key {
                    return Ok(Some(decode_from_slice::<V>(&value).map_err(|e| {
                        tango::TangoError::Codec(format!("offset-map value: {e}"))
                    })?));
                }
            }
        }
        Ok(None)
    }

    /// The log offset currently indexed for `key` (for tests and tooling).
    pub fn offset_of(&self, key: &K) -> tango::Result<Option<u64>> {
        self.view.query(Some(key_hash(key)), |s| s.offsets.get(key).copied())
    }

    /// Number of indexed keys.
    pub fn len(&self) -> tango::Result<usize> {
        self.view.query(None, |s| s.offsets.len())
    }

    /// True if empty.
    pub fn is_empty(&self) -> tango::Result<bool> {
        Ok(self.len()? == 0)
    }
}
