//! Fidelity tests for TangoZK and TangoBK (§6.3). The paper validated its
//! implementations by running the HDFS namenode over them; we substitute an
//! edit-log/namespace workload exercising the same interfaces, including
//! failover to a backup "namenode" (a second client).

use std::sync::Arc;

use bytes::Bytes;
use corfu::cluster::{ClusterConfig, LocalCluster};
use tango::TangoRuntime;
use tango_objects::bk::{BkError, TangoBK};
use tango_objects::zk::{move_node, CreateMode, TangoZK, WatchEvent, ZkError, ZkOp};

fn setup() -> (LocalCluster, Arc<TangoRuntime>) {
    let cluster = LocalCluster::new(ClusterConfig::default());
    let rt = TangoRuntime::new(cluster.client().unwrap()).unwrap();
    (cluster, rt)
}

#[test]
fn zk_create_get_set_delete() {
    let (_c, rt) = setup();
    let zk = TangoZK::open(&rt, "zk").unwrap();
    assert_eq!(zk.create("/app", b"root", CreateMode::Persistent).unwrap(), "/app");
    assert_eq!(zk.create("/app/config", b"v1", CreateMode::Persistent).unwrap(), "/app/config");
    let (data, stat) = zk.get_data("/app/config").unwrap();
    assert_eq!(data, Bytes::from_static(b"v1"));
    assert_eq!(stat.version, 0);

    let v = zk.set_data("/app/config", b"v2", Some(0)).unwrap();
    assert_eq!(v, 1);
    assert_eq!(zk.set_data("/app/config", b"v3", Some(0)), Err(ZkError::BadVersion));
    assert_eq!(zk.get_data("/app/config").unwrap().0, Bytes::from_static(b"v2"));

    assert_eq!(zk.delete("/app", None), Err(ZkError::NotEmpty));
    zk.delete("/app/config", Some(1)).unwrap();
    zk.delete("/app", None).unwrap();
    assert!(!zk.exists("/app").unwrap());
}

#[test]
fn zk_error_cases() {
    let (_c, rt) = setup();
    let zk = TangoZK::open(&rt, "zk").unwrap();
    assert_eq!(zk.create("/a/b", b"", CreateMode::Persistent), Err(ZkError::NoNode));
    zk.create("/a", b"", CreateMode::Persistent).unwrap();
    assert_eq!(zk.create("/a", b"", CreateMode::Persistent), Err(ZkError::NodeExists));
    assert_eq!(zk.get_data("/missing"), Err(ZkError::NoNode));
    assert_eq!(zk.delete("/missing", None), Err(ZkError::NoNode));
    assert!(matches!(zk.create("bad-path", b"", CreateMode::Persistent), Err(ZkError::BadPath(_))));
    assert!(matches!(
        zk.create("/trailing/", b"", CreateMode::Persistent),
        Err(ZkError::BadPath(_))
    ));
}

#[test]
fn zk_sequential_nodes() {
    let (_c, rt) = setup();
    let zk = TangoZK::open(&rt, "zk").unwrap();
    zk.create("/locks", b"", CreateMode::Persistent).unwrap();
    let p1 = zk.create("/locks/lock-", b"", CreateMode::PersistentSequential).unwrap();
    let p2 = zk.create("/locks/lock-", b"", CreateMode::PersistentSequential).unwrap();
    let p3 = zk.create("/locks/lock-", b"", CreateMode::PersistentSequential).unwrap();
    assert_eq!(p1, "/locks/lock-0000000000");
    assert_eq!(p2, "/locks/lock-0000000001");
    assert_eq!(p3, "/locks/lock-0000000002");
    let children = zk.get_children("/locks").unwrap();
    assert_eq!(children.len(), 3);
    assert_eq!(children[0], "lock-0000000000");
}

#[test]
fn zk_children_and_watches() {
    let (cluster, rt) = setup();
    let zk = TangoZK::open(&rt, "zk").unwrap();
    zk.create("/members", b"", CreateMode::Persistent).unwrap();

    let rt2 = TangoRuntime::new(cluster.client().unwrap()).unwrap();
    let zk2 = TangoZK::open(&rt2, "zk").unwrap();
    let child_watch = zk2.watch_children("/members").unwrap();
    let data_watch = zk2.watch_data("/members/n1").unwrap();

    zk.create("/members/n1", b"host-a", CreateMode::Persistent).unwrap();
    zk.create("/members/n2", b"host-b", CreateMode::Persistent).unwrap();
    zk.set_data("/members/n1", b"host-a2", None).unwrap();

    // zk2 observes after syncing (watches fire during playback).
    assert_eq!(zk2.get_children("/members").unwrap(), vec!["n1", "n2"]);
    let events: Vec<WatchEvent> = child_watch.try_iter().collect();
    assert_eq!(events.len(), 2);
    let data_events: Vec<WatchEvent> = data_watch.try_iter().collect();
    assert!(data_events.contains(&WatchEvent::Created("/members/n1".to_owned())));
    assert!(data_events.contains(&WatchEvent::DataChanged("/members/n1".to_owned())));
}

#[test]
fn zk_multi_is_atomic() {
    let (_c, rt) = setup();
    let zk = TangoZK::open(&rt, "zk").unwrap();
    zk.create("/jobs", b"", CreateMode::Persistent).unwrap();
    zk.create("/jobs/j1", b"pending", CreateMode::Persistent).unwrap();

    // All-or-nothing: the second op fails, so the first must not apply.
    let bad = zk.multi(&[
        ZkOp::SetData {
            path: "/jobs/j1".into(),
            data: Bytes::from_static(b"running"),
            version: None,
        },
        ZkOp::Delete { path: "/jobs/missing".into(), version: None },
    ]);
    assert_eq!(bad, Err(ZkError::NoNode));
    assert_eq!(zk.get_data("/jobs/j1").unwrap().0, Bytes::from_static(b"pending"));

    // A valid batch applies atomically.
    let ok = zk
        .multi(&[
            ZkOp::Check { path: "/jobs/j1".into(), version: 0 },
            ZkOp::SetData {
                path: "/jobs/j1".into(),
                data: Bytes::from_static(b"running"),
                version: None,
            },
            ZkOp::Create {
                path: "/jobs/j2".into(),
                data: Bytes::new(),
                mode: CreateMode::Persistent,
            },
        ])
        .unwrap();
    assert_eq!(ok[2], "/jobs/j2");
    assert_eq!(zk.get_data("/jobs/j1").unwrap().0, Bytes::from_static(b"running"));
}

#[test]
fn zk_cross_namespace_move() {
    // The §6.3 experiment: partition a namespace across two TangoZK
    // instances and transactionally move files between them.
    let (cluster, rt) = setup();
    let ns_a = TangoZK::open(&rt, "ns-a").unwrap();
    let ns_b = TangoZK::open(&rt, "ns-b").unwrap();
    ns_a.create("/file", b"contents", CreateMode::Persistent).unwrap();

    move_node(&ns_a, &ns_b, "/file", "/file").unwrap();
    assert!(!ns_a.exists("/file").unwrap());
    assert_eq!(ns_b.get_data("/file").unwrap().0, Bytes::from_static(b"contents"));

    // Atomicity across a fresh client hosting both namespaces.
    let rt2 = TangoRuntime::new(cluster.client().unwrap()).unwrap();
    let ns_a2 = TangoZK::open(&rt2, "ns-a").unwrap();
    let ns_b2 = TangoZK::open(&rt2, "ns-b").unwrap();
    assert!(!ns_a2.exists("/file").unwrap());
    assert!(ns_b2.exists("/file").unwrap());

    // Moving a missing node fails cleanly.
    assert_eq!(move_node(&ns_a, &ns_b, "/file", "/elsewhere"), Err(ZkError::NoNode));
}

#[test]
fn bk_ledger_lifecycle() {
    let (cluster, rt) = setup();
    let bk = TangoBK::open(&rt, "bk").unwrap();
    let ledger = bk.create_ledger().unwrap();
    for i in 0..20u64 {
        bk.add_entry(ledger, format!("entry-{i}").as_bytes()).unwrap();
    }
    assert_eq!(bk.last_add_confirmed(ledger).unwrap(), 19);
    assert_eq!(bk.read_entry(ledger, 7).unwrap(), Bytes::from(&b"entry-7"[..]));
    let range = bk.read_entries(ledger, 5, 8).unwrap();
    assert_eq!(range.len(), 4);
    assert_eq!(range[0], Bytes::from(&b"entry-5"[..]));

    bk.close(ledger).unwrap();
    assert!(bk.is_closed(ledger).unwrap());
    // Appends after close are dropped by every view.
    bk.add_entry(ledger, b"late").unwrap();
    assert_eq!(bk.last_add_confirmed(ledger).unwrap(), 19);

    // A reader on another client sees identical contents.
    let rt2 = TangoRuntime::new(cluster.client().unwrap()).unwrap();
    let bk2 = TangoBK::open(&rt2, "bk").unwrap();
    assert_eq!(bk2.last_add_confirmed(ledger).unwrap(), 19);
    assert_eq!(bk2.read_entry(ledger, 0).unwrap(), Bytes::from(&b"entry-0"[..]));
    assert_eq!(bk2.read_entry(ledger, 20).unwrap_err(), BkError::NoEntry);
}

#[test]
fn bk_fencing_enforces_single_writer() {
    let (cluster, rt) = setup();
    let bk_writer = TangoBK::open(&rt, "bk").unwrap();
    let ledger = bk_writer.create_ledger().unwrap();
    bk_writer.add_entry(ledger, b"w1-entry-0").unwrap();
    bk_writer.add_entry(ledger, b"w1-entry-1").unwrap();

    // A recovery client fences the ledger to itself.
    let rt2 = TangoRuntime::new(cluster.client().unwrap()).unwrap();
    let bk_recovery = TangoBK::open(&rt2, "bk").unwrap();
    bk_recovery.fence(ledger).unwrap();

    // The old writer's subsequent appends are dropped everywhere.
    bk_writer.add_entry(ledger, b"w1-zombie").unwrap();
    assert_eq!(bk_recovery.last_add_confirmed(ledger).unwrap(), 1);
    assert_eq!(bk_writer.last_add_confirmed(ledger).unwrap(), 1);

    // The new writer can continue the ledger, then close it.
    bk_recovery.add_entry(ledger, b"w2-entry-2").unwrap();
    assert_eq!(bk_recovery.last_add_confirmed(ledger).unwrap(), 2);
    bk_recovery.close(ledger).unwrap();
    assert_eq!(bk_recovery.read_entry(ledger, 2).unwrap(), Bytes::from(&b"w2-entry-2"[..]));
}

#[test]
fn namenode_style_failover() {
    // The paper's HDFS test, substituted: namespace in TangoZK, edit log in
    // TangoBK; the "namenode" crashes and a backup takes over with full
    // fidelity.
    let cluster = LocalCluster::new(ClusterConfig::default());
    let (ledger, files);
    {
        let rt = TangoRuntime::new(cluster.client().unwrap()).unwrap();
        let zk = TangoZK::open(&rt, "namespace").unwrap();
        let bk = TangoBK::open(&rt, "editlog").unwrap();
        ledger = bk.create_ledger().unwrap();
        zk.create("/fs", b"", CreateMode::Persistent).unwrap();
        files = 10u64;
        for i in 0..files {
            let path = format!("/fs/file-{i}");
            zk.create(&path, format!("blocks-{i}").as_bytes(), CreateMode::Persistent).unwrap();
            bk.add_entry(ledger, format!("OP_ADD {path}").as_bytes()).unwrap();
        }
        // Primary namenode crashes here (runtime dropped).
    }
    // Backup namenode takes over: full namespace + edit log available.
    let rt = TangoRuntime::new(cluster.client().unwrap()).unwrap();
    let zk = TangoZK::open(&rt, "namespace").unwrap();
    let bk = TangoBK::open(&rt, "editlog").unwrap();
    assert_eq!(zk.get_children("/fs").unwrap().len(), files as usize);
    assert_eq!(bk.last_add_confirmed(ledger).unwrap(), files as i64 - 1);
    assert_eq!(bk.read_entry(ledger, 0).unwrap(), Bytes::from(&b"OP_ADD /fs/file-0"[..]));
    // The backup continues where the primary stopped.
    zk.create("/fs/file-new", b"", CreateMode::Persistent).unwrap();
    bk.fence(ledger).unwrap();
    bk.add_entry(ledger, b"OP_ADD /fs/file-new").unwrap();
    assert_eq!(bk.last_add_confirmed(ledger).unwrap(), files as i64);
}
