//! End-to-end tests of the standard object library over an in-process
//! CORFU cluster.

use std::sync::Arc;

use corfu::cluster::{ClusterConfig, LocalCluster};
use tango::TangoRuntime;
use tango_objects::{
    TangoCounter, TangoList, TangoMap, TangoOffsetMap, TangoQueue, TangoRegister, TangoTreeMap,
    TangoTreeSet,
};

fn setup() -> (LocalCluster, Arc<TangoRuntime>) {
    let cluster = LocalCluster::new(ClusterConfig::default());
    let rt = TangoRuntime::new(cluster.client().unwrap()).unwrap();
    (cluster, rt)
}

#[test]
fn register_read_write_cas() {
    let (_c, rt) = setup();
    let reg: TangoRegister<String> = TangoRegister::open(&rt, "reg").unwrap();
    assert_eq!(reg.read().unwrap(), None);
    reg.write(&"hello".to_owned()).unwrap();
    assert_eq!(reg.read().unwrap(), Some("hello".to_owned()));
    // CAS succeeds on match, fails on mismatch.
    assert!(reg.compare_and_swap(Some(&"hello".to_owned()), &"world".to_owned()).unwrap());
    assert!(!reg.compare_and_swap(Some(&"hello".to_owned()), &"nope".to_owned()).unwrap());
    assert_eq!(reg.read().unwrap(), Some("world".to_owned()));
}

#[test]
fn counter_add_and_fetch_add() {
    let (cluster, rt) = setup();
    let counter = TangoCounter::open(&rt, "ctr").unwrap();
    counter.add(5).unwrap();
    counter.add(-2).unwrap();
    assert_eq!(counter.get().unwrap(), 3);
    assert_eq!(counter.fetch_add(10).unwrap(), 3);
    assert_eq!(counter.get().unwrap(), 13);

    // A second client sees the same value.
    let rt2 = TangoRuntime::new(cluster.client().unwrap()).unwrap();
    let counter2 = TangoCounter::open(&rt2, "ctr").unwrap();
    assert_eq!(counter2.get().unwrap(), 13);
}

#[test]
fn map_operations_and_visibility() {
    let (cluster, rt) = setup();
    let map: TangoMap<String, u64> = TangoMap::open(&rt, "map").unwrap();
    map.put(&"a".to_owned(), &1).unwrap();
    map.put(&"b".to_owned(), &2).unwrap();
    assert_eq!(map.get(&"a".to_owned()).unwrap(), Some(1));
    assert_eq!(map.len().unwrap(), 2);
    map.remove(&"a".to_owned()).unwrap();
    assert_eq!(map.get(&"a".to_owned()).unwrap(), None);
    assert!(map.contains_key(&"b".to_owned()).unwrap());

    let rt2 = TangoRuntime::new(cluster.client().unwrap()).unwrap();
    let map2: TangoMap<String, u64> = TangoMap::open(&rt2, "map").unwrap();
    let mut snap = map2.snapshot().unwrap();
    snap.sort();
    assert_eq!(snap, vec![("b".to_owned(), 2)]);
    map.clear().unwrap();
    assert!(map2.is_empty().unwrap());
}

#[test]
fn treemap_range_queries() {
    let (_c, rt) = setup();
    let tree: TangoTreeMap<String, u64> = TangoTreeMap::open(&rt, "tree").unwrap();
    for (i, name) in ["apple", "banana", "blueberry", "cherry", "date"].iter().enumerate() {
        tree.put(&name.to_string(), &(i as u64)).unwrap();
    }
    // "list all files starting with the letter B" (§3.1).
    let b_names = tree.range("b".to_owned().."c".to_owned()).unwrap();
    assert_eq!(
        b_names.iter().map(|(k, _)| k.as_str()).collect::<Vec<_>>(),
        vec!["banana", "blueberry"]
    );
    assert_eq!(tree.first().unwrap().unwrap().0, "apple");
    assert_eq!(tree.last().unwrap().unwrap().0, "date");
    tree.remove(&"apple".to_owned()).unwrap();
    assert_eq!(tree.first().unwrap().unwrap().0, "banana");
}

#[test]
fn treeset_membership_and_order() {
    let (_c, rt) = setup();
    let set: TangoTreeSet<u64> = TangoTreeSet::open(&rt, "set").unwrap();
    for v in [30u64, 10, 20] {
        set.insert(&v).unwrap();
    }
    assert!(set.contains(&20).unwrap());
    assert_eq!(set.first().unwrap(), Some(10));
    assert_eq!(set.last().unwrap(), Some(30));
    assert_eq!(set.range(10..25).unwrap(), vec![10, 20]);
    set.remove(&10).unwrap();
    assert_eq!(set.first().unwrap(), Some(20));
    assert_eq!(set.len().unwrap(), 2);
}

#[test]
fn list_positional_ops() {
    let (_c, rt) = setup();
    let list: TangoList<String> = TangoList::open(&rt, "list").unwrap();
    list.push_back(&"b".to_owned()).unwrap();
    list.push_front(&"a".to_owned()).unwrap();
    list.push_back(&"d".to_owned()).unwrap();
    list.insert(2, &"c".to_owned()).unwrap();
    assert_eq!(list.snapshot().unwrap(), vec!["a", "b", "c", "d"]);
    assert_eq!(list.get(1).unwrap(), Some("b".to_owned()));
    assert_eq!(list.remove(1).unwrap(), Some("b".to_owned()));
    assert_eq!(list.len().unwrap(), 3);
    list.set(0, &"A".to_owned()).unwrap();
    assert_eq!(list.get(0).unwrap(), Some("A".to_owned()));
    assert_eq!(list.remove(99).unwrap(), None);
}

#[test]
fn queue_fifo_and_exclusive_dequeue() {
    let (cluster, rt) = setup();
    let queue: TangoQueue<u64> = TangoQueue::open(&rt, "queue").unwrap();
    for i in 0..10 {
        queue.enqueue(&i).unwrap();
    }
    assert_eq!(queue.peek().unwrap(), Some(0));
    assert_eq!(queue.len().unwrap(), 10);

    // Concurrent consumers: each item delivered exactly once.
    let mut handles = Vec::new();
    for _ in 0..3 {
        let client = cluster.client().unwrap();
        handles.push(std::thread::spawn(move || {
            let rt = TangoRuntime::new(client).unwrap();
            let q: TangoQueue<u64> = TangoQueue::open(&rt, "queue").unwrap();
            let mut got = Vec::new();
            while let Some(v) = q.dequeue().unwrap() {
                got.push(v);
            }
            got
        }));
    }
    let mut all: Vec<u64> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
    all.sort_unstable();
    assert_eq!(all, (0..10).collect::<Vec<u64>>());
    assert!(queue.is_empty().unwrap());
}

#[test]
fn offset_map_stores_offsets_not_values() {
    let (cluster, rt) = setup();
    let map: TangoOffsetMap<String, String> = TangoOffsetMap::open(&rt, "omap").unwrap();
    map.put(&"k1".to_owned(), &"value-one".to_owned()).unwrap();
    map.put(&"k2".to_owned(), &"value-two".to_owned()).unwrap();
    assert_eq!(map.get(&"k1".to_owned()).unwrap(), Some("value-one".to_owned()));
    assert_eq!(map.get(&"missing".to_owned()).unwrap(), None);
    // The view genuinely holds an offset pointer into the log.
    let off = map.offset_of(&"k2".to_owned()).unwrap().unwrap();
    assert!(matches!(cluster.client().unwrap().read(off).unwrap(), corfu::ReadOutcome::Data(_)));
    // Overwrite moves the pointer forward.
    map.put(&"k2".to_owned(), &"value-two-b".to_owned()).unwrap();
    let off2 = map.offset_of(&"k2".to_owned()).unwrap().unwrap();
    assert!(off2 > off);
    assert_eq!(map.get(&"k2".to_owned()).unwrap(), Some("value-two-b".to_owned()));
    map.remove(&"k1".to_owned()).unwrap();
    assert_eq!(map.get(&"k1".to_owned()).unwrap(), None);
    assert_eq!(map.len().unwrap(), 1);
}

#[test]
fn cross_structure_transaction() {
    // The paper's headline API demo: "applications can transactionally
    // delete a TangoZK node while creating an entry in a TangoMap".
    let (_c, rt) = setup();
    let map: TangoMap<String, u64> = TangoMap::open(&rt, "meta-map").unwrap();
    let set: TangoTreeSet<u64> = TangoTreeSet::open(&rt, "free-set").unwrap();
    set.insert(&42).unwrap();
    map.len().unwrap(); // refresh views

    // Move 42 from the free set into the allocation map, atomically.
    rt.begin_tx().unwrap();
    set.remove(&42).unwrap();
    map.put(&"answer".to_owned(), &42).unwrap();
    assert!(rt.end_tx().unwrap().is_committed());

    assert!(!set.contains(&42).unwrap());
    assert_eq!(map.get(&"answer".to_owned()).unwrap(), Some(42));
}

#[test]
fn two_structures_same_data_different_shapes() {
    // §3.1: "objects with different in-memory data structures can share the
    // same data on the log" — here a hash map and a tree map are kept in
    // lockstep through a transaction, supporting both query shapes.
    let (_c, rt) = setup();
    let by_name: TangoTreeMap<String, u64> = TangoTreeMap::open(&rt, "by-name").unwrap();
    let by_id: TangoMap<u64, String> = TangoMap::open(&rt, "by-id").unwrap();
    for (id, name) in [(1u64, "alpha"), (2, "beta"), (3, "bravo")] {
        rt.begin_tx().unwrap();
        by_name.put(&name.to_owned(), &id).unwrap();
        by_id.put(&id, &name.to_owned()).unwrap();
        assert!(rt.end_tx().unwrap().is_committed());
    }
    // Ordered query on one shape, point query on the other.
    let b_entries = by_name.range("b".to_owned().."c".to_owned()).unwrap();
    assert_eq!(b_entries.len(), 2);
    assert_eq!(by_id.get(&1).unwrap(), Some("alpha".to_owned()));
}
