//! Model-based property tests: each Tango structure, driven by an
//! arbitrary operation sequence interleaved across two client runtimes,
//! must behave exactly like its `std` counterpart — and a third, fresh
//! runtime must reconstruct the same state from the log.

use corfu::cluster::{ClusterConfig, LocalCluster};
use proptest::prelude::*;
use tango::TangoRuntime;
use tango_objects::{TangoList, TangoMap, TangoTreeSet};

#[derive(Debug, Clone)]
enum MapOp {
    Put(u8, i64),
    Remove(u8),
    Get(u8),
    Len,
}

fn map_op() -> impl Strategy<Value = MapOp> {
    prop_oneof![
        (any::<u8>(), any::<i64>()).prop_map(|(k, v)| MapOp::Put(k, v)),
        any::<u8>().prop_map(MapOp::Remove),
        any::<u8>().prop_map(MapOp::Get),
        Just(MapOp::Len),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn map_matches_std_hashmap(ops in proptest::collection::vec((map_op(), any::<bool>()), 1..60)) {
        let cluster = LocalCluster::new(ClusterConfig::tiny());
        let rt1 = TangoRuntime::new(cluster.client().unwrap()).unwrap();
        let rt2 = TangoRuntime::new(cluster.client().unwrap()).unwrap();
        let m1: TangoMap<u8, i64> = TangoMap::open(&rt1, "m").unwrap();
        let m2: TangoMap<u8, i64> = TangoMap::open(&rt2, "m").unwrap();
        let mut model = std::collections::HashMap::new();
        for (op, use_second) in ops {
            let m = if use_second { &m2 } else { &m1 };
            match op {
                MapOp::Put(k, v) => {
                    m.put(&k, &v).unwrap();
                    model.insert(k, v);
                }
                MapOp::Remove(k) => {
                    m.remove(&k).unwrap();
                    model.remove(&k);
                }
                MapOp::Get(k) => {
                    prop_assert_eq!(m.get(&k).unwrap(), model.get(&k).copied());
                }
                MapOp::Len => {
                    prop_assert_eq!(m.len().unwrap(), model.len());
                }
            }
        }
        // A fresh client reconstructs the same state from the log.
        let rt3 = TangoRuntime::new(cluster.client().unwrap()).unwrap();
        let m3: TangoMap<u8, i64> = TangoMap::open(&rt3, "m").unwrap();
        let mut snap = m3.snapshot().unwrap();
        snap.sort();
        let mut expected: Vec<(u8, i64)> = model.into_iter().collect();
        expected.sort();
        prop_assert_eq!(snap, expected);
    }

    #[test]
    fn treeset_matches_std_btreeset(ops in proptest::collection::vec((0u8..3, any::<u8>()), 1..60)) {
        let cluster = LocalCluster::new(ClusterConfig::tiny());
        let rt = TangoRuntime::new(cluster.client().unwrap()).unwrap();
        let set: TangoTreeSet<u8> = TangoTreeSet::open(&rt, "s").unwrap();
        let mut model = std::collections::BTreeSet::new();
        for (kind, v) in ops {
            match kind {
                0 => {
                    set.insert(&v).unwrap();
                    model.insert(v);
                }
                1 => {
                    set.remove(&v).unwrap();
                    model.remove(&v);
                }
                _ => {
                    prop_assert_eq!(set.contains(&v).unwrap(), model.contains(&v));
                    prop_assert_eq!(set.first().unwrap(), model.iter().next().copied());
                    prop_assert_eq!(set.last().unwrap(), model.iter().next_back().copied());
                }
            }
        }
        prop_assert_eq!(set.len().unwrap(), model.len());
        prop_assert_eq!(
            set.range(..).unwrap(),
            model.iter().copied().collect::<Vec<u8>>()
        );
    }

    #[test]
    fn list_matches_std_vec(ops in proptest::collection::vec((0u8..5, any::<u8>(), 0usize..12), 1..40)) {
        let cluster = LocalCluster::new(ClusterConfig::tiny());
        let rt = TangoRuntime::new(cluster.client().unwrap()).unwrap();
        let list: TangoList<u8> = TangoList::open(&rt, "l").unwrap();
        let mut model: Vec<u8> = Vec::new();
        for (kind, v, idx) in ops {
            match kind {
                0 => {
                    list.push_back(&v).unwrap();
                    model.push(v);
                }
                1 => {
                    list.push_front(&v).unwrap();
                    model.insert(0, v);
                }
                2 => {
                    list.insert(idx, &v).unwrap();
                    model.insert(idx.min(model.len()), v);
                }
                3 => {
                    let got = list.remove(idx).unwrap();
                    let expected = if idx < model.len() { Some(model.remove(idx)) } else { None };
                    prop_assert_eq!(got, expected);
                }
                _ => {
                    prop_assert_eq!(list.get(idx).unwrap(), model.get(idx).copied());
                }
            }
        }
        prop_assert_eq!(list.snapshot().unwrap(), model);
    }
}
