//! Cluster harnesses: spin up a full CORFU deployment in one process (for
//! tests, examples and benchmarks) or over real TCP sockets.
//!
//! The in-process harness routes RPCs through the same wire encoding as the
//! TCP transport, and supports failure injection: any node can be "killed"
//! (its connections start failing) and replacement sequencers can be
//! registered for reconfiguration tests.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::RwLock;
use tango_flash::{FlashUnit, TieredStore};
use tango_meta::{Dial, MetaClient, MetaNode, ReplicaInfo};
use tango_metrics::{ClusterHealth, ClusterSnapshot, HealthPolicy, Registry};
use tango_rpc::{
    fetch_snapshot, ClientConn, ConnMetrics, HttpScrapeServer, RpcError, RpcHandler, TcpConn,
    TcpServer,
};
use tango_wire::encode_to_vec;

use crate::client::{ClientOptions, ConnFactory, CorfuClient};
use crate::compactor::{Compactor, CompactorConfig};
use crate::layout::LayoutClient;
use crate::projection::{LogLayout, ShardMap};
use crate::sequencer::SequencerServer;
use crate::storage::StorageServer;
use crate::{NodeId, NodeInfo, Projection, Result};

/// Geometry and tuning for a cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of independent logs the stream namespace is sharded across,
    /// each with its own sequencer and its own `num_sets` × `replication`
    /// storage nodes. 1 (the default) is the classic single-log deployment.
    pub num_logs: usize,
    /// Number of replica sets each log's address space stripes over.
    pub num_sets: usize,
    /// Replicas per set (chain length).
    pub replication: usize,
    /// Fixed log entry (page) size in bytes.
    pub page_size: usize,
    /// Backpointers maintained per stream (K in §5).
    pub k_backpointers: usize,
    /// Metalog (layout service) replicas. The quorum discipline tolerates
    /// `⌊n/2⌋` fail-stop crashes, so the default of 3 rides through any
    /// single replica failure.
    pub layout_replicas: usize,
    /// Client options handed to [`LocalCluster::client`].
    pub client_options: ClientOptions,
    /// Page store each storage node runs on.
    pub storage: StorageBackend,
    /// When set, every storage node runs a background [`Compactor`] with
    /// this cadence (horizon advance + cold migration + periodic scrub).
    /// The harness owns the handles and stops them on drop.
    pub compaction: Option<CompactorConfig>,
}

/// What a storage node keeps its pages on.
#[derive(Debug, Clone, Default)]
pub enum StorageBackend {
    /// Volatile in-memory pages — the default, and the fastest for unit
    /// tests. No tiering: every page is "hot" forever.
    #[default]
    InMemory,
    /// A [`TieredStore`] per node under `root/node-<id>`: RAM hot tail,
    /// segmented cold files, whole-segment reclamation below the trim
    /// horizon. This is the backend the churn bench runs on.
    Tiered {
        /// Directory under which each node's store lives.
        root: PathBuf,
        /// Cold-tier segment size in pages.
        pages_per_segment: u64,
        /// Target number of hot (RAM) pages per node.
        hot_capacity: usize,
    },
}

impl StorageBackend {
    fn build_unit(&self, node_id: NodeId, page_size: usize) -> Result<FlashUnit> {
        match self {
            StorageBackend::InMemory => Ok(FlashUnit::in_memory(page_size)),
            StorageBackend::Tiered { root, pages_per_segment, hot_capacity } => {
                let dir = root.join(format!("node-{node_id}"));
                let store = TieredStore::open(&dir, page_size, *pages_per_segment, *hot_capacity)
                    .map_err(|e| crate::CorfuError::Storage(e.to_string()))?;
                FlashUnit::open(Box::new(store), page_size)
                    .map_err(|e| crate::CorfuError::Storage(e.to_string()))
            }
        }
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            num_logs: 1,
            num_sets: 3,
            replication: 2,
            page_size: 4096,
            k_backpointers: 4,
            layout_replicas: 3,
            client_options: ClientOptions::default(),
            storage: StorageBackend::InMemory,
            compaction: None,
        }
    }
}

impl ClusterConfig {
    /// A tiny 1x1 cluster for unit tests.
    pub fn tiny() -> Self {
        Self { num_sets: 1, replication: 1, ..Self::default() }
    }

    /// The paper's evaluation deployment: 18 nodes in a 9x2 configuration.
    pub fn paper_testbed() -> Self {
        Self { num_sets: 9, replication: 2, ..Self::default() }
    }

    /// A sharded deployment: `num_logs` logs, each 1x1, streams hash-
    /// partitioned across them.
    pub fn sharded(num_logs: usize) -> Self {
        Self { num_logs, num_sets: 1, replication: 1, ..Self::default() }
    }

    /// Puts every storage node on a [`TieredStore`] under `root` and turns
    /// the background compactor on — the configuration the churn bench and
    /// the reclamation integration tests run.
    pub fn with_tiered_storage(
        mut self,
        root: impl Into<PathBuf>,
        pages_per_segment: u64,
        hot_capacity: usize,
    ) -> Self {
        self.storage =
            StorageBackend::Tiered { root: root.into(), pages_per_segment, hot_capacity };
        self.compaction = Some(CompactorConfig::default());
        self
    }
}

/// Shared registry mapping node addresses to in-process handlers. Removing
/// an address simulates a node crash: subsequent calls fail with
/// `Disconnected`.
#[derive(Clone, Default)]
pub struct HandlerRegistry {
    inner: Arc<RwLock<HashMap<String, Arc<dyn RpcHandler>>>>,
}

impl HandlerRegistry {
    /// Registers (or replaces) the handler at `addr`.
    pub fn register(&self, addr: impl Into<String>, handler: Arc<dyn RpcHandler>) {
        self.inner.write().insert(addr.into(), handler);
    }

    /// Removes the handler at `addr`, simulating a crash.
    pub fn kill(&self, addr: &str) {
        self.inner.write().remove(addr);
    }

    fn lookup(&self, addr: &str) -> Option<Arc<dyn RpcHandler>> {
        self.inner.read().get(addr).cloned()
    }
}

/// A connection that resolves its target in the registry on every call, so
/// kills and restarts take effect immediately.
struct RegistryConn {
    registry: HandlerRegistry,
    addr: String,
}

impl ClientConn for RegistryConn {
    fn call(&self, request: &[u8]) -> tango_rpc::Result<Vec<u8>> {
        match self.registry.lookup(&self.addr) {
            Some(handler) => Ok(handler.handle(request)),
            None => Err(RpcError::Disconnected),
        }
    }
}

struct RegistryFactory {
    registry: HandlerRegistry,
}

impl ConnFactory for RegistryFactory {
    fn connect(&self, node: &NodeInfo) -> Arc<dyn ClientConn> {
        Arc::new(RegistryConn { registry: self.registry.clone(), addr: node.addr.clone() })
    }
}

/// A complete in-process CORFU deployment.
pub struct LocalCluster {
    config: ClusterConfig,
    registry: HandlerRegistry,
    meta_nodes: parking_lot::Mutex<HashMap<NodeId, Arc<MetaNode>>>,
    layout_replicas: parking_lot::Mutex<Vec<ReplicaInfo>>,
    sequencers: Vec<Arc<SequencerServer>>,
    storage: Vec<Arc<StorageServer>>,
    /// Background compactors (one per storage node when enabled). Held so
    /// they stop when the cluster drops.
    compactors: parking_lot::Mutex<Vec<Compactor>>,
    sequencer_generation: std::sync::atomic::AtomicU32,
    storage_generation: std::sync::atomic::AtomicU32,
    layout_generation: std::sync::atomic::AtomicU32,
    metrics: Registry,
}

/// Node id assigned to the first sequencer; replacements count up from it.
pub const SEQUENCER_BASE_ID: NodeId = 10_000;

/// Node id assigned to the first replacement storage node; further
/// replacements count up from it. Kept above the sequencer range so node
/// kind is recoverable from the id in either harness.
pub const STORAGE_REPLACEMENT_BASE_ID: NodeId = 20_000;

/// Node id assigned to the first metalog (layout) replica; replacements
/// count up past the initial set. Kept above the storage-replacement range
/// so node kind is recoverable from the id in either harness.
pub const LAYOUT_BASE_ID: NodeId = 30_000;

impl LocalCluster {
    /// Builds and wires up a cluster per `config`, with in-memory flash.
    /// Every server and every [`LocalCluster::client`] records into one
    /// shared metrics registry ([`LocalCluster::metrics`]).
    pub fn new(config: ClusterConfig) -> Self {
        let registry = HandlerRegistry::default();
        let metrics = Registry::new();
        let mut storage = Vec::new();
        let mut compactors = Vec::new();
        let mut sequencers = Vec::new();
        let mut logs = Vec::new();
        let mut nodes = Vec::new();
        let mut next_id: NodeId = 0;
        let num_logs = config.num_logs.max(1);
        for log in 0..num_logs {
            let mut replica_sets = Vec::new();
            for _ in 0..config.num_sets {
                let mut set = Vec::new();
                for _ in 0..config.replication {
                    let unit = config
                        .storage
                        .build_unit(next_id, config.page_size)
                        .expect("open storage backend");
                    let server = Arc::new(
                        StorageServer::new(unit).with_metrics_for_log(&metrics, log as u64),
                    );
                    if let Some(cfg) = &config.compaction {
                        compactors.push(Compactor::spawn(Arc::clone(&server), cfg.clone()));
                    }
                    let addr = format!("storage-{next_id}");
                    registry.register(addr.clone(), Arc::clone(&server) as Arc<dyn RpcHandler>);
                    storage.push(server);
                    nodes.push(NodeInfo { id: next_id, addr });
                    set.push(next_id);
                    next_id += 1;
                }
                replica_sets.push(set);
            }
            let sequencer = Arc::new(
                SequencerServer::new_for_log(config.k_backpointers, log as u32)
                    .with_metrics(&metrics),
            );
            let seq_id = SEQUENCER_BASE_ID + log as NodeId;
            let seq_addr = format!("sequencer-{seq_id}");
            registry.register(seq_addr.clone(), Arc::clone(&sequencer) as Arc<dyn RpcHandler>);
            nodes.push(NodeInfo { id: seq_id, addr: seq_addr });
            sequencers.push(sequencer);
            logs.push(LogLayout { epoch: 0, replica_sets, sequencer: seq_id });
        }
        let shard =
            if num_logs == 1 { ShardMap::single() } else { ShardMap::hashed(num_logs as u32) };
        let projection = Projection { epoch: 0, logs, shard, nodes };
        // The layout service: a replica set of metalog nodes, each
        // bootstrapped with the genesis projection at position 0.
        let genesis = Bytes::from(encode_to_vec(&projection));
        let mut meta_nodes = HashMap::new();
        let mut layout_set = Vec::new();
        for i in 0..config.layout_replicas.max(1) {
            let id = LAYOUT_BASE_ID + i as NodeId;
            let addr = format!("meta-{id}");
            let node = Arc::new(MetaNode::new().with_metrics(&metrics));
            node.bootstrap(genesis.clone());
            registry.register(addr.clone(), Arc::clone(&node) as Arc<dyn RpcHandler>);
            layout_set.push(ReplicaInfo { id, addr });
            meta_nodes.insert(id, node);
        }
        for node in meta_nodes.values() {
            node.set_peers(layout_set.clone());
        }

        Self {
            config,
            registry,
            meta_nodes: parking_lot::Mutex::new(meta_nodes),
            layout_replicas: parking_lot::Mutex::new(layout_set),
            sequencers,
            storage,
            compactors: parking_lot::Mutex::new(compactors),
            sequencer_generation: std::sync::atomic::AtomicU32::new(1),
            storage_generation: std::sync::atomic::AtomicU32::new(0),
            layout_generation: std::sync::atomic::AtomicU32::new(0),
            metrics,
        }
    }

    /// The cluster's configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The handler registry (for failure injection).
    pub fn registry(&self) -> &HandlerRegistry {
        &self.registry
    }

    /// The deployment-wide metrics registry: servers and all clients
    /// created via [`LocalCluster::client`] record here.
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// The in-process analogue of [`TcpCluster::cluster_snapshot`]: one
    /// node named `"local"` holding the shared registry's snapshot, so
    /// code written against [`ClusterSnapshot`] runs on either harness.
    pub fn cluster_snapshot(&self) -> ClusterSnapshot {
        let mut cluster = ClusterSnapshot::new();
        cluster.insert("local", self.metrics.snapshot());
        cluster
    }

    /// Health verdict over the shared registry (every scrape target is
    /// in-process, so nothing is ever unreachable here).
    pub fn cluster_health(&self) -> ClusterHealth {
        ClusterHealth::evaluate(&self.cluster_snapshot(), &[], &HealthPolicy::default())
    }

    /// Creates a new client connected to the cluster.
    pub fn client(&self) -> Result<CorfuClient> {
        self.client_with_metrics(self.metrics.clone())
    }

    /// Creates a client whose instruments record into `metrics` instead of
    /// the cluster-wide registry. Pass [`Registry::disabled()`] to measure
    /// the cost of the no-op instrumentation path.
    pub fn client_with_metrics(&self, metrics: Registry) -> Result<CorfuClient> {
        self.client_with_factory(self.conn_factory(), self.config.client_options.clone(), metrics)
    }

    /// The cluster's plain connection factory. Test harnesses (e.g. fault
    /// injection) can wrap it and build clients via
    /// [`LocalCluster::client_with_factory`].
    pub fn conn_factory(&self) -> Arc<dyn ConnFactory> {
        Arc::new(RegistryFactory { registry: self.registry.clone() })
    }

    /// A layout-service client stub over the metalog replica set.
    pub fn layout_client(&self) -> LayoutClient {
        self.layout_client_with(self.conn_factory(), &self.metrics)
    }

    /// A layout client dialing replicas through `factory` and recording
    /// `meta.*` instruments into `metrics` — the hook fault-injection
    /// harnesses use to interpose on layout traffic too.
    pub fn layout_client_with(
        &self,
        factory: Arc<dyn ConnFactory>,
        metrics: &Registry,
    ) -> LayoutClient {
        let replicas = self.layout_replicas.lock().clone();
        let dial: Arc<dyn Dial> = Arc::new(move |replica: &ReplicaInfo| {
            factory.connect(&NodeInfo { id: replica.id, addr: replica.addr.clone() })
        });
        LayoutClient::replicated(Arc::new(MetaClient::new(replicas, dial).with_metrics(metrics)))
    }

    /// Creates a client routing node connections through an arbitrary
    /// factory — the hook fault-injection harnesses use to interpose on
    /// every client→server call, layout replicas included.
    pub fn client_with_factory(
        &self,
        factory: Arc<dyn ConnFactory>,
        options: ClientOptions,
        metrics: Registry,
    ) -> Result<CorfuClient> {
        let layout = self.layout_client_with(Arc::clone(&factory), &metrics);
        CorfuClient::with_options_and_metrics(layout, factory, options, metrics)
    }

    /// Direct access to log 0's current sequencer server (for assertions).
    pub fn sequencer(&self) -> &Arc<SequencerServer> {
        &self.sequencers[0]
    }

    /// Direct access to log `log`'s initial sequencer server.
    pub fn sequencer_of(&self, log: u32) -> &Arc<SequencerServer> {
        &self.sequencers[log as usize]
    }

    /// Direct access to the storage servers, indexed by node id.
    pub fn storage(&self) -> &[Arc<StorageServer>] {
        &self.storage
    }

    /// Kills log 0's current sequencer (its address stops resolving).
    pub fn kill_sequencer(&self) {
        self.kill_sequencer_of(0)
    }

    /// Kills log `log`'s current sequencer.
    pub fn kill_sequencer_of(&self, log: u32) {
        if let Ok(p) = self.layout_client().get() {
            if let Some(addr) = p.addr_of(p.sequencer_of(log)) {
                self.registry.kill(addr);
            }
        }
    }

    /// Registers a fresh, empty sequencer server for log 0 and returns its
    /// node info, ready to be handed to
    /// [`crate::reconfig::replace_sequencer`].
    pub fn spawn_replacement_sequencer(&self) -> (NodeInfo, Arc<SequencerServer>) {
        self.spawn_replacement_sequencer_for(0)
    }

    /// Registers a fresh, empty sequencer server for log `log`. Replacement
    /// ids are `SEQUENCER_BASE_ID + generation*100 + log`, so fault
    /// harnesses can recover the log id from a replacement's node id
    /// (`(id - SEQUENCER_BASE_ID) % 100`).
    pub fn spawn_replacement_sequencer_for(&self, log: u32) -> (NodeInfo, Arc<SequencerServer>) {
        let gen = self.sequencer_generation.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        let id = SEQUENCER_BASE_ID + gen * 100 + log;
        let addr = format!("sequencer-{id}");
        let server = Arc::new(
            SequencerServer::new_for_log(self.config.k_backpointers, log)
                .with_metrics(&self.metrics),
        );
        self.registry.register(addr.clone(), Arc::clone(&server) as Arc<dyn RpcHandler>);
        (NodeInfo { id, addr }, server)
    }

    /// Kills the storage node `id`: its address stops resolving, so every
    /// subsequent call to it fails with `Disconnected`.
    pub fn kill_storage_node(&self, id: NodeId) {
        if let Ok(p) = self.layout_client().get() {
            if let Some(addr) = p.addr_of(id) {
                self.registry.kill(addr);
            }
        }
    }

    /// Registers a fresh, empty storage server and returns its node info,
    /// ready to be handed to [`crate::reconfig::replace_storage_node`].
    pub fn spawn_replacement_storage(&self) -> (NodeInfo, Arc<StorageServer>) {
        let gen = self.storage_generation.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        let id = STORAGE_REPLACEMENT_BASE_ID + gen;
        let addr = format!("storage-{id}");
        let unit = self
            .config
            .storage
            .build_unit(id, self.config.page_size)
            .expect("open storage backend");
        let server = Arc::new(StorageServer::new(unit).with_metrics(&self.metrics));
        if let Some(cfg) = &self.config.compaction {
            self.compactors.lock().push(Compactor::spawn(Arc::clone(&server), cfg.clone()));
        }
        self.registry.register(addr.clone(), Arc::clone(&server) as Arc<dyn RpcHandler>);
        (NodeInfo { id, addr }, server)
    }

    /// The current metalog (layout) replica set, in arbitration order.
    /// Killed replicas stay listed until replaced — a crash does not edit
    /// membership; the quorum client fails over past them.
    pub fn layout_replicas(&self) -> Vec<ReplicaInfo> {
        self.layout_replicas.lock().clone()
    }

    /// Direct access to a live metalog replica (for assertions). `None`
    /// for unknown or killed replicas.
    pub fn meta_node(&self, id: NodeId) -> Option<Arc<MetaNode>> {
        self.meta_nodes.lock().get(&id).cloned()
    }

    /// Kills the metalog replica `id`: its address stops resolving, so
    /// every subsequent call to it fails with `Disconnected`. Membership is
    /// untouched — quorum clients ride through on the survivors.
    pub fn kill_layout_replica(&self, id: NodeId) {
        let replicas = self.layout_replicas.lock().clone();
        if let Some(r) = replicas.iter().find(|r| r.id == id) {
            self.registry.kill(&r.addr);
        }
        self.meta_nodes.lock().remove(&id);
    }

    /// Replaces the crashed metalog replica `dead`: spawns a fresh node,
    /// copies every decided record onto it from the surviving quorum
    /// (catch-up), then installs the new replica set on all members — the
    /// metalog analogue of [`crate::reconfig::replace_storage_node`]'s
    /// chain rebuild.
    pub fn replace_layout_replica(&self, dead: NodeId) -> Result<ReplicaInfo> {
        let gen = self.layout_generation.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        let id = LAYOUT_BASE_ID + self.config.layout_replicas.max(1) as NodeId + gen;
        let addr = format!("meta-{id}");
        let node = Arc::new(MetaNode::new().with_metrics(&self.metrics));
        self.registry.register(addr.clone(), Arc::clone(&node) as Arc<dyn RpcHandler>);
        let info = ReplicaInfo { id, addr: addr.clone() };

        let survivors: Vec<ReplicaInfo> =
            self.layout_replicas.lock().iter().filter(|r| r.id != dead).cloned().collect();
        let registry = self.registry.clone();
        let dial: Arc<dyn Dial> = Arc::new(move |replica: &ReplicaInfo| -> Arc<dyn ClientConn> {
            Arc::new(RegistryConn { registry: registry.clone(), addr: replica.addr.clone() })
        });
        let meta = MetaClient::new(survivors.clone(), dial);
        let target: Arc<dyn ClientConn> =
            Arc::new(RegistryConn { registry: self.registry.clone(), addr });
        meta.catch_up(&target)?;

        let mut new_set = survivors;
        new_set.push(info.clone());
        meta.install_peers(new_set.clone())?;
        *self.layout_replicas.lock() = new_set;
        self.meta_nodes.lock().insert(id, node);
        Ok(info)
    }
}

/// One node of a [`TcpCluster`]: its RPC server, its private metrics
/// registry, and the HTTP scrape endpoint exposing that registry.
struct TcpNode {
    name: String,
    registry: Registry,
    server: TcpServer,
    scrape: HttpScrapeServer,
}

impl TcpNode {
    fn spawn(name: String, handler: Arc<dyn RpcHandler>, registry: Registry) -> Result<Self> {
        // Surface the node's reactor health (connection gauge, dropped
        // accepts) in its own registry so scrapes see transport pressure.
        let options = tango_rpc::ServerOptions {
            metrics: tango_rpc::ServerMetrics::from_registry(&registry),
            ..Default::default()
        };
        let server = TcpServer::spawn_with("127.0.0.1:0", handler, options)
            .map_err(|e| crate::CorfuError::Rpc(e.to_string()))?;
        let scrape = HttpScrapeServer::spawn("127.0.0.1:0", registry.clone())
            .map_err(|e| crate::CorfuError::Rpc(e.to_string()))?;
        Ok(Self { name, registry, server, scrape })
    }
}

/// A CORFU deployment over real TCP sockets on localhost: the same servers,
/// each behind a [`TcpServer`]. Useful for end-to-end integration tests.
/// Storage nodes can be killed (their listener shuts down) and replacements
/// spawned, mirroring the [`LocalCluster`] failure-injection API.
///
/// Unlike [`LocalCluster`], every node here keeps its *own* metrics
/// registry — exactly like a real deployment, where processes cannot share
/// an address space — and exposes it through a per-node
/// [`HttpScrapeServer`]. [`TcpCluster::cluster_snapshot`] scrapes every
/// node over HTTP and merges the results; [`TcpCluster::metrics`] is the
/// client-side registry only.
pub struct TcpCluster {
    config: ClusterConfig,
    /// Storage nodes by id; removing one drops it, which shuts the
    /// listener (and its scrape endpoint) down and disconnects clients.
    storage_servers: parking_lot::Mutex<HashMap<NodeId, TcpNode>>,
    /// The storage servers behind the listeners, for direct assertions
    /// (tier stats, compaction reports) without an RPC round trip.
    storage_handles: parking_lot::Mutex<HashMap<NodeId, Arc<StorageServer>>>,
    /// Per-node background compactors when [`ClusterConfig::compaction`]
    /// is set; killing a node stops its compactor.
    compactors: parking_lot::Mutex<HashMap<NodeId, Compactor>>,
    /// Metalog (layout) replicas by id, each with its own registry and
    /// scrape endpoint; removing one simulates a layout-replica crash.
    layout_servers: parking_lot::Mutex<HashMap<NodeId, TcpNode>>,
    /// The current metalog replica set, in arbitration order.
    layout_replicas: parking_lot::Mutex<Vec<ReplicaInfo>>,
    /// Keep the sequencer node alive.
    aux_servers: Vec<TcpNode>,
    storage_generation: std::sync::atomic::AtomicU32,
    layout_generation: std::sync::atomic::AtomicU32,
    metrics: Registry,
    /// Names of killed nodes still on the monitoring target list; they
    /// count as unreachable in [`TcpCluster::cluster_health`] until
    /// [`TcpCluster::retire_scrape_target`] (the "operator updated the
    /// target list" step) removes them.
    dead_targets: parking_lot::Mutex<Vec<String>>,
}

impl TcpCluster {
    /// Spawns storage nodes, a sequencer, and a layout service on ephemeral
    /// localhost ports, each with a private registry and a scrape endpoint.
    /// Clients created via [`TcpCluster::client`] record into the cluster
    /// handle's own registry ([`TcpCluster::metrics`]), including their TCP
    /// connections' `rpc.*` transport metrics.
    pub fn spawn(config: ClusterConfig) -> Result<Self> {
        let metrics = Registry::new();
        let mut storage_servers = HashMap::new();
        let mut storage_handles = HashMap::new();
        let mut compactors = HashMap::new();
        let mut aux_servers = Vec::new();
        let mut logs = Vec::new();
        let mut nodes = Vec::new();
        let mut next_id: NodeId = 0;
        let num_logs = config.num_logs.max(1);
        for log in 0..num_logs {
            let mut replica_sets = Vec::new();
            for _ in 0..config.num_sets {
                let mut set = Vec::new();
                for _ in 0..config.replication {
                    let registry = Registry::new();
                    let unit = config.storage.build_unit(next_id, config.page_size)?;
                    let server = Arc::new(
                        StorageServer::new(unit).with_metrics_for_log(&registry, log as u64),
                    );
                    if let Some(cfg) = &config.compaction {
                        compactors
                            .insert(next_id, Compactor::spawn(Arc::clone(&server), cfg.clone()));
                    }
                    let handler: Arc<dyn RpcHandler> = Arc::clone(&server) as Arc<dyn RpcHandler>;
                    storage_handles.insert(next_id, server);
                    let node = TcpNode::spawn(format!("storage-{next_id}"), handler, registry)?;
                    nodes
                        .push(NodeInfo { id: next_id, addr: node.server.local_addr().to_string() });
                    storage_servers.insert(next_id, node);
                    set.push(next_id);
                    next_id += 1;
                }
                replica_sets.push(set);
            }
            let seq_registry = Registry::new();
            let seq_handler: Arc<dyn RpcHandler> = Arc::new(
                SequencerServer::new_for_log(config.k_backpointers, log as u32)
                    .with_metrics(&seq_registry),
            );
            let seq_id = SEQUENCER_BASE_ID + log as NodeId;
            let name = if log == 0 { "sequencer".to_string() } else { format!("sequencer-{log}") };
            let seq_node = TcpNode::spawn(name, seq_handler, seq_registry)?;
            nodes.push(NodeInfo { id: seq_id, addr: seq_node.server.local_addr().to_string() });
            aux_servers.push(seq_node);
            logs.push(LogLayout { epoch: 0, replica_sets, sequencer: seq_id });
        }
        let shard =
            if num_logs == 1 { ShardMap::single() } else { ShardMap::hashed(num_logs as u32) };
        let projection = Projection { epoch: 0, logs, shard, nodes };
        // The layout service: metalog replicas on their own ports, each
        // with a private registry (`meta.node.*`) and scrape endpoint.
        let genesis = Bytes::from(encode_to_vec(&projection));
        let mut layout_servers = HashMap::new();
        let mut layout_set = Vec::new();
        let mut meta_handles = Vec::new();
        for i in 0..config.layout_replicas.max(1) {
            let id = LAYOUT_BASE_ID + i as NodeId;
            let registry = Registry::new();
            let meta = Arc::new(MetaNode::new().with_metrics(&registry));
            meta.bootstrap(genesis.clone());
            let node = TcpNode::spawn(
                format!("layout-{id}"),
                Arc::clone(&meta) as Arc<dyn RpcHandler>,
                registry,
            )?;
            layout_set.push(ReplicaInfo { id, addr: node.server.local_addr().to_string() });
            layout_servers.insert(id, node);
            meta_handles.push(meta);
        }
        for meta in &meta_handles {
            meta.set_peers(layout_set.clone());
        }

        Ok(Self {
            config,
            storage_servers: parking_lot::Mutex::new(storage_servers),
            storage_handles: parking_lot::Mutex::new(storage_handles),
            compactors: parking_lot::Mutex::new(compactors),
            layout_servers: parking_lot::Mutex::new(layout_servers),
            layout_replicas: parking_lot::Mutex::new(layout_set),
            aux_servers,
            storage_generation: std::sync::atomic::AtomicU32::new(0),
            layout_generation: std::sync::atomic::AtomicU32::new(0),
            metrics,
            dead_targets: parking_lot::Mutex::new(Vec::new()),
        })
    }

    /// The *client-side* metrics registry: every client created through
    /// [`TcpCluster::client`] records its `corfu.client.*`, `stream.*`, and
    /// `rpc.*` instruments here. Server-side metrics live in the per-node
    /// registries; scrape them via [`TcpCluster::cluster_snapshot`].
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// The live scrape endpoints, as `(node_name, http_addr)` pairs. The
    /// client-side registry is not listed — it has no HTTP endpoint.
    pub fn scrape_targets(&self) -> Vec<(String, String)> {
        let mut targets: Vec<(String, String)> = self
            .aux_servers
            .iter()
            .map(|n| (n.name.clone(), n.scrape.local_addr().to_string()))
            .collect();
        for node in self.storage_servers.lock().values() {
            targets.push((node.name.clone(), node.scrape.local_addr().to_string()));
        }
        for node in self.layout_servers.lock().values() {
            targets.push((node.name.clone(), node.scrape.local_addr().to_string()));
        }
        targets.sort();
        targets
    }

    /// Scrapes every live node's `/snapshot.bin` over HTTP and merges the
    /// results into a [`ClusterSnapshot`], adding the client-side registry
    /// under the node name `"clients"`. Nodes that fail to answer (e.g.
    /// killed ones) are skipped — a scrape must not wedge on a dead node.
    pub fn cluster_snapshot(&self) -> ClusterSnapshot {
        let mut cluster = ClusterSnapshot::new();
        for (name, addr) in self.scrape_targets() {
            if let Ok(snap) = fetch_snapshot(&addr, std::time::Duration::from_secs(2)) {
                cluster.insert(name, snap);
            }
        }
        cluster.insert("clients", self.metrics.snapshot());
        cluster
    }

    /// Scrapes the cluster and evaluates [`ClusterHealth`]: live targets
    /// that fail to answer and killed-but-not-retired nodes both count as
    /// unreachable, so a fault window reads as `degraded` (or `unhealthy`
    /// once a metalog majority is gone) until repair *and* target-list
    /// cleanup bring it back to `ok`.
    pub fn cluster_health(&self) -> ClusterHealth {
        self.cluster_health_with(&HealthPolicy::default())
    }

    /// [`TcpCluster::cluster_health`] under an explicit policy.
    pub fn cluster_health_with(&self, policy: &HealthPolicy) -> ClusterHealth {
        let mut cluster = ClusterSnapshot::new();
        let mut unreachable: Vec<String> = self.dead_targets.lock().clone();
        for (name, addr) in self.scrape_targets() {
            match fetch_snapshot(&addr, std::time::Duration::from_secs(2)) {
                Ok(snap) => cluster.insert(name, snap),
                Err(_) => unreachable.push(name),
            }
        }
        cluster.insert("clients", self.metrics.snapshot());
        ClusterHealth::evaluate(&cluster, &unreachable, policy)
    }

    /// Drops `name` from the dead-target list after its replacement is in
    /// service — the monitoring analogue of updating the target list.
    pub fn retire_scrape_target(&self, name: &str) {
        self.dead_targets.lock().retain(|n| n != name);
    }

    /// Direct access to one storage node's registry (for assertions that
    /// would otherwise need an HTTP round trip). `None` for unknown or
    /// killed nodes.
    pub fn storage_registry(&self, id: NodeId) -> Option<Registry> {
        self.storage_servers.lock().get(&id).map(|n| n.registry.clone())
    }

    /// Log 0's sequencer node registry.
    pub fn sequencer_registry(&self) -> Registry {
        self.aux_servers[0].registry.clone()
    }

    /// Log `log`'s sequencer node registry (aux servers are one per log,
    /// in log order).
    pub fn sequencer_registry_of(&self, log: u32) -> Registry {
        self.aux_servers[log as usize].registry.clone()
    }

    /// Kills the storage node `id`: its TCP listener and scrape endpoint
    /// shut down and open connections drop, so subsequent calls to it fail.
    /// The node stays on the monitoring target list (unreachable) until
    /// [`TcpCluster::retire_scrape_target`].
    pub fn kill_storage_node(&self, id: NodeId) {
        // Stop the node's compactor first so no background pass runs on a
        // "dead" unit, then drop the server handle — with a tiered backend
        // that loses the RAM hot tail, exactly like a real crash.
        if let Some(mut compactor) = self.compactors.lock().remove(&id) {
            compactor.stop();
        }
        self.storage_handles.lock().remove(&id);
        if let Some(node) = self.storage_servers.lock().remove(&id) {
            self.dead_targets.lock().push(node.name.clone());
        }
    }

    /// Direct access to one storage node's server (for assertions on tier
    /// stats or manual compaction). `None` for unknown or killed nodes.
    pub fn storage_server(&self, id: NodeId) -> Option<Arc<StorageServer>> {
        self.storage_handles.lock().get(&id).cloned()
    }

    /// Spawns a fresh, empty storage server on an ephemeral port (with its
    /// own registry and scrape endpoint) and returns its node info, ready
    /// for [`crate::reconfig::replace_storage_node`].
    pub fn spawn_replacement_storage(&self) -> Result<NodeInfo> {
        let gen = self.storage_generation.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        let id = STORAGE_REPLACEMENT_BASE_ID + gen;
        let registry = Registry::new();
        let unit = self.config.storage.build_unit(id, self.config.page_size)?;
        let server = Arc::new(StorageServer::new(unit).with_metrics(&registry));
        if let Some(cfg) = &self.config.compaction {
            self.compactors.lock().insert(id, Compactor::spawn(Arc::clone(&server), cfg.clone()));
        }
        let handler: Arc<dyn RpcHandler> = Arc::clone(&server) as Arc<dyn RpcHandler>;
        let node = TcpNode::spawn(format!("storage-{id}"), handler, registry)?;
        let info = NodeInfo { id, addr: node.server.local_addr().to_string() };
        self.storage_handles.lock().insert(id, server);
        self.storage_servers.lock().insert(id, node);
        Ok(info)
    }

    /// Creates a client that talks to the cluster over TCP.
    pub fn client(&self) -> Result<CorfuClient> {
        self.client_with_options(ClientOptions::default())
    }

    /// Creates a TCP client with explicit options (e.g.
    /// [`ClientOptions::batched`] for §5's sequencer token batching).
    pub fn client_with_options(&self, opts: ClientOptions) -> Result<CorfuClient> {
        let conn_metrics = ConnMetrics::from_registry(&self.metrics);
        let layout = self.layout_client();
        let factory: Arc<dyn ConnFactory> =
            Arc::new(move |node: &NodeInfo| -> Arc<dyn ClientConn> {
                Arc::new(TcpConn::new(node.addr.clone()).with_metrics(conn_metrics.clone()))
            });
        CorfuClient::with_options_and_metrics(layout, factory, opts, self.metrics.clone())
    }

    fn tcp_dial(&self) -> Arc<dyn Dial> {
        let conn_metrics = ConnMetrics::from_registry(&self.metrics);
        Arc::new(move |replica: &ReplicaInfo| -> Arc<dyn ClientConn> {
            Arc::new(TcpConn::new(replica.addr.clone()).with_metrics(conn_metrics.clone()))
        })
    }

    /// A layout-service client stub over the metalog replica set (TCP).
    pub fn layout_client(&self) -> LayoutClient {
        let replicas = self.layout_replicas.lock().clone();
        LayoutClient::replicated(Arc::new(
            MetaClient::new(replicas, self.tcp_dial()).with_metrics(&self.metrics),
        ))
    }

    /// The current metalog (layout) replica set, in arbitration order.
    pub fn layout_replicas(&self) -> Vec<ReplicaInfo> {
        self.layout_replicas.lock().clone()
    }

    /// One metalog replica's registry (for assertions on `meta.node.*`
    /// without an HTTP round trip). `None` for unknown or killed replicas.
    pub fn layout_registry(&self, id: NodeId) -> Option<Registry> {
        self.layout_servers.lock().get(&id).map(|n| n.registry.clone())
    }

    /// Kills the metalog replica `id`: its TCP listener and scrape
    /// endpoint shut down and open connections drop. Membership is
    /// untouched — quorum clients ride through on the survivors.
    pub fn kill_layout_replica(&self, id: NodeId) {
        if let Some(node) = self.layout_servers.lock().remove(&id) {
            self.dead_targets.lock().push(node.name.clone());
        }
    }

    /// Replaces the crashed metalog replica `dead`: spawns a fresh node on
    /// an ephemeral port, catch-up copies every decided record onto it from
    /// the surviving quorum, then installs the new replica set on all
    /// members.
    pub fn replace_layout_replica(&self, dead: NodeId) -> Result<ReplicaInfo> {
        let gen = self.layout_generation.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        let id = LAYOUT_BASE_ID + self.config.layout_replicas.max(1) as NodeId + gen;
        let registry = Registry::new();
        let meta = Arc::new(MetaNode::new().with_metrics(&registry));
        let node = TcpNode::spawn(
            format!("layout-{id}"),
            Arc::clone(&meta) as Arc<dyn RpcHandler>,
            registry,
        )?;
        let info = ReplicaInfo { id, addr: node.server.local_addr().to_string() };

        let survivors: Vec<ReplicaInfo> =
            self.layout_replicas.lock().iter().filter(|r| r.id != dead).cloned().collect();
        let client = MetaClient::new(survivors.clone(), self.tcp_dial());
        let target: Arc<dyn ClientConn> = Arc::new(TcpConn::new(info.addr.clone()));
        client.catch_up(&target)?;

        let mut new_set = survivors;
        new_set.push(info.clone());
        client.install_peers(new_set.clone())?;
        *self.layout_replicas.lock() = new_set;
        self.layout_servers.lock().insert(id, node);
        // The replacement is serving: the dead replica leaves the
        // monitoring target list along with the membership.
        self.retire_scrape_target(&format!("layout-{dead}"));
        Ok(info)
    }
}
