//! The CORFU client library (§2.2).
//!
//! Appends acquire a token from the sequencer, then write the entry to the
//! offset's replica chain head-to-tail (client-driven chain replication
//! [45]); reads go to the chain tail and *repair* half-written chains by
//! propagating the head's value forward. Write-once storage arbitrates all
//! races: if another client (usually a hole-filler) consumed our token's
//! slot, the append retries with a fresh token. Every request is epoch-
//! stamped; on `ErrSealed` the client refreshes its projection from the
//! layout service and retries.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel;
use parking_lot::RwLock;
use tango_metrics::{Registry, Span, SpanKind, Timer};
use tango_rpc::ClientConn;
use tango_wire::{decode_from_slice, encode_to_vec};

use crate::entry::{CrossLogLink, EntryEnvelope, StreamHeader};
use crate::layout::LayoutClient;
use crate::metrics::{ClientLogMetrics, ClientMetrics};
use crate::proto::{
    PageOutcome, SequencerRequest, SequencerResponse, StorageRequest, StorageResponse, WriteKind,
};
use crate::{
    compose, log_of_offset, raw_of_offset, CorfuError, Epoch, LogOffset, NodeId, NodeInfo,
    Projection, Result, StreamId,
};

/// Workers in the lazily-spawned fan-out pool (see [`CallPool`]). The
/// calling thread always services one request itself, so `read_many` keeps
/// up to `FANOUT_WORKERS + 1` batches in flight at once.
const FANOUT_WORKERS: usize = 6;

struct FanoutJob {
    conn: Arc<dyn ClientConn>,
    request: Vec<u8>,
    slot: usize,
    reply: channel::Sender<(usize, tango_rpc::Result<Vec<u8>>)>,
}

/// A small persistent worker pool for issuing concurrent blocking RPCs.
///
/// Scoped threads would work, but a backpointer walk calls `read_many`
/// once per stride and a thread spawn per call costs more than the round
/// trip it hides. Jobs carry everything they need (the connection handle
/// and pre-encoded request bytes), so the workers are `'static` and live
/// until the pool is dropped.
struct CallPool {
    jobs: Option<channel::Sender<FanoutJob>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl CallPool {
    fn new(size: usize) -> Self {
        let (tx, rx) = channel::unbounded::<FanoutJob>();
        let workers = (0..size)
            .map(|_| {
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name("corfu-fanout".into())
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            let result = job.conn.call(&job.request);
                            let _ = job.reply.send((job.slot, result));
                        }
                    })
                    .expect("spawn corfu-fanout worker")
            })
            .collect();
        Self { jobs: Some(tx), workers }
    }

    /// Issues every request concurrently and returns the raw responses in
    /// input order. The calling thread services the first request itself.
    fn call_all(
        &self,
        calls: Vec<(Arc<dyn ClientConn>, Vec<u8>)>,
    ) -> Vec<tango_rpc::Result<Vec<u8>>> {
        let n = calls.len();
        if n == 0 {
            return Vec::new();
        }
        let jobs = self.jobs.as_ref().expect("pool open while client alive");
        let (reply_tx, reply_rx) = channel::unbounded();
        let mut iter = calls.into_iter();
        let (first_conn, first_request) = iter.next().expect("checked non-empty");
        for (i, (conn, request)) in iter.enumerate() {
            jobs.send(FanoutJob { conn, request, slot: i + 1, reply: reply_tx.clone() })
                .map_err(|_| ())
                .expect("fan-out workers alive");
        }
        drop(reply_tx);
        let mut out: Vec<Option<tango_rpc::Result<Vec<u8>>>> = (0..n).map(|_| None).collect();
        out[0] = Some(first_conn.call(&first_request));
        for _ in 1..n {
            let (slot, result) = reply_rx.recv().expect("every job replies");
            out[slot] = Some(result);
        }
        out.into_iter().map(|r| r.expect("every slot served")).collect()
    }
}

impl Drop for CallPool {
    fn drop(&mut self) {
        // Closing the job channel lets every worker drain and exit.
        self.jobs.take();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Creates connections to nodes named by the projection's address book.
pub trait ConnFactory: Send + Sync {
    /// Opens (or reuses) a connection to `node`.
    fn connect(&self, node: &NodeInfo) -> Arc<dyn ClientConn>;
}

impl<F> ConnFactory for F
where
    F: Fn(&NodeInfo) -> Arc<dyn ClientConn> + Send + Sync,
{
    fn connect(&self, node: &NodeInfo) -> Arc<dyn ClientConn> {
        self(node)
    }
}

/// Tuning knobs for the client.
#[derive(Debug, Clone)]
pub struct ClientOptions {
    /// How long a reader waits on an unwritten offset before patching it
    /// with junk (the paper's default is 100ms).
    pub hole_fill_timeout: Duration,
    /// Initial poll interval while waiting on an unwritten offset. Each
    /// poll that still finds the offset unwritten doubles the interval, up
    /// to [`ClientOptions::hole_poll_max`].
    pub hole_poll_interval: Duration,
    /// Cap on the exponential poll backoff in `wait_read`. Keeps a slow
    /// writer from turning every waiting reader into a busy-poller while
    /// still bounding how stale a reader's view of the offset can get.
    pub hole_poll_max: Duration,
    /// How many times an operation retries across epoch changes before
    /// giving up.
    pub max_epoch_retries: u32,
    /// How many times an append retries lost tokens before giving up.
    pub max_token_retries: u32,
    /// Tokens reserved per sequencer round trip (§5's sequencer batching;
    /// the paper's evaluation uses 4). With a batch of `n`, `token` fetches
    /// `n` consecutive tokens via `NextBatch` and parks the spares in a
    /// client-side pool keyed by stream set, so concurrent `append_streams`
    /// callers amortize sequencer round trips ~`n`×.
    ///
    /// The default is 1 (no batching): unused pooled tokens become holes
    /// that readers must junk-fill, so batching is opt-in for workloads with
    /// a steady append rate — see [`ClientOptions::batched`].
    pub seq_batch: usize,
}

impl Default for ClientOptions {
    fn default() -> Self {
        Self {
            hole_fill_timeout: Duration::from_millis(100),
            hole_poll_interval: Duration::from_millis(1),
            hole_poll_max: Duration::from_millis(16),
            max_epoch_retries: 32,
            max_token_retries: 64,
            seq_batch: 1,
        }
    }
}

impl ClientOptions {
    /// The paper's §5 configuration: sequencer tokens batched 4 at a time.
    pub fn batched() -> Self {
        Self { seq_batch: 4, ..Self::default() }
    }
}

/// A reserved log position plus per-stream backpointers (§5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The reserved global offset.
    pub offset: LogOffset,
    /// For each stream in the request, the previous K offsets of that
    /// stream (most recent first).
    pub backpointers: Vec<Vec<LogOffset>>,
}

/// The value found at a log offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadOutcome {
    /// A completed entry.
    Data(Bytes),
    /// A junk fill (hole patched by some client).
    Junk,
    /// Nothing written yet.
    Unwritten,
    /// Garbage collected.
    Trimmed,
}

/// What happened to an append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppendOutcome {
    /// The entry was written at this offset.
    Written(LogOffset),
}

struct ClientState {
    proj: Projection,
    conns: HashMap<NodeId, Arc<dyn ClientConn>>,
}

/// Client-side stash of batch-reserved tokens, kept *per log* and keyed by
/// the exact stream set they were reserved for (backpointers are
/// stream-specific, so a token reserved for streams `[a, b]` can only stamp
/// an entry joining `[a, b]`). Tokens are only valid at the epoch of the
/// log they were issued in: a reconfigured sequencer rebuilds its tail from
/// *written* entries, so reserved-but-unwritten offsets may be re-issued —
/// a log's pool is cleared when *that log's* epoch changes (sealing log A
/// must not discard log B's perfectly valid tokens) and write-once
/// arbitration covers any stragglers.
#[derive(Default)]
struct TokenPool {
    logs: HashMap<u32, LogTokenPool>,
}

#[derive(Default)]
struct LogTokenPool {
    epoch: Epoch,
    by_streams: HashMap<Vec<StreamId>, std::collections::VecDeque<Token>>,
}

/// A CORFU client handle. Cheap to clone; safe to share across threads.
#[derive(Clone)]
pub struct CorfuClient {
    layout: LayoutClient,
    factory: Arc<dyn ConnFactory>,
    state: Arc<RwLock<ClientState>>,
    token_pool: Arc<parking_lot::Mutex<TokenPool>>,
    fanout: Arc<OnceLock<CallPool>>,
    opts: ClientOptions,
    registry: Registry,
    metrics: ClientMetrics,
    log_metrics: Arc<RwLock<HashMap<u32, ClientLogMetrics>>>,
}

impl CorfuClient {
    /// Creates a client: fetches the projection from `layout` and connects
    /// to nodes via `factory`.
    pub fn new(layout: LayoutClient, factory: Arc<dyn ConnFactory>) -> Result<Self> {
        Self::with_options(layout, factory, ClientOptions::default())
    }

    /// Creates a client with explicit options and a fresh (enabled)
    /// metrics registry.
    pub fn with_options(
        layout: LayoutClient,
        factory: Arc<dyn ConnFactory>,
        opts: ClientOptions,
    ) -> Result<Self> {
        Self::with_options_and_metrics(layout, factory, opts, Registry::new())
    }

    /// Creates a client recording into an existing registry (pass
    /// [`Registry::disabled`] to turn instrumentation off).
    pub fn with_options_and_metrics(
        layout: LayoutClient,
        factory: Arc<dyn ConnFactory>,
        opts: ClientOptions,
        registry: Registry,
    ) -> Result<Self> {
        let proj = layout.get()?;
        let state = ClientState { proj, conns: HashMap::new() };
        let metrics = ClientMetrics::from_registry(&registry);
        Ok(Self {
            layout,
            factory,
            state: Arc::new(RwLock::new(state)),
            token_pool: Arc::new(parking_lot::Mutex::new(TokenPool::default())),
            fanout: Arc::new(OnceLock::new()),
            opts,
            registry,
            metrics,
            log_metrics: Arc::new(RwLock::new(HashMap::new())),
        })
    }

    /// The per-log instrument bundle for `log`, bound lazily on first use
    /// so the shard count never has to be declared up front. Cached: the
    /// registry's registration lock is only taken the first time a log is
    /// seen.
    fn log_metrics(&self, log: u32) -> ClientLogMetrics {
        if let Some(m) = self.log_metrics.read().get(&log) {
            return m.clone();
        }
        let mut map = self.log_metrics.write();
        map.entry(log)
            .or_insert_with(|| ClientLogMetrics::for_log(&self.registry, log as u64))
            .clone()
    }

    /// The metrics registry this client records into. Snapshot it to
    /// observe `corfu.client.*` (and, when the registry is shared with the
    /// servers and transport, the whole deployment).
    pub fn metrics(&self) -> &Registry {
        &self.registry
    }

    /// Replaces the 1-in-16 gate that paces latency sampling *and* root
    /// trace spans. Tests pass `Sampler::one_in(1)` to trace every
    /// operation deterministically.
    pub fn set_sampling(&mut self, sampler: tango_metrics::Sampler) {
        self.metrics.sampler = sampler;
    }

    /// The client's current view of the projection.
    pub fn projection(&self) -> Projection {
        self.state.read().proj.clone()
    }

    /// The epoch the client is operating at.
    pub fn epoch(&self) -> Epoch {
        self.state.read().proj.epoch
    }

    /// Re-fetches the projection from the layout service. Returns the new
    /// epoch.
    pub fn refresh_layout(&self) -> Result<Epoch> {
        let fresh = self.layout.get()?;
        let mut state = self.state.write();
        if fresh.epoch > state.proj.epoch {
            // Addresses may have changed; drop stale connections lazily by
            // keeping only ids still present.
            state.conns.retain(|id, _| fresh.addr_of(*id).is_some());
            state.proj = fresh;
        }
        Ok(state.proj.epoch)
    }

    fn conn(&self, node: NodeId) -> Result<Arc<dyn ClientConn>> {
        {
            let state = self.state.read();
            if let Some(c) = state.conns.get(&node) {
                return Ok(Arc::clone(c));
            }
        }
        let mut state = self.state.write();
        if let Some(c) = state.conns.get(&node) {
            return Ok(Arc::clone(c));
        }
        let info = state
            .proj
            .nodes
            .iter()
            .find(|n| n.id == node)
            .ok_or_else(|| CorfuError::Layout(format!("node {node} not in projection")))?
            .clone();
        let conn = self.factory.connect(&info);
        state.conns.insert(node, Arc::clone(&conn));
        Ok(conn)
    }

    pub(crate) fn storage_call(
        &self,
        node: NodeId,
        req: &StorageRequest,
    ) -> Result<StorageResponse> {
        let conn = self.conn(node)?;
        let resp = conn.call(&encode_to_vec(req))?;
        Ok(decode_from_slice(&resp)?)
    }

    /// Sends a raw request to log `log`'s sequencer (used by
    /// reconfiguration tooling).
    pub(crate) fn sequencer_call_pub(
        &self,
        log: u32,
        req: &SequencerRequest,
    ) -> Result<SequencerResponse> {
        self.sequencer_call(log, req)
    }

    fn sequencer_call(&self, log: u32, req: &SequencerRequest) -> Result<SequencerResponse> {
        let seq = self.state.read().proj.sequencer_of(log);
        let conn = self.conn(seq)?;
        let resp = conn.call(&encode_to_vec(req))?;
        Ok(decode_from_slice(&resp)?)
    }

    /// The log hosting `streams[0]` (log 0 for an empty set). Debug-asserts
    /// the set does not span logs — multi-log appends split per log first.
    fn log_of_streams(&self, proj: &Projection, streams: &[StreamId]) -> u32 {
        let log = streams.first().map(|&s| proj.log_of_stream(s)).unwrap_or(0);
        debug_assert!(
            streams.iter().all(|&s| proj.log_of_stream(s) == log),
            "stream set spans logs; split per log first"
        );
        log
    }

    /// Groups `streams` by their hosting log, ascending by log id, with
    /// each group preserving the input order.
    fn group_by_log(&self, proj: &Projection, streams: &[StreamId]) -> Vec<(u32, Vec<StreamId>)> {
        let mut groups: Vec<(u32, Vec<StreamId>)> = Vec::new();
        for &s in streams {
            let log = proj.log_of_stream(s);
            match groups.iter_mut().find(|(l, _)| *l == log) {
                Some((_, g)) => g.push(s),
                None => groups.push((log, vec![s])),
            }
        }
        groups.sort_by_key(|&(l, _)| l);
        groups
    }

    /// Makes one sampling decision for a client operation and spends it on
    /// both observations: the latency timer and a root trace span. Misses
    /// (and disabled metrics) get inert handles that cost nothing.
    fn sampled_root(&self, kind: SpanKind, latency: &tango_metrics::Histogram) -> (Timer, Span) {
        if self.metrics.sampler.hit() {
            (latency.start(), self.metrics.tracer.root_forced(kind))
        } else {
            (Timer::inert(), Span::inert())
        }
    }

    /// Runs `op` with automatic projection refresh on `ErrSealed`.
    fn with_epoch_retry<T>(&self, what: &'static str, op: impl FnMut() -> Result<T>) -> Result<T> {
        self.with_retry(what, false, op)
    }

    /// Like [`CorfuClient::with_epoch_retry`], but also refreshes and
    /// retries on transport failures. Used for sequencer operations: a dead
    /// sequencer is expected to be replaced by reconfiguration, so clients
    /// re-fetch the projection instead of giving up (§5 reports replacing a
    /// failed sequencer within 10ms).
    fn with_sequencer_retry<T>(
        &self,
        what: &'static str,
        op: impl FnMut() -> Result<T>,
    ) -> Result<T> {
        self.with_retry(what, true, op)
    }

    fn with_retry<T>(
        &self,
        what: &'static str,
        retry_rpc: bool,
        mut op: impl FnMut() -> Result<T>,
    ) -> Result<T> {
        let mut last_rpc_error = None;
        for attempt in 0..self.opts.max_epoch_retries {
            match op() {
                Err(CorfuError::Sealed { .. }) => {
                    // Reconfiguration in progress: pick up the new
                    // projection; back off briefly if it has not landed yet.
                    self.metrics.seal_retries.inc();
                    let before = self.epoch();
                    let after = self.refresh_layout()?;
                    if after == before && attempt > 0 {
                        std::thread::sleep(Duration::from_millis(1 << attempt.min(6)));
                    }
                }
                Err(CorfuError::Rpc(e)) if retry_rpc => {
                    last_rpc_error = Some(CorfuError::Rpc(e));
                    let before = self.epoch();
                    let after = self.refresh_layout()?;
                    if after == before && attempt > 0 {
                        std::thread::sleep(Duration::from_millis(1 << attempt.min(6)));
                    }
                    // A new projection may name new sequencers; drop the
                    // cached connections so the next attempt reconnects.
                    let seqs: Vec<NodeId> = {
                        let state = self.state.read();
                        (0..state.proj.num_logs()).map(|l| state.proj.sequencer_of(l)).collect()
                    };
                    let mut state = self.state.write();
                    for seq in seqs {
                        state.conns.remove(&seq);
                    }
                }
                other => return other,
            }
        }
        Err(last_rpc_error.unwrap_or(CorfuError::RetriesExhausted { what }))
    }

    /// Reserves the next log offset; `streams` become members of the entry
    /// and their backpointers are returned. All streams must live in the
    /// same log (the offset returned is that log's next composite offset);
    /// an empty stream set targets log 0.
    ///
    /// With [`ClientOptions::seq_batch`] > 1 the client reserves
    /// `seq_batch` consecutive tokens per sequencer round trip and serves
    /// subsequent requests for the same stream set from its pool.
    pub fn token(&self, streams: &[StreamId]) -> Result<Token> {
        let log = self.log_of_streams(&self.projection(), streams);
        self.token_in_log(log, streams)
    }

    /// [`CorfuClient::token`] targeting an explicit log.
    fn token_in_log(&self, log: u32, streams: &[StreamId]) -> Result<Token> {
        if self.opts.seq_batch > 1 {
            if let Some(token) = self.pooled_token(log, streams) {
                self.metrics.token_pool_hits.inc();
                self.metrics.tokens.inc();
                return Ok(token);
            }
            return self.token_batch(log, streams);
        }
        self.with_sequencer_retry("token", || {
            let epoch = self.projection().epoch_of_log(log);
            match self
                .sequencer_call(log, &SequencerRequest::Next { epoch, streams: streams.to_vec() })?
            {
                SequencerResponse::Token { offset, backpointers } => {
                    self.metrics.tokens.inc();
                    Ok(Token { offset: compose(log, offset), backpointers })
                }
                SequencerResponse::ErrSealed { epoch } => {
                    Err(CorfuError::Sealed { server_epoch: epoch })
                }
                other => Err(CorfuError::Codec(format!("unexpected token response {other:?}"))),
            }
        })
    }

    /// Pops a pooled token of log `log` for exactly this stream set,
    /// discarding that log's pool if the *log's* epoch moved since the
    /// tokens were reserved. Other logs' pools are untouched.
    fn pooled_token(&self, log: u32, streams: &[StreamId]) -> Option<Token> {
        let epoch = self.projection().epoch_of_log(log);
        let mut pool = self.token_pool.lock();
        let entry = pool.logs.entry(log).or_default();
        if entry.epoch != epoch {
            entry.by_streams.clear();
            entry.epoch = epoch;
            return None;
        }
        entry.by_streams.get_mut(streams)?.pop_front()
    }

    /// Reserves `seq_batch` consecutive tokens in one sequencer round trip
    /// against log `log`, returns the first and pools the rest.
    fn token_batch(&self, log: u32, streams: &[StreamId]) -> Result<Token> {
        let count = self.opts.seq_batch as u32;
        self.with_sequencer_retry("token", || {
            let epoch = self.projection().epoch_of_log(log);
            let req = SequencerRequest::NextBatch { epoch, streams: streams.to_vec(), count };
            match self.sequencer_call(log, &req)? {
                SequencerResponse::TokenBatch { start, tokens } => {
                    self.metrics.token_batches.inc();
                    let mut tokens = tokens.into_iter().enumerate().map(|(i, backpointers)| {
                        Token { offset: compose(log, start + i as u64), backpointers }
                    });
                    let first = tokens
                        .next()
                        .ok_or_else(|| CorfuError::Codec("empty token batch".into()))?;
                    let spares: Vec<Token> = tokens.collect();
                    if !spares.is_empty() {
                        let mut pool = self.token_pool.lock();
                        let entry = pool.logs.entry(log).or_default();
                        if entry.epoch < epoch {
                            entry.by_streams.clear();
                            entry.epoch = epoch;
                        }
                        if entry.epoch == epoch {
                            entry.by_streams.entry(streams.to_vec()).or_default().extend(spares);
                        }
                        // entry.epoch > epoch: a refresh raced us; the spares
                        // are from a sealed epoch, so drop them.
                    }
                    self.metrics.tokens.inc();
                    Ok(first)
                }
                SequencerResponse::ErrSealed { epoch } => {
                    Err(CorfuError::Sealed { server_epoch: epoch })
                }
                other => Err(CorfuError::Codec(format!("unexpected batch response {other:?}"))),
            }
        })
    }

    /// Queries the log tail and last-K offsets for `streams` without
    /// reserving anything — the fast check (§2.2) and the stream-sync
    /// primitive (§5). With a sharded projection the query fans out to
    /// every log hosting one of `streams` (one round trip per log) and the
    /// reported tail is the *highest composite tail* across them; because
    /// any offset of a lower log orders below every offset of a higher
    /// one, that single value upper-bounds every offset the backpointers
    /// can name.
    pub fn tail_info(&self, streams: &[StreamId]) -> Result<(LogOffset, Vec<Vec<LogOffset>>)> {
        let proj = self.projection();
        let groups = self.group_by_log(&proj, streams);
        if groups.len() <= 1 {
            let log = groups.first().map(|g| g.0).unwrap_or(0);
            let (tail, backs) = self.tail_info_log(log, streams)?;
            return Ok((compose(log, tail), backs));
        }
        let mut tail = 0;
        let mut by_stream: HashMap<StreamId, Vec<LogOffset>> = HashMap::new();
        for (log, group) in &groups {
            let (log_tail, backs) = self.tail_info_log(*log, group)?;
            tail = tail.max(compose(*log, log_tail));
            for (&s, b) in group.iter().zip(backs) {
                by_stream.insert(s, b);
            }
        }
        let backpointers =
            streams.iter().map(|s| by_stream.remove(s).unwrap_or_default()).collect();
        Ok((tail, backpointers))
    }

    /// One log's tail (raw) + backpointers for a stream subset of that log.
    fn tail_info_log(
        &self,
        log: u32,
        streams: &[StreamId],
    ) -> Result<(LogOffset, Vec<Vec<LogOffset>>)> {
        self.with_sequencer_retry("tail_info", || {
            let epoch = self.projection().epoch_of_log(log);
            match self.sequencer_call(
                log,
                &SequencerRequest::Query { epoch, streams: streams.to_vec() },
            )? {
                SequencerResponse::TailInfo { tail, backpointers } => {
                    self.metrics.tail_queries.inc();
                    Ok((tail, backpointers))
                }
                SequencerResponse::ErrSealed { epoch } => {
                    Err(CorfuError::Sealed { server_epoch: epoch })
                }
                other => Err(CorfuError::Codec(format!("unexpected query response {other:?}"))),
            }
        })
    }

    /// The fast tail check: one round trip to log 0's sequencer (plus one
    /// per additional log in a sharded deployment). Returns the highest
    /// composite tail.
    pub fn check_tail_fast(&self) -> Result<LogOffset> {
        let nlogs = self.projection().num_logs();
        let mut tail = 0;
        for log in 0..nlogs {
            tail = tail.max(compose(log, self.tail_info_log(log, &[])?.0));
        }
        Ok(tail)
    }

    /// The raw tail of one log, from its sequencer.
    pub fn log_tail_fast(&self, log: u32) -> Result<LogOffset> {
        Ok(self.tail_info_log(log, &[])?.0)
    }

    /// The slow tail check: query every storage node's local tail and invert
    /// the mapping (used when the sequencer is unavailable). Returns the
    /// highest composite tail across logs.
    pub fn check_tail_slow(&self) -> Result<LogOffset> {
        self.with_epoch_retry("check_tail_slow", || {
            let proj = self.projection();
            let mut tail = 0;
            for log in 0..proj.num_logs() {
                let layout = proj.log(log);
                let epoch = layout.epoch;
                let mut local_tails = vec![0u64; layout.replica_sets.len()];
                for (set_idx, set) in layout.replica_sets.iter().enumerate() {
                    for &node in set {
                        match self.storage_call(node, &StorageRequest::LocalTail { epoch })? {
                            StorageResponse::Tail(t) => {
                                local_tails[set_idx] = local_tails[set_idx].max(t)
                            }
                            StorageResponse::ErrSealed { epoch } => {
                                return Err(CorfuError::Sealed { server_epoch: epoch })
                            }
                            other => {
                                return Err(CorfuError::Codec(format!(
                                    "unexpected local-tail response {other:?}"
                                )))
                            }
                        }
                    }
                }
                tail = tail.max(compose(log, layout.tail_from_local(&local_tails)));
            }
            Ok(tail)
        })
    }

    /// Writes pre-encoded entry bytes at a reserved offset via chain
    /// replication. Fails with [`CorfuError::TokenLost`] if another client
    /// consumed the slot.
    pub fn write_at(&self, offset: LogOffset, body: &[u8]) -> Result<()> {
        self.with_epoch_retry("write_at", || {
            let proj = self.projection();
            let epoch = proj.epoch_of_log(log_of_offset(offset));
            let (_, local) = proj.map(offset);
            let chain = proj.chain_for(offset).to_vec();
            for (pos, node) in chain.iter().enumerate() {
                let req = StorageRequest::Write {
                    epoch,
                    addr: local,
                    kind: WriteKind::Data,
                    payload: Bytes::copy_from_slice(body),
                };
                let hop = self.metrics.chain_hop_latency_ns.start_sampled(&self.metrics.sampler);
                let resp = self.storage_call(*node, &req);
                match resp.is_ok() {
                    true => hop.stop(),
                    false => hop.discard(),
                }
                match resp? {
                    StorageResponse::Ok => {}
                    StorageResponse::ErrAlreadyWritten if pos == 0 => {
                        // The head arbitrates: someone else (a hole filler)
                        // owns this offset now.
                        return Err(CorfuError::TokenLost { offset });
                    }
                    StorageResponse::ErrAlreadyWritten => {
                        // A repairing reader raced us past the head; the
                        // value is ours either way (head-first ordering).
                    }
                    StorageResponse::ErrSealed { epoch } => {
                        return Err(CorfuError::Sealed { server_epoch: epoch })
                    }
                    StorageResponse::ErrTrimmed => return Err(CorfuError::Trimmed { offset }),
                    StorageResponse::ErrTooLarge { max } => {
                        return Err(CorfuError::EntryTooLarge {
                            len: body.len(),
                            max: max as usize,
                        })
                    }
                    other => {
                        return Err(CorfuError::Storage(format!(
                            "write at {offset} failed: {other:?}"
                        )))
                    }
                }
            }
            Ok(())
        })
    }

    /// Appends a raw payload (no stream membership) and returns its offset.
    pub fn append(&self, payload: Bytes) -> Result<LogOffset> {
        self.append_streams(&[], payload).map(|(off, _)| off)
    }

    /// Appends a payload to `streams` (the `multiappend` of §4): acquires a
    /// token, builds the entry envelope with backpointer headers, and chain-
    /// writes it. Retries with a fresh token if the slot was stolen by a
    /// hole fill.
    ///
    /// When `streams` spans more than one log of a sharded projection the
    /// append becomes a *cross-log multiappend*: one entry per participating
    /// log, all carrying the same [`CrossLogLink`], with the lowest log's
    /// entry written last as the atomic commit anchor (see
    /// [`CorfuClient::append_cross_log`]). The returned offset is the
    /// anchor's.
    pub fn append_streams(
        &self,
        streams: &[StreamId],
        payload: Bytes,
    ) -> Result<(LogOffset, EntryEnvelope)> {
        // One sampling decision covers both the latency timer and the
        // trace: sampled appends get a root span whose context rides in
        // every RPC the append makes (token grant, chain writes), so the
        // servers' child spans land in the same trace.
        let (timer, _span) =
            self.sampled_root(SpanKind::ClientAppend, &self.metrics.append_latency_ns);
        let groups = self.group_by_log(&self.projection(), streams);
        let result = if groups.len() <= 1 {
            let log = groups.first().map(|g| g.0).unwrap_or(0);
            self.append_in_log(log, streams, &payload, None)
        } else {
            self.append_cross_log(&groups, &payload)
        };
        match result.is_ok() {
            true => timer.stop(),
            false => timer.discard(),
        }
        result
    }

    /// Appends to `streams` forcing the entry into log `log`, bypassing the
    /// shard map. Reconfiguration uses this to pin sequencer-state
    /// checkpoints into the log whose recovery scan must find them.
    pub(crate) fn append_streams_in_log(
        &self,
        log: u32,
        streams: &[StreamId],
        payload: Bytes,
    ) -> Result<(LogOffset, EntryEnvelope)> {
        self.append_in_log(log, streams, &payload, None)
    }

    /// One token-acquire/chain-write attempt loop confined to a single log.
    /// `link` is threaded into the envelope for cross-log parts. Returns
    /// [`CorfuError::TokenLost`] to the *caller* only via retry exhaustion —
    /// individual lost tokens retry here.
    fn append_in_log(
        &self,
        log: u32,
        streams: &[StreamId],
        payload: &Bytes,
        link: Option<CrossLogLink>,
    ) -> Result<(LogOffset, EntryEnvelope)> {
        for _ in 0..self.opts.max_token_retries {
            let token = self.token_in_log(log, streams)?;
            let headers = streams
                .iter()
                .zip(token.backpointers.iter())
                .map(|(&stream, backs)| StreamHeader { stream, backpointers: backs.clone() })
                .collect();
            let envelope = EntryEnvelope { headers, payload: payload.clone(), link: link.clone() };
            let body = envelope.encode(token.offset)?;
            match self.write_at(token.offset, &body) {
                Ok(()) => {
                    self.log_metrics(log).appends.inc();
                    return Ok((token.offset, envelope));
                }
                Err(CorfuError::TokenLost { .. }) => {
                    self.metrics.tokens_lost.inc();
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
        Err(CorfuError::RetriesExhausted { what: "append" })
    }

    /// The cross-log multiappend (§4's OCC machinery applied across logs).
    ///
    /// Protocol — the *home anchor*: with stream groups sorted ascending by
    /// log id, (1) reserve one token in every participating log; (2) build
    /// a [`CrossLogLink`] naming every reserved offset, with `home` = the
    /// lowest log's offset; (3) write the non-home bodies first (each
    /// carries the full payload, its own log's stream headers, and the
    /// link); (4) write the home entry *last*. The home write is the atomic
    /// decision: write-once storage accepts it exactly once, so the
    /// multiappend committed iff the home slot holds a data entry with this
    /// link. If any write loses its token (hole-filled by a racing reader),
    /// the whole attempt restarts with fresh tokens everywhere — the
    /// stranded bodies of the failed attempt resolve as aborted because
    /// their home slot can never acquire the matching link.
    fn append_cross_log(
        &self,
        groups: &[(u32, Vec<StreamId>)],
        payload: &Bytes,
    ) -> Result<(LogOffset, EntryEnvelope)> {
        'attempt: for _ in 0..self.opts.max_token_retries {
            // (1) One token per participating log, ascending log order.
            let mut tokens = Vec::with_capacity(groups.len());
            for (log, streams) in groups {
                tokens.push(self.token_in_log(*log, streams)?);
            }
            // (2) The link every part carries.
            let mut parts: Vec<LogOffset> = tokens.iter().map(|t| t.offset).collect();
            parts.sort_unstable();
            let home = parts[0];
            let link = CrossLogLink { home, parts };
            // (3) Non-home bodies first, (4) home anchor last. Each part
            // gets its own child span under the append's root trace, so a
            // sampled multiappend shows up as one trace whose children
            // cover every participating log.
            let home_log = log_of_offset(home);
            let mut anchor = None;
            for pass in [false, true] {
                for ((log, streams), token) in groups.iter().zip(&tokens) {
                    if (token.offset == home) != pass {
                        continue;
                    }
                    let part_span = self.metrics.tracer.child(SpanKind::ClientAppend);
                    let headers = streams
                        .iter()
                        .zip(token.backpointers.iter())
                        .map(|(&stream, backs)| StreamHeader {
                            stream,
                            backpointers: backs.clone(),
                        })
                        .collect();
                    let envelope = EntryEnvelope {
                        headers,
                        payload: payload.clone(),
                        link: Some(link.clone()),
                    };
                    let body = envelope.encode(token.offset)?;
                    match self.write_at(token.offset, &body) {
                        Ok(()) => {
                            drop(part_span);
                            self.log_metrics(*log).appends.inc();
                            if pass {
                                anchor = Some(envelope);
                            }
                        }
                        Err(CorfuError::TokenLost { .. }) => {
                            // This attempt can no longer commit: its home
                            // slot will hold junk or a foreign entry, so any
                            // bodies already written resolve aborted. Start
                            // over with fresh tokens in every log.
                            self.metrics.tokens_lost.inc();
                            self.metrics.events.emit(
                                tango_metrics::EventKind::CrossLogDecision,
                                self.projection().epoch_of_log(home_log),
                                home_log as u64,
                                0,
                            );
                            continue 'attempt;
                        }
                        Err(e) => return Err(e),
                    }
                }
            }
            // The home write landed: the multiappend is committed.
            self.metrics.events.emit(
                tango_metrics::EventKind::CrossLogDecision,
                self.projection().epoch_of_log(home_log),
                home_log as u64,
                1,
            );
            return Ok((home, anchor.expect("home group written on pass 2")));
        }
        Err(CorfuError::RetriesExhausted { what: "append" })
    }

    /// Reads the value at `offset` from the chain tail, repairing
    /// half-completed chain writes by propagating the head's value forward.
    pub fn read(&self, offset: LogOffset) -> Result<ReadOutcome> {
        let (timer, _span) = self.sampled_root(SpanKind::ClientRead, &self.metrics.read_latency_ns);
        let result = self.with_epoch_retry("read", || {
            let proj = self.projection();
            self.read_with(&proj, offset)
        });
        match result.is_ok() {
            true => timer.stop(),
            false => timer.discard(),
        }
        result
    }

    /// Reads `offset` using an explicit projection (and thus epoch) instead
    /// of the client's installed one. Reconfiguration uses this to scan the
    /// log at the new epoch before the projection is published.
    pub(crate) fn read_with(&self, proj: &Projection, offset: LogOffset) -> Result<ReadOutcome> {
        let epoch = proj.epoch_of_log(log_of_offset(offset));
        let (_, local) = proj.map(offset);
        let chain = proj.chain_for(offset).to_vec();
        let tail = *chain.last().expect("non-empty chain");
        match self.storage_call(tail, &StorageRequest::Read { epoch, addr: local })? {
            StorageResponse::Data(b) => Ok(ReadOutcome::Data(b)),
            StorageResponse::Junk => Ok(ReadOutcome::Junk),
            StorageResponse::Trimmed => Ok(ReadOutcome::Trimmed),
            StorageResponse::Unwritten => {
                if chain.len() == 1 {
                    Ok(ReadOutcome::Unwritten)
                } else {
                    self.repair_chain(proj, offset)
                }
            }
            StorageResponse::ErrSealed { epoch } => Err(CorfuError::Sealed { server_epoch: epoch }),
            other => Err(CorfuError::Storage(format!("read at {offset} failed: {other:?}"))),
        }
    }

    /// Reads and decodes the entry envelope at `offset`.
    pub fn read_entry(&self, offset: LogOffset) -> Result<EntryEnvelope> {
        match self.read(offset)? {
            ReadOutcome::Data(bytes) => EntryEnvelope::decode(&bytes, offset),
            ReadOutcome::Junk => Err(CorfuError::Storage(format!("offset {offset} holds junk"))),
            ReadOutcome::Unwritten => Err(CorfuError::Unwritten { offset }),
            ReadOutcome::Trimmed => Err(CorfuError::Trimmed { offset }),
        }
    }

    /// Completes a chain whose tail is missing the value: reads the head
    /// and pushes its value (data or junk) down the chain. Returns the
    /// authoritative value, or `Unwritten` if the head has nothing.
    fn repair_chain(&self, proj: &Projection, offset: LogOffset) -> Result<ReadOutcome> {
        let epoch = proj.epoch_of_log(log_of_offset(offset));
        let (_, local) = proj.map(offset);
        let chain = proj.chain_for(offset);
        let head = chain[0];
        let (kind, value) =
            match self.storage_call(head, &StorageRequest::Read { epoch, addr: local })? {
                StorageResponse::Data(b) => (WriteKind::Data, b),
                StorageResponse::Junk => (WriteKind::Junk, Bytes::new()),
                StorageResponse::Unwritten => return Ok(ReadOutcome::Unwritten),
                StorageResponse::Trimmed => return Ok(ReadOutcome::Trimmed),
                StorageResponse::ErrSealed { epoch } => {
                    return Err(CorfuError::Sealed { server_epoch: epoch })
                }
                other => {
                    return Err(CorfuError::Storage(format!(
                        "repair read at {offset} failed: {other:?}"
                    )))
                }
            };
        for &node in &chain[1..] {
            let req = StorageRequest::Write { epoch, addr: local, kind, payload: value.clone() };
            match self.storage_call(node, &req)? {
                StorageResponse::Ok | StorageResponse::ErrAlreadyWritten => {}
                StorageResponse::ErrSealed { epoch } => {
                    return Err(CorfuError::Sealed { server_epoch: epoch })
                }
                other => {
                    return Err(CorfuError::Storage(format!(
                        "repair write at {offset} failed: {other:?}"
                    )))
                }
            }
        }
        Ok(match kind {
            WriteKind::Data => ReadOutcome::Data(value),
            WriteKind::Junk => ReadOutcome::Junk,
        })
    }

    /// Patches the hole at `offset` with junk (§3.2). If a writer got there
    /// first, completes and returns the existing value instead.
    pub fn fill(&self, offset: LogOffset) -> Result<ReadOutcome> {
        let log = log_of_offset(offset);
        let log_metrics = self.log_metrics(log);
        // The backlog gauge brackets the whole chase, retries included —
        // the health plane reads a sustained non-zero value as readers
        // stuck behind slow or dead writers.
        self.metrics.hole_backlog.add(1);
        let result = self.with_epoch_retry("fill", || {
            let proj = self.projection();
            let epoch = proj.epoch_of_log(log);
            let (_, local) = proj.map(offset);
            let chain = proj.chain_for(offset).to_vec();
            let head = chain[0];
            let req = StorageRequest::Write {
                epoch,
                addr: local,
                kind: WriteKind::Junk,
                payload: Bytes::new(),
            };
            match self.storage_call(head, &req)? {
                StorageResponse::Ok => {
                    log_metrics.hole_fills.inc();
                    self.metrics.junk_forced.inc();
                    self.metrics.events.emit(
                        tango_metrics::EventKind::JunkForced,
                        epoch,
                        log as u64,
                        local,
                    );
                    for &node in &chain[1..] {
                        let req = StorageRequest::Write {
                            epoch,
                            addr: local,
                            kind: WriteKind::Junk,
                            payload: Bytes::new(),
                        };
                        match self.storage_call(node, &req)? {
                            StorageResponse::Ok | StorageResponse::ErrAlreadyWritten => {}
                            StorageResponse::ErrSealed { epoch } => {
                                return Err(CorfuError::Sealed { server_epoch: epoch })
                            }
                            other => {
                                return Err(CorfuError::Storage(format!(
                                    "fill at {offset} failed: {other:?}"
                                )))
                            }
                        }
                    }
                    Ok(ReadOutcome::Junk)
                }
                StorageResponse::ErrAlreadyWritten => {
                    // A writer won; complete its chain and return the value.
                    self.metrics.events.emit(
                        tango_metrics::EventKind::HoleFilled,
                        epoch,
                        log as u64,
                        local,
                    );
                    if chain.len() == 1 {
                        self.read(offset)
                    } else {
                        self.repair_chain(&proj, offset)
                    }
                }
                StorageResponse::ErrTrimmed => Ok(ReadOutcome::Trimmed),
                StorageResponse::ErrSealed { epoch } => {
                    Err(CorfuError::Sealed { server_epoch: epoch })
                }
                other => Err(CorfuError::Storage(format!("fill at {offset} failed: {other:?}"))),
            }
        });
        self.metrics.hole_backlog.add(-1);
        result
    }

    /// Reads `offset`, waiting for an in-flight writer and finally patching
    /// the hole with junk after `hole_fill_timeout` (§3.2). Never returns
    /// `Unwritten`.
    ///
    /// Each poll is a full chain-read RPC, so polling backs off
    /// exponentially from `hole_poll_interval` up to `hole_poll_max`
    /// instead of hammering the tail at a fixed interval.
    pub fn wait_read(&self, offset: LogOffset) -> Result<ReadOutcome> {
        let deadline = Instant::now() + self.opts.hole_fill_timeout;
        let mut backoff = self.opts.hole_poll_interval;
        loop {
            match self.read(offset)? {
                ReadOutcome::Unwritten => {
                    let now = Instant::now();
                    if now >= deadline {
                        return self.fill(offset);
                    }
                    self.metrics.hole_polls.inc();
                    std::thread::sleep(backoff.min(deadline - now));
                    backoff = (backoff * 2).min(self.opts.hole_poll_max);
                }
                done => return Ok(done),
            }
        }
    }

    /// Reads a batch of offsets in bulk: offsets are grouped by replica
    /// set, each group goes out as (at most `MAX_READ_BATCH`-sized)
    /// `ReadBatch` requests to the chain tails — fanned out concurrently
    /// over the pipelined transport when more than one batch is in play —
    /// and the per-offset outcomes are stitched back in input order.
    ///
    /// Like [`CorfuClient::read`], a tail-side `Unwritten` on a replicated
    /// chain is resolved through chain repair before being reported, so an
    /// `Unwritten` result really means no writer has reached the head.
    pub fn read_many(&self, offsets: &[LogOffset]) -> Result<Vec<ReadOutcome>> {
        if offsets.is_empty() {
            return Ok(Vec::new());
        }
        let (timer, _span) = self.sampled_root(SpanKind::ClientRead, &self.metrics.read_latency_ns);
        let result = self.with_epoch_retry("read_many", || {
            let proj = self.projection();
            self.read_many_with(&proj, offsets)
        });
        match result.is_ok() {
            true => timer.stop(),
            false => timer.discard(),
        }
        result
    }

    fn read_many_with(&self, proj: &Projection, offsets: &[LogOffset]) -> Result<Vec<ReadOutcome>> {
        // One `ReadBatch` round trip: target node, its epoch, and the
        // (input position, local address) pairs it answers for.
        type ReadChunk<'a> = (NodeId, Epoch, &'a [(usize, u64)]);
        // Group offsets by (global) replica set, remembering where each one
        // sits in the input so outcomes can be stitched back in order.
        let mut groups: Vec<Vec<(usize, u64)>> = vec![Vec::new(); proj.num_sets() as usize];
        for (idx, &off) in offsets.iter().enumerate() {
            let (set, local) = proj.map(off);
            groups[set].push((idx, local));
        }
        // Each batch is stamped with the epoch of the log owning its set.
        let mut chunks: Vec<ReadChunk> = Vec::new();
        for (set, group) in groups.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            // Reads go to the chain tail, as in the single-offset path.
            let tail = *proj.replica_set(set).last().expect("non-empty chain");
            let epoch = proj.epoch_of_set(set);
            for entries in group.chunks(crate::storage::MAX_READ_BATCH) {
                chunks.push((tail, epoch, entries));
            }
        }
        let parse = |expected: usize, resp: StorageResponse| -> Result<Vec<PageOutcome>> {
            match resp {
                StorageResponse::BatchOutcomes(outcomes) if outcomes.len() == expected => {
                    Ok(outcomes)
                }
                StorageResponse::BatchOutcomes(outcomes) => Err(CorfuError::Codec(format!(
                    "batch answered {} of {expected} addrs",
                    outcomes.len()
                ))),
                StorageResponse::ErrSealed { epoch } => {
                    Err(CorfuError::Sealed { server_epoch: epoch })
                }
                other => Err(CorfuError::Storage(format!("batch read failed: {other:?}"))),
            }
        };
        let results: Vec<Result<Vec<PageOutcome>>> = if chunks.len() == 1 {
            let (tail, epoch, entries) = chunks[0];
            self.metrics.read_batches.inc();
            let addrs = entries.iter().map(|&(_, local)| local).collect();
            let resp = self.storage_call(tail, &StorageRequest::ReadBatch { epoch, addrs })?;
            vec![parse(entries.len(), resp)]
        } else {
            // Connections are resolved and requests encoded up front so the
            // pool jobs are self-contained; responses decode back on this
            // thread. Concurrent blocking calls on the multiplexed
            // transport pipeline, so one straggler node no longer
            // serializes behind the others.
            let mut calls = Vec::with_capacity(chunks.len());
            for &(tail, epoch, entries) in &chunks {
                self.metrics.read_batches.inc();
                let addrs = entries.iter().map(|&(_, local)| local).collect();
                let request = encode_to_vec(&StorageRequest::ReadBatch { epoch, addrs });
                calls.push((self.conn(tail)?, request));
            }
            let pool = self.fanout.get_or_init(|| CallPool::new(FANOUT_WORKERS));
            pool.call_all(calls)
                .into_iter()
                .zip(chunks.iter())
                .map(|(raw, &(_, _, entries))| {
                    let resp: StorageResponse = decode_from_slice(&raw?)?;
                    parse(entries.len(), resp)
                })
                .collect()
        };
        let mut out: Vec<Option<ReadOutcome>> = vec![None; offsets.len()];
        for (&(_, _, entries), result) in chunks.iter().zip(results) {
            for (&(idx, _), outcome) in entries.iter().zip(result?) {
                out[idx] = Some(match outcome {
                    PageOutcome::Data(b) => ReadOutcome::Data(b),
                    PageOutcome::Junk => ReadOutcome::Junk,
                    PageOutcome::Unwritten => ReadOutcome::Unwritten,
                    PageOutcome::Trimmed => ReadOutcome::Trimmed,
                });
            }
        }
        let mut stitched: Vec<ReadOutcome> =
            out.into_iter().map(|o| o.expect("every offset answered")).collect();
        // A tail that answered Unwritten on a replicated chain may be
        // lagging a half-finished chain write; resolve those few stragglers
        // through the repair path before reporting.
        for (idx, &off) in offsets.iter().enumerate() {
            if stitched[idx] == ReadOutcome::Unwritten && proj.chain_for(off).len() > 1 {
                stitched[idx] = self.repair_chain(proj, off)?;
            }
        }
        Ok(stitched)
    }

    /// [`CorfuClient::read_many`] with [`CorfuClient::wait_read`] semantics:
    /// offsets that come back `Unwritten` from the bulk read are re-polled
    /// individually (and eventually junk-filled), so the result never
    /// contains `Unwritten`. The wait path is per-offset because unwritten
    /// stragglers are the rare case on a catch-up read of known entries.
    pub fn wait_read_many(&self, offsets: &[LogOffset]) -> Result<Vec<ReadOutcome>> {
        let mut out = self.read_many(offsets)?;
        for (idx, outcome) in out.iter_mut().enumerate() {
            if *outcome == ReadOutcome::Unwritten {
                *outcome = self.wait_read(offsets[idx])?;
            }
        }
        Ok(out)
    }

    /// Trims a single offset, marking it garbage-collectable.
    ///
    /// Random (per-address) trims are the expensive kind for flash — they
    /// punch holes that only a later sequential prefix trim reclaims — so
    /// they are counted separately (`corfu.client.random_trims`) from the
    /// [`CorfuClient::trim_prefix`] path.
    pub fn trim(&self, offset: LogOffset) -> Result<()> {
        self.log_metrics(log_of_offset(offset)).random_trims.inc();
        self.with_epoch_retry("trim", || {
            let proj = self.projection();
            let epoch = proj.epoch_of_log(log_of_offset(offset));
            let (_, local) = proj.map(offset);
            for &node in proj.chain_for(offset) {
                match self.storage_call(node, &StorageRequest::Trim { epoch, addr: local })? {
                    StorageResponse::Ok => {}
                    StorageResponse::ErrSealed { epoch } => {
                        return Err(CorfuError::Sealed { server_epoch: epoch })
                    }
                    other => {
                        return Err(CorfuError::Storage(format!(
                            "trim at {offset} failed: {other:?}"
                        )))
                    }
                }
            }
            Ok(())
        })
    }

    /// Trims every offset below `horizon` *within the horizon's own log*
    /// (sequential trim across that log's replica sets). With a composite
    /// horizon in log L only log L is trimmed; other logs keep their own
    /// horizons — callers garbage-collect per log.
    pub fn trim_prefix(&self, horizon: LogOffset) -> Result<()> {
        let log = log_of_offset(horizon);
        self.log_metrics(log).prefix_trim.set(raw_of_offset(horizon) as i64);
        self.with_epoch_retry("trim_prefix", || {
            let proj = self.projection();
            let log = log_of_offset(horizon);
            let layout = proj.log(log);
            let epoch = layout.epoch;
            for (set_idx, set) in layout.replica_sets.iter().enumerate() {
                let local_horizon = proj.local_trim_horizon_in_log(log, set_idx, horizon);
                for &node in set {
                    let req = StorageRequest::TrimPrefix { epoch, horizon: local_horizon };
                    match self.storage_call(node, &req)? {
                        StorageResponse::Ok => {}
                        StorageResponse::ErrSealed { epoch } => {
                            return Err(CorfuError::Sealed { server_epoch: epoch })
                        }
                        other => {
                            return Err(CorfuError::Storage(format!(
                                "trim_prefix failed: {other:?}"
                            )))
                        }
                    }
                }
            }
            Ok(())
        })
    }

    /// The layout client, for reconfiguration tooling.
    pub fn layout(&self) -> &LayoutClient {
        &self.layout
    }

    /// The connection factory (used by reconfiguration to reach nodes that
    /// are not yet part of the installed projection).
    pub(crate) fn factory(&self) -> &Arc<dyn ConnFactory> {
        &self.factory
    }

    /// The client options in effect.
    pub fn options(&self) -> &ClientOptions {
        &self.opts
    }
}
