//! Wire messages for the three CORFU services.

use bytes::Bytes;
use tango_wire::{Decode, Encode, Reader, WireError, Writer};

use crate::projection::Projection;
use crate::{Epoch, LogOffset, StreamId};

/// Whether a page write carries data or a junk fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteKind {
    /// Application payload.
    Data,
    /// Junk fill (hole patching).
    Junk,
}

/// Requests accepted by a storage node. Addresses are *local* page
/// addresses; the client performs the global→local mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageRequest {
    /// Write-once put at `addr`.
    Write {
        /// The client's epoch.
        epoch: Epoch,
        /// Local page address.
        addr: u64,
        /// Data or junk.
        kind: WriteKind,
        /// Payload (empty for junk).
        payload: Bytes,
    },
    /// Read the page at `addr`.
    Read {
        /// The client's epoch.
        epoch: Epoch,
        /// Local page address.
        addr: u64,
    },
    /// Trim a single address.
    Trim {
        /// The client's epoch.
        epoch: Epoch,
        /// Local page address.
        addr: u64,
    },
    /// Trim every address below `horizon`.
    TrimPrefix {
        /// The client's epoch.
        epoch: Epoch,
        /// First local address to keep.
        horizon: u64,
    },
    /// Seal the node at `epoch`; returns the local tail.
    Seal {
        /// The new epoch.
        epoch: Epoch,
    },
    /// Query the local tail (highest consumed address + 1).
    LocalTail {
        /// The client's epoch.
        epoch: Epoch,
    },
    /// Read a batch of pages in one round trip (the bulk-read primitive
    /// behind `CorfuClient::read_many`). The node serves the whole batch
    /// under one lock acquisition and answers with a
    /// [`StorageResponse::BatchOutcomes`] carrying one [`PageOutcome`] per
    /// requested address, in request order. Batches larger than
    /// [`crate::MAX_READ_BATCH`] are rejected; the client chunks.
    ReadBatch {
        /// The client's epoch.
        epoch: Epoch,
        /// Local page addresses, in the order outcomes are wanted.
        addrs: Vec<u64>,
    },
    /// Stream a range of consumed pages out of this node, for rebuilding a
    /// failed replica onto a replacement (§5 / CORFU chain rebuild). The
    /// node answers with a [`StorageResponse::PageChunk`] covering local
    /// addresses `start..start+count` (clamped to the local tail);
    /// unwritten addresses are skipped. The requester iterates until the
    /// chunk reports `next >= local_tail`.
    CopyRange {
        /// The client's epoch (the *new*, sealed epoch during a rebuild).
        epoch: Epoch,
        /// First local address of the requested range.
        start: u64,
        /// Maximum number of addresses to scan in this round trip.
        count: u32,
    },
}

/// The per-address outcome of a [`StorageRequest::ReadBatch`] — the same
/// four states a single `Read` distinguishes, minus the error cases (a
/// batch either succeeds wholesale or fails with one error response).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PageOutcome {
    /// The page holds this payload.
    Data(Bytes),
    /// The page holds junk (a patched hole).
    Junk,
    /// The page has never been written.
    Unwritten,
    /// The page is trimmed.
    Trimmed,
}

/// One consumed page streamed by [`StorageRequest::CopyRange`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PageCopy {
    /// A data page with its payload.
    Data(Bytes),
    /// A junk fill (filled hole) — must stay junk on the replacement.
    Junk,
    /// A randomly trimmed address — must stay consumed on the replacement.
    Trimmed,
}

/// Responses from a storage node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageResponse {
    /// The operation succeeded.
    Ok,
    /// A tail or seal result.
    Tail(u64),
    /// The page holds this payload.
    Data(Bytes),
    /// The page holds junk.
    Junk,
    /// The page has never been written.
    Unwritten,
    /// The page is trimmed.
    Trimmed,
    /// Write-once violation.
    ErrAlreadyWritten,
    /// Below the trim horizon.
    ErrTrimmed,
    /// The node is sealed at a newer epoch.
    ErrSealed {
        /// The node's current epoch.
        epoch: Epoch,
    },
    /// Payload exceeded the page size.
    ErrTooLarge {
        /// The node's page size — the largest payload it accepts.
        max: u64,
    },
    /// An internal storage fault.
    ErrStorage(String),
    /// One window of a [`StorageRequest::CopyRange`] stream.
    PageChunk {
        /// The source node's local tail (highest consumed address + 1).
        local_tail: u64,
        /// The source node's prefix-trim horizon; the replacement should
        /// install it with a `TrimPrefix` before (or after) the page copy.
        prefix_trim: u64,
        /// First address not covered by this chunk; pass as the next
        /// `start`. The stream is complete when `next >= local_tail`.
        next: u64,
        /// The consumed pages in the scanned window (unwritten addresses
        /// are omitted), in ascending address order.
        pages: Vec<(u64, PageCopy)>,
    },
    /// Per-address outcomes of a [`StorageRequest::ReadBatch`], in request
    /// order (`outcomes[i]` answers `addrs[i]`).
    BatchOutcomes(Vec<PageOutcome>),
}

/// Requests accepted by the sequencer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SequencerRequest {
    /// Reserve the next offset; `streams` lists the streams the entry will
    /// belong to, so the response can carry their backpointers.
    Next {
        /// The client's epoch.
        epoch: Epoch,
        /// Streams the new entry joins.
        streams: Vec<StreamId>,
    },
    /// Reserve `count` consecutive offsets in one round trip (§5's sequencer
    /// batching, batch=4 in the paper's evaluation). Every reserved entry
    /// joins the same `streams`; the response carries per-token
    /// backpointers.
    NextBatch {
        /// The client's epoch.
        epoch: Epoch,
        /// Streams every entry in the batch joins.
        streams: Vec<StreamId>,
        /// How many tokens to reserve (clamped to at least 1 by the server).
        count: u32,
    },
    /// Read the tail and per-stream backpointers without incrementing
    /// (the "fast check" / stream-sync primitive).
    Query {
        /// The client's epoch.
        epoch: Epoch,
        /// Streams of interest.
        streams: Vec<StreamId>,
    },
    /// Seal the sequencer at `epoch`; it stops issuing tokens for older
    /// epochs.
    Seal {
        /// The new epoch.
        epoch: Epoch,
    },
    /// Dump the full soft state (tail + all per-stream backpointers), used
    /// to write sequencer-state checkpoints into the log.
    Dump {
        /// The client's epoch.
        epoch: Epoch,
    },
    /// Install recovered state into a fresh sequencer (reconfiguration).
    Bootstrap {
        /// The epoch this state corresponds to.
        epoch: Epoch,
        /// The global tail to resume from.
        tail: LogOffset,
        /// Per-stream last-K issued offsets (most recent first).
        streams: Vec<(StreamId, Vec<LogOffset>)>,
    },
    /// Merge one stream's backpointer window into this (live) sequencer.
    /// Used when a stream is remapped to a different log: the new log's
    /// sequencer adopts the stream's last-K composite offsets from the old
    /// log so backpointer chains stay connected across the move.
    AdoptStream {
        /// The client's epoch (for this sequencer's log).
        epoch: Epoch,
        /// The stream being adopted.
        stream: StreamId,
        /// The stream's last-K issued composite offsets, most recent first.
        backpointers: Vec<LogOffset>,
    },
}

/// Responses from the sequencer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SequencerResponse {
    /// A token: the reserved offset plus, for each requested stream, the
    /// previous K offsets (most recent first, excluding the new offset).
    Token {
        /// The reserved global offset.
        offset: LogOffset,
        /// Backpointers per requested stream, in request order.
        backpointers: Vec<Vec<LogOffset>>,
    },
    /// A batch of consecutive tokens: offsets `start..start + tokens.len()`,
    /// with each token's per-stream backpointers (request order). Token `i`
    /// in the batch sees tokens `0..i` in its backpointer chains, exactly as
    /// if it had been issued by its own `Next`.
    TokenBatch {
        /// The first reserved offset.
        start: LogOffset,
        /// Per token, per requested stream: the previous K offsets (most
        /// recent first, excluding the token's own offset).
        tokens: Vec<Vec<Vec<LogOffset>>>,
    },
    /// A query result: the current tail (next offset to be issued) plus the
    /// last K offsets of each requested stream.
    TailInfo {
        /// The next offset that will be issued.
        tail: LogOffset,
        /// Last-K issued offsets per requested stream, most recent first.
        backpointers: Vec<Vec<LogOffset>>,
    },
    /// The operation succeeded.
    Ok,
    /// A full state dump.
    State {
        /// The next offset to be issued.
        tail: LogOffset,
        /// Per-stream last-K issued offsets, most recent first.
        streams: Vec<(StreamId, Vec<LogOffset>)>,
    },
    /// The sequencer is sealed at a newer epoch.
    ErrSealed {
        /// Its current epoch.
        epoch: Epoch,
    },
}

/// Requests accepted by the layout (auxiliary) service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutRequest {
    /// Fetch the current projection.
    Get,
    /// Install a new projection; its epoch must be exactly current + 1.
    Propose(Projection),
}

/// Responses from the layout service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutResponse {
    /// The current projection.
    Current(Projection),
    /// The proposal was installed.
    Installed,
    /// The proposal lost a race; here is the winning projection.
    Conflict(Projection),
    /// The request could not be decoded. Distinct from `Conflict` so a
    /// corrupted frame is never mistaken for a lost reconfiguration race.
    ErrMalformed {
        /// The decoder's diagnosis.
        reason: String,
    },
}

impl Encode for WriteKind {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self {
            WriteKind::Data => 0,
            WriteKind::Junk => 1,
        });
    }
}

impl Decode for WriteKind {
    fn decode(r: &mut Reader<'_>) -> tango_wire::Result<Self> {
        match r.get_u8()? {
            0 => Ok(WriteKind::Data),
            1 => Ok(WriteKind::Junk),
            tag => Err(WireError::InvalidTag { what: "WriteKind", tag: tag as u64 }),
        }
    }
}

impl Encode for StorageRequest {
    fn encode(&self, w: &mut Writer) {
        match self {
            StorageRequest::Write { epoch, addr, kind, payload } => {
                w.put_u8(0);
                w.put_u64(*epoch);
                w.put_u64(*addr);
                kind.encode(w);
                w.put_bytes(payload);
            }
            StorageRequest::Read { epoch, addr } => {
                w.put_u8(1);
                w.put_u64(*epoch);
                w.put_u64(*addr);
            }
            StorageRequest::Trim { epoch, addr } => {
                w.put_u8(2);
                w.put_u64(*epoch);
                w.put_u64(*addr);
            }
            StorageRequest::TrimPrefix { epoch, horizon } => {
                w.put_u8(3);
                w.put_u64(*epoch);
                w.put_u64(*horizon);
            }
            StorageRequest::Seal { epoch } => {
                w.put_u8(4);
                w.put_u64(*epoch);
            }
            StorageRequest::LocalTail { epoch } => {
                w.put_u8(5);
                w.put_u64(*epoch);
            }
            StorageRequest::CopyRange { epoch, start, count } => {
                w.put_u8(6);
                w.put_u64(*epoch);
                w.put_u64(*start);
                w.put_u32(*count);
            }
            StorageRequest::ReadBatch { epoch, addrs } => {
                w.put_u8(7);
                w.put_u64(*epoch);
                put_offsets(w, addrs);
            }
        }
    }
}

impl Decode for StorageRequest {
    fn decode(r: &mut Reader<'_>) -> tango_wire::Result<Self> {
        match r.get_u8()? {
            0 => Ok(StorageRequest::Write {
                epoch: r.get_u64()?,
                addr: r.get_u64()?,
                kind: WriteKind::decode(r)?,
                payload: Bytes::decode(r)?,
            }),
            1 => Ok(StorageRequest::Read { epoch: r.get_u64()?, addr: r.get_u64()? }),
            2 => Ok(StorageRequest::Trim { epoch: r.get_u64()?, addr: r.get_u64()? }),
            3 => Ok(StorageRequest::TrimPrefix { epoch: r.get_u64()?, horizon: r.get_u64()? }),
            4 => Ok(StorageRequest::Seal { epoch: r.get_u64()? }),
            5 => Ok(StorageRequest::LocalTail { epoch: r.get_u64()? }),
            6 => Ok(StorageRequest::CopyRange {
                epoch: r.get_u64()?,
                start: r.get_u64()?,
                count: r.get_u32()?,
            }),
            7 => Ok(StorageRequest::ReadBatch { epoch: r.get_u64()?, addrs: get_offsets(r)? }),
            tag => Err(WireError::InvalidTag { what: "StorageRequest", tag: tag as u64 }),
        }
    }
}

impl Encode for StorageResponse {
    fn encode(&self, w: &mut Writer) {
        match self {
            StorageResponse::Ok => w.put_u8(0),
            StorageResponse::Tail(t) => {
                w.put_u8(1);
                w.put_u64(*t);
            }
            StorageResponse::Data(b) => {
                w.put_u8(2);
                w.put_bytes(b);
            }
            StorageResponse::Junk => w.put_u8(3),
            StorageResponse::Unwritten => w.put_u8(4),
            StorageResponse::Trimmed => w.put_u8(5),
            StorageResponse::ErrAlreadyWritten => w.put_u8(6),
            StorageResponse::ErrTrimmed => w.put_u8(7),
            StorageResponse::ErrSealed { epoch } => {
                w.put_u8(8);
                w.put_u64(*epoch);
            }
            StorageResponse::ErrTooLarge { max } => {
                w.put_u8(9);
                w.put_u64(*max);
            }
            StorageResponse::ErrStorage(msg) => {
                w.put_u8(10);
                w.put_str(msg);
            }
            StorageResponse::PageChunk { local_tail, prefix_trim, next, pages } => {
                w.put_u8(11);
                w.put_u64(*local_tail);
                w.put_u64(*prefix_trim);
                w.put_u64(*next);
                w.put_varint(pages.len() as u64);
                for (addr, page) in pages {
                    w.put_u64(*addr);
                    match page {
                        PageCopy::Data(b) => {
                            w.put_u8(0);
                            w.put_bytes(b);
                        }
                        PageCopy::Junk => w.put_u8(1),
                        PageCopy::Trimmed => w.put_u8(2),
                    }
                }
            }
            StorageResponse::BatchOutcomes(outcomes) => {
                w.put_u8(12);
                w.put_varint(outcomes.len() as u64);
                for o in outcomes {
                    match o {
                        PageOutcome::Data(b) => {
                            w.put_u8(0);
                            w.put_bytes(b);
                        }
                        PageOutcome::Junk => w.put_u8(1),
                        PageOutcome::Unwritten => w.put_u8(2),
                        PageOutcome::Trimmed => w.put_u8(3),
                    }
                }
            }
        }
    }
}

impl Decode for StorageResponse {
    fn decode(r: &mut Reader<'_>) -> tango_wire::Result<Self> {
        match r.get_u8()? {
            0 => Ok(StorageResponse::Ok),
            1 => Ok(StorageResponse::Tail(r.get_u64()?)),
            2 => Ok(StorageResponse::Data(Bytes::decode(r)?)),
            3 => Ok(StorageResponse::Junk),
            4 => Ok(StorageResponse::Unwritten),
            5 => Ok(StorageResponse::Trimmed),
            6 => Ok(StorageResponse::ErrAlreadyWritten),
            7 => Ok(StorageResponse::ErrTrimmed),
            8 => Ok(StorageResponse::ErrSealed { epoch: r.get_u64()? }),
            9 => Ok(StorageResponse::ErrTooLarge { max: r.get_u64()? }),
            10 => Ok(StorageResponse::ErrStorage(r.get_str()?.to_owned())),
            11 => {
                let local_tail = r.get_u64()?;
                let prefix_trim = r.get_u64()?;
                let next = r.get_u64()?;
                let len = r.get_len(1 << 20)?;
                let mut pages = Vec::with_capacity(len);
                for _ in 0..len {
                    let addr = r.get_u64()?;
                    let page = match r.get_u8()? {
                        0 => PageCopy::Data(Bytes::decode(r)?),
                        1 => PageCopy::Junk,
                        2 => PageCopy::Trimmed,
                        tag => {
                            return Err(WireError::InvalidTag { what: "PageCopy", tag: tag as u64 })
                        }
                    };
                    pages.push((addr, page));
                }
                Ok(StorageResponse::PageChunk { local_tail, prefix_trim, next, pages })
            }
            12 => {
                let len = r.get_len(1 << 20)?;
                let mut outcomes = Vec::with_capacity(len);
                for _ in 0..len {
                    outcomes.push(match r.get_u8()? {
                        0 => PageOutcome::Data(Bytes::decode(r)?),
                        1 => PageOutcome::Junk,
                        2 => PageOutcome::Unwritten,
                        3 => PageOutcome::Trimmed,
                        tag => {
                            return Err(WireError::InvalidTag {
                                what: "PageOutcome",
                                tag: tag as u64,
                            })
                        }
                    });
                }
                Ok(StorageResponse::BatchOutcomes(outcomes))
            }
            tag => Err(WireError::InvalidTag { what: "StorageResponse", tag: tag as u64 }),
        }
    }
}

fn put_offsets(w: &mut Writer, offs: &[LogOffset]) {
    w.put_varint(offs.len() as u64);
    for &o in offs {
        w.put_u64(o);
    }
}

fn get_offsets(r: &mut Reader<'_>) -> tango_wire::Result<Vec<LogOffset>> {
    let len = r.get_len(1 << 20)?;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(r.get_u64()?);
    }
    Ok(out)
}

fn put_streams(w: &mut Writer, streams: &[StreamId]) {
    w.put_varint(streams.len() as u64);
    for &s in streams {
        w.put_u32(s);
    }
}

fn get_streams(r: &mut Reader<'_>) -> tango_wire::Result<Vec<StreamId>> {
    let len = r.get_len(1 << 16)?;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(r.get_u32()?);
    }
    Ok(out)
}

impl Encode for SequencerRequest {
    fn encode(&self, w: &mut Writer) {
        match self {
            SequencerRequest::Next { epoch, streams } => {
                w.put_u8(0);
                w.put_u64(*epoch);
                put_streams(w, streams);
            }
            SequencerRequest::Query { epoch, streams } => {
                w.put_u8(1);
                w.put_u64(*epoch);
                put_streams(w, streams);
            }
            SequencerRequest::Seal { epoch } => {
                w.put_u8(2);
                w.put_u64(*epoch);
            }
            SequencerRequest::Dump { epoch } => {
                w.put_u8(4);
                w.put_u64(*epoch);
            }
            SequencerRequest::NextBatch { epoch, streams, count } => {
                w.put_u8(5);
                w.put_u64(*epoch);
                put_streams(w, streams);
                w.put_u32(*count);
            }
            SequencerRequest::Bootstrap { epoch, tail, streams } => {
                w.put_u8(3);
                w.put_u64(*epoch);
                w.put_u64(*tail);
                w.put_varint(streams.len() as u64);
                for (id, offs) in streams {
                    w.put_u32(*id);
                    put_offsets(w, offs);
                }
            }
            SequencerRequest::AdoptStream { epoch, stream, backpointers } => {
                w.put_u8(6);
                w.put_u64(*epoch);
                w.put_u32(*stream);
                put_offsets(w, backpointers);
            }
        }
    }
}

impl Decode for SequencerRequest {
    fn decode(r: &mut Reader<'_>) -> tango_wire::Result<Self> {
        match r.get_u8()? {
            0 => Ok(SequencerRequest::Next { epoch: r.get_u64()?, streams: get_streams(r)? }),
            1 => Ok(SequencerRequest::Query { epoch: r.get_u64()?, streams: get_streams(r)? }),
            2 => Ok(SequencerRequest::Seal { epoch: r.get_u64()? }),
            3 => {
                let epoch = r.get_u64()?;
                let tail = r.get_u64()?;
                let len = r.get_len(1 << 20)?;
                let mut streams = Vec::with_capacity(len);
                for _ in 0..len {
                    let id = r.get_u32()?;
                    streams.push((id, get_offsets(r)?));
                }
                Ok(SequencerRequest::Bootstrap { epoch, tail, streams })
            }
            4 => Ok(SequencerRequest::Dump { epoch: r.get_u64()? }),
            5 => Ok(SequencerRequest::NextBatch {
                epoch: r.get_u64()?,
                streams: get_streams(r)?,
                count: r.get_u32()?,
            }),
            6 => Ok(SequencerRequest::AdoptStream {
                epoch: r.get_u64()?,
                stream: r.get_u32()?,
                backpointers: get_offsets(r)?,
            }),
            tag => Err(WireError::InvalidTag { what: "SequencerRequest", tag: tag as u64 }),
        }
    }
}

impl Encode for SequencerResponse {
    fn encode(&self, w: &mut Writer) {
        match self {
            SequencerResponse::Token { offset, backpointers } => {
                w.put_u8(0);
                w.put_u64(*offset);
                w.put_varint(backpointers.len() as u64);
                for b in backpointers {
                    put_offsets(w, b);
                }
            }
            SequencerResponse::TailInfo { tail, backpointers } => {
                w.put_u8(1);
                w.put_u64(*tail);
                w.put_varint(backpointers.len() as u64);
                for b in backpointers {
                    put_offsets(w, b);
                }
            }
            SequencerResponse::Ok => w.put_u8(2),
            SequencerResponse::ErrSealed { epoch } => {
                w.put_u8(3);
                w.put_u64(*epoch);
            }
            SequencerResponse::TokenBatch { start, tokens } => {
                w.put_u8(5);
                w.put_u64(*start);
                w.put_varint(tokens.len() as u64);
                for token in tokens {
                    w.put_varint(token.len() as u64);
                    for backs in token {
                        put_offsets(w, backs);
                    }
                }
            }
            SequencerResponse::State { tail, streams } => {
                w.put_u8(4);
                w.put_u64(*tail);
                w.put_varint(streams.len() as u64);
                for (id, offs) in streams {
                    w.put_u32(*id);
                    put_offsets(w, offs);
                }
            }
        }
    }
}

impl Decode for SequencerResponse {
    fn decode(r: &mut Reader<'_>) -> tango_wire::Result<Self> {
        fn get_backs(r: &mut Reader<'_>) -> tango_wire::Result<Vec<Vec<LogOffset>>> {
            let len = r.get_len(1 << 16)?;
            let mut out = Vec::with_capacity(len);
            for _ in 0..len {
                out.push(get_offsets(r)?);
            }
            Ok(out)
        }
        match r.get_u8()? {
            0 => Ok(SequencerResponse::Token { offset: r.get_u64()?, backpointers: get_backs(r)? }),
            1 => {
                Ok(SequencerResponse::TailInfo { tail: r.get_u64()?, backpointers: get_backs(r)? })
            }
            2 => Ok(SequencerResponse::Ok),
            3 => Ok(SequencerResponse::ErrSealed { epoch: r.get_u64()? }),
            4 => {
                let tail = r.get_u64()?;
                let len = r.get_len(1 << 20)?;
                let mut streams = Vec::with_capacity(len);
                for _ in 0..len {
                    let id = r.get_u32()?;
                    streams.push((id, get_offsets(r)?));
                }
                Ok(SequencerResponse::State { tail, streams })
            }
            5 => {
                let start = r.get_u64()?;
                let n = r.get_len(1 << 16)?;
                let mut tokens = Vec::with_capacity(n);
                for _ in 0..n {
                    tokens.push(get_backs(r)?);
                }
                Ok(SequencerResponse::TokenBatch { start, tokens })
            }
            tag => Err(WireError::InvalidTag { what: "SequencerResponse", tag: tag as u64 }),
        }
    }
}

impl Encode for LayoutRequest {
    fn encode(&self, w: &mut Writer) {
        match self {
            LayoutRequest::Get => w.put_u8(0),
            LayoutRequest::Propose(p) => {
                w.put_u8(1);
                p.encode(w);
            }
        }
    }
}

impl Decode for LayoutRequest {
    fn decode(r: &mut Reader<'_>) -> tango_wire::Result<Self> {
        match r.get_u8()? {
            0 => Ok(LayoutRequest::Get),
            1 => Ok(LayoutRequest::Propose(Projection::decode(r)?)),
            tag => Err(WireError::InvalidTag { what: "LayoutRequest", tag: tag as u64 }),
        }
    }
}

impl Encode for LayoutResponse {
    fn encode(&self, w: &mut Writer) {
        match self {
            LayoutResponse::Current(p) => {
                w.put_u8(0);
                p.encode(w);
            }
            LayoutResponse::Installed => w.put_u8(1),
            LayoutResponse::Conflict(p) => {
                w.put_u8(2);
                p.encode(w);
            }
            LayoutResponse::ErrMalformed { reason } => {
                w.put_u8(3);
                w.put_str(reason);
            }
        }
    }
}

impl Decode for LayoutResponse {
    fn decode(r: &mut Reader<'_>) -> tango_wire::Result<Self> {
        match r.get_u8()? {
            0 => Ok(LayoutResponse::Current(Projection::decode(r)?)),
            1 => Ok(LayoutResponse::Installed),
            2 => Ok(LayoutResponse::Conflict(Projection::decode(r)?)),
            3 => Ok(LayoutResponse::ErrMalformed { reason: r.get_str()?.to_string() }),
            tag => Err(WireError::InvalidTag { what: "LayoutResponse", tag: tag as u64 }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tango_wire::{decode_from_slice, encode_to_vec};

    #[test]
    fn storage_messages_roundtrip() {
        let msgs = vec![
            StorageRequest::Write {
                epoch: 3,
                addr: 9,
                kind: WriteKind::Data,
                payload: Bytes::from_static(b"abc"),
            },
            StorageRequest::Write {
                epoch: 0,
                addr: 0,
                kind: WriteKind::Junk,
                payload: Bytes::new(),
            },
            StorageRequest::Read { epoch: 1, addr: 2 },
            StorageRequest::Trim { epoch: 1, addr: 2 },
            StorageRequest::TrimPrefix { epoch: 1, horizon: 100 },
            StorageRequest::Seal { epoch: 7 },
            StorageRequest::LocalTail { epoch: 7 },
            StorageRequest::CopyRange { epoch: 9, start: 128, count: 256 },
            StorageRequest::ReadBatch { epoch: 5, addrs: vec![0, 7, 12, u64::MAX] },
            StorageRequest::ReadBatch { epoch: 0, addrs: vec![] },
        ];
        for m in msgs {
            let bytes = encode_to_vec(&m);
            assert_eq!(decode_from_slice::<StorageRequest>(&bytes).unwrap(), m);
        }
        let resps = vec![
            StorageResponse::Ok,
            StorageResponse::Tail(55),
            StorageResponse::Data(Bytes::from_static(b"xyz")),
            StorageResponse::Junk,
            StorageResponse::Unwritten,
            StorageResponse::Trimmed,
            StorageResponse::ErrAlreadyWritten,
            StorageResponse::ErrTrimmed,
            StorageResponse::ErrSealed { epoch: 9 },
            StorageResponse::ErrTooLarge { max: 4096 },
            StorageResponse::ErrStorage("boom".into()),
            StorageResponse::PageChunk {
                local_tail: 40,
                prefix_trim: 3,
                next: 20,
                pages: vec![
                    (3, PageCopy::Data(Bytes::from_static(b"page"))),
                    (4, PageCopy::Junk),
                    (7, PageCopy::Trimmed),
                ],
            },
            StorageResponse::PageChunk { local_tail: 0, prefix_trim: 0, next: 0, pages: vec![] },
            StorageResponse::BatchOutcomes(vec![
                PageOutcome::Data(Bytes::from_static(b"entry")),
                PageOutcome::Junk,
                PageOutcome::Unwritten,
                PageOutcome::Trimmed,
            ]),
            StorageResponse::BatchOutcomes(vec![]),
        ];
        for m in resps {
            let bytes = encode_to_vec(&m);
            assert_eq!(decode_from_slice::<StorageResponse>(&bytes).unwrap(), m);
        }
    }

    #[test]
    fn sequencer_messages_roundtrip() {
        let msgs = vec![
            SequencerRequest::Next { epoch: 1, streams: vec![1, 2, 3] },
            SequencerRequest::NextBatch { epoch: 1, streams: vec![1, 2], count: 4 },
            SequencerRequest::NextBatch { epoch: 0, streams: vec![], count: 1 },
            SequencerRequest::Query { epoch: 1, streams: vec![] },
            SequencerRequest::Seal { epoch: 4 },
            SequencerRequest::Bootstrap {
                epoch: 4,
                tail: 77,
                streams: vec![(1, vec![70, 60]), (9, vec![])],
            },
            SequencerRequest::AdoptStream {
                epoch: 6,
                stream: 12,
                backpointers: vec![(1u64 << 56) | 4, (1u64 << 56) | 1, 9],
            },
        ];
        for m in msgs {
            let bytes = encode_to_vec(&m);
            assert_eq!(decode_from_slice::<SequencerRequest>(&bytes).unwrap(), m);
        }
        let resps = vec![
            SequencerResponse::Token { offset: 5, backpointers: vec![vec![4, 2], vec![]] },
            SequencerResponse::TokenBatch {
                start: 10,
                tokens: vec![vec![vec![9, 8], vec![]], vec![vec![10, 9], vec![10]]],
            },
            SequencerResponse::TokenBatch { start: 0, tokens: vec![vec![]] },
            SequencerResponse::TailInfo { tail: 6, backpointers: vec![vec![5]] },
            SequencerResponse::Ok,
            SequencerResponse::ErrSealed { epoch: 2 },
        ];
        for m in resps {
            let bytes = encode_to_vec(&m);
            assert_eq!(decode_from_slice::<SequencerResponse>(&bytes).unwrap(), m);
        }
    }
}
