//! The storage server: an epoch gate in front of a [`FlashUnit`].

use parking_lot::Mutex;
use tango_flash::{FlashError, FlashMetrics, FlashUnit, PageRead, ScrubReport, TierStats};
use tango_metrics::{EventKind, Registry, SpanKind};
use tango_rpc::RpcHandler;
use tango_wire::{decode_from_slice, encode_to_vec};

use crate::metrics::StorageMetrics;
use crate::proto::{PageCopy, PageOutcome, StorageRequest, StorageResponse, WriteKind};
use crate::Epoch;

/// Upper bound on addresses scanned per [`StorageRequest::CopyRange`] round
/// trip, regardless of what the requester asks for. Bounds both response
/// size and the time the node's lock is held.
pub const MAX_COPY_RANGE: u32 = 1024;

/// Upper bound on pages served per [`StorageRequest::ReadBatch`]. Oversized
/// batches are rejected outright (the client chunks), bounding response
/// size and the time the node's lock is held.
pub const MAX_READ_BATCH: usize = 1024;

/// A CORFU storage node: a write-once flash unit behind an RPC interface,
/// with epoch-based sealing (§5 failure handling).
///
/// Requests stamped with an epoch older than the node's current epoch are
/// rejected with `ErrSealed`, which forces clients racing a reconfiguration
/// to fetch the new projection. Requests stamped with a *newer* epoch are
/// also rejected: the node only advances its epoch through an explicit
/// `Seal`, which is how reconfiguration fences in-flight operations.
pub struct StorageServer {
    inner: Mutex<Inner>,
    metrics: StorageMetrics,
    /// The log (shard) this node serves, for flight-recorder events.
    log: u64,
}

struct Inner {
    unit: FlashUnit,
    epoch: Epoch,
    /// Tier/wear values already folded into the monotone metrics counters;
    /// publication adds only the delta since the last publish.
    published: PublishedBaseline,
}

#[derive(Default)]
struct PublishedBaseline {
    random_trims: u64,
    prefix_trimmed_pages: u64,
    migrations: u64,
    migrated_pages: u64,
    reclaimed_pages: u64,
    reclaimed_segments: u64,
}

/// What one compaction pass accomplished (see
/// [`StorageServer::compact_once`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CompactionReport {
    /// The prefix-trim horizon after the pass.
    pub trim_horizon: u64,
    /// Pages migrated hot → cold by this pass.
    pub migrated_pages: u64,
    /// Whole segments reclaimed by this pass.
    pub reclaimed_segments: u64,
    /// Live (untrimmed) pages occupying the unit after the pass.
    pub occupancy: u64,
    /// The CRC scrub outcome, when the pass scrubbed.
    pub scrub: Option<ScrubReport>,
}

impl StorageServer {
    /// Wraps a flash unit. The server adopts the unit's persisted epoch.
    pub fn new(unit: FlashUnit) -> Self {
        let epoch = unit.epoch();
        Self {
            inner: Mutex::new(Inner { unit, epoch, published: PublishedBaseline::default() }),
            metrics: StorageMetrics::default(),
            log: 0,
        }
    }

    /// Records `corfu.storage.*` and `flash.*` metrics into `registry`
    /// (off by default). Counts from every node bound to the same registry
    /// aggregate.
    pub fn with_metrics(mut self, registry: &Registry) -> Self {
        self.metrics = StorageMetrics::from_registry(registry);
        self.inner.get_mut().unit.set_metrics(FlashMetrics::from_registry(registry));
        self
    }

    /// Like [`StorageServer::with_metrics`], but scopes the trim/occupancy
    /// family and flight-recorder events to `log` — for sharded
    /// deployments where one node serves one log of the stripe.
    pub fn with_metrics_for_log(mut self, registry: &Registry, log: u64) -> Self {
        self.metrics = StorageMetrics::for_log(registry, log);
        self.inner.get_mut().unit.set_metrics(FlashMetrics::from_registry(registry));
        self.log = log;
        self
    }

    /// Creates an in-memory node with the given page size, for tests and the
    /// in-process cluster.
    pub fn in_memory(page_size: usize) -> Self {
        Self::new(FlashUnit::in_memory(page_size))
    }

    /// The node's current epoch.
    pub fn epoch(&self) -> Epoch {
        self.inner.lock().epoch
    }

    /// Wear statistics from the underlying unit.
    pub fn stats(&self) -> tango_flash::WearStats {
        self.inner.lock().unit.stats()
    }

    /// Hot/cold occupancy and migration accounting from the underlying
    /// unit (all zeros over single-tier stores).
    pub fn tier_stats(&self) -> TierStats {
        self.inner.lock().unit.tier_stats()
    }

    /// Live (untrimmed) pages currently occupying the unit.
    pub fn occupancy(&self) -> u64 {
        self.inner.lock().unit.live_pages()
    }

    /// The unit's prefix-trim horizon.
    pub fn trim_horizon(&self) -> u64 {
        self.inner.lock().unit.prefix_trim()
    }

    /// One compaction pass, the unit of work the background
    /// [`crate::compactor::Compactor`] repeats: convert accumulated
    /// contiguous trim marks into a sequential prefix trim, migrate hot
    /// pages past the tier's capacity into cold segments, optionally
    /// verify cold-tier CRCs, and publish occupancy/tiering metrics and
    /// flight-recorder events.
    ///
    /// Each step runs under the unit lock (requests queue behind it, which
    /// the `flash.queue_wait_ns` histogram makes visible), but the pass is
    /// deliberately incremental so the lock is never held across the whole
    /// device.
    pub fn compact_once(&self, scrub: bool) -> CompactionReport {
        let mut inner = self.inner.lock();
        let horizon =
            inner.unit.advance_trim_horizon().unwrap_or_else(|_| inner.unit.prefix_trim());
        let migrated = inner.unit.migrate_cold().unwrap_or(0);
        let scrub_report = if scrub {
            let report = inner.unit.scrub().unwrap_or_default();
            self.metrics.scrubbed_pages.add(report.pages_checked);
            self.metrics.scrub_errors.add(report.errors);
            Some(report)
        } else {
            None
        };
        let reclaimed_segments = self.publish(&mut inner);
        CompactionReport {
            trim_horizon: horizon,
            migrated_pages: migrated,
            reclaimed_segments,
            occupancy: inner.unit.live_pages(),
            scrub: scrub_report,
        }
    }

    /// Folds the unit's monotone wear/tier counters into the metrics
    /// registry (delta since the last publish), refreshes the occupancy
    /// gauges, and emits flight-recorder events for reclamation and
    /// migration. Returns the segments reclaimed since the last publish.
    fn publish(&self, inner: &mut Inner) -> u64 {
        let wear = inner.unit.stats();
        let tier = inner.unit.tier_stats();
        let base = &mut inner.published;

        self.metrics.random_trims.add(wear.random_trims - base.random_trims);
        self.metrics
            .prefix_trimmed_pages
            .add(wear.prefix_trimmed_pages - base.prefix_trimmed_pages);
        self.metrics.migrations.add(tier.migrations - base.migrations);
        self.metrics.migrated_pages.add(tier.migrated_pages - base.migrated_pages);
        self.metrics.reclaimed_pages.add(tier.reclaimed_pages - base.reclaimed_pages);
        let reclaimed_segments = tier.reclaimed_segments - base.reclaimed_segments;
        self.metrics.reclaimed_segments.add(reclaimed_segments);

        if tier.migrated_pages > base.migrated_pages {
            self.metrics.events.emit(
                EventKind::ColdMigration,
                inner.epoch,
                self.log,
                tier.migrated_pages - base.migrated_pages,
            );
        }
        if reclaimed_segments > 0 {
            self.metrics.events.emit(
                EventKind::SegmentReclaimed,
                inner.epoch,
                self.log,
                reclaimed_segments,
            );
        }

        base.random_trims = wear.random_trims;
        base.prefix_trimmed_pages = wear.prefix_trimmed_pages;
        base.migrations = tier.migrations;
        base.migrated_pages = tier.migrated_pages;
        base.reclaimed_pages = tier.reclaimed_pages;
        base.reclaimed_segments = tier.reclaimed_segments;

        self.metrics.occupancy.set(inner.unit.live_pages() as i64);
        self.metrics.trim_horizon.set(inner.unit.prefix_trim() as i64);
        self.metrics.hot_pages.set(tier.hot_pages as i64);
        self.metrics.cold_pages.set(tier.cold_pages as i64);
        reclaimed_segments
    }

    /// Processes a decoded request (also used directly by unit tests).
    pub fn process(&self, req: StorageRequest) -> StorageResponse {
        // Queue wait is the time spent behind other requests for the
        // unit's lock; everything after the lock is service time, which
        // the flash.* histograms measure per device op.
        let wait = self.metrics.queue_wait_ns.start_sampled(&self.metrics.sampler);
        let mut inner = self.inner.lock();
        wait.stop();
        let span_kind = match req {
            StorageRequest::Write { .. } => SpanKind::StorageWrite,
            StorageRequest::Read { .. } | StorageRequest::ReadBatch { .. } => SpanKind::StorageRead,
            _ => SpanKind::StorageCtl,
        };
        // Records only when the request arrived with a trace context.
        let _span = self.metrics.tracer.child(span_kind);
        match req {
            StorageRequest::Write { epoch, addr, kind, payload } => {
                if let Err(resp) = inner.check_epoch(epoch) {
                    return resp;
                }
                let result = match kind {
                    WriteKind::Data => inner.unit.write(addr, &payload),
                    WriteKind::Junk => inner.unit.fill(addr),
                };
                match result {
                    Ok(()) => {
                        match kind {
                            WriteKind::Data => self.metrics.writes.inc(),
                            WriteKind::Junk => self.metrics.fills.inc(),
                        }
                        StorageResponse::Ok
                    }
                    Err(e) => Inner::flash_error(e),
                }
            }
            StorageRequest::Read { epoch, addr } => {
                if let Err(resp) = inner.check_epoch(epoch) {
                    return resp;
                }
                self.metrics.reads.inc();
                match inner.unit.read(addr) {
                    Ok(PageRead::Data(bytes)) => StorageResponse::Data(bytes),
                    Ok(PageRead::Junk) => StorageResponse::Junk,
                    Ok(PageRead::Unwritten) => StorageResponse::Unwritten,
                    Ok(PageRead::Trimmed) => StorageResponse::Trimmed,
                    Err(e) => Inner::flash_error(e),
                }
            }
            StorageRequest::ReadBatch { epoch, addrs } => {
                if let Err(resp) = inner.check_epoch(epoch) {
                    return resp;
                }
                if addrs.len() > MAX_READ_BATCH {
                    return StorageResponse::ErrStorage(format!(
                        "read batch of {} exceeds {MAX_READ_BATCH}",
                        addrs.len()
                    ));
                }
                // The whole batch is served under this one lock acquisition;
                // read_many charges wear per page but times the batch once.
                self.metrics.reads.add(addrs.len() as u64);
                self.metrics.read_batch.record(addrs.len() as u64);
                match inner.unit.read_many(&addrs) {
                    Ok(reads) => StorageResponse::BatchOutcomes(
                        reads
                            .into_iter()
                            .map(|r| match r {
                                PageRead::Data(bytes) => PageOutcome::Data(bytes),
                                PageRead::Junk => PageOutcome::Junk,
                                PageRead::Unwritten => PageOutcome::Unwritten,
                                PageRead::Trimmed => PageOutcome::Trimmed,
                            })
                            .collect(),
                    ),
                    Err(e) => Inner::flash_error(e),
                }
            }
            StorageRequest::Trim { epoch, addr } => {
                if let Err(resp) = inner.check_epoch(epoch) {
                    return resp;
                }
                match inner.unit.trim(addr) {
                    Ok(()) => {
                        self.metrics.trims.inc();
                        self.publish(&mut inner);
                        StorageResponse::Ok
                    }
                    Err(e) => Inner::flash_error(e),
                }
            }
            StorageRequest::TrimPrefix { epoch, horizon } => {
                if let Err(resp) = inner.check_epoch(epoch) {
                    return resp;
                }
                match inner.unit.trim_prefix(horizon) {
                    Ok(()) => {
                        self.metrics.trims.inc();
                        self.metrics.prefix_trims.inc();
                        self.publish(&mut inner);
                        StorageResponse::Ok
                    }
                    Err(e) => Inner::flash_error(e),
                }
            }
            StorageRequest::Seal { epoch } => {
                if epoch <= inner.epoch {
                    return StorageResponse::ErrSealed { epoch: inner.epoch };
                }
                match inner.unit.seal(epoch) {
                    Ok(tail) => {
                        inner.epoch = epoch;
                        self.metrics.seals.inc();
                        StorageResponse::Tail(tail)
                    }
                    Err(e) => Inner::flash_error(e),
                }
            }
            StorageRequest::LocalTail { epoch } => {
                if let Err(resp) = inner.check_epoch(epoch) {
                    return resp;
                }
                StorageResponse::Tail(inner.unit.local_tail())
            }
            StorageRequest::CopyRange { epoch, start, count } => {
                if let Err(resp) = inner.check_epoch(epoch) {
                    return resp;
                }
                let local_tail = inner.unit.local_tail();
                let prefix_trim = inner.unit.prefix_trim();
                // Addresses below the horizon are implicitly trimmed; the
                // requester installs the horizon wholesale, so the scan
                // starts at the horizon at the earliest.
                let from = start.max(prefix_trim);
                let span = count.min(MAX_COPY_RANGE) as u64;
                let next = from.saturating_add(span).min(local_tail).max(from);
                let mut pages = Vec::new();
                for addr in from..next {
                    match inner.unit.read(addr) {
                        Ok(PageRead::Data(bytes)) => pages.push((addr, PageCopy::Data(bytes))),
                        Ok(PageRead::Junk) => pages.push((addr, PageCopy::Junk)),
                        Ok(PageRead::Trimmed) => pages.push((addr, PageCopy::Trimmed)),
                        Ok(PageRead::Unwritten) => {}
                        Err(e) => return Inner::flash_error(e),
                    }
                }
                self.metrics.copy_chunks.inc();
                StorageResponse::PageChunk { local_tail, prefix_trim, next, pages }
            }
        }
    }
}

impl Inner {
    fn check_epoch(&self, epoch: Epoch) -> Result<(), StorageResponse> {
        if epoch != self.epoch {
            Err(StorageResponse::ErrSealed { epoch: self.epoch })
        } else {
            Ok(())
        }
    }

    fn flash_error(e: FlashError) -> StorageResponse {
        match e {
            FlashError::AlreadyWritten { .. } => StorageResponse::ErrAlreadyWritten,
            FlashError::Trimmed { .. } => StorageResponse::ErrTrimmed,
            FlashError::Sealed { current_epoch } => {
                StorageResponse::ErrSealed { epoch: current_epoch }
            }
            FlashError::PageTooLarge { page_size, .. } => {
                StorageResponse::ErrTooLarge { max: page_size as u64 }
            }
            FlashError::Io(msg) | FlashError::Corrupt(msg) => StorageResponse::ErrStorage(msg),
        }
    }
}

impl RpcHandler for StorageServer {
    fn handle(&self, request: &[u8]) -> Vec<u8> {
        let response = match decode_from_slice::<StorageRequest>(request) {
            Ok(req) => self.process(req),
            Err(e) => StorageResponse::ErrStorage(format!("bad request: {e}")),
        };
        encode_to_vec(&response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn server() -> StorageServer {
        StorageServer::in_memory(4096)
    }

    #[test]
    fn write_read_roundtrip() {
        let s = server();
        let w = StorageRequest::Write {
            epoch: 0,
            addr: 3,
            kind: WriteKind::Data,
            payload: Bytes::from_static(b"entry"),
        };
        assert_eq!(s.process(w), StorageResponse::Ok);
        assert_eq!(
            s.process(StorageRequest::Read { epoch: 0, addr: 3 }),
            StorageResponse::Data(Bytes::from_static(b"entry"))
        );
        assert_eq!(
            s.process(StorageRequest::Read { epoch: 0, addr: 4 }),
            StorageResponse::Unwritten
        );
    }

    #[test]
    fn epoch_gate() {
        let s = server();
        assert_eq!(s.process(StorageRequest::Seal { epoch: 2 }), StorageResponse::Tail(0));
        // Old epoch rejected.
        assert_eq!(
            s.process(StorageRequest::Read { epoch: 0, addr: 0 }),
            StorageResponse::ErrSealed { epoch: 2 }
        );
        // Future epoch rejected too: only Seal advances the epoch.
        assert_eq!(
            s.process(StorageRequest::Read { epoch: 5, addr: 0 }),
            StorageResponse::ErrSealed { epoch: 2 }
        );
        // Current epoch accepted.
        assert_eq!(
            s.process(StorageRequest::Read { epoch: 2, addr: 0 }),
            StorageResponse::Unwritten
        );
        // Re-sealing at the same epoch fails.
        assert_eq!(
            s.process(StorageRequest::Seal { epoch: 2 }),
            StorageResponse::ErrSealed { epoch: 2 }
        );
    }

    #[test]
    fn write_once_arbitration_via_rpc() {
        let s = server();
        let write = |payload: &'static [u8]| StorageRequest::Write {
            epoch: 0,
            addr: 0,
            kind: WriteKind::Data,
            payload: Bytes::from_static(payload),
        };
        assert_eq!(s.process(write(b"first")), StorageResponse::Ok);
        assert_eq!(s.process(write(b"second")), StorageResponse::ErrAlreadyWritten);
        let fill = StorageRequest::Write {
            epoch: 0,
            addr: 0,
            kind: WriteKind::Junk,
            payload: Bytes::new(),
        };
        assert_eq!(s.process(fill), StorageResponse::ErrAlreadyWritten);
    }

    #[test]
    fn seal_returns_local_tail() {
        let s = server();
        for addr in 0..5 {
            let w = StorageRequest::Write {
                epoch: 0,
                addr,
                kind: WriteKind::Data,
                payload: Bytes::from_static(b"x"),
            };
            assert_eq!(s.process(w), StorageResponse::Ok);
        }
        assert_eq!(s.process(StorageRequest::Seal { epoch: 1 }), StorageResponse::Tail(5));
    }

    #[test]
    fn copy_range_streams_consumed_pages() {
        let s = server();
        // Build a node with data, a junk fill, a random trim, a hole, and a
        // prefix trim: addrs 0,1 prefix-trimmed; 2 data; 3 junk; 4 trimmed;
        // 5 unwritten (hole); 6 data.
        for addr in [0, 1, 2, 6] {
            let w = StorageRequest::Write {
                epoch: 0,
                addr,
                kind: WriteKind::Data,
                payload: Bytes::from_static(b"d"),
            };
            assert_eq!(s.process(w), StorageResponse::Ok);
        }
        let fill = StorageRequest::Write {
            epoch: 0,
            addr: 3,
            kind: WriteKind::Junk,
            payload: Bytes::new(),
        };
        assert_eq!(s.process(fill), StorageResponse::Ok);
        assert_eq!(s.process(StorageRequest::Trim { epoch: 0, addr: 4 }), StorageResponse::Ok);
        assert_eq!(
            s.process(StorageRequest::TrimPrefix { epoch: 0, horizon: 2 }),
            StorageResponse::Ok
        );

        match s.process(StorageRequest::CopyRange { epoch: 0, start: 0, count: 100 }) {
            StorageResponse::PageChunk { local_tail, prefix_trim, next, pages } => {
                assert_eq!(local_tail, 7);
                assert_eq!(prefix_trim, 2);
                assert_eq!(next, 7);
                assert_eq!(
                    pages,
                    vec![
                        (2, PageCopy::Data(Bytes::from_static(b"d"))),
                        (3, PageCopy::Junk),
                        (4, PageCopy::Trimmed),
                        (6, PageCopy::Data(Bytes::from_static(b"d"))),
                    ]
                );
            }
            other => panic!("expected PageChunk, got {other:?}"),
        }
        // Chunked iteration: a count of 2 scans two addresses per call.
        match s.process(StorageRequest::CopyRange { epoch: 0, start: 2, count: 2 }) {
            StorageResponse::PageChunk { next, pages, .. } => {
                assert_eq!(next, 4);
                assert_eq!(pages.len(), 2);
            }
            other => panic!("expected PageChunk, got {other:?}"),
        }
        // Epoch-gated like everything else.
        assert_eq!(s.process(StorageRequest::Seal { epoch: 3 }), StorageResponse::Tail(7));
        assert_eq!(
            s.process(StorageRequest::CopyRange { epoch: 0, start: 0, count: 1 }),
            StorageResponse::ErrSealed { epoch: 3 }
        );
    }

    #[test]
    fn read_batch_serves_per_address_outcomes() {
        let s = server();
        let w = StorageRequest::Write {
            epoch: 0,
            addr: 1,
            kind: WriteKind::Data,
            payload: Bytes::from_static(b"one"),
        };
        assert_eq!(s.process(w), StorageResponse::Ok);
        let fill = StorageRequest::Write {
            epoch: 0,
            addr: 2,
            kind: WriteKind::Junk,
            payload: Bytes::new(),
        };
        assert_eq!(s.process(fill), StorageResponse::Ok);
        assert_eq!(s.process(StorageRequest::Trim { epoch: 0, addr: 1 }), StorageResponse::Ok);
        let w = StorageRequest::Write {
            epoch: 0,
            addr: 5,
            kind: WriteKind::Data,
            payload: Bytes::from_static(b"five"),
        };
        assert_eq!(s.process(w), StorageResponse::Ok);
        // Outcomes come back in request order, not address order.
        assert_eq!(
            s.process(StorageRequest::ReadBatch { epoch: 0, addrs: vec![5, 0, 2, 1] }),
            StorageResponse::BatchOutcomes(vec![
                PageOutcome::Data(Bytes::from_static(b"five")),
                PageOutcome::Unwritten,
                PageOutcome::Junk,
                PageOutcome::Trimmed,
            ])
        );
        assert_eq!(
            s.process(StorageRequest::ReadBatch { epoch: 0, addrs: vec![] }),
            StorageResponse::BatchOutcomes(vec![])
        );
    }

    #[test]
    fn read_batch_epoch_gated_and_size_capped() {
        let s = server();
        assert_eq!(s.process(StorageRequest::Seal { epoch: 1 }), StorageResponse::Tail(0));
        assert_eq!(
            s.process(StorageRequest::ReadBatch { epoch: 0, addrs: vec![0] }),
            StorageResponse::ErrSealed { epoch: 1 }
        );
        let oversized = (0..=MAX_READ_BATCH as u64).collect();
        assert!(matches!(
            s.process(StorageRequest::ReadBatch { epoch: 1, addrs: oversized }),
            StorageResponse::ErrStorage(_)
        ));
    }

    #[test]
    fn handles_garbage_request_bytes() {
        let s = server();
        let resp = s.handle(&[0xFF, 0x00, 0x13]);
        let decoded: StorageResponse = decode_from_slice(&resp).unwrap();
        assert!(matches!(decoded, StorageResponse::ErrStorage(_)));
    }
}
