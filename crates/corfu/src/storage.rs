//! The storage server: an epoch gate in front of a [`FlashUnit`].

use parking_lot::Mutex;
use tango_flash::{FlashError, FlashUnit, PageRead};
use tango_metrics::Registry;
use tango_rpc::RpcHandler;
use tango_wire::{decode_from_slice, encode_to_vec};

use crate::metrics::StorageMetrics;
use crate::proto::{StorageRequest, StorageResponse, WriteKind};
use crate::Epoch;

/// A CORFU storage node: a write-once flash unit behind an RPC interface,
/// with epoch-based sealing (§5 failure handling).
///
/// Requests stamped with an epoch older than the node's current epoch are
/// rejected with `ErrSealed`, which forces clients racing a reconfiguration
/// to fetch the new projection. Requests stamped with a *newer* epoch are
/// also rejected: the node only advances its epoch through an explicit
/// `Seal`, which is how reconfiguration fences in-flight operations.
pub struct StorageServer {
    inner: Mutex<Inner>,
    metrics: StorageMetrics,
}

struct Inner {
    unit: FlashUnit,
    epoch: Epoch,
}

impl StorageServer {
    /// Wraps a flash unit. The server adopts the unit's persisted epoch.
    pub fn new(unit: FlashUnit) -> Self {
        let epoch = unit.epoch();
        Self { inner: Mutex::new(Inner { unit, epoch }), metrics: StorageMetrics::default() }
    }

    /// Records `corfu.storage.*` metrics into `registry` (off by default).
    /// Counts from every node bound to the same registry aggregate.
    pub fn with_metrics(mut self, registry: &Registry) -> Self {
        self.metrics = StorageMetrics::from_registry(registry);
        self
    }

    /// Creates an in-memory node with the given page size, for tests and the
    /// in-process cluster.
    pub fn in_memory(page_size: usize) -> Self {
        Self::new(FlashUnit::in_memory(page_size))
    }

    /// The node's current epoch.
    pub fn epoch(&self) -> Epoch {
        self.inner.lock().epoch
    }

    /// Wear statistics from the underlying unit.
    pub fn stats(&self) -> tango_flash::WearStats {
        self.inner.lock().unit.stats()
    }

    /// Processes a decoded request (also used directly by unit tests).
    pub fn process(&self, req: StorageRequest) -> StorageResponse {
        let mut inner = self.inner.lock();
        match req {
            StorageRequest::Write { epoch, addr, kind, payload } => {
                if let Err(resp) = inner.check_epoch(epoch) {
                    return resp;
                }
                let result = match kind {
                    WriteKind::Data => inner.unit.write(addr, &payload),
                    WriteKind::Junk => inner.unit.fill(addr),
                };
                match result {
                    Ok(()) => {
                        match kind {
                            WriteKind::Data => self.metrics.writes.inc(),
                            WriteKind::Junk => self.metrics.fills.inc(),
                        }
                        StorageResponse::Ok
                    }
                    Err(e) => Inner::flash_error(e),
                }
            }
            StorageRequest::Read { epoch, addr } => {
                if let Err(resp) = inner.check_epoch(epoch) {
                    return resp;
                }
                self.metrics.reads.inc();
                match inner.unit.read(addr) {
                    Ok(PageRead::Data(bytes)) => StorageResponse::Data(bytes),
                    Ok(PageRead::Junk) => StorageResponse::Junk,
                    Ok(PageRead::Unwritten) => StorageResponse::Unwritten,
                    Ok(PageRead::Trimmed) => StorageResponse::Trimmed,
                    Err(e) => Inner::flash_error(e),
                }
            }
            StorageRequest::Trim { epoch, addr } => {
                if let Err(resp) = inner.check_epoch(epoch) {
                    return resp;
                }
                match inner.unit.trim(addr) {
                    Ok(()) => {
                        self.metrics.trims.inc();
                        StorageResponse::Ok
                    }
                    Err(e) => Inner::flash_error(e),
                }
            }
            StorageRequest::TrimPrefix { epoch, horizon } => {
                if let Err(resp) = inner.check_epoch(epoch) {
                    return resp;
                }
                match inner.unit.trim_prefix(horizon) {
                    Ok(()) => {
                        self.metrics.trims.inc();
                        StorageResponse::Ok
                    }
                    Err(e) => Inner::flash_error(e),
                }
            }
            StorageRequest::Seal { epoch } => {
                if epoch <= inner.epoch {
                    return StorageResponse::ErrSealed { epoch: inner.epoch };
                }
                match inner.unit.seal(epoch) {
                    Ok(tail) => {
                        inner.epoch = epoch;
                        self.metrics.seals.inc();
                        StorageResponse::Tail(tail)
                    }
                    Err(e) => Inner::flash_error(e),
                }
            }
            StorageRequest::LocalTail { epoch } => {
                if let Err(resp) = inner.check_epoch(epoch) {
                    return resp;
                }
                StorageResponse::Tail(inner.unit.local_tail())
            }
        }
    }
}

impl Inner {
    fn check_epoch(&self, epoch: Epoch) -> Result<(), StorageResponse> {
        if epoch != self.epoch {
            Err(StorageResponse::ErrSealed { epoch: self.epoch })
        } else {
            Ok(())
        }
    }

    fn flash_error(e: FlashError) -> StorageResponse {
        match e {
            FlashError::AlreadyWritten { .. } => StorageResponse::ErrAlreadyWritten,
            FlashError::Trimmed { .. } => StorageResponse::ErrTrimmed,
            FlashError::Sealed { current_epoch } => {
                StorageResponse::ErrSealed { epoch: current_epoch }
            }
            FlashError::PageTooLarge { page_size, .. } => {
                StorageResponse::ErrTooLarge { max: page_size as u64 }
            }
            FlashError::Io(msg) | FlashError::Corrupt(msg) => StorageResponse::ErrStorage(msg),
        }
    }
}

impl RpcHandler for StorageServer {
    fn handle(&self, request: &[u8]) -> Vec<u8> {
        let response = match decode_from_slice::<StorageRequest>(request) {
            Ok(req) => self.process(req),
            Err(e) => StorageResponse::ErrStorage(format!("bad request: {e}")),
        };
        encode_to_vec(&response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn server() -> StorageServer {
        StorageServer::in_memory(4096)
    }

    #[test]
    fn write_read_roundtrip() {
        let s = server();
        let w = StorageRequest::Write {
            epoch: 0,
            addr: 3,
            kind: WriteKind::Data,
            payload: Bytes::from_static(b"entry"),
        };
        assert_eq!(s.process(w), StorageResponse::Ok);
        assert_eq!(
            s.process(StorageRequest::Read { epoch: 0, addr: 3 }),
            StorageResponse::Data(Bytes::from_static(b"entry"))
        );
        assert_eq!(
            s.process(StorageRequest::Read { epoch: 0, addr: 4 }),
            StorageResponse::Unwritten
        );
    }

    #[test]
    fn epoch_gate() {
        let s = server();
        assert_eq!(s.process(StorageRequest::Seal { epoch: 2 }), StorageResponse::Tail(0));
        // Old epoch rejected.
        assert_eq!(
            s.process(StorageRequest::Read { epoch: 0, addr: 0 }),
            StorageResponse::ErrSealed { epoch: 2 }
        );
        // Future epoch rejected too: only Seal advances the epoch.
        assert_eq!(
            s.process(StorageRequest::Read { epoch: 5, addr: 0 }),
            StorageResponse::ErrSealed { epoch: 2 }
        );
        // Current epoch accepted.
        assert_eq!(
            s.process(StorageRequest::Read { epoch: 2, addr: 0 }),
            StorageResponse::Unwritten
        );
        // Re-sealing at the same epoch fails.
        assert_eq!(
            s.process(StorageRequest::Seal { epoch: 2 }),
            StorageResponse::ErrSealed { epoch: 2 }
        );
    }

    #[test]
    fn write_once_arbitration_via_rpc() {
        let s = server();
        let write = |payload: &'static [u8]| StorageRequest::Write {
            epoch: 0,
            addr: 0,
            kind: WriteKind::Data,
            payload: Bytes::from_static(payload),
        };
        assert_eq!(s.process(write(b"first")), StorageResponse::Ok);
        assert_eq!(s.process(write(b"second")), StorageResponse::ErrAlreadyWritten);
        let fill = StorageRequest::Write {
            epoch: 0,
            addr: 0,
            kind: WriteKind::Junk,
            payload: Bytes::new(),
        };
        assert_eq!(s.process(fill), StorageResponse::ErrAlreadyWritten);
    }

    #[test]
    fn seal_returns_local_tail() {
        let s = server();
        for addr in 0..5 {
            let w = StorageRequest::Write {
                epoch: 0,
                addr,
                kind: WriteKind::Data,
                payload: Bytes::from_static(b"x"),
            };
            assert_eq!(s.process(w), StorageResponse::Ok);
        }
        assert_eq!(s.process(StorageRequest::Seal { epoch: 1 }), StorageResponse::Tail(5));
    }

    #[test]
    fn handles_garbage_request_bytes() {
        let s = server();
        let resp = s.handle(&[0xFF, 0x00, 0x13]);
        let decoded: StorageResponse = decode_from_slice(&resp).unwrap();
        assert!(matches!(decoded, StorageResponse::ErrStorage(_)));
    }
}
