//! The sequencer: a networked counter with per-stream backpointer state (§5).

use std::collections::HashMap;
use std::collections::VecDeque;

use parking_lot::Mutex;
use tango_metrics::Registry;
use tango_rpc::RpcHandler;
use tango_wire::{decode_from_slice, encode_to_vec, Decode, Encode, Reader, Writer};

use crate::metrics::SequencerMetrics;
use crate::proto::{SequencerRequest, SequencerResponse};
use crate::{compose, Epoch, LogOffset, StreamId};

/// Snapshot of sequencer state, used by reconfiguration to bootstrap a
/// replacement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SequencerState {
    /// The next offset to be issued.
    pub tail: LogOffset,
    /// Last-K issued offsets per stream, most recent first.
    pub streams: Vec<(StreamId, Vec<LogOffset>)>,
}

impl Encode for SequencerState {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.tail);
        w.put_varint(self.streams.len() as u64);
        for (id, offs) in &self.streams {
            w.put_u32(*id);
            w.put_varint(offs.len() as u64);
            for &o in offs {
                w.put_u64(o);
            }
        }
    }
}

impl Decode for SequencerState {
    fn decode(r: &mut Reader<'_>) -> tango_wire::Result<Self> {
        let tail = r.get_u64()?;
        let n = r.get_len(1 << 24)?;
        let mut streams = Vec::with_capacity(n);
        for _ in 0..n {
            let id = r.get_u32()?;
            let m = r.get_len(1 << 16)?;
            let mut offs = Vec::with_capacity(m);
            for _ in 0..m {
                offs.push(r.get_u64()?);
            }
            streams.push((id, offs));
        }
        Ok(Self { tail, streams })
    }
}

/// Upper bound on one `NextBatch` grant: far above any sane client batch,
/// small enough that a corrupt count cannot blow a hole in the log.
pub const MAX_TOKEN_BATCH: u32 = 1024;

/// The CORFU sequencer.
///
/// Holds a single 64-bit tail counter plus, for the streaming extension,
/// the last `K` offsets *issued* for each stream id (issued, not written:
/// a token holder may crash before writing, which is why stream playback
/// must tolerate junk at the end of a backpointer chain). The state is soft;
/// a replacement sequencer recovers it from the log (see [`crate::reconfig`]).
///
/// `NextBatch` grants `count` consecutive tokens in one round trip (§5's
/// sequencer batching); each token's backpointers are computed exactly as if
/// the batch had been `count` separate `Next` calls.
///
/// In a sharded deployment each log has its own sequencer, created with
/// [`SequencerServer::new_for_log`]. The tail counter and token offsets
/// stay *raw* (within-log), but the per-stream backpointers are stored and
/// returned as *composite* offsets (log id in the high bits): backpointer
/// chains are followed by readers, whose addressing is composite, and a
/// stream remapped to another log can carry its chain along verbatim via
/// `AdoptStream`. For log 0 composite equals raw, so single-log
/// deployments are unchanged.
pub struct SequencerServer {
    inner: Mutex<Inner>,
    k: usize,
    log_id: u32,
    metrics: SequencerMetrics,
}

struct Inner {
    epoch: Epoch,
    tail: LogOffset,
    streams: HashMap<StreamId, VecDeque<LogOffset>>,
    tokens_issued: u64,
}

impl SequencerServer {
    /// Creates a fresh sequencer at epoch 0 with `k` backpointers per
    /// stream, serving log 0.
    pub fn new(k: usize) -> Self {
        Self::new_for_log(k, 0)
    }

    /// Creates a fresh sequencer for log `log_id` of a sharded deployment.
    /// Issued offsets stay raw; backpointers are composed with `log_id`.
    pub fn new_for_log(k: usize, log_id: u32) -> Self {
        assert!(k >= 1, "at least one backpointer per stream is required");
        Self {
            inner: Mutex::new(Inner {
                epoch: 0,
                tail: 0,
                streams: HashMap::new(),
                tokens_issued: 0,
            }),
            k,
            log_id,
            metrics: SequencerMetrics::default(),
        }
    }

    /// Records `corfu.seq.*` metrics into `registry` (off by default).
    /// Names are scoped to this sequencer's log (log 0 keeps the bare
    /// names), so shard sequencers sharing one registry stay tellable
    /// apart.
    pub fn with_metrics(mut self, registry: &Registry) -> Self {
        self.metrics = SequencerMetrics::for_log(registry, self.log_id as u64);
        self
    }

    /// The number of backpointers maintained per stream.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Total tokens issued (for tests and benchmarks).
    pub fn tokens_issued(&self) -> u64 {
        self.inner.lock().tokens_issued
    }

    /// Processes a decoded request (also used directly by unit tests).
    pub fn process(&self, req: SequencerRequest) -> SequencerResponse {
        let span_kind = match req {
            SequencerRequest::Next { .. } | SequencerRequest::NextBatch { .. } => {
                tango_metrics::SpanKind::SeqGrant
            }
            SequencerRequest::Query { .. } => tango_metrics::SpanKind::SeqQuery,
            _ => tango_metrics::SpanKind::Other,
        };
        // Records only when the request arrived with a trace context.
        let _span = self.metrics.tracer.child(span_kind);
        let mut inner = self.inner.lock();
        match req {
            SequencerRequest::Next { epoch, streams } => {
                if epoch != inner.epoch {
                    return SequencerResponse::ErrSealed { epoch: inner.epoch };
                }
                let offset = inner.tail;
                inner.tail += 1;
                inner.tokens_issued += 1;
                let composite = compose(self.log_id, offset);
                let mut backpointers = Vec::with_capacity(streams.len());
                for stream in streams {
                    let entry = inner.streams.entry(stream).or_default();
                    backpointers.push(entry.iter().copied().collect());
                    entry.push_front(composite);
                    entry.truncate(self.k);
                }
                self.metrics.tokens_granted.inc();
                self.metrics.tail.set(inner.tail as i64);
                SequencerResponse::Token { offset, backpointers }
            }
            SequencerRequest::NextBatch { epoch, streams, count } => {
                if epoch != inner.epoch {
                    return SequencerResponse::ErrSealed { epoch: inner.epoch };
                }
                let count = count.clamp(1, MAX_TOKEN_BATCH) as u64;
                let start = inner.tail;
                inner.tail += count;
                inner.tokens_issued += count;
                let mut tokens = Vec::with_capacity(count as usize);
                for i in 0..count {
                    let composite = compose(self.log_id, start + i);
                    let mut backpointers = Vec::with_capacity(streams.len());
                    for &stream in &streams {
                        let entry = inner.streams.entry(stream).or_default();
                        backpointers.push(entry.iter().copied().collect());
                        entry.push_front(composite);
                        entry.truncate(self.k);
                    }
                    tokens.push(backpointers);
                }
                self.metrics.tokens_granted.add(count);
                self.metrics.batches_granted.inc();
                self.metrics.tail.set(inner.tail as i64);
                SequencerResponse::TokenBatch { start, tokens }
            }
            SequencerRequest::Query { epoch, streams } => {
                if epoch != inner.epoch {
                    return SequencerResponse::ErrSealed { epoch: inner.epoch };
                }
                let backpointers = streams
                    .iter()
                    .map(|s| {
                        inner
                            .streams
                            .get(s)
                            .map(|d| d.iter().copied().collect())
                            .unwrap_or_default()
                    })
                    .collect();
                self.metrics.backpointer_lookups.inc();
                SequencerResponse::TailInfo { tail: inner.tail, backpointers }
            }
            SequencerRequest::Seal { epoch } => {
                if epoch <= inner.epoch {
                    return SequencerResponse::ErrSealed { epoch: inner.epoch };
                }
                inner.epoch = epoch;
                self.metrics.seals.inc();
                self.metrics.epoch.set(epoch as i64);
                self.metrics.events.emit(
                    tango_metrics::EventKind::Sealed,
                    epoch,
                    self.log_id as u64,
                    inner.tail,
                );
                SequencerResponse::Ok
            }
            SequencerRequest::Dump { epoch } => {
                if epoch != inner.epoch {
                    return SequencerResponse::ErrSealed { epoch: inner.epoch };
                }
                let mut streams: Vec<(StreamId, Vec<LogOffset>)> = inner
                    .streams
                    .iter()
                    .map(|(&id, offs)| (id, offs.iter().copied().collect()))
                    .collect();
                streams.sort_by_key(|(id, _)| *id);
                SequencerResponse::State { tail: inner.tail, streams }
            }
            SequencerRequest::Bootstrap { epoch, tail, streams } => {
                if epoch < inner.epoch {
                    return SequencerResponse::ErrSealed { epoch: inner.epoch };
                }
                inner.epoch = epoch;
                inner.tail = tail;
                inner.streams = streams
                    .into_iter()
                    .map(|(id, offs)| (id, offs.into_iter().take(self.k).collect()))
                    .collect();
                self.metrics.epoch.set(epoch as i64);
                self.metrics.tail.set(tail as i64);
                SequencerResponse::Ok
            }
            SequencerRequest::AdoptStream { epoch, stream, backpointers } => {
                if epoch != inner.epoch {
                    return SequencerResponse::ErrSealed { epoch: inner.epoch };
                }
                // Merge: the adopted window is newest. Both logs are sealed
                // while the override is installed, so everything issued for
                // the stream since it last left this log lives in the source
                // log — any local leftover window (from a remap cycle that
                // brought the stream back) is strictly older and fills in
                // behind the adopted offsets.
                let entry = inner.streams.entry(stream).or_default();
                let mut merged: VecDeque<LogOffset> = backpointers.iter().copied().collect();
                for &b in entry.iter() {
                    if !merged.contains(&b) {
                        merged.push_back(b);
                    }
                }
                merged.truncate(self.k);
                *entry = merged;
                self.metrics.adoptions.inc();
                self.metrics.events.emit(
                    tango_metrics::EventKind::StreamAdopted,
                    epoch,
                    self.log_id as u64,
                    stream as u64,
                );
                SequencerResponse::Ok
            }
        }
    }

    /// Exports the current state (for tests; reconfiguration rebuilds state
    /// from the log instead, because a failed sequencer cannot be asked).
    pub fn state(&self) -> SequencerState {
        let inner = self.inner.lock();
        let mut streams: Vec<(StreamId, Vec<LogOffset>)> =
            inner.streams.iter().map(|(&id, offs)| (id, offs.iter().copied().collect())).collect();
        streams.sort_by_key(|(id, _)| *id);
        SequencerState { tail: inner.tail, streams }
    }
}

impl RpcHandler for SequencerServer {
    fn handle(&self, request: &[u8]) -> Vec<u8> {
        let response = match decode_from_slice::<SequencerRequest>(request) {
            Ok(req) => self.process(req),
            Err(_) => SequencerResponse::ErrSealed { epoch: u64::MAX },
        };
        encode_to_vec(&response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn issues_monotonic_offsets() {
        let s = SequencerServer::new(4);
        for expect in 0..10 {
            match s.process(SequencerRequest::Next { epoch: 0, streams: vec![] }) {
                SequencerResponse::Token { offset, .. } => assert_eq!(offset, expect),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(s.tokens_issued(), 10);
    }

    #[test]
    fn stream_backpointers_track_last_k() {
        let s = SequencerServer::new(2);
        let mut offsets = Vec::new();
        for _ in 0..4 {
            match s.process(SequencerRequest::Next { epoch: 0, streams: vec![7] }) {
                SequencerResponse::Token { offset, backpointers } => {
                    // Backpointers exclude the new offset and are most
                    // recent first, capped at K=2.
                    let expected: Vec<u64> = offsets.iter().rev().take(2).copied().collect();
                    assert_eq!(backpointers, vec![expected]);
                    offsets.push(offset);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn batch_matches_repeated_next() {
        // A NextBatch must be indistinguishable (offsets and backpointers)
        // from the same number of individual Next calls.
        let single = SequencerServer::new(3);
        let batched = SequencerServer::new(3);
        let streams = vec![1u32, 9];
        // Pre-seed both with some singles.
        for _ in 0..3 {
            single.process(SequencerRequest::Next { epoch: 0, streams: streams.clone() });
            batched.process(SequencerRequest::Next { epoch: 0, streams: streams.clone() });
        }
        let mut expect = Vec::new();
        for _ in 0..4 {
            match single.process(SequencerRequest::Next { epoch: 0, streams: streams.clone() }) {
                SequencerResponse::Token { offset, backpointers } => {
                    expect.push((offset, backpointers))
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        match batched.process(SequencerRequest::NextBatch {
            epoch: 0,
            streams: streams.clone(),
            count: 4,
        }) {
            SequencerResponse::TokenBatch { start, tokens } => {
                assert_eq!(start, 3);
                assert_eq!(tokens.len(), 4);
                for (i, backs) in tokens.into_iter().enumerate() {
                    assert_eq!((start + i as u64, backs), expect[i]);
                }
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(single.state(), batched.state());
        assert_eq!(batched.tokens_issued(), 7);
    }

    #[test]
    fn batch_count_clamped() {
        let s = SequencerServer::new(2);
        match s.process(SequencerRequest::NextBatch { epoch: 0, streams: vec![], count: 0 }) {
            SequencerResponse::TokenBatch { start, tokens } => {
                assert_eq!(start, 0);
                assert_eq!(tokens.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        match s.process(SequencerRequest::NextBatch { epoch: 0, streams: vec![], count: u32::MAX })
        {
            SequencerResponse::TokenBatch { start, tokens } => {
                assert_eq!(start, 1);
                assert_eq!(tokens.len(), MAX_TOKEN_BATCH as usize);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn batch_respects_seal() {
        let s = SequencerServer::new(2);
        assert_eq!(s.process(SequencerRequest::Seal { epoch: 2 }), SequencerResponse::Ok);
        assert_eq!(
            s.process(SequencerRequest::NextBatch { epoch: 0, streams: vec![], count: 4 }),
            SequencerResponse::ErrSealed { epoch: 2 }
        );
    }

    #[test]
    fn query_does_not_increment() {
        let s = SequencerServer::new(4);
        s.process(SequencerRequest::Next { epoch: 0, streams: vec![1] });
        let q = s.process(SequencerRequest::Query { epoch: 0, streams: vec![1, 2] });
        match q {
            SequencerResponse::TailInfo { tail, backpointers } => {
                assert_eq!(tail, 1);
                assert_eq!(backpointers, vec![vec![0], vec![]]);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Tail unchanged by the query.
        match s.process(SequencerRequest::Next { epoch: 0, streams: vec![] }) {
            SequencerResponse::Token { offset, .. } => assert_eq!(offset, 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn seal_stops_token_issue() {
        let s = SequencerServer::new(4);
        assert_eq!(s.process(SequencerRequest::Seal { epoch: 3 }), SequencerResponse::Ok);
        assert_eq!(
            s.process(SequencerRequest::Next { epoch: 0, streams: vec![] }),
            SequencerResponse::ErrSealed { epoch: 3 }
        );
        assert_eq!(
            s.process(SequencerRequest::Next { epoch: 3, streams: vec![] }),
            SequencerResponse::Token { offset: 0, backpointers: vec![] }
        );
    }

    #[test]
    fn sharded_sequencer_composes_backpointers() {
        let s = SequencerServer::new_for_log(4, 2);
        // Offsets are raw; backpointers carry the log id in the high bits.
        match s.process(SequencerRequest::Next { epoch: 0, streams: vec![7] }) {
            SequencerResponse::Token { offset, backpointers } => {
                assert_eq!(offset, 0);
                assert_eq!(backpointers, vec![vec![]]);
            }
            other => panic!("unexpected {other:?}"),
        }
        match s.process(SequencerRequest::Next { epoch: 0, streams: vec![7] }) {
            SequencerResponse::Token { offset, backpointers } => {
                assert_eq!(offset, 1);
                assert_eq!(backpointers, vec![vec![compose(2, 0)]]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn adopt_stream_merges_window() {
        let s = SequencerServer::new_for_log(3, 1);
        // Adopt a window from another log (composite offsets of log 0).
        let resp = s.process(SequencerRequest::AdoptStream {
            epoch: 0,
            stream: 9,
            backpointers: vec![40, 30, 20, 10],
        });
        assert_eq!(resp, SequencerResponse::Ok);
        match s.process(SequencerRequest::Query { epoch: 0, streams: vec![9] }) {
            SequencerResponse::TailInfo { backpointers, .. } => {
                // Truncated to K=3, order preserved (most recent first).
                assert_eq!(backpointers, vec![vec![40, 30, 20]]);
            }
            other => panic!("unexpected {other:?}"),
        }
        // New tokens in this log stack in front of the adopted window.
        s.process(SequencerRequest::Next { epoch: 0, streams: vec![9] });
        match s.process(SequencerRequest::Query { epoch: 0, streams: vec![9] }) {
            SequencerResponse::TailInfo { backpointers, .. } => {
                assert_eq!(backpointers, vec![vec![compose(1, 0), 40, 30]]);
            }
            other => panic!("unexpected {other:?}"),
        }
        // A later adoption (the stream coming back from another log) is
        // newer than any local leftover window: adopted offsets lead, the
        // stale local ones fill in behind.
        let resp = s.process(SequencerRequest::AdoptStream {
            epoch: 0,
            stream: 9,
            backpointers: vec![99, 98],
        });
        assert_eq!(resp, SequencerResponse::Ok);
        match s.process(SequencerRequest::Query { epoch: 0, streams: vec![9] }) {
            SequencerResponse::TailInfo { backpointers, .. } => {
                assert_eq!(backpointers, vec![vec![99, 98, compose(1, 0)]]);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Wrong epoch is rejected.
        assert_eq!(
            s.process(SequencerRequest::AdoptStream { epoch: 5, stream: 9, backpointers: vec![] }),
            SequencerResponse::ErrSealed { epoch: 0 }
        );
    }

    #[test]
    fn bootstrap_installs_state() {
        let s = SequencerServer::new(4);
        let resp = s.process(SequencerRequest::Bootstrap {
            epoch: 2,
            tail: 100,
            streams: vec![(5, vec![99, 97, 90, 80, 70])],
        });
        assert_eq!(resp, SequencerResponse::Ok);
        match s.process(SequencerRequest::Next { epoch: 2, streams: vec![5] }) {
            SequencerResponse::Token { offset, backpointers } => {
                assert_eq!(offset, 100);
                // Truncated to K=4.
                assert_eq!(backpointers, vec![vec![99, 97, 90, 80]]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
