#![warn(missing_docs)]
//! CORFU: a shared log over a cluster of write-once flash units (§2.2, §5).
//!
//! The log's global 64-bit address space is striped round-robin across
//! disjoint replica sets of storage nodes; a dedicated sequencer hands out
//! tail offsets. Appends acquire a token from the sequencer and then write
//! the entry to the replica set with client-driven chain replication; reads
//! go directly to the replicas. The sequencer is an optimization, not a
//! source of truth: write-once storage arbitrates races, holes left by
//! crashed clients are patched with junk fills, and the whole cluster can be
//! resealed into a new epoch to replace a failed sequencer.
//!
//! This crate provides:
//!
//! * [`Projection`] — the epoch-stamped cluster layout (replica sets +
//!   sequencer) and the deterministic offset→replica-set mapping.
//! * [`StorageServer`] / [`SequencerServer`] / [`LayoutServer`] — the three
//!   services, each an [`tango_rpc::RpcHandler`] usable over the in-process
//!   or TCP transport.
//! * [`CorfuClient`] — the client library: `append`, `read`, `check` (fast
//!   and slow), `fill`, `trim`, plus the token/raw-write split used by the
//!   streaming layer.
//! * [`EntryEnvelope`] — the on-log entry format, including the per-stream
//!   backpointer headers of §5 (they live here because the sequencer issues
//!   them and sequencer recovery must parse them).
//! * [`reconfig`] — seal-based reconfiguration: replacing a failed
//!   sequencer and rebuilding its tail + backpointer state from the log.
//! * [`cluster`] — an in-process or TCP cluster harness for tests, examples
//!   and benchmarks.

mod client;
pub mod cluster;
pub mod compactor;
mod entry;
mod error;
mod layout;
pub mod metrics;
mod projection;
pub mod proto;
pub mod reconfig;
mod sequencer;
mod storage;

pub use client::{AppendOutcome, ClientOptions, ConnFactory, CorfuClient, ReadOutcome, Token};
pub use compactor::{Compactor, CompactorConfig};
pub use entry::{CrossLogLink, EntryEnvelope, StreamHeader};
pub use error::CorfuError;
pub use layout::{LayoutClient, LayoutServer};
pub use projection::{LogLayout, NodeInfo, Projection, ShardMap};
pub use sequencer::{SequencerServer, SequencerState, MAX_TOKEN_BATCH};
pub use storage::{CompactionReport, StorageServer, MAX_READ_BATCH};

/// A reconfiguration epoch. All requests are epoch-stamped; sealed servers
/// reject stale epochs.
pub type Epoch = u64;

/// A position in the shared log's global address space.
///
/// With a sharded projection this is a *composite* offset: the top
/// [`LOG_SHIFT`]-to-64 bits carry the log id, the low [`LOG_SHIFT`] bits the
/// raw offset within that log (see [`compose`]). Log 0's composite offsets
/// equal its raw offsets, so single-log deployments never see the split.
pub type LogOffset = u64;

/// Bit position where the log id starts in a composite [`LogOffset`].
pub const LOG_SHIFT: u32 = 56;

/// Mask selecting the raw (within-log) part of a composite [`LogOffset`].
pub const LOG_OFFSET_MASK: u64 = (1u64 << LOG_SHIFT) - 1;

/// Builds a composite offset from a log id and a raw within-log offset.
#[inline]
pub fn compose(log: u32, raw: LogOffset) -> LogOffset {
    debug_assert!(raw <= LOG_OFFSET_MASK, "raw offset overflows 56 bits");
    ((log as u64) << LOG_SHIFT) | raw
}

/// The log id of a composite offset (0 for single-log offsets).
#[inline]
pub fn log_of_offset(offset: LogOffset) -> u32 {
    (offset >> LOG_SHIFT) as u32
}

/// The raw within-log part of a composite offset.
#[inline]
pub fn raw_of_offset(offset: LogOffset) -> LogOffset {
    offset & LOG_OFFSET_MASK
}

/// Identifies a storage or sequencer node within a projection.
pub type NodeId = u32;

/// A 31-bit stream identifier (§5). The high bit of the wire encoding is
/// reserved for the backpointer format flag.
pub type StreamId = u32;

/// Maximum legal stream id (31 bits).
pub const MAX_STREAM_ID: StreamId = (1 << 31) - 1;

/// Reserved stream carrying sequencer-state checkpoints (the optimization
/// §5 leaves as future work: "we plan on expediting this by having the
/// sequencer store periodic checkpoints in the log"). Applications must
/// not use this id.
pub const SEQUENCER_CHECKPOINT_STREAM: StreamId = MAX_STREAM_ID;

/// Convenience alias for CORFU results.
pub type Result<T> = std::result::Result<T, CorfuError>;
