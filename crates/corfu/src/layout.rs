//! The layout (auxiliary) service: stores the current projection and
//! arbitrates reconfiguration races with an epoch CAS.
//!
//! The paper's CORFU uses an auxiliary for membership; a single-node
//! CAS service captures its role here. (Making the auxiliary itself
//! replicated is orthogonal to Tango and out of scope.)

use std::sync::Arc;

use parking_lot::Mutex;
use tango_rpc::{ClientConn, RpcHandler};
use tango_wire::{decode_from_slice, encode_to_vec};

use crate::proto::{LayoutRequest, LayoutResponse};
use crate::{CorfuError, Projection, Result};

/// The layout server: holds the current projection.
pub struct LayoutServer {
    current: Mutex<Projection>,
}

impl LayoutServer {
    /// Creates a layout service seeded with the bootstrap projection.
    pub fn new(initial: Projection) -> Self {
        Self { current: Mutex::new(initial) }
    }

    /// Processes a decoded request.
    pub fn process(&self, req: LayoutRequest) -> LayoutResponse {
        match req {
            LayoutRequest::Get => LayoutResponse::Current(self.current.lock().clone()),
            LayoutRequest::Propose(p) => {
                let mut cur = self.current.lock();
                if p.epoch == cur.epoch + 1 {
                    *cur = p;
                    LayoutResponse::Installed
                } else {
                    LayoutResponse::Conflict(cur.clone())
                }
            }
        }
    }
}

impl RpcHandler for LayoutServer {
    fn handle(&self, request: &[u8]) -> Vec<u8> {
        let response = match decode_from_slice::<LayoutRequest>(request) {
            Ok(req) => self.process(req),
            Err(_) => LayoutResponse::Conflict(self.current.lock().clone()),
        };
        encode_to_vec(&response)
    }
}

/// Client stub for the layout service.
#[derive(Clone)]
pub struct LayoutClient {
    conn: Arc<dyn ClientConn>,
}

impl LayoutClient {
    /// Wraps a connection to the layout service.
    pub fn new(conn: Arc<dyn ClientConn>) -> Self {
        Self { conn }
    }

    fn call(&self, req: &LayoutRequest) -> Result<LayoutResponse> {
        let resp = self.conn.call(&encode_to_vec(req))?;
        Ok(decode_from_slice(&resp)?)
    }

    /// Fetches the current projection.
    pub fn get(&self) -> Result<Projection> {
        match self.call(&LayoutRequest::Get)? {
            LayoutResponse::Current(p) => Ok(p),
            other => Err(CorfuError::Layout(format!("unexpected response {other:?}"))),
        }
    }

    /// Proposes `p` (whose epoch must be current + 1). On a lost race,
    /// returns the winning projection as `Err`-free `Ok(Err(winner))`-style
    /// result: `Ok(None)` means installed, `Ok(Some(winner))` means lost.
    pub fn propose(&self, p: Projection) -> Result<Option<Projection>> {
        match self.call(&LayoutRequest::Propose(p))? {
            LayoutResponse::Installed => Ok(None),
            LayoutResponse::Conflict(winner) => Ok(Some(winner)),
            other => Err(CorfuError::Layout(format!("unexpected response {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeInfo;
    use tango_rpc::LocalConn;

    fn proj(epoch: u64) -> Projection {
        Projection {
            epoch,
            replica_sets: vec![vec![0]],
            sequencer: 1,
            nodes: vec![
                NodeInfo { id: 0, addr: "s0".into() },
                NodeInfo { id: 1, addr: "seq".into() },
            ],
        }
    }

    #[test]
    fn get_and_propose() {
        let server = Arc::new(LayoutServer::new(proj(0)));
        let client = LayoutClient::new(Arc::new(LocalConn::new(server)));
        assert_eq!(client.get().unwrap().epoch, 0);
        assert_eq!(client.propose(proj(1)).unwrap(), None);
        assert_eq!(client.get().unwrap().epoch, 1);
    }

    #[test]
    fn cas_rejects_stale_and_skipping_proposals() {
        let server = Arc::new(LayoutServer::new(proj(5)));
        let client = LayoutClient::new(Arc::new(LocalConn::new(server)));
        // Same epoch: conflict.
        assert_eq!(client.propose(proj(5)).unwrap().unwrap().epoch, 5);
        // Skipping ahead: conflict.
        assert_eq!(client.propose(proj(7)).unwrap().unwrap().epoch, 5);
        // Exactly +1: installed.
        assert_eq!(client.propose(proj(6)).unwrap(), None);
    }
}
