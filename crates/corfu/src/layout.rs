//! The layout (auxiliary) service: stores projections and arbitrates
//! reconfiguration races.
//!
//! The paper's CORFU delegates membership to an auxiliary. Two backends
//! capture its role here:
//!
//! - [`LayoutServer`]: the original single-node epoch-CAS service, kept for
//!   unit tests and minimal deployments.
//! - the **metalog** (`tango-meta`): a replicated write-once log of
//!   projection records where epoch *e* lives at metalog position *e* —
//!   the CORFU discipline turned inward on its own metadata. The epoch CAS
//!   becomes a write-once proposal at position `current + 1`, arbitrated by
//!   the replicas exactly like a data-plane address, so concurrent
//!   reconfigurations converge on the quorum winner.
//!
//! [`LayoutClient`] hides the distinction: both backends expose
//! `get`/`propose` with identical semantics, and both get bounded
//! exponential-backoff retry on transient transport failures (counted on
//! the `meta.retries` instrument).

use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use tango_meta::metrics::MetaMetrics;
use tango_meta::{MetaClient, MetaOptions};
use tango_metrics::Registry;
use tango_rpc::{ClientConn, RpcHandler};
use tango_wire::{decode_from_slice, encode_to_vec};

use crate::proto::{LayoutRequest, LayoutResponse};
use crate::{CorfuError, Projection, Result};

/// The single-node layout server: holds the current projection and
/// arbitrates proposals with an epoch CAS.
pub struct LayoutServer {
    current: Mutex<Projection>,
}

impl LayoutServer {
    /// Creates a layout service seeded with the bootstrap projection.
    pub fn new(initial: Projection) -> Self {
        Self { current: Mutex::new(initial) }
    }

    /// Processes a decoded request.
    pub fn process(&self, req: LayoutRequest) -> LayoutResponse {
        match req {
            LayoutRequest::Get => LayoutResponse::Current(self.current.lock().clone()),
            LayoutRequest::Propose(p) => {
                let mut cur = self.current.lock();
                if p.epoch == cur.epoch + 1 {
                    *cur = p;
                    LayoutResponse::Installed
                } else {
                    LayoutResponse::Conflict(cur.clone())
                }
            }
        }
    }
}

impl RpcHandler for LayoutServer {
    fn handle(&self, request: &[u8]) -> Vec<u8> {
        let response = match decode_from_slice::<LayoutRequest>(request) {
            Ok(req) => self.process(req),
            Err(e) => LayoutResponse::ErrMalformed { reason: e.to_string() },
        };
        encode_to_vec(&response)
    }
}

/// How a [`LayoutClient`] reaches the layout service.
#[derive(Clone)]
enum Backend {
    /// One [`LayoutServer`] behind one connection.
    Single { conn: Arc<dyn ClientConn>, opts: MetaOptions, metrics: MetaMetrics },
    /// A replicated metalog; projections are opaque records to it.
    Replicated(Arc<MetaClient>),
}

/// Client stub for the layout service, over either backend.
#[derive(Clone)]
pub struct LayoutClient {
    backend: Backend,
}

impl LayoutClient {
    /// Wraps a connection to a single-node layout service, with default
    /// retry options and disabled instruments.
    pub fn new(conn: Arc<dyn ClientConn>) -> Self {
        Self {
            backend: Backend::Single {
                conn,
                opts: MetaOptions::default(),
                metrics: MetaMetrics::default(),
            },
        }
    }

    /// Wraps a single-node connection with explicit retry options.
    pub fn with_options(conn: Arc<dyn ClientConn>, opts: MetaOptions) -> Self {
        Self { backend: Backend::Single { conn, opts, metrics: MetaMetrics::default() } }
    }

    /// A client over a replicated metalog. Projections are stored at their
    /// epoch's metalog position; retry, failover, and discovery live in the
    /// [`MetaClient`].
    pub fn replicated(meta: Arc<MetaClient>) -> Self {
        Self { backend: Backend::Replicated(meta) }
    }

    /// Binds the single-node backend's `meta.*` instruments in `registry`
    /// (the replicated backend's instruments are bound on its
    /// [`MetaClient`]).
    pub fn with_metrics(mut self, registry: &Registry) -> Self {
        if let Backend::Single { metrics, .. } = &mut self.backend {
            *metrics = MetaMetrics::from_registry(registry);
        }
        self
    }

    /// The underlying metalog client, if this is a replicated-backend stub
    /// (operations plumbing: replica catch-up and peer installation).
    pub fn meta(&self) -> Option<&Arc<MetaClient>> {
        match &self.backend {
            Backend::Replicated(meta) => Some(meta),
            Backend::Single { .. } => None,
        }
    }

    /// One request against the single-node backend, with bounded
    /// exponential-backoff retry on transport failures.
    fn call_single(
        conn: &Arc<dyn ClientConn>,
        opts: &MetaOptions,
        metrics: &MetaMetrics,
        req: &LayoutRequest,
    ) -> Result<LayoutResponse> {
        let mut backoff = opts.backoff_base;
        let mut attempt = 0u32;
        loop {
            match conn.call(&encode_to_vec(req)) {
                Ok(bytes) => {
                    return match decode_from_slice::<LayoutResponse>(&bytes)? {
                        LayoutResponse::ErrMalformed { reason } => Err(CorfuError::Layout(
                            format!("layout server rejected request as malformed: {reason}"),
                        )),
                        resp => Ok(resp),
                    };
                }
                Err(e) => {
                    if attempt >= opts.max_retries {
                        return Err(e.into());
                    }
                    attempt += 1;
                    metrics.retries.inc();
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(opts.backoff_max);
                }
            }
        }
    }

    /// Fetches the current projection.
    pub fn get(&self) -> Result<Projection> {
        match &self.backend {
            Backend::Single { conn, opts, metrics } => {
                match Self::call_single(conn, opts, metrics, &LayoutRequest::Get)? {
                    LayoutResponse::Current(p) => Ok(p),
                    other => Err(CorfuError::Layout(format!("unexpected response {other:?}"))),
                }
            }
            Backend::Replicated(meta) => {
                let (pos, record) = meta.latest()?;
                let p: Projection = decode_from_slice(&record)?;
                if p.epoch != pos {
                    return Err(CorfuError::Layout(format!(
                        "metalog position {pos} holds projection for epoch {}",
                        p.epoch
                    )));
                }
                Ok(p)
            }
        }
    }

    /// Proposes `p` (whose epoch must be current + 1). `Ok(None)` means it
    /// was installed; `Ok(Some(winner))` means a concurrent reconfiguration
    /// won — adopt the winner and carry on.
    pub fn propose(&self, p: Projection) -> Result<Option<Projection>> {
        match &self.backend {
            Backend::Single { conn, opts, metrics } => {
                match Self::call_single(conn, opts, metrics, &LayoutRequest::Propose(p))? {
                    LayoutResponse::Installed => Ok(None),
                    LayoutResponse::Conflict(winner) => Ok(Some(winner)),
                    other => Err(CorfuError::Layout(format!("unexpected response {other:?}"))),
                }
            }
            Backend::Replicated(meta) => {
                // The epoch CAS, restated over a write-once log: epoch e's
                // projection is the record decided at position e, so
                // "install at current + 1" is a write-once proposal there.
                let current = self.get()?;
                if p.epoch != current.epoch + 1 {
                    return Ok(Some(current));
                }
                match meta.propose_at(p.epoch, Bytes::from(encode_to_vec(&p)))? {
                    None => Ok(None),
                    Some(winner) => Ok(Some(decode_from_slice(&winner)?)),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeInfo;
    use tango_meta::{MetaNode, ReplicaInfo};
    use tango_rpc::LocalConn;

    fn proj(epoch: u64) -> Projection {
        Projection::single(
            epoch,
            vec![vec![0]],
            1,
            vec![NodeInfo { id: 0, addr: "s0".into() }, NodeInfo { id: 1, addr: "seq".into() }],
        )
    }

    #[test]
    fn get_and_propose() {
        let server = Arc::new(LayoutServer::new(proj(0)));
        let client = LayoutClient::new(Arc::new(LocalConn::new(server)));
        assert_eq!(client.get().unwrap().epoch, 0);
        assert_eq!(client.propose(proj(1)).unwrap(), None);
        assert_eq!(client.get().unwrap().epoch, 1);
    }

    #[test]
    fn cas_rejects_stale_and_skipping_proposals() {
        let server = Arc::new(LayoutServer::new(proj(5)));
        let client = LayoutClient::new(Arc::new(LocalConn::new(server)));
        // Same epoch: conflict.
        assert_eq!(client.propose(proj(5)).unwrap().unwrap().epoch, 5);
        // Skipping ahead: conflict.
        assert_eq!(client.propose(proj(7)).unwrap().unwrap().epoch, 5);
        // Exactly +1: installed.
        assert_eq!(client.propose(proj(6)).unwrap(), None);
    }

    #[test]
    fn malformed_requests_get_a_typed_error_not_a_conflict() {
        let server = Arc::new(LayoutServer::new(proj(0)));
        let resp = server.handle(&[0xFF, 0xFF]);
        match decode_from_slice::<LayoutResponse>(&resp).unwrap() {
            LayoutResponse::ErrMalformed { reason } => assert!(!reason.is_empty()),
            other => panic!("expected ErrMalformed, got {other:?}"),
        }
    }

    fn replicated_client() -> (Vec<Arc<MetaNode>>, LayoutClient) {
        let nodes: Vec<Arc<MetaNode>> = (0..3).map(|_| Arc::new(MetaNode::new())).collect();
        let replicas: Vec<ReplicaInfo> =
            (0..3).map(|i| ReplicaInfo { id: i, addr: format!("meta-{i}") }).collect();
        for node in &nodes {
            node.bootstrap(Bytes::from(encode_to_vec(&proj(0))));
            node.set_peers(replicas.clone());
        }
        let dial_nodes = nodes.clone();
        let meta = Arc::new(MetaClient::new(
            replicas,
            Arc::new(move |replica: &ReplicaInfo| -> Arc<dyn ClientConn> {
                Arc::new(LocalConn::new(dial_nodes[replica.id as usize].clone()))
            }),
        ));
        (nodes, LayoutClient::replicated(meta))
    }

    #[test]
    fn replicated_backend_matches_single_node_semantics() {
        let (_nodes, client) = replicated_client();
        assert_eq!(client.get().unwrap().epoch, 0);
        assert_eq!(client.propose(proj(1)).unwrap(), None);
        assert_eq!(client.get().unwrap().epoch, 1);
        // Same epoch: conflict with the incumbent.
        assert_eq!(client.propose(proj(1)).unwrap().unwrap().epoch, 1);
        // Skipping ahead: conflict.
        assert_eq!(client.propose(proj(5)).unwrap().unwrap().epoch, 1);
        // Exactly +1: installed.
        assert_eq!(client.propose(proj(2)).unwrap(), None);
        assert_eq!(client.get().unwrap().epoch, 2);
    }

    #[test]
    fn replicated_propose_race_has_one_winner() {
        let (_nodes, client) = replicated_client();
        let a = proj(1);
        let mut b = proj(1);
        b.logs[0].sequencer = 0;
        let ra = client.propose(a.clone()).unwrap();
        let rb = client.propose(b.clone()).unwrap();
        // The first proposal installed; the second observed it.
        assert_eq!(ra, None);
        assert_eq!(rb, Some(a.clone()));
        assert_eq!(client.get().unwrap(), a);
    }
}
