//! The on-log entry format: per-stream backpointer headers + payload (§5).
//!
//! Each entry carries a small header per stream it belongs to. A header
//! holds the 31-bit stream id and backpointers to the previous K entries of
//! that stream, in one of two formats selected per header by the id's high
//! bit: 2-byte deltas relative to the entry's own offset (compact, but a
//! delta overflows if the previous entry is more than 64K entries back) or
//! 8-byte absolute offsets (at most K/4 of them, so the header size is
//! unchanged). The entry's own offset is therefore needed to decode relative
//! headers, which is fine: readers always know the offset they just read.

use bytes::Bytes;
use tango_wire::{Reader, Writer};

use crate::{CorfuError, LogOffset, Result, StreamId, MAX_STREAM_ID};

const ENTRY_MAGIC: u8 = 0xE7;
/// Magic for entries carrying a cross-log link section. Entries without a
/// link keep [`ENTRY_MAGIC`] and encode byte-identically to the pre-link
/// format.
const ENTRY_MAGIC_LINKED: u8 = 0xE8;
const FMT_ABSOLUTE: u32 = 1 << 31;

/// Links the per-log parts of one cross-log `multiappend` together (§4 OCC
/// applied across logs). Every part of the multiappend — one entry per
/// participating log — carries the same link. The part whose own offset
/// equals `home` is the *anchor*: it is written last, and its write-once
/// success or failure IS the atomic commit/abort decision for the whole
/// multiappend. A reader that encounters a non-anchor part resolves it by
/// reading `home`: a data entry there carrying this same link means the
/// multiappend committed (deliver the part); junk or an unrelated entry
/// means it aborted (skip the part like junk). Write-once storage makes
/// either resolution permanent, so replays decide identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrossLogLink {
    /// Composite offset of the anchor part.
    pub home: LogOffset,
    /// Composite offsets of every part (including the anchor), ascending.
    pub parts: Vec<LogOffset>,
}

/// A decoded per-stream header: the stream id and absolute backpointers to
/// the previous entries of that stream (most recent first). An offset of
/// `u64::MAX` means "no previous entry".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamHeader {
    /// The stream this entry belongs to.
    pub stream: StreamId,
    /// Absolute offsets of the previous K entries in this stream, most
    /// recent first. May be shorter than K if the stream is young.
    pub backpointers: Vec<LogOffset>,
}

/// A log entry as stored on the storage nodes: stream headers + payload,
/// plus an optional cross-log link when the entry is one part of a
/// multiappend that spans logs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntryEnvelope {
    /// One header per stream the entry belongs to (empty for raw appends).
    pub headers: Vec<StreamHeader>,
    /// The application payload.
    pub payload: Bytes,
    /// Present iff this entry is part of a cross-log multiappend.
    pub link: Option<CrossLogLink>,
}

impl EntryEnvelope {
    /// Creates an envelope with no stream membership.
    pub fn raw(payload: Bytes) -> Self {
        Self { headers: Vec::new(), payload, link: None }
    }

    /// Returns the header for `stream`, if the entry belongs to it.
    pub fn header_for(&self, stream: StreamId) -> Option<&StreamHeader> {
        self.headers.iter().find(|h| h.stream == stream)
    }

    /// Returns true if the entry belongs to `stream`.
    pub fn belongs_to(&self, stream: StreamId) -> bool {
        self.header_for(stream).is_some()
    }

    /// Encodes the envelope for storage at `offset`. Backpointer deltas are
    /// computed relative to `offset`; any delta that does not fit in 16 bits
    /// switches that header to the absolute format (truncated to K/4
    /// pointers, minimum 1, matching §5).
    pub fn encode(&self, offset: LogOffset) -> Result<Vec<u8>> {
        let mut w = Writer::with_capacity(self.payload.len() + 16 + self.headers.len() * 16);
        w.put_u8(if self.link.is_some() { ENTRY_MAGIC_LINKED } else { ENTRY_MAGIC });
        w.put_u8(self.headers.len() as u8);
        if self.headers.len() > u8::MAX as usize {
            return Err(CorfuError::Codec("too many stream headers".into()));
        }
        for h in &self.headers {
            if h.stream > MAX_STREAM_ID {
                return Err(CorfuError::Codec(format!("stream id {} exceeds 31 bits", h.stream)));
            }
            let relative_ok = h
                .backpointers
                .iter()
                .all(|&b| b == u64::MAX || (b < offset && offset - b <= u16::MAX as u64));
            if relative_ok {
                w.put_u32(h.stream);
                w.put_u8(h.backpointers.len() as u8);
                for &b in &h.backpointers {
                    // Delta 0 encodes "no previous entry".
                    let delta = if b == u64::MAX { 0 } else { (offset - b) as u16 };
                    w.put_u16(delta);
                }
            } else {
                w.put_u32(h.stream | FMT_ABSOLUTE);
                let keep = (h.backpointers.len() / 4).max(1).min(h.backpointers.len());
                w.put_u8(keep as u8);
                for &b in h.backpointers.iter().take(keep) {
                    w.put_u64(b);
                }
            }
        }
        if let Some(link) = &self.link {
            w.put_u64(link.home);
            w.put_varint(link.parts.len() as u64);
            for &p in &link.parts {
                w.put_u64(p);
            }
        }
        w.put_bytes(&self.payload);
        Ok(w.into_vec())
    }

    /// Decodes an envelope read from `offset`.
    pub fn decode(bytes: &[u8], offset: LogOffset) -> Result<Self> {
        let mut r = Reader::new(bytes);
        let magic = r.get_u8()?;
        if magic != ENTRY_MAGIC && magic != ENTRY_MAGIC_LINKED {
            return Err(CorfuError::Codec(format!("bad entry magic {magic:#x} at {offset}")));
        }
        let nheaders = r.get_u8()? as usize;
        let mut headers = Vec::with_capacity(nheaders);
        for _ in 0..nheaders {
            let id_fmt = r.get_u32()?;
            let stream = id_fmt & MAX_STREAM_ID;
            let nback = r.get_u8()? as usize;
            let mut backpointers = Vec::with_capacity(nback);
            if id_fmt & FMT_ABSOLUTE != 0 {
                for _ in 0..nback {
                    backpointers.push(r.get_u64()?);
                }
            } else {
                for _ in 0..nback {
                    let delta = r.get_u16()?;
                    backpointers.push(if delta == 0 {
                        u64::MAX
                    } else {
                        offset
                            .checked_sub(delta as u64)
                            .ok_or_else(|| CorfuError::Codec("backpointer underflow".into()))?
                    });
                }
            }
            headers.push(StreamHeader { stream, backpointers });
        }
        let link = if magic == ENTRY_MAGIC_LINKED {
            let home = r.get_u64()?;
            let nparts = r.get_len(256)?;
            let mut parts = Vec::with_capacity(nparts);
            for _ in 0..nparts {
                parts.push(r.get_u64()?);
            }
            Some(CrossLogLink { home, parts })
        } else {
            None
        };
        let payload = Bytes::copy_from_slice(r.get_bytes()?);
        if !r.is_empty() {
            return Err(CorfuError::Codec("trailing bytes after entry payload".into()));
        }
        Ok(Self { headers, payload, link })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_roundtrip() {
        let e = EntryEnvelope::raw(Bytes::from_static(b"payload"));
        let bytes = e.encode(42).unwrap();
        assert_eq!(EntryEnvelope::decode(&bytes, 42).unwrap(), e);
    }

    #[test]
    fn relative_backpointers_roundtrip() {
        let e = EntryEnvelope {
            headers: vec![
                StreamHeader { stream: 7, backpointers: vec![99, 95, 80, 2] },
                StreamHeader { stream: 9, backpointers: vec![u64::MAX] },
            ],
            payload: Bytes::from_static(b"x"),
            link: None,
        };
        let bytes = e.encode(100).unwrap();
        let back = EntryEnvelope::decode(&bytes, 100).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn absolute_format_on_large_delta() {
        // Previous entry is 1M entries back: the relative format overflows.
        let e = EntryEnvelope {
            headers: vec![StreamHeader { stream: 3, backpointers: vec![1_000, 900, 800, 700] }],
            payload: Bytes::new(),
            link: None,
        };
        let bytes = e.encode(2_000_000).unwrap();
        let back = EntryEnvelope::decode(&bytes, 2_000_000).unwrap();
        // Absolute format keeps K/4 = 1 pointer.
        assert_eq!(back.headers[0].backpointers, vec![1_000]);
        assert_eq!(back.headers[0].stream, 3);
    }

    #[test]
    fn mixed_formats_per_header() {
        let e = EntryEnvelope {
            headers: vec![
                StreamHeader { stream: 1, backpointers: vec![999_999] }, // near: relative
                StreamHeader { stream: 2, backpointers: vec![5, 4, 3, 2] }, // far: absolute
            ],
            payload: Bytes::from_static(b"p"),
            link: None,
        };
        let bytes = e.encode(1_000_000).unwrap();
        let back = EntryEnvelope::decode(&bytes, 1_000_000).unwrap();
        assert_eq!(back.headers[0].backpointers, vec![999_999]);
        assert_eq!(back.headers[1].backpointers, vec![5]);
    }

    #[test]
    fn header_lookup() {
        let e = EntryEnvelope {
            headers: vec![StreamHeader { stream: 1, backpointers: vec![] }],
            payload: Bytes::new(),
            link: None,
        };
        assert!(e.belongs_to(1));
        assert!(!e.belongs_to(2));
    }

    #[test]
    fn stream_id_31_bit_enforced() {
        let e = EntryEnvelope {
            headers: vec![StreamHeader { stream: 1 << 31, backpointers: vec![] }],
            payload: Bytes::new(),
            link: None,
        };
        assert!(e.encode(0).is_err());
    }

    #[test]
    fn linked_roundtrip_and_unlinked_bytes_unchanged() {
        let link = CrossLogLink { home: (2u64 << 56) | 7, parts: vec![5, (2u64 << 56) | 7] };
        let e = EntryEnvelope {
            headers: vec![StreamHeader { stream: 4, backpointers: vec![u64::MAX] }],
            payload: Bytes::from_static(b"body"),
            link: Some(link),
        };
        let bytes = e.encode(5).unwrap();
        assert_eq!(EntryEnvelope::decode(&bytes, 5).unwrap(), e);
        // An entry without a link still starts with the original magic.
        let plain = EntryEnvelope::raw(Bytes::from_static(b"x")).encode(0).unwrap();
        assert_eq!(plain[0], ENTRY_MAGIC);
        assert_eq!(bytes[0], ENTRY_MAGIC_LINKED);
    }

    #[test]
    fn garbage_rejected() {
        assert!(EntryEnvelope::decode(b"", 0).is_err());
        assert!(EntryEnvelope::decode(b"\xFF\x00", 0).is_err());
        let mut good = EntryEnvelope::raw(Bytes::from_static(b"ok")).encode(5).unwrap();
        good.push(0xAA);
        assert!(EntryEnvelope::decode(&good, 5).is_err());
    }
}
