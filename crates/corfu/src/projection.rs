use tango_wire::{Decode, Encode, Reader, Writer};

use crate::{Epoch, LogOffset, NodeId};

/// Connection information for one node in the cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeInfo {
    /// The node's identifier within the projection.
    pub id: NodeId,
    /// The node's transport address (`host:port` for TCP deployments; a
    /// symbolic name for in-process clusters).
    pub addr: String,
}

impl Encode for NodeInfo {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.id);
        w.put_str(&self.addr);
    }
}

impl Decode for NodeInfo {
    fn decode(r: &mut Reader<'_>) -> tango_wire::Result<Self> {
        Ok(Self { id: r.get_u32()?, addr: r.get_str()?.to_owned() })
    }
}

/// The epoch-stamped cluster layout (§2.2): disjoint replica sets of storage
/// nodes, the sequencer, and the deterministic mapping from global log
/// offsets to (replica set, local page address).
///
/// Offset `o` maps to replica set `o % num_sets` at local address
/// `o / num_sets` — the round-robin striping described in the paper ("offset
/// 0 might be mapped to A:0, offset 1 to B:0, and so on until the function
/// wraps back to A:1").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Projection {
    /// The configuration epoch. Servers sealed at a newer epoch reject
    /// requests stamped with this one.
    pub epoch: Epoch,
    /// Replica sets; each inner vector is a chain (head first).
    pub replica_sets: Vec<Vec<NodeId>>,
    /// The current sequencer node.
    pub sequencer: NodeId,
    /// Address book for every node referenced above.
    pub nodes: Vec<NodeInfo>,
}

impl Projection {
    /// The number of replica sets the address space stripes over.
    pub fn num_sets(&self) -> u64 {
        self.replica_sets.len() as u64
    }

    /// Maps a global offset to its replica set index and local page address.
    pub fn map(&self, offset: LogOffset) -> (usize, u64) {
        let sets = self.num_sets();
        ((offset % sets) as usize, offset / sets)
    }

    /// The chain (head-first node ids) responsible for `offset`.
    pub fn chain_for(&self, offset: LogOffset) -> &[NodeId] {
        &self.replica_sets[self.map(offset).0]
    }

    /// Inverse of [`Projection::map`]: the global offset stored by replica
    /// set `set` at local address `local`.
    pub fn unmap(&self, set: usize, local: u64) -> LogOffset {
        local * self.num_sets() + set as u64
    }

    /// Given each set's local tail (next free local address), computes the
    /// global tail: one past the highest consumed global offset. This is the
    /// "slow check" inversion (§2.2).
    pub fn global_tail_from_local(&self, local_tails: &[u64]) -> LogOffset {
        let mut tail = 0;
        for (set, &lt) in local_tails.iter().enumerate() {
            if lt > 0 {
                tail = tail.max(self.unmap(set, lt - 1) + 1);
            }
        }
        tail
    }

    /// For a prefix trim of all global offsets below `horizon`, the local
    /// horizon (first local address to keep) for replica set `set`.
    pub fn local_trim_horizon(&self, set: usize, horizon: LogOffset) -> u64 {
        if horizon == 0 {
            return 0;
        }
        let sets = self.num_sets();
        let set = set as u64;
        // Count global offsets o < horizon with o % sets == set.
        if horizon <= set {
            0
        } else {
            (horizon - 1 - set) / sets + 1
        }
    }

    /// Looks up the address of a node.
    pub fn addr_of(&self, id: NodeId) -> Option<&str> {
        self.nodes.iter().find(|n| n.id == id).map(|n| n.addr.as_str())
    }

    /// The projection after splicing `replacement` into every chain
    /// position held by `dead`, at the next epoch. `dead` leaves the
    /// address book; `replacement` joins it. The striping function is
    /// untouched, so every global offset keeps its (set, local) mapping —
    /// only the node serving `dead`'s position changes.
    pub fn with_replaced_node(&self, dead: NodeId, replacement: &NodeInfo) -> Projection {
        let replica_sets = self
            .replica_sets
            .iter()
            .map(|set| set.iter().map(|&n| if n == dead { replacement.id } else { n }).collect())
            .collect();
        let mut nodes: Vec<NodeInfo> =
            self.nodes.iter().filter(|n| n.id != dead).cloned().collect();
        if nodes.iter().all(|n| n.id != replacement.id) {
            nodes.push(replacement.clone());
        }
        Projection { epoch: self.epoch + 1, replica_sets, sequencer: self.sequencer, nodes }
    }

    /// All distinct storage node ids (excluding the sequencer).
    pub fn storage_nodes(&self) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self.replica_sets.iter().flatten().copied().collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

impl Encode for Projection {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.epoch);
        w.put_varint(self.replica_sets.len() as u64);
        for set in &self.replica_sets {
            w.put_varint(set.len() as u64);
            for &node in set {
                w.put_u32(node);
            }
        }
        w.put_u32(self.sequencer);
        self.nodes.encode(w);
    }
}

impl Decode for Projection {
    fn decode(r: &mut Reader<'_>) -> tango_wire::Result<Self> {
        let epoch = r.get_u64()?;
        let nsets = r.get_len(1 << 16)?;
        let mut replica_sets = Vec::with_capacity(nsets);
        for _ in 0..nsets {
            let len = r.get_len(1 << 8)?;
            let mut set = Vec::with_capacity(len);
            for _ in 0..len {
                set.push(r.get_u32()?);
            }
            replica_sets.push(set);
        }
        let sequencer = r.get_u32()?;
        let nodes = Vec::<NodeInfo>::decode(r)?;
        Ok(Self { epoch, replica_sets, sequencer, nodes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proj(nsets: usize, repl: usize) -> Projection {
        let mut replica_sets = Vec::new();
        let mut nodes = Vec::new();
        let mut next = 0u32;
        for _ in 0..nsets {
            let mut set = Vec::new();
            for _ in 0..repl {
                set.push(next);
                nodes.push(NodeInfo { id: next, addr: format!("node-{next}") });
                next += 1;
            }
            replica_sets.push(set);
        }
        nodes.push(NodeInfo { id: 1000, addr: "seq".into() });
        Projection { epoch: 1, replica_sets, sequencer: 1000, nodes }
    }

    #[test]
    fn round_robin_mapping() {
        let p = proj(3, 2);
        assert_eq!(p.map(0), (0, 0));
        assert_eq!(p.map(1), (1, 0));
        assert_eq!(p.map(2), (2, 0));
        assert_eq!(p.map(3), (0, 1));
        assert_eq!(p.map(7), (1, 2));
        for o in 0..100 {
            let (s, l) = p.map(o);
            assert_eq!(p.unmap(s, l), o);
        }
    }

    #[test]
    fn slow_check_inversion() {
        let p = proj(3, 2);
        // Sets have consumed local slots: set0 -> 2 (offsets 0,3), set1 -> 1
        // (offset 1), set2 -> 0.
        assert_eq!(p.global_tail_from_local(&[2, 1, 0]), 4);
        assert_eq!(p.global_tail_from_local(&[0, 0, 0]), 0);
        // Highest consumed is offset 5 (set2, local 1) -> tail 6.
        assert_eq!(p.global_tail_from_local(&[1, 1, 2]), 6);
    }

    #[test]
    fn trim_horizons() {
        let p = proj(3, 1);
        // horizon 7: offsets 0..6. set0 holds 0,3,6 -> keep from local 3;
        // set1 holds 1,4 -> 2; set2 holds 2,5 -> 2.
        assert_eq!(p.local_trim_horizon(0, 7), 3);
        assert_eq!(p.local_trim_horizon(1, 7), 2);
        assert_eq!(p.local_trim_horizon(2, 7), 2);
        assert_eq!(p.local_trim_horizon(0, 0), 0);
        assert_eq!(p.local_trim_horizon(2, 2), 0);
        assert_eq!(p.local_trim_horizon(2, 3), 1);
    }

    #[test]
    fn encode_roundtrip() {
        let p = proj(4, 3);
        let bytes = tango_wire::encode_to_vec(&p);
        let back: Projection = tango_wire::decode_from_slice(&bytes).unwrap();
        assert_eq!(back, p);
    }
}
