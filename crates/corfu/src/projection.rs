use tango_wire::{Decode, Encode, Reader, Writer};

use crate::{compose, log_of_offset, raw_of_offset, Epoch, LogOffset, NodeId, StreamId};

/// Connection information for one node in the cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeInfo {
    /// The node's identifier within the projection.
    pub id: NodeId,
    /// The node's transport address (`host:port` for TCP deployments; a
    /// symbolic name for in-process clusters).
    pub addr: String,
}

impl Encode for NodeInfo {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.id);
        w.put_str(&self.addr);
    }
}

impl Decode for NodeInfo {
    fn decode(r: &mut Reader<'_>) -> tango_wire::Result<Self> {
        Ok(Self { id: r.get_u32()?, addr: r.get_str()?.to_owned() })
    }
}

/// The layout of one log of the sharded namespace: its replica sets, its
/// sequencer, and its own sealing epoch.
///
/// Within a log, raw offset `o` maps to replica set `o % num_sets` at local
/// address `o / num_sets` — the round-robin striping described in the paper
/// ("offset 0 might be mapped to A:0, offset 1 to B:0, and so on until the
/// function wraps back to A:1").
///
/// Per-log epochs let one log reconfigure (seal → new layout) without
/// disturbing the others: requests to this log's storage nodes and
/// sequencer are stamped with `epoch`, and only those nodes are resealed
/// when it changes. The projection's *global* epoch (the metalog position)
/// still advances on every reconfiguration of any log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogLayout {
    /// This log's sealing epoch. Stamped on requests to this log's storage
    /// nodes and sequencer; bumped when (and only when) this log is sealed.
    pub epoch: Epoch,
    /// Replica sets; each inner vector is a chain (head first).
    pub replica_sets: Vec<Vec<NodeId>>,
    /// This log's sequencer node.
    pub sequencer: NodeId,
}

impl LogLayout {
    /// The number of replica sets this log's raw address space stripes over.
    pub fn num_sets(&self) -> u64 {
        self.replica_sets.len() as u64
    }

    /// Maps a raw (per-log) offset to its replica set index and local page
    /// address within this log.
    pub fn map(&self, raw: LogOffset) -> (usize, u64) {
        let sets = self.num_sets();
        ((raw % sets) as usize, raw / sets)
    }

    /// The chain (head-first node ids) responsible for raw offset `raw`.
    pub fn chain_for(&self, raw: LogOffset) -> &[NodeId] {
        &self.replica_sets[self.map(raw).0]
    }

    /// Inverse of [`LogLayout::map`]: the raw offset stored by replica set
    /// `set` at local address `local`.
    pub fn unmap(&self, set: usize, local: u64) -> LogOffset {
        local * self.num_sets() + set as u64
    }

    /// Given each set's local tail (next free local address), computes this
    /// log's tail: one past the highest consumed raw offset. This is the
    /// "slow check" inversion (§2.2).
    pub fn tail_from_local(&self, local_tails: &[u64]) -> LogOffset {
        let mut tail = 0;
        for (set, &lt) in local_tails.iter().enumerate() {
            if lt > 0 {
                tail = tail.max(self.unmap(set, lt - 1) + 1);
            }
        }
        tail
    }

    /// For a prefix trim of all raw offsets below `horizon`, the local
    /// horizon (first local address to keep) for replica set `set`.
    pub fn local_trim_horizon(&self, set: usize, horizon: LogOffset) -> u64 {
        if horizon == 0 {
            return 0;
        }
        let sets = self.num_sets();
        let set = set as u64;
        // Count raw offsets o < horizon with o % sets == set.
        if horizon <= set {
            0
        } else {
            (horizon - 1 - set) / sets + 1
        }
    }
}

impl Encode for LogLayout {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.epoch);
        w.put_varint(self.replica_sets.len() as u64);
        for set in &self.replica_sets {
            w.put_varint(set.len() as u64);
            for &node in set {
                w.put_u32(node);
            }
        }
        w.put_u32(self.sequencer);
    }
}

impl Decode for LogLayout {
    fn decode(r: &mut Reader<'_>) -> tango_wire::Result<Self> {
        let epoch = r.get_u64()?;
        let nsets = r.get_len(1 << 16)?;
        let mut replica_sets = Vec::with_capacity(nsets);
        for _ in 0..nsets {
            let len = r.get_len(1 << 8)?;
            let mut set = Vec::with_capacity(len);
            for _ in 0..len {
                set.push(r.get_u32()?);
            }
            replica_sets.push(set);
        }
        let sequencer = r.get_u32()?;
        Ok(Self { epoch, replica_sets, sequencer })
    }
}

/// Mixes a stream id into a well-distributed 64-bit value (splitmix64
/// finalizer). Pure arithmetic: identical on every process and platform.
fn shard_hash(stream: StreamId) -> u64 {
    let mut z = (stream as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The deterministic `stream_id → log_id` partition map carried by the
/// projection. The default placement is a fixed hash of the stream id
/// modulo the number of logs; individual streams can be pinned elsewhere
/// through `overrides` (sorted by stream id), which is how remap-on-epoch-
/// change works: a remap installs an override in a new projection rather
/// than changing the hash, so every other stream's placement is untouched.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShardMap {
    /// Number of logs the stream namespace is partitioned across (≥ 1).
    pub num_logs: u32,
    /// Explicit placements overriding the hash, sorted by stream id.
    pub overrides: Vec<(StreamId, u32)>,
}

impl ShardMap {
    /// The identity map: everything on log 0.
    pub fn single() -> Self {
        Self { num_logs: 1, overrides: Vec::new() }
    }

    /// A plain hash partition over `num_logs` logs with no overrides.
    pub fn hashed(num_logs: u32) -> Self {
        assert!(num_logs >= 1, "shard map needs at least one log");
        Self { num_logs, overrides: Vec::new() }
    }

    /// The log hosting `stream`. Total: defined for every stream id.
    pub fn log_of(&self, stream: StreamId) -> u32 {
        if let Ok(i) = self.overrides.binary_search_by_key(&stream, |&(s, _)| s) {
            return self.overrides[i].1.min(self.num_logs.saturating_sub(1));
        }
        (shard_hash(stream) % self.num_logs.max(1) as u64) as u32
    }

    /// This map with `stream` pinned to `log` (replacing any existing
    /// override for the stream).
    pub fn with_override(&self, stream: StreamId, log: u32) -> ShardMap {
        let mut overrides = self.overrides.clone();
        match overrides.binary_search_by_key(&stream, |&(s, _)| s) {
            Ok(i) => overrides[i].1 = log,
            Err(i) => overrides.insert(i, (stream, log)),
        }
        ShardMap { num_logs: self.num_logs, overrides }
    }
}

impl Encode for ShardMap {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.num_logs);
        w.put_varint(self.overrides.len() as u64);
        for &(stream, log) in &self.overrides {
            w.put_u32(stream);
            w.put_u32(log);
        }
    }
}

impl Decode for ShardMap {
    fn decode(r: &mut Reader<'_>) -> tango_wire::Result<Self> {
        let num_logs = r.get_u32()?;
        let n = r.get_len(1 << 20)?;
        let mut overrides = Vec::with_capacity(n);
        for _ in 0..n {
            overrides.push((r.get_u32()?, r.get_u32()?));
        }
        Ok(Self { num_logs, overrides })
    }
}

/// The epoch-stamped cluster layout (§2.2), generalized to a sharded log:
/// N independent logs (each with its own replica sets, sequencer, and
/// sealing epoch) plus the [`ShardMap`] assigning streams to logs.
///
/// Client-facing offsets are *composite*: the top 8 bits carry the log id,
/// the low 56 bits the raw offset within that log (see [`crate::compose`]).
/// Log 0's composite offsets equal its raw offsets, so a single-log
/// projection behaves exactly like the pre-sharding layout.
///
/// `epoch` is the global configuration epoch — the metalog position this
/// projection was decided at. It advances on *every* reconfiguration.
/// Requests to a log's nodes are stamped with that log's `LogLayout::epoch`,
/// which only advances when that log itself is sealed, so reconfiguring one
/// log never invalidates tokens or connections of the others.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Projection {
    /// The global configuration epoch (metalog position). Monotonic across
    /// all reconfigurations of any log.
    pub epoch: Epoch,
    /// The independent logs, indexed by log id.
    pub logs: Vec<LogLayout>,
    /// Stream → log placement.
    pub shard: ShardMap,
    /// Address book for every node referenced above.
    pub nodes: Vec<NodeInfo>,
}

impl Projection {
    /// A single-log projection: the pre-sharding layout shape. The log's
    /// epoch starts equal to the global epoch.
    pub fn single(
        epoch: Epoch,
        replica_sets: Vec<Vec<NodeId>>,
        sequencer: NodeId,
        nodes: Vec<NodeInfo>,
    ) -> Self {
        Self {
            epoch,
            logs: vec![LogLayout { epoch, replica_sets, sequencer }],
            shard: ShardMap::single(),
            nodes,
        }
    }

    /// The number of logs.
    pub fn num_logs(&self) -> u32 {
        self.logs.len() as u32
    }

    /// The layout of log `log`.
    pub fn log(&self, log: u32) -> &LogLayout {
        &self.logs[log as usize]
    }

    /// The layout of the log hosting composite offset `offset`.
    pub fn log_for_offset(&self, offset: LogOffset) -> &LogLayout {
        self.log(log_of_offset(offset))
    }

    /// The log hosting `stream` under the shard map.
    pub fn log_of_stream(&self, stream: StreamId) -> u32 {
        self.shard.log_of(stream).min(self.num_logs().saturating_sub(1))
    }

    /// The epoch stamped on requests to log `log`'s nodes.
    pub fn epoch_of_log(&self, log: u32) -> Epoch {
        self.logs[log as usize].epoch
    }

    /// The sequencer of log `log`.
    pub fn sequencer_of(&self, log: u32) -> NodeId {
        self.logs[log as usize].sequencer
    }

    /// Total number of replica sets across all logs. Global set indices
    /// (used by the read path to group offsets into per-chain batches)
    /// enumerate log 0's sets first, then log 1's, and so on.
    pub fn num_sets(&self) -> u64 {
        self.logs.iter().map(|l| l.num_sets()).sum()
    }

    /// The first global set index belonging to log `log`.
    pub fn set_base(&self, log: u32) -> usize {
        self.logs[..log as usize].iter().map(|l| l.replica_sets.len()).sum()
    }

    /// The log owning global set index `set`.
    pub fn log_of_set(&self, set: usize) -> u32 {
        let mut base = 0;
        for (log, l) in self.logs.iter().enumerate() {
            if set < base + l.replica_sets.len() {
                return log as u32;
            }
            base += l.replica_sets.len();
        }
        panic!("global set index {set} out of range");
    }

    /// The chain (head first) of global set index `set`.
    pub fn replica_set(&self, set: usize) -> &[NodeId] {
        let log = self.log_of_set(set);
        &self.logs[log as usize].replica_sets[set - self.set_base(log)]
    }

    /// The epoch stamped on requests to global set `set`'s nodes.
    pub fn epoch_of_set(&self, set: usize) -> Epoch {
        self.epoch_of_log(self.log_of_set(set))
    }

    /// Maps a composite offset to its global replica set index and local
    /// page address.
    pub fn map(&self, offset: LogOffset) -> (usize, u64) {
        let log = log_of_offset(offset);
        let (set, local) = self.log(log).map(raw_of_offset(offset));
        (self.set_base(log) + set, local)
    }

    /// The chain (head-first node ids) responsible for composite `offset`.
    pub fn chain_for(&self, offset: LogOffset) -> &[NodeId] {
        self.log_for_offset(offset).chain_for(raw_of_offset(offset))
    }

    /// Inverse of [`Projection::map`]: the composite offset stored by
    /// global set `set` at local address `local`.
    pub fn unmap(&self, set: usize, local: u64) -> LogOffset {
        let log = self.log_of_set(set);
        compose(log, self.logs[log as usize].unmap(set - self.set_base(log), local))
    }

    /// Given each of log `log`'s sets' local tails, the log's raw tail.
    pub fn log_tail_from_local(&self, log: u32, local_tails: &[u64]) -> LogOffset {
        self.logs[log as usize].tail_from_local(local_tails)
    }

    /// Single-log compatibility: the global tail of log 0 from its local
    /// tails (callers on multi-log projections use `log_tail_from_local`).
    pub fn global_tail_from_local(&self, local_tails: &[u64]) -> LogOffset {
        self.log_tail_from_local(0, local_tails)
    }

    /// For a prefix trim of composite offsets below `horizon` *within the
    /// horizon's own log*, the local horizon for that log's set `set`
    /// (a per-log set index).
    pub fn local_trim_horizon_in_log(&self, log: u32, set: usize, horizon: LogOffset) -> u64 {
        self.logs[log as usize].local_trim_horizon(set, raw_of_offset(horizon))
    }

    /// Looks up the address of a node.
    pub fn addr_of(&self, id: NodeId) -> Option<&str> {
        self.nodes.iter().find(|n| n.id == id).map(|n| n.addr.as_str())
    }

    /// The projection after splicing `replacement` into every chain
    /// position held by `dead`, at the next global epoch. Only the logs
    /// that actually contained `dead` get their per-log epoch bumped (they
    /// are the ones that must be sealed for the splice). `dead` leaves the
    /// address book; `replacement` joins it. The striping function is
    /// untouched, so every offset keeps its (set, local) mapping — only the
    /// node serving `dead`'s position changes.
    pub fn with_replaced_node(&self, dead: NodeId, replacement: &NodeInfo) -> Projection {
        let logs = self
            .logs
            .iter()
            .map(|l| {
                let affected = l.replica_sets.iter().flatten().any(|&n| n == dead);
                LogLayout {
                    epoch: if affected { l.epoch + 1 } else { l.epoch },
                    replica_sets: l
                        .replica_sets
                        .iter()
                        .map(|set| {
                            set.iter()
                                .map(|&n| if n == dead { replacement.id } else { n })
                                .collect()
                        })
                        .collect(),
                    sequencer: l.sequencer,
                }
            })
            .collect();
        let mut nodes: Vec<NodeInfo> =
            self.nodes.iter().filter(|n| n.id != dead).cloned().collect();
        if nodes.iter().all(|n| n.id != replacement.id) {
            nodes.push(replacement.clone());
        }
        Projection { epoch: self.epoch + 1, logs, shard: self.shard.clone(), nodes }
    }

    /// All distinct storage node ids across all logs (excluding
    /// sequencers).
    pub fn storage_nodes(&self) -> Vec<NodeId> {
        let mut out: Vec<NodeId> =
            self.logs.iter().flat_map(|l| l.replica_sets.iter().flatten().copied()).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The storage node ids of log `log` only.
    pub fn storage_nodes_of(&self, log: u32) -> Vec<NodeId> {
        let mut out: Vec<NodeId> =
            self.logs[log as usize].replica_sets.iter().flatten().copied().collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

impl Encode for Projection {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.epoch);
        w.put_varint(self.logs.len() as u64);
        for log in &self.logs {
            log.encode(w);
        }
        self.shard.encode(w);
        self.nodes.encode(w);
    }
}

impl Decode for Projection {
    fn decode(r: &mut Reader<'_>) -> tango_wire::Result<Self> {
        let epoch = r.get_u64()?;
        let nlogs = r.get_len(1 << 8)?;
        let mut logs = Vec::with_capacity(nlogs);
        for _ in 0..nlogs {
            logs.push(LogLayout::decode(r)?);
        }
        let shard = ShardMap::decode(r)?;
        let nodes = Vec::<NodeInfo>::decode(r)?;
        Ok(Self { epoch, logs, shard, nodes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proj(nsets: usize, repl: usize) -> Projection {
        let mut replica_sets = Vec::new();
        let mut nodes = Vec::new();
        let mut next = 0u32;
        for _ in 0..nsets {
            let mut set = Vec::new();
            for _ in 0..repl {
                set.push(next);
                nodes.push(NodeInfo { id: next, addr: format!("node-{next}") });
                next += 1;
            }
            replica_sets.push(set);
        }
        nodes.push(NodeInfo { id: 1000, addr: "seq".into() });
        Projection::single(1, replica_sets, 1000, nodes)
    }

    fn sharded(nlogs: usize, nsets: usize, repl: usize) -> Projection {
        let mut logs = Vec::new();
        let mut nodes = Vec::new();
        let mut next = 0u32;
        for l in 0..nlogs {
            let mut replica_sets = Vec::new();
            for _ in 0..nsets {
                let mut set = Vec::new();
                for _ in 0..repl {
                    set.push(next);
                    nodes.push(NodeInfo { id: next, addr: format!("node-{next}") });
                    next += 1;
                }
                replica_sets.push(set);
            }
            let seq = 1000 + l as u32;
            nodes.push(NodeInfo { id: seq, addr: format!("seq-{l}") });
            logs.push(LogLayout { epoch: 1, replica_sets, sequencer: seq });
        }
        Projection { epoch: 1, logs, shard: ShardMap::hashed(nlogs as u32), nodes }
    }

    #[test]
    fn round_robin_mapping() {
        let p = proj(3, 2);
        assert_eq!(p.map(0), (0, 0));
        assert_eq!(p.map(1), (1, 0));
        assert_eq!(p.map(2), (2, 0));
        assert_eq!(p.map(3), (0, 1));
        assert_eq!(p.map(7), (1, 2));
        for o in 0..100 {
            let (s, l) = p.map(o);
            assert_eq!(p.unmap(s, l), o);
        }
    }

    #[test]
    fn composite_mapping_per_log() {
        let p = sharded(3, 2, 2);
        assert_eq!(p.num_sets(), 6);
        // Log 1's raw offset 5 lives in its set 5 % 2 = 1 (global set 3).
        let off = compose(1, 5);
        assert_eq!(p.map(off), (3, 2));
        assert_eq!(p.unmap(3, 2), off);
        // Every composite offset round-trips through (set, local).
        for log in 0..3u32 {
            for raw in 0..50u64 {
                let off = compose(log, raw);
                let (s, l) = p.map(off);
                assert_eq!(p.unmap(s, l), off);
                assert_eq!(p.log_of_set(s), log);
                assert_eq!(p.chain_for(off), p.replica_set(s));
            }
        }
    }

    #[test]
    fn slow_check_inversion() {
        let p = proj(3, 2);
        // Sets have consumed local slots: set0 -> 2 (offsets 0,3), set1 -> 1
        // (offset 1), set2 -> 0.
        assert_eq!(p.global_tail_from_local(&[2, 1, 0]), 4);
        assert_eq!(p.global_tail_from_local(&[0, 0, 0]), 0);
        // Highest consumed is offset 5 (set2, local 1) -> tail 6.
        assert_eq!(p.global_tail_from_local(&[1, 1, 2]), 6);
    }

    #[test]
    fn trim_horizons() {
        let p = proj(3, 1);
        // horizon 7: offsets 0..6. set0 holds 0,3,6 -> keep from local 3;
        // set1 holds 1,4 -> 2; set2 holds 2,5 -> 2.
        assert_eq!(p.local_trim_horizon_in_log(0, 0, 7), 3);
        assert_eq!(p.local_trim_horizon_in_log(0, 1, 7), 2);
        assert_eq!(p.local_trim_horizon_in_log(0, 2, 7), 2);
        assert_eq!(p.local_trim_horizon_in_log(0, 0, 0), 0);
        assert_eq!(p.local_trim_horizon_in_log(0, 2, 2), 0);
        assert_eq!(p.local_trim_horizon_in_log(0, 2, 3), 1);
    }

    #[test]
    fn encode_roundtrip() {
        let p = proj(4, 3);
        let bytes = tango_wire::encode_to_vec(&p);
        let back: Projection = tango_wire::decode_from_slice(&bytes).unwrap();
        assert_eq!(back, p);

        let mut p = sharded(4, 2, 2);
        p.shard = p.shard.with_override(7, 2).with_override(3, 0);
        let bytes = tango_wire::encode_to_vec(&p);
        let back: Projection = tango_wire::decode_from_slice(&bytes).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn shard_map_total_and_deterministic() {
        let m = ShardMap::hashed(4);
        for s in 0..10_000u32 {
            let log = m.log_of(s);
            assert!(log < 4);
            assert_eq!(log, m.log_of(s), "deterministic");
        }
        // Single log maps everything to 0.
        let one = ShardMap::single();
        for s in 0..1000u32 {
            assert_eq!(one.log_of(s), 0);
        }
    }

    #[test]
    fn shard_override_pins_only_that_stream() {
        let m = ShardMap::hashed(4);
        let pinned = m.with_override(42, 3);
        assert_eq!(pinned.log_of(42), 3);
        for s in 0..1000u32 {
            if s != 42 {
                assert_eq!(pinned.log_of(s), m.log_of(s));
            }
        }
    }

    #[test]
    fn replace_node_bumps_only_owning_log_epoch() {
        let p = sharded(2, 2, 2);
        // Node 1 lives in log 0.
        let next = p.with_replaced_node(1, &NodeInfo { id: 9000, addr: "fresh".into() });
        assert_eq!(next.epoch, p.epoch + 1);
        assert_eq!(next.logs[0].epoch, p.logs[0].epoch + 1);
        assert_eq!(next.logs[1].epoch, p.logs[1].epoch);
        assert!(next.logs[0].replica_sets.iter().flatten().any(|&n| n == 9000));
        assert!(next.logs[0].replica_sets.iter().flatten().all(|&n| n != 1));
        assert!(next.addr_of(1).is_none());
        assert_eq!(next.addr_of(9000), Some("fresh"));
    }
}
