//! The background compactor/scrub task attached to a storage node.
//!
//! Each pass calls [`StorageServer::compact_once`]: advance the prefix-trim
//! horizon over accumulated contiguous trim marks, migrate hot pages into
//! cold segments, and (every `scrub_every` passes) verify cold-tier CRCs.
//! The pass publishes `corfu.storage.{occupancy,reclaimed_pages,migrations,
//! scrub_errors}` and emits `segment_reclaimed`/`cold_migration`
//! flight-recorder events, so `tangoctl storage` sees the reclamation loop
//! working without touching the data path.
//!
//! The task is deliberately dumb — a fixed-interval loop over an
//! incremental pass — because all the policy lives below it: the unit
//! decides how far the horizon can advance, the tiered store decides what
//! migrates and which segments die. Dropping the [`Compactor`] handle (or
//! calling [`Compactor::stop`]) stops the thread.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::storage::StorageServer;

/// Cadence and scrub policy for a storage node's background compactor.
#[derive(Debug, Clone)]
pub struct CompactorConfig {
    /// Time between compaction passes.
    pub interval: Duration,
    /// Run the CRC scrub every this many passes (0 disables scrubbing).
    pub scrub_every: u32,
}

impl Default for CompactorConfig {
    fn default() -> Self {
        Self { interval: Duration::from_millis(25), scrub_every: 40 }
    }
}

/// Handle to a running background compactor. Stops the thread on drop.
pub struct Compactor {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Compactor {
    /// Spawns a compactor over `server` with the given cadence.
    pub fn spawn(server: Arc<StorageServer>, config: CompactorConfig) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("corfu-compactor".into())
            .spawn(move || {
                let mut pass: u32 = 0;
                while !stop_flag.load(Ordering::Relaxed) {
                    pass = pass.wrapping_add(1);
                    let scrub = config.scrub_every != 0 && pass.is_multiple_of(config.scrub_every);
                    let _ = server.compact_once(scrub);
                    // Sleep in small slices so stop() returns promptly even
                    // with a long interval.
                    let mut remaining = config.interval;
                    while !remaining.is_zero() && !stop_flag.load(Ordering::Relaxed) {
                        let slice = remaining.min(Duration::from_millis(20));
                        std::thread::sleep(slice);
                        remaining = remaining.saturating_sub(slice);
                    }
                }
            })
            .expect("spawn compactor thread");
        Self { stop, handle: Some(handle) }
    }

    /// Stops the background thread and waits for it to exit. Idempotent.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Compactor {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{StorageRequest, StorageResponse, WriteKind};
    use bytes::Bytes;
    use tango_metrics::{EventKind, Registry};

    fn write(server: &StorageServer, addr: u64, payload: &'static [u8]) {
        let req = StorageRequest::Write {
            epoch: 0,
            addr,
            kind: WriteKind::Data,
            payload: Bytes::from_static(payload),
        };
        assert_eq!(server.process(req), StorageResponse::Ok);
    }

    #[test]
    fn compact_once_advances_horizon_over_trim_marks() {
        let registry = Registry::new();
        let server = StorageServer::in_memory(4096).with_metrics(&registry);
        for addr in 0..8 {
            write(&server, addr, b"x");
        }
        for addr in 0..5 {
            assert_eq!(
                server.process(StorageRequest::Trim { epoch: 0, addr }),
                StorageResponse::Ok
            );
        }
        let report = server.compact_once(true);
        assert_eq!(report.trim_horizon, 5);
        assert_eq!(report.occupancy, 3);
        let snap = registry.snapshot();
        assert_eq!(snap.gauge("corfu.storage.occupancy"), 3);
        assert_eq!(snap.gauge("corfu.storage.trim_horizon"), 5);
        assert_eq!(snap.counter("corfu.storage.random_trims"), 5);
        // The horizon advance converted the 5 marked slots into a
        // sequential prefix trim.
        assert_eq!(snap.counter("corfu.storage.prefix_trimmed_pages"), 5);
    }

    #[test]
    fn background_compactor_keeps_tiered_node_bounded() {
        let dir = std::env::temp_dir().join(format!("tango-compactor-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = tango_flash::TieredStore::open(&dir, 4096, 8, 4).unwrap();
        let unit = tango_flash::FlashUnit::open(Box::new(store), 4096).unwrap();
        let registry = Registry::new();
        let server = Arc::new(StorageServer::new(unit).with_metrics(&registry));
        let mut compactor = Compactor::spawn(
            Arc::clone(&server),
            CompactorConfig { interval: Duration::from_millis(1), scrub_every: 2 },
        );

        // Append/trim churn: write a window, prefix-trim behind it.
        for round in 0u64..10 {
            let base = round * 16;
            for addr in base..base + 16 {
                write(&server, addr, b"payload");
            }
            assert_eq!(
                server.process(StorageRequest::TrimPrefix { epoch: 0, horizon: base + 8 }),
                StorageResponse::Ok
            );
        }
        // Give the compactor a few passes to migrate and scrub.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let tier = server.tier_stats();
            if tier.hot_pages <= 4 && tier.reclaimed_segments > 0 {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "compactor stalled: {tier:?}");
            std::thread::sleep(Duration::from_millis(5));
        }
        compactor.stop();

        let tier = server.tier_stats();
        assert!(tier.migrated_pages > 0);
        assert!(tier.reclaimed_segments > 0, "{tier:?}");
        let snap = registry.snapshot();
        assert!(snap.counter("corfu.storage.scrubbed_pages") > 0);
        assert_eq!(snap.counter("corfu.storage.scrub_errors"), 0);
        assert!(snap.counter("corfu.storage.reclaimed_pages") > 0);
        assert!(snap.counter("corfu.storage.migrations") > 0);
        let kinds: Vec<EventKind> = registry.events().records().iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EventKind::SegmentReclaimed), "{kinds:?}");
        assert!(kinds.contains(&EventKind::ColdMigration), "{kinds:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
