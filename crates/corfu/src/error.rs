use std::fmt;

use crate::{Epoch, LogOffset};

/// Errors surfaced by the CORFU client and services.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CorfuError {
    /// The server was sealed at a newer epoch; refresh the projection.
    Sealed {
        /// The epoch the server reported.
        server_epoch: Epoch,
    },
    /// The target offset was already written (write-once arbitration).
    AlreadyWritten {
        /// The offending global offset.
        offset: LogOffset,
    },
    /// The offset has been garbage collected.
    Trimmed {
        /// The offending global offset.
        offset: LogOffset,
    },
    /// The offset has not been written yet.
    Unwritten {
        /// The offending global offset.
        offset: LogOffset,
    },
    /// Our token's slot was consumed by another writer or a junk fill;
    /// acquire a new token and retry.
    TokenLost {
        /// The lost offset.
        offset: LogOffset,
    },
    /// The payload exceeds the log's fixed entry size.
    EntryTooLarge {
        /// Bytes offered.
        len: usize,
        /// The deployment's entry size.
        max: usize,
    },
    /// A transport failure talking to a node.
    Rpc(String),
    /// A storage node reported an internal fault.
    Storage(String),
    /// A malformed message or log entry.
    Codec(String),
    /// A layout (projection) operation failed.
    Layout(String),
    /// A reconfiguration lost the race to a concurrent reconfigurer: the
    /// cluster is already sealed or installed at `winner`. Unlike
    /// [`CorfuError::Layout`], this is not a failure of the layout service —
    /// someone else finished the job; refresh the projection and carry on.
    RaceLost {
        /// The epoch the winning reconfiguration reached.
        winner: Epoch,
    },
    /// Retries were exhausted without success.
    RetriesExhausted {
        /// What was being attempted.
        what: &'static str,
    },
}

impl fmt::Display for CorfuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorfuError::Sealed { server_epoch } => {
                write!(f, "sealed at epoch {server_epoch}; refresh the projection")
            }
            CorfuError::AlreadyWritten { offset } => write!(f, "offset {offset} already written"),
            CorfuError::Trimmed { offset } => write!(f, "offset {offset} trimmed"),
            CorfuError::Unwritten { offset } => write!(f, "offset {offset} unwritten"),
            CorfuError::TokenLost { offset } => {
                write!(f, "token for offset {offset} lost to another writer")
            }
            CorfuError::EntryTooLarge { len, max } => {
                write!(f, "entry of {len} bytes exceeds entry size {max}")
            }
            CorfuError::Rpc(e) => write!(f, "rpc failure: {e}"),
            CorfuError::Storage(e) => write!(f, "storage fault: {e}"),
            CorfuError::Codec(e) => write!(f, "codec failure: {e}"),
            CorfuError::Layout(e) => write!(f, "layout failure: {e}"),
            CorfuError::RaceLost { winner } => {
                write!(f, "reconfiguration lost the race; cluster is at epoch {winner}")
            }
            CorfuError::RetriesExhausted { what } => write!(f, "retries exhausted: {what}"),
        }
    }
}

impl std::error::Error for CorfuError {}

impl From<tango_rpc::RpcError> for CorfuError {
    fn from(e: tango_rpc::RpcError) -> Self {
        CorfuError::Rpc(e.to_string())
    }
}

impl From<tango_wire::WireError> for CorfuError {
    fn from(e: tango_wire::WireError) -> Self {
        CorfuError::Codec(e.to_string())
    }
}

impl From<tango_meta::MetaError> for CorfuError {
    fn from(e: tango_meta::MetaError) -> Self {
        use tango_meta::MetaError;
        match e {
            // Per-replica and whole-quorum reachability problems are
            // transport faults: retriable once the replica set heals.
            MetaError::QuorumUnavailable { .. } | MetaError::Unreachable { .. } => {
                CorfuError::Rpc(e.to_string())
            }
            MetaError::Codec(msg) => CorfuError::Codec(msg),
            MetaError::Protocol(_) | MetaError::Empty => CorfuError::Layout(e.to_string()),
        }
    }
}
