//! Seal-based reconfiguration (§5, "Failure Handling").
//!
//! The streaming extension makes the sequencer a first-class member of the
//! projection: because it is the single source of backpointers, the system
//! can no longer tolerate multiple live sequencers, so a failed sequencer is
//! replaced by moving the whole cluster to a new epoch:
//!
//! 1. seal every storage node at the new epoch (this fences all tokens
//!    issued by the old sequencer: stale-epoch writes are rejected) and
//!    collect local tails;
//! 2. invert the mapping to recover the global tail (the slow check);
//! 3. rebuild the per-stream backpointer state by scanning the log backward
//!    from the tail, decoding entry envelopes (junk entries contribute
//!    nothing, exactly as in the paper);
//! 4. bootstrap the replacement sequencer with the recovered state;
//! 5. propose the new projection to the layout service (epoch CAS — a
//!    concurrent reconfigurer loses cleanly).
//!
//! Clients racing the reconfiguration observe `ErrSealed`, refresh their
//! projection, and retry.

use std::collections::HashMap;

use tango_wire::{decode_from_slice, encode_to_vec};

use crate::client::{CorfuClient, ReadOutcome};
use crate::entry::EntryEnvelope;
use crate::proto::{SequencerRequest, SequencerResponse, StorageRequest, StorageResponse};
use crate::sequencer::SequencerState;
use crate::{CorfuError, Epoch, LogOffset, NodeInfo, Projection, Result, StreamId};

/// What a completed reconfiguration produced.
#[derive(Debug, Clone)]
pub struct ReconfigOutcome {
    /// The newly installed projection.
    pub projection: Projection,
    /// The global tail recovered from the sealed storage nodes.
    pub recovered_tail: LogOffset,
    /// Number of log entries scanned to rebuild backpointer state.
    pub entries_scanned: u64,
}

/// Replaces the cluster's sequencer with `new_seq` (which must be a fresh
/// [`crate::SequencerServer`] reachable through the client's connection
/// factory). `k` is the deployment's backpointer count per stream.
///
/// On a lost CAS race the error is [`CorfuError::Layout`]; the caller can
/// simply refresh, since someone else completed a reconfiguration.
pub fn replace_sequencer(
    client: &CorfuClient,
    new_seq: NodeInfo,
    k: usize,
) -> Result<ReconfigOutcome> {
    let old = client.layout().get()?;
    let new_epoch = old.epoch + 1;

    // Build the new projection: same replica sets, new sequencer.
    let mut nodes: Vec<NodeInfo> =
        old.nodes.iter().filter(|n| n.id != old.sequencer).cloned().collect();
    if nodes.iter().all(|n| n.id != new_seq.id) {
        nodes.push(new_seq.clone());
    }
    let new_proj = Projection {
        epoch: new_epoch,
        replica_sets: old.replica_sets.clone(),
        sequencer: new_seq.id,
        nodes,
    };

    // 1. Seal storage nodes, collecting local tails (max across replicas).
    let mut local_tails = vec![0u64; old.replica_sets.len()];
    for (set_idx, set) in old.replica_sets.iter().enumerate() {
        for &node in set {
            match client.storage_call(node, &StorageRequest::Seal { epoch: new_epoch })? {
                StorageResponse::Tail(t) => local_tails[set_idx] = local_tails[set_idx].max(t),
                StorageResponse::ErrSealed { epoch } if epoch >= new_epoch => {
                    // Another reconfigurer got here first; bail out and let
                    // the layout CAS pick the winner.
                    return Err(CorfuError::Layout(format!(
                        "node {node} already sealed at epoch {epoch}"
                    )));
                }
                other => {
                    return Err(CorfuError::Storage(format!("seal of node {node}: {other:?}")))
                }
            }
        }
    }

    // 2. Seal the old sequencer, best effort (it may be the failed node).
    if let Some(addr) = old.addr_of(old.sequencer) {
        let conn = client.factory().connect(&NodeInfo { id: old.sequencer, addr: addr.to_owned() });
        let _ = conn.call(&encode_to_vec(&SequencerRequest::Seal { epoch: new_epoch }));
    }

    let recovered_tail = old.global_tail_from_local(&local_tails);

    // 3. Rebuild backpointer state by backward scan at the new epoch.
    let (stream_state, entries_scanned) =
        rebuild_stream_state(client, &new_proj, recovered_tail, k)?;

    // 4. Bootstrap the replacement sequencer.
    let conn = client.factory().connect(&new_seq);
    let req = SequencerRequest::Bootstrap {
        epoch: new_epoch,
        tail: recovered_tail,
        streams: stream_state.streams,
    };
    let resp = conn.call(&encode_to_vec(&req))?;
    match decode_from_slice::<SequencerResponse>(&resp)? {
        SequencerResponse::Ok => {}
        other => return Err(CorfuError::Layout(format!("sequencer bootstrap failed: {other:?}"))),
    }

    // 5. Publish the projection.
    match client.layout().propose(new_proj.clone())? {
        None => {}
        Some(winner) => {
            return Err(CorfuError::Layout(format!(
                "lost reconfiguration race to epoch {}",
                winner.epoch
            )))
        }
    }
    client.refresh_layout()?;
    Ok(ReconfigOutcome { projection: new_proj, recovered_tail, entries_scanned })
}

/// Scans the log backward from `tail`, decoding entry envelopes to recover
/// the last `k` issued-and-written offsets of every stream. Junk entries
/// (filled holes) and undecodable entries contribute nothing. The scan
/// stops early at the trim horizon — or at a sequencer-state checkpoint
/// (see [`checkpoint_sequencer_state`]): entries below a checkpoint's
/// captured tail are already reflected in it, so only the suffix is
/// scanned and the checkpoint is merged in underneath.
fn rebuild_stream_state(
    client: &CorfuClient,
    proj: &Projection,
    tail: LogOffset,
    k: usize,
) -> Result<(SequencerState, u64)> {
    let mut per_stream: HashMap<StreamId, Vec<LogOffset>> = HashMap::new();
    let mut scanned = 0u64;
    let mut floor = 0u64;
    let mut seed: Option<SequencerState> = None;
    let mut offset = tail;
    while offset > floor {
        offset -= 1;
        match client.read_with(proj, offset)? {
            ReadOutcome::Data(bytes) => {
                scanned += 1;
                if let Ok(envelope) = EntryEnvelope::decode(&bytes, offset) {
                    if seed.is_none() && envelope.belongs_to(crate::SEQUENCER_CHECKPOINT_STREAM) {
                        if let Ok(state) =
                            tango_wire::decode_from_slice::<SequencerState>(&envelope.payload)
                        {
                            // Everything below the checkpoint's captured
                            // tail is already in it.
                            floor = state.tail;
                            seed = Some(state);
                            continue;
                        }
                    }
                    for header in &envelope.headers {
                        let entry = per_stream.entry(header.stream).or_default();
                        if entry.len() < k {
                            entry.push(offset);
                        }
                    }
                }
            }
            ReadOutcome::Junk => {
                scanned += 1;
            }
            ReadOutcome::Unwritten => {
                // A hole below the tail: a client crashed mid-append. The
                // scan cannot wait; patch it so playback never stalls on it.
                let _ = client_fill_at(client, proj, offset);
                scanned += 1;
            }
            ReadOutcome::Trimmed => break,
        }
    }
    // Merge the checkpoint underneath the scanned suffix: scanned offsets
    // are all newer than anything the checkpoint captured.
    if let Some(seed) = seed {
        for (id, older) in seed.streams {
            let entry = per_stream.entry(id).or_default();
            for off in older {
                if entry.len() >= k {
                    break;
                }
                entry.push(off);
            }
        }
    }
    let mut streams: Vec<(StreamId, Vec<LogOffset>)> = per_stream.into_iter().collect();
    streams.sort_by_key(|(id, _)| *id);
    Ok((SequencerState { tail, streams }, scanned))
}

/// Writes the sequencer's full soft state into the log on the reserved
/// [`crate::SEQUENCER_CHECKPOINT_STREAM`], bounding the backward scan a
/// future [`replace_sequencer`] must perform. Call periodically from an
/// operational task.
pub fn checkpoint_sequencer_state(client: &CorfuClient) -> Result<LogOffset> {
    let epoch = client.epoch();
    let state = match client.sequencer_call_pub(&SequencerRequest::Dump { epoch })? {
        SequencerResponse::State { tail, streams } => SequencerState { tail, streams },
        SequencerResponse::ErrSealed { epoch } => {
            return Err(CorfuError::Sealed { server_epoch: epoch })
        }
        other => return Err(CorfuError::Codec(format!("unexpected dump response {other:?}"))),
    };
    let payload = bytes::Bytes::from(tango_wire::encode_to_vec(&state));
    let (offset, _) = client.append_streams(&[crate::SEQUENCER_CHECKPOINT_STREAM], payload)?;
    Ok(offset)
}

/// Fills a hole found during recovery, at the recovery epoch.
fn client_fill_at(client: &CorfuClient, proj: &Projection, offset: LogOffset) -> Result<()> {
    use crate::proto::WriteKind;
    let (_, local) = proj.map(offset);
    for &node in proj.chain_for(offset) {
        let req = StorageRequest::Write {
            epoch: proj.epoch,
            addr: local,
            kind: WriteKind::Junk,
            payload: bytes::Bytes::new(),
        };
        match client.storage_call(node, &req)? {
            StorageResponse::Ok | StorageResponse::ErrAlreadyWritten => {}
            other => return Err(CorfuError::Storage(format!("recovery fill: {other:?}"))),
        }
    }
    Ok(())
}

/// Moves the whole cluster (storage nodes, sequencer, projection) to the
/// next epoch without changing membership. The live sequencer keeps its
/// tail and backpointer state across the seal. Useful as a fencing barrier:
/// after `bump_epoch` returns, no operation stamped with the old epoch can
/// take effect anywhere.
pub fn bump_epoch(client: &CorfuClient) -> Result<(Epoch, LogOffset)> {
    let old = client.layout().get()?;
    let new_epoch = old.epoch + 1;
    let mut local_tails = vec![0u64; old.replica_sets.len()];
    for (set_idx, set) in old.replica_sets.iter().enumerate() {
        for &node in set {
            match client.storage_call(node, &StorageRequest::Seal { epoch: new_epoch })? {
                StorageResponse::Tail(t) => local_tails[set_idx] = local_tails[set_idx].max(t),
                other => {
                    return Err(CorfuError::Storage(format!("seal of node {node}: {other:?}")))
                }
            }
        }
    }
    // The sequencer keeps its soft state; sealing only bumps its epoch.
    let addr = old
        .addr_of(old.sequencer)
        .ok_or_else(|| CorfuError::Layout("sequencer missing from projection".into()))?;
    let conn = client.factory().connect(&NodeInfo { id: old.sequencer, addr: addr.to_owned() });
    let resp = conn.call(&encode_to_vec(&SequencerRequest::Seal { epoch: new_epoch }))?;
    match decode_from_slice::<SequencerResponse>(&resp)? {
        SequencerResponse::Ok => {}
        other => return Err(CorfuError::Layout(format!("sequencer seal failed: {other:?}"))),
    }
    let mut new_proj = old.clone();
    new_proj.epoch = new_epoch;
    if let Some(winner) = client.layout().propose(new_proj)? {
        return Err(CorfuError::Layout(format!("lost epoch-bump race to epoch {}", winner.epoch)));
    }
    client.refresh_layout()?;
    Ok((new_epoch, old.global_tail_from_local(&local_tails)))
}
