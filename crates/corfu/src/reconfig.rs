//! Seal-based reconfiguration (§5, "Failure Handling").
//!
//! The streaming extension makes the sequencer a first-class member of the
//! projection: because it is the single source of backpointers, the system
//! can no longer tolerate multiple live sequencers, so a failed sequencer is
//! replaced by moving the whole cluster to a new epoch:
//!
//! 1. seal every storage node at the new epoch (this fences all tokens
//!    issued by the old sequencer: stale-epoch writes are rejected) and
//!    collect local tails;
//! 2. invert the mapping to recover the global tail (the slow check);
//! 3. rebuild the per-stream backpointer state by scanning the log backward
//!    from the tail, decoding entry envelopes (junk entries contribute
//!    nothing, exactly as in the paper);
//! 4. bootstrap the replacement sequencer with the recovered state;
//! 5. propose the new projection to the layout service (epoch CAS — a
//!    concurrent reconfigurer loses cleanly).
//!
//! Clients racing the reconfiguration observe `ErrSealed`, refresh their
//! projection, and retry.
//!
//! Storage-node replacement ([`replace_storage_node`]) follows the same
//! seal-based recipe to rebuild a dead flash node's chain position:
//!
//! 1. seal every surviving storage node (and the sequencer, which keeps its
//!    soft state) at the new epoch, fencing all old-epoch operations;
//! 2. copy the dead node's local pages to a fresh replacement by streaming
//!    `CopyRange` chunks from the head-most surviving replica of each chain
//!    the dead node served — data pages, junk fills, random trim marks, and
//!    the prefix-trim horizon are all reproduced, so the replacement's
//!    write-once arbitration is exactly as strict as the original's;
//! 3. CAS-propose a projection with the replacement spliced into the dead
//!    node's chain positions (the striping function is unchanged);
//! 4. let racing clients observe `ErrSealed`, refresh, and retry.
//!
//! Concurrent reconfigurations converge: sealing a node that is already at
//! the target epoch is treated as that step being done (two replacements of
//! the same node do identical work and write-once arbitration makes the
//! copy idempotent), and the layout CAS picks exactly one winner. The loser
//! gets [`CorfuError::RaceLost`] carrying the winning epoch, distinguishing
//! "someone else finished the job" from a real layout failure.

use std::collections::HashMap;
use std::sync::Arc;

use tango_rpc::ClientConn;
use tango_wire::{decode_from_slice, encode_to_vec};

use crate::client::{CorfuClient, ReadOutcome};
use crate::entry::EntryEnvelope;
use crate::metrics::ReconfigMetrics;
use crate::proto::{
    PageCopy, SequencerRequest, SequencerResponse, StorageRequest, StorageResponse, WriteKind,
};
use crate::sequencer::SequencerState;
use crate::{CorfuError, Epoch, LogOffset, NodeId, NodeInfo, Projection, Result, StreamId};

/// What a completed reconfiguration produced.
#[derive(Debug, Clone)]
pub struct ReconfigOutcome {
    /// The newly installed projection.
    pub projection: Projection,
    /// The global tail recovered from the sealed storage nodes.
    pub recovered_tail: LogOffset,
    /// Number of log entries scanned to rebuild backpointer state.
    pub entries_scanned: u64,
}

/// Replaces the cluster's sequencer with `new_seq` (which must be a fresh
/// [`crate::SequencerServer`] reachable through the client's connection
/// factory). `k` is the deployment's backpointer count per stream.
///
/// On a lost race (seal or CAS) the error is [`CorfuError::RaceLost`]
/// carrying the winning epoch; the caller can simply refresh, since someone
/// else completed a reconfiguration.
pub fn replace_sequencer(
    client: &CorfuClient,
    new_seq: NodeInfo,
    k: usize,
) -> Result<ReconfigOutcome> {
    let metrics = ReconfigMetrics::from_registry(client.metrics());
    let old = client.layout().get()?;
    let new_epoch = old.epoch + 1;

    // Build the new projection: same replica sets, new sequencer.
    let mut nodes: Vec<NodeInfo> =
        old.nodes.iter().filter(|n| n.id != old.sequencer).cloned().collect();
    if nodes.iter().all(|n| n.id != new_seq.id) {
        nodes.push(new_seq.clone());
    }
    let new_proj = Projection {
        epoch: new_epoch,
        replica_sets: old.replica_sets.clone(),
        sequencer: new_seq.id,
        nodes,
    };

    // 1. Seal storage nodes, collecting local tails (max across replicas).
    let mut local_tails = vec![0u64; old.replica_sets.len()];
    for (set_idx, set) in old.replica_sets.iter().enumerate() {
        for &node in set {
            match client.storage_call(node, &StorageRequest::Seal { epoch: new_epoch })? {
                StorageResponse::Tail(t) => local_tails[set_idx] = local_tails[set_idx].max(t),
                StorageResponse::ErrSealed { epoch } if epoch >= new_epoch => {
                    // Another reconfigurer got here first; bail out and let
                    // the layout CAS pick the winner.
                    metrics.races_lost.inc();
                    return Err(CorfuError::RaceLost { winner: epoch });
                }
                other => {
                    return Err(CorfuError::Storage(format!("seal of node {node}: {other:?}")))
                }
            }
        }
    }

    // 2. Seal the old sequencer, best effort (it may be the failed node).
    if let Some(addr) = old.addr_of(old.sequencer) {
        let conn = client.factory().connect(&NodeInfo { id: old.sequencer, addr: addr.to_owned() });
        let _ = conn.call(&encode_to_vec(&SequencerRequest::Seal { epoch: new_epoch }));
    }

    let recovered_tail = old.global_tail_from_local(&local_tails);

    // 3. Rebuild backpointer state by backward scan at the new epoch.
    let (stream_state, entries_scanned) =
        rebuild_stream_state(client, &new_proj, recovered_tail, k)?;

    // 4. Bootstrap the replacement sequencer.
    let conn = client.factory().connect(&new_seq);
    let req = SequencerRequest::Bootstrap {
        epoch: new_epoch,
        tail: recovered_tail,
        streams: stream_state.streams,
    };
    let resp = conn.call(&encode_to_vec(&req))?;
    match decode_from_slice::<SequencerResponse>(&resp)? {
        SequencerResponse::Ok => {}
        other => return Err(CorfuError::Layout(format!("sequencer bootstrap failed: {other:?}"))),
    }

    // 5. Publish the projection.
    match client.layout().propose(new_proj.clone())? {
        None => {}
        Some(winner) => {
            metrics.races_lost.inc();
            return Err(CorfuError::RaceLost { winner: winner.epoch });
        }
    }
    client.refresh_layout()?;
    metrics.seq_replacements.inc();
    Ok(ReconfigOutcome { projection: new_proj, recovered_tail, entries_scanned })
}

/// What a completed storage-node replacement produced.
#[derive(Debug, Clone)]
pub struct RebuildOutcome {
    /// The newly installed projection, with the replacement spliced in.
    pub projection: Projection,
    /// Consumed pages (data, junk, and trim marks) copied to the
    /// replacement.
    pub pages_copied: u64,
    /// Payload bytes copied to the replacement.
    pub bytes_copied: u64,
    /// Replica chains the dead node served (and the replacement now
    /// serves).
    pub chains_rebuilt: usize,
}

/// Addresses scanned per `CopyRange` round trip during a rebuild.
pub const COPY_CHUNK_PAGES: u32 = 256;

/// Replaces the dead (or decommissioned) storage node `dead` with
/// `replacement`, a fresh [`crate::StorageServer`] reachable through the
/// client's connection factory: seals the cluster into a new epoch, copies
/// the dead node's chain positions from the head-most surviving replica of
/// each chain, and CAS-installs a projection with the replacement spliced
/// in. Clients racing the replacement observe `ErrSealed`, refresh, and
/// retry transparently.
///
/// The node being replaced does not have to be down — replacing a live
/// node decommissions it cleanly (its seal is attempted best-effort).
///
/// On a lost race the error is [`CorfuError::RaceLost`] with the winning
/// epoch: two concurrent replacements of the same node converge, with
/// exactly one winning the layout CAS.
pub fn replace_storage_node(
    client: &CorfuClient,
    dead: NodeId,
    replacement: NodeInfo,
) -> Result<RebuildOutcome> {
    let metrics = ReconfigMetrics::from_registry(client.metrics());
    let old = client.layout().get()?;
    let new_epoch = old.epoch + 1;

    // Validate the membership change up front.
    let affected: Vec<usize> = old
        .replica_sets
        .iter()
        .enumerate()
        .filter(|(_, set)| set.contains(&dead))
        .map(|(idx, _)| idx)
        .collect();
    if dead == old.sequencer {
        return Err(CorfuError::Layout(format!(
            "node {dead} is the sequencer; use replace_sequencer"
        )));
    }
    if affected.is_empty() {
        // The node is in no chain: a concurrent replacement already spliced
        // it out (it may even have started after ours and still won the
        // CAS first). Converge instead of failing.
        metrics.races_lost.inc();
        return Err(CorfuError::RaceLost { winner: old.epoch });
    }
    if replacement.id == old.sequencer
        || old.replica_sets.iter().any(|set| set.contains(&replacement.id))
    {
        return Err(CorfuError::Layout(format!(
            "replacement id {} is already in the projection",
            replacement.id
        )));
    }
    for &set_idx in &affected {
        if old.replica_sets[set_idx].iter().all(|&n| n == dead) {
            return Err(CorfuError::Storage(format!(
                "replica set {set_idx} has no surviving replica to copy from"
            )));
        }
    }

    // 1. Seal the survivors. A node already at exactly the target epoch was
    // sealed by a concurrent replacement doing the same job — that step is
    // done, keep going; the layout CAS arbitrates at the end. A node beyond
    // the target means a farther-ahead reconfiguration won outright.
    for node in old.storage_nodes() {
        if node == dead {
            continue;
        }
        match client.storage_call(node, &StorageRequest::Seal { epoch: new_epoch })? {
            StorageResponse::Tail(_) => {}
            StorageResponse::ErrSealed { epoch } if epoch == new_epoch => {}
            StorageResponse::ErrSealed { epoch } => {
                metrics.races_lost.inc();
                return Err(CorfuError::RaceLost { winner: epoch });
            }
            other => return Err(CorfuError::Storage(format!("seal of node {node}: {other:?}"))),
        }
    }
    // Best-effort seal of the dead node: if it is actually alive (a
    // decommission), this fences it; if it is down, the call just fails.
    let _ = client.storage_call(dead, &StorageRequest::Seal { epoch: new_epoch });

    // 2. Seal the sequencer. It keeps its tail and backpointer state; the
    // seal only fences tokens issued under the old epoch.
    let seq_addr = old
        .addr_of(old.sequencer)
        .ok_or_else(|| CorfuError::Layout("sequencer missing from projection".into()))?;
    let seq_conn =
        client.factory().connect(&NodeInfo { id: old.sequencer, addr: seq_addr.to_owned() });
    let resp = seq_conn.call(&encode_to_vec(&SequencerRequest::Seal { epoch: new_epoch }))?;
    match decode_from_slice::<SequencerResponse>(&resp)? {
        SequencerResponse::Ok => {}
        SequencerResponse::ErrSealed { epoch } if epoch == new_epoch => {}
        SequencerResponse::ErrSealed { epoch } => {
            metrics.races_lost.inc();
            return Err(CorfuError::RaceLost { winner: epoch });
        }
        other => return Err(CorfuError::Layout(format!("sequencer seal failed: {other:?}"))),
    }

    // 3. Seal the replacement so it serves the new epoch from birth: no
    // old-epoch straggler can ever write to it.
    let repl_conn = client.factory().connect(&replacement);
    match raw_storage_call(&repl_conn, &StorageRequest::Seal { epoch: new_epoch })? {
        StorageResponse::Tail(_) => {}
        StorageResponse::ErrSealed { epoch } if epoch == new_epoch => {}
        StorageResponse::ErrSealed { epoch } => {
            metrics.races_lost.inc();
            return Err(CorfuError::RaceLost { winner: epoch });
        }
        other => return Err(CorfuError::Storage(format!("replacement seal: {other:?}"))),
    }

    // 4. Rebuild the dead node's chain positions onto the replacement. The
    // copy source is the head-most surviving replica: the head arbitrates
    // write-once races, so its pages are a superset of every acked entry in
    // the chain. Pages it lacks were never acked and surface as holes.
    let mut pages_copied = 0u64;
    let mut bytes_copied = 0u64;
    for &set_idx in &affected {
        let source = *old.replica_sets[set_idx]
            .iter()
            .find(|&&n| n != dead)
            .expect("validated: a survivor exists");
        let (pages, bytes) = copy_chain_position(client, &repl_conn, source, new_epoch)?;
        pages_copied += pages;
        bytes_copied += bytes;
    }

    // 5. Publish the spliced projection; the CAS picks one winner.
    let new_proj = old.with_replaced_node(dead, &replacement);
    debug_assert_eq!(new_proj.epoch, new_epoch);
    match client.layout().propose(new_proj.clone())? {
        None => {}
        Some(winner) => {
            metrics.races_lost.inc();
            return Err(CorfuError::RaceLost { winner: winner.epoch });
        }
    }
    client.refresh_layout()?;
    metrics.storage_replacements.inc();
    metrics.rebuild_pages.record(pages_copied);
    metrics.rebuild_bytes.record(bytes_copied);
    Ok(RebuildOutcome {
        projection: new_proj,
        pages_copied,
        bytes_copied,
        chains_rebuilt: affected.len(),
    })
}

/// Streams every consumed page of `source` onto the replacement behind
/// `repl_conn`, reproducing data, junk fills, random trim marks, and the
/// prefix-trim horizon. Returns (pages, payload bytes) copied. Write-once
/// arbitration makes the copy idempotent, so two racing rebuilds of the
/// same node are safe.
fn copy_chain_position(
    client: &CorfuClient,
    repl_conn: &Arc<dyn ClientConn>,
    source: NodeId,
    epoch: Epoch,
) -> Result<(u64, u64)> {
    let mut pages_copied = 0u64;
    let mut bytes_copied = 0u64;
    let mut start = 0u64;
    let mut horizon_installed = false;
    loop {
        let req = StorageRequest::CopyRange { epoch, start, count: COPY_CHUNK_PAGES };
        let (local_tail, prefix_trim, next, pages) = match client.storage_call(source, &req)? {
            StorageResponse::PageChunk { local_tail, prefix_trim, next, pages } => {
                (local_tail, prefix_trim, next, pages)
            }
            StorageResponse::ErrSealed { epoch } => {
                return Err(CorfuError::RaceLost { winner: epoch })
            }
            other => {
                return Err(CorfuError::Storage(format!("copy from node {source}: {other:?}")))
            }
        };
        if !horizon_installed && prefix_trim > 0 {
            let req = StorageRequest::TrimPrefix { epoch, horizon: prefix_trim };
            match raw_storage_call(repl_conn, &req)? {
                StorageResponse::Ok => {}
                other => {
                    return Err(CorfuError::Storage(format!("replacement trim_prefix: {other:?}")))
                }
            }
        }
        horizon_installed = true;
        for (addr, page) in pages {
            let req = match page {
                PageCopy::Data(payload) => {
                    bytes_copied += payload.len() as u64;
                    StorageRequest::Write { epoch, addr, kind: WriteKind::Data, payload }
                }
                PageCopy::Junk => StorageRequest::Write {
                    epoch,
                    addr,
                    kind: WriteKind::Junk,
                    payload: bytes::Bytes::new(),
                },
                PageCopy::Trimmed => StorageRequest::Trim { epoch, addr },
            };
            match raw_storage_call(repl_conn, &req)? {
                // AlreadyWritten: a racing rebuild (or a new-epoch client
                // write that beat us here) owns the slot; either way the
                // slot is consumed with an arbitrated value.
                StorageResponse::Ok | StorageResponse::ErrAlreadyWritten => pages_copied += 1,
                StorageResponse::ErrTrimmed => pages_copied += 1,
                StorageResponse::ErrSealed { epoch } => {
                    return Err(CorfuError::RaceLost { winner: epoch })
                }
                other => {
                    return Err(CorfuError::Storage(format!("replacement install: {other:?}")))
                }
            }
        }
        if next >= local_tail {
            return Ok((pages_copied, bytes_copied));
        }
        start = next;
    }
}

/// A storage call on a connection to a node that is not (yet) in the
/// installed projection.
fn raw_storage_call(conn: &Arc<dyn ClientConn>, req: &StorageRequest) -> Result<StorageResponse> {
    let resp = conn.call(&encode_to_vec(req))?;
    Ok(decode_from_slice(&resp)?)
}

/// Scans the log backward from `tail`, decoding entry envelopes to recover
/// the last `k` issued-and-written offsets of every stream. Junk entries
/// (filled holes) and undecodable entries contribute nothing. The scan
/// stops early at the trim horizon — or at a sequencer-state checkpoint
/// (see [`checkpoint_sequencer_state`]): entries below a checkpoint's
/// captured tail are already reflected in it, so only the suffix is
/// scanned and the checkpoint is merged in underneath.
fn rebuild_stream_state(
    client: &CorfuClient,
    proj: &Projection,
    tail: LogOffset,
    k: usize,
) -> Result<(SequencerState, u64)> {
    let mut per_stream: HashMap<StreamId, Vec<LogOffset>> = HashMap::new();
    let mut scanned = 0u64;
    let mut floor = 0u64;
    let mut seed: Option<SequencerState> = None;
    let mut offset = tail;
    while offset > floor {
        offset -= 1;
        match client.read_with(proj, offset)? {
            ReadOutcome::Data(bytes) => {
                scanned += 1;
                if let Ok(envelope) = EntryEnvelope::decode(&bytes, offset) {
                    if seed.is_none() && envelope.belongs_to(crate::SEQUENCER_CHECKPOINT_STREAM) {
                        if let Ok(state) =
                            tango_wire::decode_from_slice::<SequencerState>(&envelope.payload)
                        {
                            // Everything below the checkpoint's captured
                            // tail is already in it.
                            floor = state.tail;
                            seed = Some(state);
                            continue;
                        }
                    }
                    for header in &envelope.headers {
                        let entry = per_stream.entry(header.stream).or_default();
                        if entry.len() < k {
                            entry.push(offset);
                        }
                    }
                }
            }
            ReadOutcome::Junk => {
                scanned += 1;
            }
            ReadOutcome::Unwritten => {
                // A hole below the tail: a client crashed mid-append. The
                // scan cannot wait; patch it so playback never stalls on it.
                let _ = client_fill_at(client, proj, offset);
                scanned += 1;
            }
            ReadOutcome::Trimmed => break,
        }
    }
    // Merge the checkpoint underneath the scanned suffix: scanned offsets
    // are all newer than anything the checkpoint captured.
    if let Some(seed) = seed {
        for (id, older) in seed.streams {
            let entry = per_stream.entry(id).or_default();
            for off in older {
                if entry.len() >= k {
                    break;
                }
                entry.push(off);
            }
        }
    }
    let mut streams: Vec<(StreamId, Vec<LogOffset>)> = per_stream.into_iter().collect();
    streams.sort_by_key(|(id, _)| *id);
    Ok((SequencerState { tail, streams }, scanned))
}

/// Writes the sequencer's full soft state into the log on the reserved
/// [`crate::SEQUENCER_CHECKPOINT_STREAM`], bounding the backward scan a
/// future [`replace_sequencer`] must perform. Call periodically from an
/// operational task.
pub fn checkpoint_sequencer_state(client: &CorfuClient) -> Result<LogOffset> {
    let epoch = client.epoch();
    let state = match client.sequencer_call_pub(&SequencerRequest::Dump { epoch })? {
        SequencerResponse::State { tail, streams } => SequencerState { tail, streams },
        SequencerResponse::ErrSealed { epoch } => {
            return Err(CorfuError::Sealed { server_epoch: epoch })
        }
        other => return Err(CorfuError::Codec(format!("unexpected dump response {other:?}"))),
    };
    let payload = bytes::Bytes::from(tango_wire::encode_to_vec(&state));
    let (offset, _) = client.append_streams(&[crate::SEQUENCER_CHECKPOINT_STREAM], payload)?;
    Ok(offset)
}

/// Fills a hole found during recovery, at the recovery epoch.
fn client_fill_at(client: &CorfuClient, proj: &Projection, offset: LogOffset) -> Result<()> {
    use crate::proto::WriteKind;
    let (_, local) = proj.map(offset);
    for &node in proj.chain_for(offset) {
        let req = StorageRequest::Write {
            epoch: proj.epoch,
            addr: local,
            kind: WriteKind::Junk,
            payload: bytes::Bytes::new(),
        };
        match client.storage_call(node, &req)? {
            StorageResponse::Ok | StorageResponse::ErrAlreadyWritten => {}
            other => return Err(CorfuError::Storage(format!("recovery fill: {other:?}"))),
        }
    }
    Ok(())
}

/// Moves the whole cluster (storage nodes, sequencer, projection) to the
/// next epoch without changing membership. The live sequencer keeps its
/// tail and backpointer state across the seal. Useful as a fencing barrier:
/// after `bump_epoch` returns, no operation stamped with the old epoch can
/// take effect anywhere.
pub fn bump_epoch(client: &CorfuClient) -> Result<(Epoch, LogOffset)> {
    let metrics = ReconfigMetrics::from_registry(client.metrics());
    let old = client.layout().get()?;
    let new_epoch = old.epoch + 1;
    let mut local_tails = vec![0u64; old.replica_sets.len()];
    for (set_idx, set) in old.replica_sets.iter().enumerate() {
        for &node in set {
            match client.storage_call(node, &StorageRequest::Seal { epoch: new_epoch })? {
                StorageResponse::Tail(t) => local_tails[set_idx] = local_tails[set_idx].max(t),
                other => {
                    return Err(CorfuError::Storage(format!("seal of node {node}: {other:?}")))
                }
            }
        }
    }
    // The sequencer keeps its soft state; sealing only bumps its epoch.
    let addr = old
        .addr_of(old.sequencer)
        .ok_or_else(|| CorfuError::Layout("sequencer missing from projection".into()))?;
    let conn = client.factory().connect(&NodeInfo { id: old.sequencer, addr: addr.to_owned() });
    let resp = conn.call(&encode_to_vec(&SequencerRequest::Seal { epoch: new_epoch }))?;
    match decode_from_slice::<SequencerResponse>(&resp)? {
        SequencerResponse::Ok => {}
        other => return Err(CorfuError::Layout(format!("sequencer seal failed: {other:?}"))),
    }
    let mut new_proj = old.clone();
    new_proj.epoch = new_epoch;
    if let Some(winner) = client.layout().propose(new_proj)? {
        metrics.races_lost.inc();
        return Err(CorfuError::RaceLost { winner: winner.epoch });
    }
    client.refresh_layout()?;
    metrics.epoch_bumps.inc();
    Ok((new_epoch, old.global_tail_from_local(&local_tails)))
}
