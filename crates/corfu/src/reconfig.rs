//! Seal-based reconfiguration (§5, "Failure Handling"), per log.
//!
//! The streaming extension makes the sequencer a first-class member of the
//! projection: because it is the single source of backpointers for its log,
//! the system can no longer tolerate multiple live sequencers per log, so a
//! failed sequencer is replaced by moving *that log* to a new epoch:
//!
//! 1. seal the log's storage nodes at its new epoch (this fences all tokens
//!    issued by the old sequencer: stale-epoch writes are rejected) and
//!    collect local tails;
//! 2. invert the mapping to recover the log's tail (the slow check);
//! 3. rebuild the per-stream backpointer state by scanning the log backward
//!    from the tail, decoding entry envelopes (junk entries contribute
//!    nothing, exactly as in the paper);
//! 4. bootstrap the replacement sequencer with the recovered state;
//! 5. propose the new projection to the layout service (epoch CAS — a
//!    concurrent reconfigurer loses cleanly).
//!
//! With a sharded projection only the affected log is sealed: other logs
//! keep their epochs, their sequencers stay live, and clients holding
//! pooled tokens for them keep using them. Clients racing the
//! reconfiguration of the sealed log observe `ErrSealed`, refresh their
//! projection, and retry.
//!
//! Storage-node replacement ([`replace_storage_node`]) follows the same
//! seal-based recipe to rebuild a dead flash node's chain position:
//!
//! 1. seal the surviving storage nodes of the dead node's log (and that
//!    log's sequencer, which keeps its soft state) at the new epoch,
//!    fencing all old-epoch operations;
//! 2. copy the dead node's local pages to a fresh replacement by streaming
//!    `CopyRange` chunks from the head-most surviving replica of each chain
//!    the dead node served — data pages, junk fills, random trim marks, and
//!    the prefix-trim horizon are all reproduced, so the replacement's
//!    write-once arbitration is exactly as strict as the original's;
//! 3. CAS-propose a projection with the replacement spliced into the dead
//!    node's chain positions (the striping function is unchanged);
//! 4. let racing clients observe `ErrSealed`, refresh, and retry.
//!
//! [`remap_stream`] moves one stream to a different log: both logs are
//! sealed, the source sequencer's backpointer window for the stream is
//! adopted by the target sequencer, and a projection carrying a shard-map
//! override is proposed. The stream's existing entries stay where they are
//! — backpointers are composite offsets, so playback follows them across
//! logs transparently.
//!
//! Concurrent reconfigurations converge: sealing a node that is already at
//! the target epoch is treated as that step being done (two replacements of
//! the same node do identical work and write-once arbitration makes the
//! copy idempotent), and the layout CAS picks exactly one winner. The loser
//! gets [`CorfuError::RaceLost`] carrying the winning epoch, distinguishing
//! "someone else finished the job" from a real layout failure.

use std::collections::HashMap;
use std::sync::Arc;

use tango_rpc::ClientConn;
use tango_wire::{decode_from_slice, encode_to_vec};

use crate::client::{CorfuClient, ReadOutcome};
use crate::entry::EntryEnvelope;
use crate::metrics::ReconfigMetrics;
use crate::projection::LogLayout;
use crate::proto::{
    PageCopy, SequencerRequest, SequencerResponse, StorageRequest, StorageResponse, WriteKind,
};
use crate::sequencer::SequencerState;
use crate::{
    compose, log_of_offset, CorfuError, Epoch, LogOffset, NodeId, NodeInfo, Projection, Result,
    StreamId,
};

/// What a completed reconfiguration produced.
#[derive(Debug, Clone)]
pub struct ReconfigOutcome {
    /// The newly installed projection.
    pub projection: Projection,
    /// The affected log's tail recovered from its sealed storage nodes, as
    /// a composite offset (equal to the raw tail for log 0).
    pub recovered_tail: LogOffset,
    /// Number of log entries scanned to rebuild backpointer state.
    pub entries_scanned: u64,
}

/// Replaces log 0's sequencer with `new_seq` — the single-log form of
/// [`replace_sequencer_in_log`]. `k` is the deployment's backpointer count
/// per stream.
pub fn replace_sequencer(
    client: &CorfuClient,
    new_seq: NodeInfo,
    k: usize,
) -> Result<ReconfigOutcome> {
    replace_sequencer_in_log(client, 0, new_seq, k)
}

/// Replaces log `log`'s sequencer with `new_seq` (which must be a fresh
/// [`crate::SequencerServer`] for that log, reachable through the client's
/// connection factory). Only `log` is sealed; every other log of a sharded
/// projection keeps operating at its current epoch.
///
/// On a lost race (seal or CAS) the error is [`CorfuError::RaceLost`]
/// carrying the winning epoch; the caller can simply refresh, since someone
/// else completed a reconfiguration.
pub fn replace_sequencer_in_log(
    client: &CorfuClient,
    log: u32,
    new_seq: NodeInfo,
    k: usize,
) -> Result<ReconfigOutcome> {
    let metrics = ReconfigMetrics::from_registry(client.metrics());
    let old = client.layout().get()?;
    let layout = old.log(log).clone();
    let old_seq = layout.sequencer;
    let log_epoch = layout.epoch + 1;

    // Build the new projection: same replica sets, new sequencer, this
    // log's epoch bumped; the global epoch advances to the next metalog
    // position.
    let mut nodes: Vec<NodeInfo> = old.nodes.iter().filter(|n| n.id != old_seq).cloned().collect();
    if nodes.iter().all(|n| n.id != new_seq.id) {
        nodes.push(new_seq.clone());
    }
    let mut logs = old.logs.clone();
    logs[log as usize] = LogLayout {
        epoch: log_epoch,
        replica_sets: layout.replica_sets.clone(),
        sequencer: new_seq.id,
    };
    let new_proj = Projection { epoch: old.epoch + 1, logs, shard: old.shard.clone(), nodes };

    // 1. Seal this log's storage nodes, collecting local tails (max across
    // replicas).
    let mut local_tails = vec![0u64; layout.replica_sets.len()];
    for (set_idx, set) in layout.replica_sets.iter().enumerate() {
        for &node in set {
            match client.storage_call(node, &StorageRequest::Seal { epoch: log_epoch })? {
                StorageResponse::Tail(t) => local_tails[set_idx] = local_tails[set_idx].max(t),
                StorageResponse::ErrSealed { epoch } if epoch >= log_epoch => {
                    // Another reconfigurer got here first; bail out and let
                    // the layout CAS pick the winner.
                    metrics.races_lost.inc();
                    return Err(CorfuError::RaceLost { winner: epoch });
                }
                other => {
                    return Err(CorfuError::Storage(format!("seal of node {node}: {other:?}")))
                }
            }
        }
    }

    // 2. Seal the old sequencer, best effort (it may be the failed node).
    if let Some(addr) = old.addr_of(old_seq) {
        let conn = client.factory().connect(&NodeInfo { id: old_seq, addr: addr.to_owned() });
        let _ = conn.call(&encode_to_vec(&SequencerRequest::Seal { epoch: log_epoch }));
    }

    let recovered_tail = layout.tail_from_local(&local_tails);
    // The coordinator journals the seal: the old sequencer is usually dead
    // (that is why it is being replaced), so its own journal never records
    // this epoch's seal.
    metrics.events.emit(tango_metrics::EventKind::Sealed, log_epoch, log as u64, recovered_tail);

    // 3. Rebuild backpointer state by backward scan at the new epoch.
    let (stream_state, entries_scanned) =
        rebuild_stream_state(client, &new_proj, log, recovered_tail, k)?;

    // 4. Bootstrap the replacement sequencer.
    let conn = client.factory().connect(&new_seq);
    let req = SequencerRequest::Bootstrap {
        epoch: log_epoch,
        tail: recovered_tail,
        streams: stream_state.streams,
    };
    let resp = conn.call(&encode_to_vec(&req))?;
    match decode_from_slice::<SequencerResponse>(&resp)? {
        SequencerResponse::Ok => {}
        other => return Err(CorfuError::Layout(format!("sequencer bootstrap failed: {other:?}"))),
    }

    // 5. Publish the projection.
    match client.layout().propose(new_proj.clone())? {
        None => {}
        Some(winner) => {
            metrics.races_lost.inc();
            return Err(CorfuError::RaceLost { winner: winner.epoch });
        }
    }
    client.refresh_layout()?;
    metrics.seq_replacements.inc();
    metrics.events.emit(
        tango_metrics::EventKind::ProjectionInstalled,
        new_proj.epoch,
        log as u64,
        new_seq.id as u64,
    );
    Ok(ReconfigOutcome {
        projection: new_proj,
        recovered_tail: compose(log, recovered_tail),
        entries_scanned,
    })
}

/// What a completed storage-node replacement produced.
#[derive(Debug, Clone)]
pub struct RebuildOutcome {
    /// The newly installed projection, with the replacement spliced in.
    pub projection: Projection,
    /// Consumed pages (data, junk, and trim marks) copied to the
    /// replacement.
    pub pages_copied: u64,
    /// Payload bytes copied to the replacement.
    pub bytes_copied: u64,
    /// Replica chains the dead node served (and the replacement now
    /// serves).
    pub chains_rebuilt: usize,
}

/// Addresses scanned per `CopyRange` round trip during a rebuild.
pub const COPY_CHUNK_PAGES: u32 = 256;

/// Replaces the dead (or decommissioned) storage node `dead` with
/// `replacement`, a fresh [`crate::StorageServer`] reachable through the
/// client's connection factory: seals the dead node's log into a new epoch,
/// copies the dead node's chain positions from the head-most surviving
/// replica of each chain, and CAS-installs a projection with the
/// replacement spliced in. Other logs of a sharded projection are
/// untouched. Clients racing the replacement observe `ErrSealed`, refresh,
/// and retry transparently.
///
/// The node being replaced does not have to be down — replacing a live
/// node decommissions it cleanly (its seal is attempted best-effort).
///
/// On a lost race the error is [`CorfuError::RaceLost`] with the winning
/// epoch: two concurrent replacements of the same node converge, with
/// exactly one winning the layout CAS.
pub fn replace_storage_node(
    client: &CorfuClient,
    dead: NodeId,
    replacement: NodeInfo,
) -> Result<RebuildOutcome> {
    let metrics = ReconfigMetrics::from_registry(client.metrics());
    let old = client.layout().get()?;

    // Validate the membership change up front. Storage nodes track one
    // epoch, so a node serves exactly one log.
    let owning: Vec<u32> = (0..old.num_logs())
        .filter(|&l| old.log(l).replica_sets.iter().flatten().any(|&n| n == dead))
        .collect();
    if old.logs.iter().any(|l| l.sequencer == dead) {
        return Err(CorfuError::Layout(format!(
            "node {dead} is a sequencer; use replace_sequencer"
        )));
    }
    if owning.is_empty() {
        // The node is in no chain: a concurrent replacement already spliced
        // it out (it may even have started after ours and still won the
        // CAS first). Converge instead of failing.
        metrics.races_lost.inc();
        return Err(CorfuError::RaceLost { winner: old.epoch });
    }
    if owning.len() > 1 {
        return Err(CorfuError::Layout(format!(
            "node {dead} serves multiple logs; per-node epochs require one log per storage node"
        )));
    }
    let log = owning[0];
    let layout = old.log(log).clone();
    let new_epoch = layout.epoch + 1;
    let affected: Vec<usize> = layout
        .replica_sets
        .iter()
        .enumerate()
        .filter(|(_, set)| set.contains(&dead))
        .map(|(idx, _)| idx)
        .collect();
    if old.logs.iter().any(|l| l.sequencer == replacement.id)
        || old.logs.iter().any(|l| l.replica_sets.iter().any(|set| set.contains(&replacement.id)))
    {
        return Err(CorfuError::Layout(format!(
            "replacement id {} is already in the projection",
            replacement.id
        )));
    }
    for &set_idx in &affected {
        if layout.replica_sets[set_idx].iter().all(|&n| n == dead) {
            return Err(CorfuError::Storage(format!(
                "replica set {set_idx} has no surviving replica to copy from"
            )));
        }
    }

    // 1. Seal the log's survivors. A node already at exactly the target
    // epoch was sealed by a concurrent replacement doing the same job —
    // that step is done, keep going; the layout CAS arbitrates at the end.
    // A node beyond the target means a farther-ahead reconfiguration won
    // outright.
    for node in old.storage_nodes_of(log) {
        if node == dead {
            continue;
        }
        match client.storage_call(node, &StorageRequest::Seal { epoch: new_epoch })? {
            StorageResponse::Tail(_) => {}
            StorageResponse::ErrSealed { epoch } if epoch == new_epoch => {}
            StorageResponse::ErrSealed { epoch } => {
                metrics.races_lost.inc();
                return Err(CorfuError::RaceLost { winner: epoch });
            }
            other => return Err(CorfuError::Storage(format!("seal of node {node}: {other:?}"))),
        }
    }
    // Best-effort seal of the dead node: if it is actually alive (a
    // decommission), this fences it; if it is down, the call just fails.
    let _ = client.storage_call(dead, &StorageRequest::Seal { epoch: new_epoch });

    // 2. Seal the log's sequencer. It keeps its tail and backpointer state;
    // the seal only fences tokens issued under the old epoch.
    let seq_addr = old
        .addr_of(layout.sequencer)
        .ok_or_else(|| CorfuError::Layout("sequencer missing from projection".into()))?;
    let seq_conn =
        client.factory().connect(&NodeInfo { id: layout.sequencer, addr: seq_addr.to_owned() });
    let resp = seq_conn.call(&encode_to_vec(&SequencerRequest::Seal { epoch: new_epoch }))?;
    match decode_from_slice::<SequencerResponse>(&resp)? {
        SequencerResponse::Ok => {}
        SequencerResponse::ErrSealed { epoch } if epoch == new_epoch => {}
        SequencerResponse::ErrSealed { epoch } => {
            metrics.races_lost.inc();
            return Err(CorfuError::RaceLost { winner: epoch });
        }
        other => return Err(CorfuError::Layout(format!("sequencer seal failed: {other:?}"))),
    }

    // 3. Seal the replacement so it serves the new epoch from birth: no
    // old-epoch straggler can ever write to it.
    let repl_conn = client.factory().connect(&replacement);
    match raw_storage_call(&repl_conn, &StorageRequest::Seal { epoch: new_epoch })? {
        StorageResponse::Tail(_) => {}
        StorageResponse::ErrSealed { epoch } if epoch == new_epoch => {}
        StorageResponse::ErrSealed { epoch } => {
            metrics.races_lost.inc();
            return Err(CorfuError::RaceLost { winner: epoch });
        }
        other => return Err(CorfuError::Storage(format!("replacement seal: {other:?}"))),
    }

    // 4. Rebuild the dead node's chain positions onto the replacement. The
    // copy source is the head-most surviving replica: the head arbitrates
    // write-once races, so its pages are a superset of every acked entry in
    // the chain. Pages it lacks were never acked and surface as holes.
    let mut pages_copied = 0u64;
    let mut bytes_copied = 0u64;
    for &set_idx in &affected {
        let source = *layout.replica_sets[set_idx]
            .iter()
            .find(|&&n| n != dead)
            .expect("validated: a survivor exists");
        let (pages, bytes) = copy_chain_position(client, &repl_conn, source, new_epoch)?;
        pages_copied += pages;
        bytes_copied += bytes;
    }

    // 5. Publish the spliced projection; the CAS picks one winner.
    let new_proj = old.with_replaced_node(dead, &replacement);
    debug_assert_eq!(new_proj.epoch, old.epoch + 1);
    debug_assert_eq!(new_proj.epoch_of_log(log), new_epoch);
    match client.layout().propose(new_proj.clone())? {
        None => {}
        Some(winner) => {
            metrics.races_lost.inc();
            return Err(CorfuError::RaceLost { winner: winner.epoch });
        }
    }
    client.refresh_layout()?;
    metrics.storage_replacements.inc();
    metrics.rebuild_pages.record(pages_copied);
    metrics.rebuild_bytes.record(bytes_copied);
    metrics.events.emit(
        tango_metrics::EventKind::ReplicaReplaced,
        new_proj.epoch,
        log as u64,
        replacement.id as u64,
    );
    metrics.events.emit(
        tango_metrics::EventKind::ProjectionInstalled,
        new_proj.epoch,
        log as u64,
        dead as u64,
    );
    Ok(RebuildOutcome {
        projection: new_proj,
        pages_copied,
        bytes_copied,
        chains_rebuilt: affected.len(),
    })
}

/// Streams every consumed page of `source` onto the replacement behind
/// `repl_conn`, reproducing data, junk fills, random trim marks, and the
/// prefix-trim horizon. Returns (pages, payload bytes) copied. Write-once
/// arbitration makes the copy idempotent, so two racing rebuilds of the
/// same node are safe.
fn copy_chain_position(
    client: &CorfuClient,
    repl_conn: &Arc<dyn ClientConn>,
    source: NodeId,
    epoch: Epoch,
) -> Result<(u64, u64)> {
    let mut pages_copied = 0u64;
    let mut bytes_copied = 0u64;
    let mut start = 0u64;
    let mut horizon_installed = false;
    loop {
        let req = StorageRequest::CopyRange { epoch, start, count: COPY_CHUNK_PAGES };
        let (local_tail, prefix_trim, next, pages) = match client.storage_call(source, &req)? {
            StorageResponse::PageChunk { local_tail, prefix_trim, next, pages } => {
                (local_tail, prefix_trim, next, pages)
            }
            StorageResponse::ErrSealed { epoch } => {
                return Err(CorfuError::RaceLost { winner: epoch })
            }
            other => {
                return Err(CorfuError::Storage(format!("copy from node {source}: {other:?}")))
            }
        };
        if !horizon_installed && prefix_trim > 0 {
            let req = StorageRequest::TrimPrefix { epoch, horizon: prefix_trim };
            match raw_storage_call(repl_conn, &req)? {
                StorageResponse::Ok => {}
                other => {
                    return Err(CorfuError::Storage(format!("replacement trim_prefix: {other:?}")))
                }
            }
        }
        horizon_installed = true;
        for (addr, page) in pages {
            let req = match page {
                PageCopy::Data(payload) => {
                    bytes_copied += payload.len() as u64;
                    StorageRequest::Write { epoch, addr, kind: WriteKind::Data, payload }
                }
                PageCopy::Junk => StorageRequest::Write {
                    epoch,
                    addr,
                    kind: WriteKind::Junk,
                    payload: bytes::Bytes::new(),
                },
                PageCopy::Trimmed => StorageRequest::Trim { epoch, addr },
            };
            match raw_storage_call(repl_conn, &req)? {
                // AlreadyWritten: a racing rebuild (or a new-epoch client
                // write that beat us here) owns the slot; either way the
                // slot is consumed with an arbitrated value.
                StorageResponse::Ok | StorageResponse::ErrAlreadyWritten => pages_copied += 1,
                StorageResponse::ErrTrimmed => pages_copied += 1,
                StorageResponse::ErrSealed { epoch } => {
                    return Err(CorfuError::RaceLost { winner: epoch })
                }
                other => {
                    return Err(CorfuError::Storage(format!("replacement install: {other:?}")))
                }
            }
        }
        if next >= local_tail {
            return Ok((pages_copied, bytes_copied));
        }
        start = next;
    }
}

/// A storage call on a connection to a node that is not (yet) in the
/// installed projection.
fn raw_storage_call(conn: &Arc<dyn ClientConn>, req: &StorageRequest) -> Result<StorageResponse> {
    let resp = conn.call(&encode_to_vec(req))?;
    Ok(decode_from_slice(&resp)?)
}

/// Scans log `log` backward from its raw `tail`, decoding entry envelopes
/// to recover the last `k` issued-and-written offsets of every stream
/// (as composite offsets, which is what the sequencer serves). Junk entries
/// (filled holes) and undecodable entries contribute nothing. The scan
/// stops early at the trim horizon — or at a sequencer-state checkpoint
/// (see [`checkpoint_sequencer_state`]): entries below a checkpoint's
/// captured tail are already reflected in it, so only the suffix is
/// scanned and the checkpoint is merged in underneath.
fn rebuild_stream_state(
    client: &CorfuClient,
    proj: &Projection,
    log: u32,
    tail: LogOffset,
    k: usize,
) -> Result<(SequencerState, u64)> {
    let mut per_stream: HashMap<StreamId, Vec<LogOffset>> = HashMap::new();
    let mut scanned = 0u64;
    let mut floor = 0u64;
    let mut seed: Option<SequencerState> = None;
    let mut offset = tail;
    while offset > floor {
        offset -= 1;
        let composite = compose(log, offset);
        match client.read_with(proj, composite)? {
            ReadOutcome::Data(bytes) => {
                scanned += 1;
                if let Ok(envelope) = EntryEnvelope::decode(&bytes, composite) {
                    if seed.is_none() && envelope.belongs_to(crate::SEQUENCER_CHECKPOINT_STREAM) {
                        if let Ok(state) =
                            tango_wire::decode_from_slice::<SequencerState>(&envelope.payload)
                        {
                            // Everything below the checkpoint's captured
                            // tail is already in it.
                            floor = state.tail;
                            seed = Some(state);
                            continue;
                        }
                    }
                    for header in &envelope.headers {
                        let entry = per_stream.entry(header.stream).or_default();
                        if entry.len() < k {
                            entry.push(composite);
                        }
                    }
                }
            }
            ReadOutcome::Junk => {
                scanned += 1;
            }
            ReadOutcome::Unwritten => {
                // A hole below the tail: a client crashed mid-append. The
                // scan cannot wait; patch it so playback never stalls on it.
                let _ = client_fill_at(client, proj, composite);
                scanned += 1;
            }
            ReadOutcome::Trimmed => break,
        }
    }
    // Merge the checkpoint underneath the scanned suffix: scanned offsets
    // are all newer than anything the checkpoint captured.
    if let Some(seed) = seed {
        for (id, older) in seed.streams {
            let entry = per_stream.entry(id).or_default();
            for off in older {
                if entry.len() >= k {
                    break;
                }
                entry.push(off);
            }
        }
    }
    let mut streams: Vec<(StreamId, Vec<LogOffset>)> = per_stream.into_iter().collect();
    streams.sort_by_key(|(id, _)| *id);
    Ok((SequencerState { tail, streams }, scanned))
}

/// Writes log 0's sequencer state into the log — the single-log form of
/// [`checkpoint_sequencer_state_in_log`].
pub fn checkpoint_sequencer_state(client: &CorfuClient) -> Result<LogOffset> {
    checkpoint_sequencer_state_in_log(client, 0)
}

/// Writes log `log`'s sequencer soft state into *that log* on the reserved
/// [`crate::SEQUENCER_CHECKPOINT_STREAM`], bounding the backward scan a
/// future [`replace_sequencer_in_log`] must perform. The entry is forced
/// into `log` (bypassing the shard map) because that is the log the
/// recovery scan reads. Call periodically from an operational task.
pub fn checkpoint_sequencer_state_in_log(client: &CorfuClient, log: u32) -> Result<LogOffset> {
    let epoch = client.projection().epoch_of_log(log);
    let state = match client.sequencer_call_pub(log, &SequencerRequest::Dump { epoch })? {
        SequencerResponse::State { tail, streams } => SequencerState { tail, streams },
        SequencerResponse::ErrSealed { epoch } => {
            return Err(CorfuError::Sealed { server_epoch: epoch })
        }
        other => return Err(CorfuError::Codec(format!("unexpected dump response {other:?}"))),
    };
    let payload = bytes::Bytes::from(tango_wire::encode_to_vec(&state));
    let (offset, _) =
        client.append_streams_in_log(log, &[crate::SEQUENCER_CHECKPOINT_STREAM], payload)?;
    Ok(offset)
}

/// Fills a hole found during recovery, at the recovery epoch of the
/// offset's log.
fn client_fill_at(client: &CorfuClient, proj: &Projection, offset: LogOffset) -> Result<()> {
    use crate::proto::WriteKind;
    let epoch = proj.epoch_of_log(log_of_offset(offset));
    let (_, local) = proj.map(offset);
    for &node in proj.chain_for(offset) {
        let req = StorageRequest::Write {
            epoch,
            addr: local,
            kind: WriteKind::Junk,
            payload: bytes::Bytes::new(),
        };
        match client.storage_call(node, &req)? {
            StorageResponse::Ok | StorageResponse::ErrAlreadyWritten => {}
            other => return Err(CorfuError::Storage(format!("recovery fill: {other:?}"))),
        }
    }
    Ok(())
}

/// Moves the whole cluster — every log's storage nodes and sequencer, and
/// the projection — to the next epoch without changing membership. Live
/// sequencers keep their tail and backpointer state across the seal.
/// Useful as a fencing barrier: after `bump_epoch` returns, no operation
/// stamped with an old epoch can take effect anywhere. Returns the new
/// global epoch and the highest composite tail recovered from the seals.
pub fn bump_epoch(client: &CorfuClient) -> Result<(Epoch, LogOffset)> {
    let metrics = ReconfigMetrics::from_registry(client.metrics());
    let old = client.layout().get()?;
    let mut tail = 0;
    let mut logs = old.logs.clone();
    for (log, layout) in old.logs.iter().enumerate() {
        let new_epoch = layout.epoch + 1;
        let mut local_tails = vec![0u64; layout.replica_sets.len()];
        for (set_idx, set) in layout.replica_sets.iter().enumerate() {
            for &node in set {
                match client.storage_call(node, &StorageRequest::Seal { epoch: new_epoch })? {
                    StorageResponse::Tail(t) => local_tails[set_idx] = local_tails[set_idx].max(t),
                    other => {
                        return Err(CorfuError::Storage(format!("seal of node {node}: {other:?}")))
                    }
                }
            }
        }
        // The sequencer keeps its soft state; sealing only bumps its epoch.
        let addr = old
            .addr_of(layout.sequencer)
            .ok_or_else(|| CorfuError::Layout("sequencer missing from projection".into()))?;
        let conn =
            client.factory().connect(&NodeInfo { id: layout.sequencer, addr: addr.to_owned() });
        let resp = conn.call(&encode_to_vec(&SequencerRequest::Seal { epoch: new_epoch }))?;
        match decode_from_slice::<SequencerResponse>(&resp)? {
            SequencerResponse::Ok => {}
            other => return Err(CorfuError::Layout(format!("sequencer seal failed: {other:?}"))),
        }
        tail = tail.max(compose(log as u32, layout.tail_from_local(&local_tails)));
        logs[log].epoch = new_epoch;
    }
    let new_proj = Projection {
        epoch: old.epoch + 1,
        logs,
        shard: old.shard.clone(),
        nodes: old.nodes.clone(),
    };
    if let Some(winner) = client.layout().propose(new_proj)? {
        metrics.races_lost.inc();
        return Err(CorfuError::RaceLost { winner: winner.epoch });
    }
    client.refresh_layout()?;
    metrics.epoch_bumps.inc();
    metrics.events.emit(tango_metrics::EventKind::ProjectionInstalled, old.epoch + 1, 0, tail);
    Ok((old.epoch + 1, tail))
}

/// Seals *one log* of a sharded projection into its next epoch without
/// changing membership — the per-log fencing barrier. Other logs keep their
/// epochs, their live sequencers, and any client-pooled tokens. Returns the
/// new global epoch and the sealed log's composite tail.
pub fn seal_log(client: &CorfuClient, log: u32) -> Result<(Epoch, LogOffset)> {
    let metrics = ReconfigMetrics::from_registry(client.metrics());
    let old = client.layout().get()?;
    let layout = old.log(log).clone();
    let new_epoch = layout.epoch + 1;
    let mut local_tails = vec![0u64; layout.replica_sets.len()];
    for (set_idx, set) in layout.replica_sets.iter().enumerate() {
        for &node in set {
            match client.storage_call(node, &StorageRequest::Seal { epoch: new_epoch })? {
                StorageResponse::Tail(t) => local_tails[set_idx] = local_tails[set_idx].max(t),
                StorageResponse::ErrSealed { epoch } => {
                    metrics.races_lost.inc();
                    return Err(CorfuError::RaceLost { winner: epoch });
                }
                other => {
                    return Err(CorfuError::Storage(format!("seal of node {node}: {other:?}")))
                }
            }
        }
    }
    let addr = old
        .addr_of(layout.sequencer)
        .ok_or_else(|| CorfuError::Layout("sequencer missing from projection".into()))?;
    let conn = client.factory().connect(&NodeInfo { id: layout.sequencer, addr: addr.to_owned() });
    let resp = conn.call(&encode_to_vec(&SequencerRequest::Seal { epoch: new_epoch }))?;
    match decode_from_slice::<SequencerResponse>(&resp)? {
        SequencerResponse::Ok => {}
        SequencerResponse::ErrSealed { epoch } => {
            metrics.races_lost.inc();
            return Err(CorfuError::RaceLost { winner: epoch });
        }
        other => return Err(CorfuError::Layout(format!("sequencer seal failed: {other:?}"))),
    }
    let mut logs = old.logs.clone();
    logs[log as usize].epoch = new_epoch;
    let new_proj = Projection {
        epoch: old.epoch + 1,
        logs,
        shard: old.shard.clone(),
        nodes: old.nodes.clone(),
    };
    if let Some(winner) = client.layout().propose(new_proj)? {
        metrics.races_lost.inc();
        return Err(CorfuError::RaceLost { winner: winner.epoch });
    }
    client.refresh_layout()?;
    metrics.epoch_bumps.inc();
    let sealed_tail = layout.tail_from_local(&local_tails);
    metrics.events.emit(tango_metrics::EventKind::Sealed, new_epoch, log as u64, sealed_tail);
    metrics.events.emit(
        tango_metrics::EventKind::ProjectionInstalled,
        old.epoch + 1,
        log as u64,
        sealed_tail,
    );
    Ok((old.epoch + 1, compose(log, sealed_tail)))
}

/// Moves `stream` to `to_log`: seals the source and target logs, hands the
/// stream's backpointer window from the source sequencer to the target
/// sequencer (`AdoptStream`), and CAS-installs a projection whose shard map
/// pins the stream to `to_log`. The stream's existing entries stay in the
/// source log — backpointers are composite offsets, so playback crosses
/// logs transparently; no entry is lost or duplicated by the remap.
///
/// Appends racing the remap either land in the source log before its seal
/// (and are then behind the adopted window via the sealed sequencer's
/// state... see below) or observe `ErrSealed`, refresh, and route to the
/// target log. The window handed over is read *after* the source seal, so
/// it reflects every append the old epoch admitted.
pub fn remap_stream(client: &CorfuClient, stream: StreamId, to_log: u32) -> Result<Projection> {
    let metrics = ReconfigMetrics::from_registry(client.metrics());
    let old = client.layout().get()?;
    if to_log >= old.num_logs() {
        return Err(CorfuError::Layout(format!(
            "target log {to_log} out of range ({} logs)",
            old.num_logs()
        )));
    }
    let from_log = old.log_of_stream(stream);
    if from_log == to_log {
        return Ok(old);
    }
    let from_epoch = old.epoch_of_log(from_log) + 1;
    let to_epoch = old.epoch_of_log(to_log) + 1;

    let seq_conn = |log: u32| -> Result<Arc<dyn ClientConn>> {
        let id = old.sequencer_of(log);
        let addr = old
            .addr_of(id)
            .ok_or_else(|| CorfuError::Layout("sequencer missing from projection".into()))?;
        Ok(client.factory().connect(&NodeInfo { id, addr: addr.to_owned() }))
    };
    let seq_call = |log: u32, req: &SequencerRequest| -> Result<SequencerResponse> {
        let resp = seq_conn(log)?.call(&encode_to_vec(req))?;
        Ok(decode_from_slice(&resp)?)
    };

    // 1. Seal both logs (storage + sequencer) at their next epochs. This
    // fences every in-flight append of the stream under the old epochs.
    for (log, epoch) in [(from_log, from_epoch), (to_log, to_epoch)] {
        for node in old.storage_nodes_of(log) {
            match client.storage_call(node, &StorageRequest::Seal { epoch })? {
                StorageResponse::Tail(_) => {}
                StorageResponse::ErrSealed { epoch: e } if e == epoch => {}
                StorageResponse::ErrSealed { epoch: e } => {
                    metrics.races_lost.inc();
                    return Err(CorfuError::RaceLost { winner: e });
                }
                other => {
                    return Err(CorfuError::Storage(format!("seal of node {node}: {other:?}")))
                }
            }
        }
        match seq_call(log, &SequencerRequest::Seal { epoch })? {
            SequencerResponse::Ok => {}
            SequencerResponse::ErrSealed { epoch: e } if e == epoch => {}
            SequencerResponse::ErrSealed { epoch: e } => {
                metrics.races_lost.inc();
                return Err(CorfuError::RaceLost { winner: e });
            }
            other => return Err(CorfuError::Layout(format!("sequencer seal failed: {other:?}"))),
        }
    }

    // 2. Read the stream's backpointer window from the *sealed* source
    // sequencer (soft state survives a seal), so it covers every append
    // the old epoch admitted.
    let window = match seq_call(
        from_log,
        &SequencerRequest::Query { epoch: from_epoch, streams: vec![stream] },
    )? {
        SequencerResponse::TailInfo { backpointers, .. } => {
            backpointers.into_iter().next().unwrap_or_default()
        }
        SequencerResponse::ErrSealed { epoch } => {
            metrics.races_lost.inc();
            return Err(CorfuError::RaceLost { winner: epoch });
        }
        other => return Err(CorfuError::Codec(format!("unexpected query response {other:?}"))),
    };
    let window: Vec<LogOffset> = window.into_iter().filter(|&b| b != u64::MAX).collect();

    // 3. Hand the window to the target sequencer. The composite offsets
    // keep pointing into the source log, where the entries live.
    match seq_call(
        to_log,
        &SequencerRequest::AdoptStream { epoch: to_epoch, stream, backpointers: window },
    )? {
        SequencerResponse::Ok => {}
        SequencerResponse::ErrSealed { epoch } => {
            metrics.races_lost.inc();
            return Err(CorfuError::RaceLost { winner: epoch });
        }
        other => return Err(CorfuError::Codec(format!("unexpected adopt response {other:?}"))),
    }

    // 4. Publish the projection with the override installed.
    let mut logs = old.logs.clone();
    logs[from_log as usize].epoch = from_epoch;
    logs[to_log as usize].epoch = to_epoch;
    let new_proj = Projection {
        epoch: old.epoch + 1,
        logs,
        shard: old.shard.with_override(stream, to_log),
        nodes: old.nodes.clone(),
    };
    match client.layout().propose(new_proj.clone())? {
        None => {}
        Some(winner) => {
            metrics.races_lost.inc();
            return Err(CorfuError::RaceLost { winner: winner.epoch });
        }
    }
    client.refresh_layout()?;
    metrics.stream_remaps.inc();
    metrics.events.emit(
        tango_metrics::EventKind::ShardRemapped,
        new_proj.epoch,
        to_log as u64,
        stream as u64,
    );
    Ok(new_proj)
}
