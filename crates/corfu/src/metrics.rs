//! Instrument bundles for the CORFU client and servers.
//!
//! Each bundle pre-binds its instruments at construction so the hot paths
//! never take the registry's registration lock. All bundles default to
//! disabled (no-op) handles; harnesses like [`crate::cluster::LocalCluster`]
//! bind every component to one shared [`Registry`] so a single snapshot
//! covers the whole deployment.

use tango_metrics::health::{GAUGE_OCCUPANCY, GAUGE_TRIM_HORIZON};
use tango_metrics::{log_scoped, Counter, Events, Gauge, Histogram, Registry, Sampler, Tracer};

/// Client-side instruments (`corfu.client.*`).
///
/// The latency histograms on the append/read hot paths are paced by a
/// shared 1-in-16 [`Sampler`]: the counters stay exact, but only sampled
/// operations pay the timer's clock reads.
#[derive(Clone, Default)]
pub struct ClientMetrics {
    /// Sequencer tokens successfully acquired (from any path: single-token
    /// RPC, batch RPC, or the client-side token pool).
    pub tokens: Counter,
    /// `NextBatch` round trips to the sequencer.
    pub token_batches: Counter,
    /// Tokens served from the client-side pool without a sequencer round
    /// trip.
    pub token_pool_hits: Counter,
    /// Tail/backpointer queries (`tail_info` and the fast check).
    pub tail_queries: Counter,
    /// End-to-end latency of successful `append_streams` calls, ns
    /// (sampled).
    pub append_latency_ns: Histogram,
    /// End-to-end latency of successful `read` calls, ns (sampled).
    pub read_latency_ns: Histogram,
    /// Latency of one storage write in a chain-replicated append, ns
    /// (sampled).
    pub chain_hop_latency_ns: Histogram,
    /// Holes this client patched with junk.
    pub hole_fills: Counter,
    /// Poll round trips spent waiting for an unwritten offset in
    /// `wait_read` before it resolved (or the hole was filled).
    pub hole_polls: Counter,
    /// `ReadBatch` round trips issued by `read_many`.
    pub read_batches: Counter,
    /// Operations retried because a server reported a newer epoch.
    pub seal_retries: Counter,
    /// Append tokens lost to a racing hole-filler.
    pub tokens_lost: Counter,
    /// Holes currently being chased by this client (raised when a fill
    /// starts, lowered when it resolves). The health plane reads this as
    /// `corfu.client.hole_backlog`.
    pub hole_backlog: Gauge,
    /// Fills that actually forced junk into the log (as opposed to
    /// discovering the slow writer won).
    pub junk_forced: Counter,
    /// Gate pacing the latency histograms above. The client's root trace
    /// spans share the same gate, so one sampling decision covers both
    /// the latency timer and the span (see `CorfuClient::append_streams`).
    pub sampler: Sampler,
    /// Span recorder for client root spans.
    pub tracer: Tracer,
    /// Control-plane event journal (hole fills, cross-log decisions).
    pub events: Events,
}

impl ClientMetrics {
    /// Binds the `corfu.client.*` names in `registry`.
    pub fn from_registry(registry: &Registry) -> Self {
        Self {
            tokens: registry.counter("corfu.client.tokens"),
            token_batches: registry.counter("corfu.client.token_batches"),
            token_pool_hits: registry.counter("corfu.client.token_pool_hits"),
            tail_queries: registry.counter("corfu.client.tail_queries"),
            append_latency_ns: registry.histogram("corfu.client.append_latency_ns"),
            read_latency_ns: registry.histogram("corfu.client.read_latency_ns"),
            chain_hop_latency_ns: registry.histogram("corfu.client.chain_hop_latency_ns"),
            hole_fills: registry.counter("corfu.client.hole_fills"),
            hole_polls: registry.counter("corfu.hole_polls"),
            read_batches: registry.counter("corfu.client.read_batches"),
            seal_retries: registry.counter("corfu.client.seal_retries"),
            tokens_lost: registry.counter("corfu.client.tokens_lost"),
            hole_backlog: registry.gauge(tango_metrics::health::GAUGE_HOLE_BACKLOG),
            junk_forced: registry.counter(tango_metrics::health::COUNTER_JUNK_FORCED),
            sampler: Sampler::default(),
            tracer: registry.tracer(),
            events: registry.events(),
        }
    }
}

/// Per-log client instruments for a sharded deployment: the hot counters
/// that are worth telling apart by shard. Log 0 keeps the historical
/// bare names (see [`log_scoped`]) — `corfu.client.hole_fills` for log 0
/// is the *same cell* as [`ClientMetrics::hole_fills`] — so single-log
/// snapshots stay byte-identical to pre-sharding output.
#[derive(Clone, Default)]
pub struct ClientLogMetrics {
    /// Appends committed to this log (counting each part of a cross-log
    /// multiappend against the log it landed in).
    pub appends: Counter,
    /// Holes this client patched in this log.
    pub hole_fills: Counter,
    /// Per-address trims this client issued against this log (hole
    /// handling and explicit `trim` calls) — random trims, the kind that
    /// wears flash (§2.2).
    pub random_trims: Counter,
    /// The highest prefix-trim horizon (raw, within-log offset) this
    /// client has driven for this log.
    pub prefix_trim: Gauge,
}

impl ClientLogMetrics {
    /// Binds the log-scoped `corfu.client.*` names in `registry`.
    pub fn for_log(registry: &Registry, log: u64) -> Self {
        Self {
            appends: registry.counter(&log_scoped("corfu.client.appends", log)),
            hole_fills: registry.counter(&log_scoped("corfu.client.hole_fills", log)),
            random_trims: registry.counter(&log_scoped("corfu.client.random_trims", log)),
            prefix_trim: registry.gauge(&log_scoped("corfu.client.prefix_trim", log)),
        }
    }
}

/// Sequencer-side instruments (`corfu.seq.*`).
///
/// Binding with [`SequencerMetrics::for_log`] scopes every name to the
/// sequencer's log, so the shards of a sharded deployment are tellable
/// apart even when several sequencers share one registry. Log 0 keeps
/// the historical bare names.
#[derive(Clone, Default)]
pub struct SequencerMetrics {
    /// Tokens granted, counting every token inside a batch (`Next` and
    /// `NextBatch` requests that succeeded).
    pub tokens_granted: Counter,
    /// `NextBatch` requests that succeeded. `tokens_granted` minus plain
    /// `Next` grants divided by this gives the realized batch size.
    pub batches_granted: Counter,
    /// Backpointer lookups served (`Query` requests that succeeded).
    pub backpointer_lookups: Counter,
    /// Seals accepted.
    pub seals: Counter,
    /// Remapped-stream windows adopted from another log.
    pub adoptions: Counter,
    /// The highest raw offset granted (`corfu.seq.tail`, log-scoped).
    /// The health plane compares it against the runtime applied
    /// watermark to compute apply lag.
    pub tail: Gauge,
    /// This sequencer's current epoch (`tango.epoch`, log-scoped). The
    /// health plane flags divergence across nodes.
    pub epoch: Gauge,
    /// Span recorder for sequencer-side child spans: grants and queries
    /// record under the caller's trace when one arrives with the request.
    pub tracer: Tracer,
    /// Control-plane event journal (seals, stream adoptions).
    pub events: Events,
}

impl SequencerMetrics {
    /// Binds the log-0 `corfu.seq.*` names in `registry`.
    pub fn from_registry(registry: &Registry) -> Self {
        Self::for_log(registry, 0)
    }

    /// Binds the `corfu.seq.*` names scoped to `log` in `registry`.
    pub fn for_log(registry: &Registry, log: u64) -> Self {
        Self {
            tokens_granted: registry.counter(&log_scoped("corfu.seq.tokens_granted", log)),
            batches_granted: registry.counter(&log_scoped("corfu.seq.batches_granted", log)),
            backpointer_lookups: registry
                .counter(&log_scoped("corfu.seq.backpointer_lookups", log)),
            seals: registry.counter(&log_scoped("corfu.seq.seals", log)),
            adoptions: registry.counter(&log_scoped("corfu.seq.adoptions", log)),
            tail: registry.gauge(&log_scoped(tango_metrics::health::GAUGE_SEQ_TAIL, log)),
            epoch: registry.gauge(&log_scoped(tango_metrics::health::GAUGE_EPOCH, log)),
            tracer: registry.tracer(),
            events: registry.events(),
        }
    }
}

/// Storage-node instruments (`corfu.storage.*`), shared by every node bound
/// to the same registry.
///
/// The request counters keep their historical bare names even in sharded
/// deployments (every node bound to one registry aggregates); the trim
/// accounting and the occupancy/tiering family added for the reclamation
/// loop are log-scoped via [`log_scoped`] so `/metrics` tells the shards
/// apart (log 0 keeps bare names).
#[derive(Clone, Default)]
pub struct StorageMetrics {
    /// Successful page reads (any outcome: data, junk, unwritten, trimmed).
    pub reads: Counter,
    /// Successful data writes.
    pub writes: Counter,
    /// Successful junk fills.
    pub fills: Counter,
    /// Seals accepted.
    pub seals: Counter,
    /// Trim operations accepted (single-offset and prefix).
    pub trims: Counter,
    /// `CopyRange` chunks served to a rebuild coordinator.
    pub copy_chunks: Counter,
    /// Sizes of the `ReadBatch` requests this node served (pages per
    /// batch).
    pub read_batch: Histogram,
    /// Time a request waited for the node's unit lock before being
    /// serviced, ns (sampled). Together with the `flash.*.service_ns`
    /// histograms this decomposes storage latency into queue wait vs.
    /// device service time.
    pub queue_wait_ns: Histogram,
    /// Per-address trims accepted (`corfu.storage.random_trims`,
    /// log-scoped) — the expensive kind of reclamation on flash (§2.2).
    pub random_trims: Counter,
    /// `TrimPrefix` requests accepted (log-scoped).
    pub prefix_trims: Counter,
    /// Pages released by sequential prefix trims
    /// (`corfu.storage.prefix_trimmed_pages`, log-scoped).
    pub prefix_trimmed_pages: Counter,
    /// Live (untrimmed) pages on the unit ([`GAUGE_OCCUPANCY`],
    /// log-scoped). The health plane compares this against
    /// `HealthPolicy::max_occupancy`.
    pub occupancy: Gauge,
    /// The unit's prefix-trim horizon ([`GAUGE_TRIM_HORIZON`], log-scoped).
    pub trim_horizon: Gauge,
    /// Live pages resident in the hot (RAM) tier (log-scoped).
    pub hot_pages: Gauge,
    /// Live pages resident in the cold (file) tier (log-scoped).
    pub cold_pages: Gauge,
    /// Migration passes that moved pages hot → cold (log-scoped).
    pub migrations: Counter,
    /// Pages migrated hot → cold (log-scoped).
    pub migrated_pages: Counter,
    /// Live pages released by tiered reclamation (log-scoped).
    pub reclaimed_pages: Counter,
    /// Whole segment files reclaimed below the horizon (log-scoped).
    pub reclaimed_segments: Counter,
    /// Pages whose checksums the scrub pass verified (log-scoped).
    pub scrubbed_pages: Counter,
    /// Scrub checksum failures (log-scoped). Any nonzero value is bit rot.
    pub scrub_errors: Counter,
    /// Gate pacing `queue_wait_ns`.
    pub sampler: Sampler,
    /// Span recorder for storage-side child spans.
    pub tracer: Tracer,
    /// Control-plane event journal (segment reclaims, cold migrations).
    pub events: Events,
}

impl StorageMetrics {
    /// Binds the `corfu.storage.*` names in `registry`, scoped to log 0.
    pub fn from_registry(registry: &Registry) -> Self {
        Self::for_log(registry, 0)
    }

    /// Binds the `corfu.storage.*` names in `registry`, with the trim and
    /// occupancy family scoped to `log`.
    pub fn for_log(registry: &Registry, log: u64) -> Self {
        Self {
            reads: registry.counter("corfu.storage.reads"),
            writes: registry.counter("corfu.storage.writes"),
            fills: registry.counter("corfu.storage.fills"),
            seals: registry.counter("corfu.storage.seals"),
            trims: registry.counter("corfu.storage.trims"),
            copy_chunks: registry.counter("corfu.storage.copy_chunks"),
            read_batch: registry.histogram("corfu.storage.read_batch"),
            queue_wait_ns: registry.histogram("flash.queue_wait_ns"),
            random_trims: registry.counter(&log_scoped("corfu.storage.random_trims", log)),
            prefix_trims: registry.counter(&log_scoped("corfu.storage.prefix_trims", log)),
            prefix_trimmed_pages: registry
                .counter(&log_scoped("corfu.storage.prefix_trimmed_pages", log)),
            occupancy: registry.gauge(&log_scoped(GAUGE_OCCUPANCY, log)),
            trim_horizon: registry.gauge(&log_scoped(GAUGE_TRIM_HORIZON, log)),
            hot_pages: registry.gauge(&log_scoped("corfu.storage.hot_pages", log)),
            cold_pages: registry.gauge(&log_scoped("corfu.storage.cold_pages", log)),
            migrations: registry.counter(&log_scoped("corfu.storage.migrations", log)),
            migrated_pages: registry.counter(&log_scoped("corfu.storage.migrated_pages", log)),
            reclaimed_pages: registry.counter(&log_scoped("corfu.storage.reclaimed_pages", log)),
            reclaimed_segments: registry
                .counter(&log_scoped("corfu.storage.reclaimed_segments", log)),
            scrubbed_pages: registry.counter(&log_scoped("corfu.storage.scrubbed_pages", log)),
            scrub_errors: registry.counter(&log_scoped("corfu.storage.scrub_errors", log)),
            sampler: Sampler::default(),
            tracer: registry.tracer(),
            events: registry.events(),
        }
    }
}

/// Reconfiguration instruments (`corfu.reconfig.*`), bound per call by the
/// [`crate::reconfig`] entry points against the coordinating client's
/// registry. Reconfiguration is not a hot path, so the registration lock is
/// acceptable there.
#[derive(Clone, Default)]
pub struct ReconfigMetrics {
    /// Completed sequencer replacements.
    pub seq_replacements: Counter,
    /// Completed storage-node replacements (chain rebuilds).
    pub storage_replacements: Counter,
    /// Completed membership-preserving epoch bumps.
    pub epoch_bumps: Counter,
    /// Completed stream remaps (stream moved to another log of a sharded
    /// deployment).
    pub stream_remaps: Counter,
    /// Reconfigurations abandoned because a concurrent reconfigurer won
    /// (seal race or layout CAS conflict).
    pub races_lost: Counter,
    /// Pages copied to a replacement node per rebuild.
    pub rebuild_pages: Histogram,
    /// Payload bytes copied to a replacement node per rebuild.
    pub rebuild_bytes: Histogram,
    /// Control-plane event journal (seals, projection installs, remaps,
    /// replica replacements) — the flight recorder of the coordinating
    /// client.
    pub events: Events,
}

impl ReconfigMetrics {
    /// Binds the `corfu.reconfig.*` names in `registry`.
    pub fn from_registry(registry: &Registry) -> Self {
        Self {
            seq_replacements: registry.counter("corfu.reconfig.seq_replacements"),
            storage_replacements: registry.counter("corfu.reconfig.storage_replacements"),
            epoch_bumps: registry.counter("corfu.reconfig.epoch_bumps"),
            stream_remaps: registry.counter("corfu.reconfig.stream_remaps"),
            races_lost: registry.counter("corfu.reconfig.races_lost"),
            rebuild_pages: registry.histogram("corfu.reconfig.rebuild_pages"),
            rebuild_bytes: registry.histogram("corfu.reconfig.rebuild_bytes"),
            events: registry.events(),
        }
    }
}
