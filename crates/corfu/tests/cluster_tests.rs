//! End-to-end tests of the CORFU deployment: append/read, chain repair,
//! hole filling, checks, trims, and sequencer failover.

use bytes::Bytes;
use corfu::cluster::{ClusterConfig, LocalCluster};
use corfu::reconfig;
use corfu::{CorfuError, ReadOutcome};

fn payload(i: u64) -> Bytes {
    Bytes::from(format!("entry-{i}").into_bytes())
}

#[test]
fn append_read_roundtrip() {
    let cluster = LocalCluster::new(ClusterConfig::default());
    let client = cluster.client().unwrap();
    let mut offsets = Vec::new();
    for i in 0..50 {
        offsets.push(client.append(payload(i)).unwrap());
    }
    // Offsets are dense and monotonic: the sequencer serializes appends.
    assert_eq!(offsets, (0..50).collect::<Vec<u64>>());
    for (i, &off) in offsets.iter().enumerate() {
        let entry = client.read_entry(off).unwrap();
        assert_eq!(entry.payload, payload(i as u64));
    }
    assert_eq!(client.check_tail_fast().unwrap(), 50);
    assert_eq!(client.check_tail_slow().unwrap(), 50);
}

#[test]
fn entries_stripe_across_replica_sets() {
    let cluster = LocalCluster::new(ClusterConfig::default());
    let client = cluster.client().unwrap();
    for i in 0..12 {
        client.append(payload(i)).unwrap();
    }
    // With 3 sets of 2 replicas, each node should hold 4 entries.
    for server in cluster.storage() {
        assert_eq!(server.stats().data_writes, 4);
    }
}

#[test]
fn concurrent_appends_get_unique_offsets() {
    let cluster = LocalCluster::new(ClusterConfig::default());
    let mut handles = Vec::new();
    for t in 0..8 {
        let client = cluster.client().unwrap();
        handles.push(std::thread::spawn(move || {
            let mut offs = Vec::new();
            for i in 0..100u64 {
                offs.push(client.append(payload(t * 1000 + i)).unwrap());
            }
            offs
        }));
    }
    let mut all: Vec<u64> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
    all.sort_unstable();
    let expected: Vec<u64> = (0..800).collect();
    assert_eq!(all, expected, "offsets must be unique and dense");
}

#[test]
fn unwritten_reads_and_wait_read_fill() {
    let cluster = LocalCluster::new(ClusterConfig::default());
    let mut cfg_client = cluster.client().unwrap();
    // Reserve a token but never write it: a hole.
    let token = cfg_client.token(&[]).unwrap();
    assert_eq!(cfg_client.read(token.offset).unwrap(), ReadOutcome::Unwritten);
    // wait_read patches the hole with junk after the (default 100ms) wait.
    let start = std::time::Instant::now();
    assert_eq!(cfg_client.wait_read(token.offset).unwrap(), ReadOutcome::Junk);
    assert!(start.elapsed() >= std::time::Duration::from_millis(90));
    // The slot is consumed: the original holder's late write loses.
    let late = corfu::EntryEnvelope::raw(payload(9)).encode(token.offset).unwrap();
    assert!(matches!(cfg_client.write_at(token.offset, &late), Err(CorfuError::TokenLost { .. })));
    // Appends continue past the junk.
    let off = cfg_client.append(payload(1)).unwrap();
    assert!(off > token.offset);
    let _ = &mut cfg_client;
}

#[test]
fn read_many_stitches_mixed_outcomes_in_input_order() {
    // Default geometry: 3 replica sets of 2, so the batch below spans every
    // set and the client must regroup and restitch.
    let cluster = LocalCluster::new(ClusterConfig::default());
    let client = cluster.client().unwrap();
    for i in 0..9 {
        client.append(payload(i)).unwrap();
    }
    // Offset 9 becomes junk (reserved, never written, patched).
    let tok = client.token(&[]).unwrap();
    client.fill(tok.offset).unwrap();
    // Offset 10 is written then trimmed; offset 11 stays a hole.
    let trimmed = client.append(payload(10)).unwrap();
    client.trim(trimmed).unwrap();
    let hole = client.token(&[]).unwrap();

    let batches_before = client.metrics().counter("corfu.client.read_batches").get();
    let offsets = vec![hole.offset, 4, trimmed, 0, tok.offset, 8, 1];
    let outcomes = client.read_many(&offsets).unwrap();
    assert_eq!(outcomes.len(), offsets.len());
    assert_eq!(outcomes[0], ReadOutcome::Unwritten);
    assert_eq!(outcomes[2], ReadOutcome::Trimmed);
    assert_eq!(outcomes[4], ReadOutcome::Junk);
    for (slot, i) in [(1usize, 4u64), (3, 0), (5, 8), (6, 1)] {
        match &outcomes[slot] {
            ReadOutcome::Data(bytes) => {
                let entry = corfu::EntryEnvelope::decode(bytes, offsets[slot]).unwrap();
                assert_eq!(entry.payload, payload(i));
            }
            other => panic!("offset {} expected data, got {other:?}", offsets[slot]),
        }
    }
    // The 7 offsets span all 3 replica sets: one ReadBatch per set.
    let batches = client.metrics().counter("corfu.client.read_batches").get() - batches_before;
    assert_eq!(batches, 3);
    // And the storage side saw them as batches, visible in the histogram.
    assert!(client.metrics().histogram("corfu.storage.read_batch").count() >= 3);
}

#[test]
fn read_many_empty_and_oversized_batches() {
    let cluster = LocalCluster::new(ClusterConfig::default());
    let client = cluster.client().unwrap();
    assert_eq!(client.read_many(&[]).unwrap(), Vec::new());
    // More offsets than MAX_READ_BATCH still works: the client re-chunks.
    let n = corfu::MAX_READ_BATCH as u64 + 10;
    for i in 0..n {
        client.append(payload(i)).unwrap();
    }
    let offsets: Vec<u64> = (0..n).collect();
    let outcomes = client.read_many(&offsets).unwrap();
    assert_eq!(outcomes.len(), n as usize);
    assert!(outcomes.iter().all(|o| matches!(o, ReadOutcome::Data(_))));
}

#[test]
fn wait_read_backs_off_while_polling_holes() {
    let cluster = LocalCluster::new(ClusterConfig::default());
    let client = cluster.client().unwrap();
    let token = client.token(&[]).unwrap();
    let polls_before = client.metrics().counter("corfu.hole_polls").get();
    let start = std::time::Instant::now();
    assert_eq!(client.wait_read(token.offset).unwrap(), ReadOutcome::Junk);
    assert!(start.elapsed() >= std::time::Duration::from_millis(90));
    let polls = client.metrics().counter("corfu.hole_polls").get() - polls_before;
    // Exponential backoff (1ms doubling to a 16ms cap) crosses the 100ms
    // hole-fill window in ~10 polls; fixed-interval polling took ~100.
    assert!((4..=40).contains(&polls), "expected bounded backoff, saw {polls} polls");
}

#[test]
fn fill_loses_to_completed_write() {
    let cluster = LocalCluster::new(ClusterConfig::default());
    let client = cluster.client().unwrap();
    let off = client.append(payload(7)).unwrap();
    // Filling a written offset returns the existing data.
    match client.fill(off).unwrap() {
        ReadOutcome::Data(bytes) => {
            let entry = corfu::EntryEnvelope::decode(&bytes, off).unwrap();
            assert_eq!(entry.payload, payload(7));
        }
        other => panic!("expected data, got {other:?}"),
    }
}

#[test]
fn half_written_chain_is_repaired_by_reader() {
    // 1 set, 3 replicas: write only the head via a raw storage call, then
    // read through the client, which must repair and return the value.
    let config = ClusterConfig { num_sets: 1, replication: 3, ..ClusterConfig::default() };
    let cluster = LocalCluster::new(config);
    let client = cluster.client().unwrap();
    let token = client.token(&[]).unwrap();
    let body = corfu::EntryEnvelope::raw(payload(3)).encode(token.offset).unwrap();
    // Simulate a client that died after the head write: poke the head
    // storage server directly. With one replica set, local addr == offset.
    use corfu::proto::{StorageRequest, StorageResponse, WriteKind};
    let head = &cluster.storage()[0];
    let resp = head.process(StorageRequest::Write {
        epoch: 0,
        addr: token.offset,
        kind: WriteKind::Data,
        payload: Bytes::from(body.clone()),
    });
    assert!(matches!(resp, StorageResponse::Ok));
    // Tail replica has nothing yet; the read repairs.
    match client.read(token.offset).unwrap() {
        ReadOutcome::Data(bytes) => assert_eq!(bytes, Bytes::from(body)),
        other => panic!("expected repaired data, got {other:?}"),
    }
    // Now all replicas hold it.
    assert_eq!(cluster.storage()[2].stats().data_writes, 1);
}

#[test]
fn trim_prefix_reclaims_and_reports() {
    let cluster = LocalCluster::new(ClusterConfig::default());
    let client = cluster.client().unwrap();
    for i in 0..30 {
        client.append(payload(i)).unwrap();
    }
    client.trim_prefix(10).unwrap();
    for off in 0..10 {
        assert_eq!(client.read(off).unwrap(), ReadOutcome::Trimmed);
    }
    for off in 10..30 {
        assert!(matches!(client.read(off).unwrap(), ReadOutcome::Data(_)));
    }
    // The tail is unaffected by trims.
    assert_eq!(client.check_tail_slow().unwrap(), 30);
}

#[test]
fn random_trim_single_offset() {
    let cluster = LocalCluster::new(ClusterConfig::default());
    let client = cluster.client().unwrap();
    for i in 0..5 {
        client.append(payload(i)).unwrap();
    }
    client.trim(2).unwrap();
    assert_eq!(client.read(2).unwrap(), ReadOutcome::Trimmed);
    assert!(matches!(client.read(1).unwrap(), ReadOutcome::Data(_)));
    assert!(matches!(client.read(3).unwrap(), ReadOutcome::Data(_)));
}

#[test]
fn sequencer_failover_preserves_log_and_tail() {
    let cluster = LocalCluster::new(ClusterConfig::default());
    let client = cluster.client().unwrap();
    for i in 0..40u32 {
        client.append_streams(&[i % 4], payload(i as u64)).unwrap();
    }
    // Kill the sequencer; fast checks now fail at the transport level.
    cluster.kill_sequencer();
    assert!(client.check_tail_fast().is_err());
    // The slow check still works against the storage nodes.
    assert_eq!(client.check_tail_slow().unwrap(), 40);

    // Reconfigure to a replacement sequencer.
    let (info, _server) = cluster.spawn_replacement_sequencer();
    let outcome = reconfig::replace_sequencer(&client, info, 4).unwrap();
    assert_eq!(outcome.recovered_tail, 40);
    assert_eq!(outcome.projection.epoch, 1);

    // The client works again: fast check, appends, stream backpointers.
    assert_eq!(client.check_tail_fast().unwrap(), 40);
    let (off, entry) = client.append_streams(&[2], payload(100)).unwrap();
    assert_eq!(off, 40);
    // The recovered backpointers must point at stream 2's previous entries
    // (offsets 2, 6, ..., 38 -> last four are 38, 34, 30, 26).
    let header = entry.header_for(2).unwrap();
    assert_eq!(header.backpointers, vec![38, 34, 30, 26]);

    // Old data is still readable.
    let entry = client.read_entry(5).unwrap();
    assert_eq!(entry.payload, payload(5));
}

#[test]
fn stale_epoch_clients_recover_after_bump() {
    let cluster = LocalCluster::new(ClusterConfig::default());
    let client_a = cluster.client().unwrap();
    let client_b = cluster.client().unwrap();
    client_a.append(payload(0)).unwrap();
    // Fence the cluster to a new epoch via client A.
    let (epoch, tail) = reconfig::bump_epoch(&client_a).unwrap();
    assert_eq!(epoch, 1);
    assert_eq!(tail, 1);
    // Client B still holds epoch 0 but transparently refreshes and retries.
    let off = client_b.append(payload(1)).unwrap();
    assert_eq!(off, 1);
    assert_eq!(client_b.epoch(), 1);
}

#[test]
fn multiappend_entry_carries_all_stream_headers() {
    let cluster = LocalCluster::new(ClusterConfig::default());
    let client = cluster.client().unwrap();
    client.append_streams(&[1], payload(0)).unwrap();
    client.append_streams(&[2], payload(1)).unwrap();
    let (off, entry) = client.append_streams(&[1, 2], payload(2)).unwrap();
    assert_eq!(off, 2);
    assert_eq!(entry.header_for(1).unwrap().backpointers, vec![0]);
    assert_eq!(entry.header_for(2).unwrap().backpointers, vec![1]);
    // Reading it back yields the same envelope.
    assert_eq!(client.read_entry(off).unwrap(), entry);
}

#[test]
fn storage_node_crash_fails_appends_to_its_set() {
    let config = ClusterConfig { num_sets: 2, replication: 1, ..ClusterConfig::default() };
    let cluster = LocalCluster::new(config);
    let client = cluster.client().unwrap();
    client.append(payload(0)).unwrap(); // set 0
    client.append(payload(1)).unwrap(); // set 1
    cluster.registry().kill("storage-1");
    // Offset 2 maps to set 0 (alive).
    assert_eq!(client.append(payload(2)).unwrap(), 2);
    // Offset 3 maps to set 1 (dead) - the append must error, not hang.
    assert!(client.append(payload(3)).is_err());
}
