//! Fault injection: races between writers and hole-fillers, and flaky
//! transports. The write-once storage must arbitrate every race to exactly
//! one winner, visible identically to all readers.
//!
//! The races here run under the seeded [`support::fault::FaultPlan`]
//! harness: injected delays and drops are a pure function of the seed, so
//! any failure reproduces with the `TANGO_FAULT_SEED` it prints.

mod support;

use std::sync::Arc;

use bytes::Bytes;
use corfu::cluster::{ClusterConfig, LocalCluster};
use corfu::{ClientOptions, CorfuError, EntryEnvelope, ReadOutcome};
use support::fault::FaultPlan;
use support::{seed_from_env, SeedGuard};

#[test]
fn concurrent_fill_vs_write_has_one_winner() {
    // Many rounds: a writer and a filler race for the same offset from
    // different threads; afterwards every offset must hold exactly one
    // consistent value at all replicas. Seeded delays on the storage path
    // shake the interleaving from round to round.
    let seed = seed_from_env(0xFA57_0001);
    let _guard = SeedGuard(seed);
    let cluster = LocalCluster::new(ClusterConfig::default());
    let plan = FaultPlan::new(seed);
    plan.delay_calls("storage.write", 40, 200);
    let wrapped = plan.wrap(cluster.conn_factory());
    let writer = cluster
        .client_with_factory(wrapped.clone(), ClientOptions::default(), cluster.metrics().clone())
        .unwrap();
    let filler = cluster
        .client_with_factory(wrapped, ClientOptions::default(), cluster.metrics().clone())
        .unwrap();

    for round in 0..50u64 {
        let token = writer.token(&[]).unwrap();
        let offset = token.offset;
        let body = EntryEnvelope::raw(Bytes::from(format!("round-{round}").into_bytes()))
            .encode(offset)
            .unwrap();
        let w = {
            let writer = writer.clone();
            let body = body.clone();
            std::thread::spawn(move || writer.write_at(offset, &body))
        };
        let f = {
            let filler = filler.clone();
            std::thread::spawn(move || filler.fill(offset))
        };
        let write_result = w.join().unwrap();
        let fill_result = f.join().unwrap().unwrap();

        // Exactly one interpretation must hold, and reads agree with it.
        let read = writer.read(offset).unwrap();
        match (&write_result, &fill_result) {
            (Ok(()), outcome) => {
                // The writer won; the filler must have observed its data.
                assert_eq!(read, ReadOutcome::Data(Bytes::from(body.clone())));
                assert!(
                    matches!(outcome, ReadOutcome::Data(_)),
                    "filler must surface the winner's data, got {outcome:?}"
                );
            }
            (Err(CorfuError::TokenLost { .. }), ReadOutcome::Junk) => {
                assert_eq!(read, ReadOutcome::Junk);
            }
            other => panic!("inconsistent race outcome: {other:?}"),
        }
    }
}

#[test]
fn sequencer_outage_is_retried() {
    // A sequencer that disappears and comes back mid-append: the client's
    // retry path (refresh layout, reconnect, retry) must ride it out.
    let cluster = LocalCluster::new(ClusterConfig::tiny());
    let registry = cluster.registry().clone();
    let base = cluster.client().unwrap();
    // Warm up: a normal append works.
    base.append(Bytes::from_static(b"ok")).unwrap();

    let proj = base.projection();
    let seq_addr = proj.addr_of(proj.sequencer_of(0)).unwrap().to_owned();
    let handler_restore = {
        // Keep a strong reference to restore after the kill.
        cluster.sequencer().clone()
    };
    registry.kill(&seq_addr);
    let appender = {
        let base = base.clone();
        std::thread::spawn(move || base.append(Bytes::from_static(b"during-outage")))
    };
    std::thread::sleep(std::time::Duration::from_millis(20));
    registry.register(seq_addr, handler_restore as Arc<dyn tango_rpc::RpcHandler>);
    // The append must have survived the outage via retries.
    let off = appender.join().unwrap().unwrap();
    assert!(matches!(base.read(off).unwrap(), ReadOutcome::Data(_)));
}

#[test]
fn readers_agree_after_repair_races() {
    // Several readers concurrently read a half-written chain; all must
    // agree on the repaired value.
    let config = ClusterConfig { num_sets: 1, replication: 3, ..ClusterConfig::default() };
    let cluster = LocalCluster::new(config);
    let client = cluster.client().unwrap();
    let token = client.token(&[]).unwrap();
    let body = EntryEnvelope::raw(Bytes::from_static(b"half")).encode(token.offset).unwrap();
    // Write only the head replica directly.
    use corfu::proto::{StorageRequest, WriteKind};
    cluster.storage()[0].process(StorageRequest::Write {
        epoch: 0,
        addr: token.offset,
        kind: WriteKind::Data,
        payload: Bytes::from(body.clone()),
    });

    let mut handles = Vec::new();
    for _ in 0..6 {
        let c = cluster.client().unwrap();
        let off = token.offset;
        handles.push(std::thread::spawn(move || c.read(off).unwrap()));
    }
    for h in handles {
        assert_eq!(h.join().unwrap(), ReadOutcome::Data(Bytes::from(body.clone())));
    }
}

#[test]
fn flaky_sequencer_transport_is_retried() {
    // A lossy client→sequencer link: a seeded 30% of sequencer calls time
    // out before reaching the server. Token acquisition must retry through
    // the drops; storage traffic is untouched, so no append may fail.
    let seed = seed_from_env(0xFA57_0002);
    let _guard = SeedGuard(seed);
    let cluster = LocalCluster::new(ClusterConfig::default());
    let plan = FaultPlan::new(seed);
    plan.drop_calls("seq.", 30);
    let client = cluster
        .client_with_factory(
            plan.wrap(cluster.conn_factory()),
            ClientOptions::default(),
            cluster.metrics().clone(),
        )
        .unwrap();

    let mut offsets = Vec::new();
    for i in 0..50u32 {
        let payload = Bytes::from(format!("flaky-{i}").into_bytes());
        let off = client.append(payload.clone()).unwrap();
        offsets.push((off, payload));
    }
    for (off, payload) in &offsets {
        assert_eq!(&client.read_entry(*off).unwrap().payload, payload);
    }
    // The link really was lossy: the plan dropped sequencer calls.
    let drops = plan.trace().iter().filter(|e| e.action == "drop").count();
    assert!(drops > 0, "expected the seeded plan to drop some sequencer calls");
}
