//! Tests for sequencer-state checkpoints: recovery after failover scans
//! only the log suffix beyond the newest checkpoint, and recovers
//! identical state.

use bytes::Bytes;
use corfu::cluster::{ClusterConfig, LocalCluster};
use corfu::reconfig;

fn payload(i: u64) -> Bytes {
    Bytes::from(format!("e{i}").into_bytes())
}

#[test]
fn checkpoint_bounds_recovery_scan() {
    let cluster = LocalCluster::new(ClusterConfig::default());
    let client = cluster.client().unwrap();
    for i in 0..200u32 {
        client.append_streams(&[i % 5], payload(i as u64)).unwrap();
    }
    // Persist the sequencer state, then write a short suffix.
    reconfig::checkpoint_sequencer_state(&client).unwrap();
    for i in 200..220u32 {
        client.append_streams(&[i % 5], payload(i as u64)).unwrap();
    }

    cluster.kill_sequencer();
    let (info, _server) = cluster.spawn_replacement_sequencer();
    let outcome = reconfig::replace_sequencer(&client, info, 4).unwrap();
    assert_eq!(outcome.recovered_tail, 221); // 220 entries + 1 checkpoint
                                             // The scan stopped at the checkpoint: far fewer than 221 entries read.
    assert!(
        outcome.entries_scanned <= 25,
        "scanned {} entries despite the checkpoint",
        outcome.entries_scanned
    );

    // Recovered backpointers are correct: the checkpoint entry at offset
    // 200 shifts the suffix, so stream 2's most recent entries sit at
    // offsets 218, 213, 208, 203.
    let (off, entry) = client.append_streams(&[2], payload(999)).unwrap();
    assert_eq!(off, 221);
    assert_eq!(entry.header_for(2).unwrap().backpointers, vec![218, 213, 208, 203]);
}

#[test]
fn recovery_without_checkpoint_still_exact() {
    let cluster = LocalCluster::new(ClusterConfig::default());
    let client = cluster.client().unwrap();
    for i in 0..50u32 {
        client.append_streams(&[i % 3], payload(i as u64)).unwrap();
    }
    cluster.kill_sequencer();
    let (info, _server) = cluster.spawn_replacement_sequencer();
    let outcome = reconfig::replace_sequencer(&client, info, 4).unwrap();
    // Full scan.
    assert_eq!(outcome.entries_scanned, 50);
    let (_, entry) = client.append_streams(&[0], payload(1)).unwrap();
    assert_eq!(entry.header_for(0).unwrap().backpointers, vec![48, 45, 42, 39]);
}

#[test]
fn checkpoint_state_covers_streams_with_no_suffix_entries() {
    // A stream whose last activity predates the checkpoint must still be
    // recoverable from the checkpoint alone.
    let cluster = LocalCluster::new(ClusterConfig::default());
    let client = cluster.client().unwrap();
    client.append_streams(&[7], payload(0)).unwrap(); // offset 0
    client.append_streams(&[7], payload(1)).unwrap(); // offset 1
    reconfig::checkpoint_sequencer_state(&client).unwrap(); // offset 2
    for i in 0..30u64 {
        client.append_streams(&[8], payload(i)).unwrap(); // 3..33
    }
    cluster.kill_sequencer();
    let (info, _server) = cluster.spawn_replacement_sequencer();
    let outcome = reconfig::replace_sequencer(&client, info, 4).unwrap();
    assert!(outcome.entries_scanned <= 32);
    // Stream 7's backpointers come from the checkpoint.
    let (_, entry) = client.append_streams(&[7], payload(99)).unwrap();
    assert_eq!(entry.header_for(7).unwrap().backpointers, vec![1, 0]);
}
