//! Deterministic chaos on the metadata plane: metalog (layout) replicas
//! are crashed, their calls dropped, and their calls delayed under seeded
//! [`FaultPlan`] schedules. The cluster must stay live — seal and
//! reconfigure keep working through any single layout-replica crash,
//! including one fired mid-`replace_storage_node` — and because every
//! fault decision is a pure function of the seed, each schedule replays
//! identically under the same `TANGO_FAULT_SEED`.

mod support;

use std::sync::mpsc;
use std::time::Duration;

use bytes::Bytes;
use corfu::cluster::{ClusterConfig, LocalCluster, LAYOUT_BASE_ID};
use corfu::reconfig::{bump_epoch, replace_storage_node};
use corfu::{ClientOptions, LogOffset, NodeId};
use support::fault::{FaultPlan, TraceEvent};
use support::{seed_from_env, SeedGuard};

const SEED_DEFAULT: u64 = 0xC0FF_EE00_0006;
const PRELOAD_APPENDS: u32 = 40;

/// The acceptance scenario: a storage node dies and is replaced while the
/// layout CAS's very first metalog write crashes its target replica — the
/// reconfiguration must fail over to the surviving quorum and complete.
/// Single-threaded, so the full decision trace is seed-deterministic.
fn replacement_scenario(seed: u64) -> Vec<TraceEvent> {
    let cluster =
        LocalCluster::new(ClusterConfig { num_sets: 2, replication: 2, ..Default::default() });
    let plan = FaultPlan::new(seed);
    // Seeded jitter on the metadata plane, then the first metalog write of
    // the layout CAS kills the replica it lands on (the arbitrating,
    // lowest-indexed one).
    plan.delay_calls("meta.", 25, 200);
    plan.crash_at("meta.write", 1);
    let (tx, rx) = mpsc::channel::<NodeId>();
    {
        let registry = cluster.registry().clone();
        plan.on_crash(move |node| {
            // Kill the replica for real so every client observes the crash.
            registry.kill(&format!("meta-{node}"));
            let _ = tx.send(node);
        });
    }

    let client = cluster
        .client_with_factory(
            plan.wrap(cluster.conn_factory()),
            ClientOptions::default(),
            cluster.metrics().clone(),
        )
        .unwrap();

    // A fixed preload so the rebuild has a deterministic amount to copy.
    let mut acked: Vec<(LogOffset, Bytes)> = Vec::new();
    for i in 0..PRELOAD_APPENDS {
        let payload = Bytes::from(format!("meta-chaos-{i}").into_bytes());
        let off = client.append(payload.clone()).unwrap();
        acked.push((off, payload));
    }

    // Kill a storage node and replace it. The layout CAS at the end of the
    // rebuild triggers the planned metalog-replica crash mid-operation.
    let victim: NodeId = 3;
    cluster.kill_storage_node(victim);
    let (info, _replacement) = cluster.spawn_replacement_storage();
    let outcome = replace_storage_node(&client, victim, info).unwrap();
    assert_eq!(outcome.projection.epoch, 1, "the rebuild must install epoch 1");
    assert!(outcome.pages_copied > 0, "the rebuild must move pages");

    // The planned crash fired, on a metalog replica.
    let crashed = rx.recv_timeout(Duration::from_secs(10)).expect("the planned crash must fire");
    assert!(crashed >= LAYOUT_BASE_ID, "the crash must hit a layout replica, got {crashed}");

    // Liveness after the crash: the same client can keep reconfiguring
    // (seal + CAS) on the surviving two-replica quorum...
    let (epoch, _) = bump_epoch(&client).unwrap();
    assert_eq!(epoch, 2);

    // ...and appends still flow end to end.
    for i in 0..8u32 {
        let payload = Bytes::from(format!("post-crash-{i}").into_bytes());
        let off = client.append(payload.clone()).unwrap();
        acked.push((off, payload));
    }

    // Every acked append is readable with its exact payload.
    let reader = cluster.client().unwrap();
    for (off, payload) in &acked {
        assert_eq!(&reader.read_entry(*off).unwrap().payload, payload);
    }

    plan.trace()
}

#[test]
fn layout_replica_crash_mid_replacement_is_survived_deterministically() {
    let seed = seed_from_env(SEED_DEFAULT);
    let _guard = SeedGuard(seed);

    let first = replacement_scenario(seed);
    let second = replacement_scenario(seed);

    // Single-threaded scenario: the whole decision trace is a pure
    // function of the seed, not just the pre-crash prefix.
    assert_eq!(first, second, "same seed must reproduce the identical trace");

    let crash = first.iter().find(|e| e.action == "crash").expect("crash must be in the trace");
    assert_eq!(crash.point, "meta.write");
    assert_eq!(crash.nth, 1);
}

/// Drop/delay schedules on the metadata plane: a lossy, jittery network to
/// the metalog must slow reconfiguration down, never wedge or corrupt it.
fn lossy_meta_scenario(seed: u64) -> Vec<TraceEvent> {
    let cluster =
        LocalCluster::new(ClusterConfig { num_sets: 1, replication: 2, ..Default::default() });
    let plan = FaultPlan::new(seed);
    plan.drop_calls("meta.", 10);
    plan.delay_calls("meta.", 30, 150);

    let client = cluster
        .client_with_factory(
            plan.wrap(cluster.conn_factory()),
            ClientOptions::default(),
            cluster.metrics().clone(),
        )
        .unwrap();

    let mut acked: Vec<(LogOffset, Bytes)> = Vec::new();
    for i in 0..12u32 {
        let payload = Bytes::from(format!("lossy-{i}").into_bytes());
        let off = client.append(payload.clone()).unwrap();
        acked.push((off, payload));
    }

    // Reconfigure repeatedly through the lossy metadata plane. Epochs must
    // advance exactly one at a time — dropped metalog calls may force
    // retries but can never skip or double-install an epoch.
    for round in 0..4u64 {
        let (epoch, _) = bump_epoch(&client).unwrap();
        assert_eq!(epoch, round + 1);
    }
    for (off, payload) in &acked {
        assert_eq!(&cluster.client().unwrap().read_entry(*off).unwrap().payload, payload);
    }

    plan.trace()
}

#[test]
fn lossy_metadata_plane_slows_but_never_wedges_reconfiguration() {
    let seed = seed_from_env(SEED_DEFAULT ^ 0xA5A5);
    let _guard = SeedGuard(seed);

    let first = lossy_meta_scenario(seed);
    let second = lossy_meta_scenario(seed);
    assert_eq!(first, second, "same seed must reproduce the identical trace");
    assert!(
        first.iter().any(|e| e.action == "drop" && e.point.starts_with("meta.")),
        "the schedule must actually drop metalog calls"
    );
}

/// A layout replica crashes outright; a replacement is caught up from the
/// surviving quorum and inducted. The replacement must be a real quorum
/// member: the cluster then survives losing a *second* original replica.
#[test]
fn crashed_layout_replica_is_replaced_and_carries_the_quorum() {
    let cluster =
        LocalCluster::new(ClusterConfig { num_sets: 1, replication: 2, ..Default::default() });
    let client = cluster.client().unwrap();
    for i in 0..6u32 {
        client.append(Bytes::from(format!("pre-{i}"))).unwrap();
    }

    // Crash the arbitrating (lowest-indexed) replica.
    cluster.kill_layout_replica(LAYOUT_BASE_ID);
    // Seal/reconfigure works on the surviving 2-of-3 quorum.
    let (epoch, _) = bump_epoch(&client).unwrap();
    assert_eq!(epoch, 1);

    // Chain-rebuild the metalog: catch a fresh replica up and induct it.
    let info = cluster.replace_layout_replica(LAYOUT_BASE_ID).unwrap();
    let node = cluster.meta_node(info.id).expect("replacement registered");
    // Catch-up copied the whole history: genesis + epoch 1 = positions 0..=1.
    assert_eq!(node.tail(), 2, "replacement must hold every decided record");

    // The replacement carries its share: lose a second original replica and
    // the metalog still serves seals, reconfigurations, and appends.
    cluster.kill_layout_replica(LAYOUT_BASE_ID + 1);
    let (epoch, _) = bump_epoch(&client).unwrap();
    assert_eq!(epoch, 2);
    let off = client.append(Bytes::from_static(b"after-two-crashes")).unwrap();
    assert_eq!(
        cluster.client().unwrap().read_entry(off).unwrap().payload,
        Bytes::from_static(b"after-two-crashes")
    );
}
