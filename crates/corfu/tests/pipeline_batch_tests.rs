//! Sequencer token batching (§5) and pipelined-append integration tests.
//!
//! Batching is opt-in via [`ClientOptions::batched`] (batch = 4): one
//! `NextBatch` round trip reserves four consecutive tokens, and the client
//! hands spares to subsequent `token()` calls for the same stream set. These
//! tests pin down the amortization ratio, offset uniqueness under concurrent
//! batched appends over real TCP, and seal/reconfiguration behaviour while
//! batched appends are in flight.

use std::sync::Arc;
use std::thread;

use bytes::Bytes;
use corfu::cluster::{ClusterConfig, LocalCluster, TcpCluster};
use corfu::{reconfig, ClientOptions};

#[test]
fn batched_appends_amortize_sequencer_round_trips() {
    // 40 appends with batch = 4 should cost ~10 sequencer round trips
    // instead of 40: one NextBatch per four tokens, the rest pool hits.
    let mut config = ClusterConfig::default();
    config.client_options.seq_batch = 4;
    let cluster = LocalCluster::new(config);
    let client = cluster.client().unwrap();

    const APPENDS: u64 = 40;
    for i in 0..APPENDS {
        client.append(Bytes::from(format!("batched-{i}"))).unwrap();
    }

    let snap = cluster.metrics().snapshot();
    assert_eq!(snap.counter("corfu.seq.tokens_granted"), APPENDS);
    assert_eq!(
        snap.counter("corfu.seq.batches_granted"),
        APPENDS / 4,
        "each NextBatch must cover exactly seq_batch appends"
    );
    assert_eq!(
        snap.counter("corfu.client.token_batches"),
        APPENDS / 4,
        "client round trips must be amortized 4x"
    );
    assert_eq!(
        snap.counter("corfu.client.token_pool_hits"),
        APPENDS - APPENDS / 4,
        "three of every four tokens must come from the pool"
    );

    // Every granted token was used: the log is dense, no holes.
    assert_eq!(client.check_tail_fast().unwrap(), APPENDS);
    for i in 0..APPENDS {
        match client.read(i).unwrap() {
            corfu::ReadOutcome::Data(_) => {}
            other => panic!("offset {i} should hold data, got {other:?}"),
        }
    }
}

#[test]
fn unbatched_default_is_unchanged() {
    // seq_batch defaults to 1: every token is its own round trip and the
    // batch path stays cold. Guards against accidentally flipping the
    // default, which would leave holes for non-batched workloads.
    let cluster = LocalCluster::new(ClusterConfig::default());
    let client = cluster.client().unwrap();
    for i in 0..10u64 {
        client.append(Bytes::from(format!("plain-{i}"))).unwrap();
    }
    let snap = cluster.metrics().snapshot();
    assert_eq!(snap.counter("corfu.seq.tokens_granted"), 10);
    assert_eq!(snap.counter("corfu.seq.batches_granted"), 0);
    assert_eq!(snap.counter("corfu.client.token_batches"), 0);
    assert_eq!(snap.counter("corfu.client.token_pool_hits"), 0);
}

#[test]
fn concurrent_batched_appends_over_tcp_get_unique_offsets() {
    // Several threads share one batched client over real TCP: the token
    // pool must never hand the same offset twice, and the sequencer round
    // trips must still be amortized under contention.
    let cluster = TcpCluster::spawn(ClusterConfig::default()).unwrap();
    let client = Arc::new(cluster.client_with_options(ClientOptions::batched()).unwrap());

    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 12;
    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let client = Arc::clone(&client);
            thread::spawn(move || {
                let mut offsets = Vec::new();
                for i in 0..PER_THREAD {
                    let off = client.append(Bytes::from(format!("tcp-{t}-{i}"))).unwrap();
                    offsets.push(off);
                }
                offsets
            })
        })
        .collect();
    let mut all: Vec<u64> = workers.into_iter().flat_map(|w| w.join().unwrap()).collect();
    all.sort_unstable();
    let before = all.len();
    all.dedup();
    assert_eq!(all.len(), before, "duplicate offsets handed out");
    assert_eq!(all.len() as u64, THREADS * PER_THREAD);

    // Client-side counters live in the cluster handle's registry; the
    // sequencer's live in its own node registry, scraped over HTTP and
    // merged — exactly how a real deployment would check this invariant.
    let snap = cluster.cluster_snapshot().merged();
    let appends = THREADS * PER_THREAD;
    let batches = snap.counter("corfu.client.token_batches");
    assert!(
        batches <= appends / 2,
        "expected >=2x amortization of sequencer round trips, \
         got {batches} batches for {appends} appends"
    );
    assert_eq!(
        snap.counter("corfu.client.token_batches") * 4,
        snap.counter("corfu.seq.tokens_granted"),
        "every batch reserves exactly 4 tokens"
    );

    // All appended entries are readable through a second, fresh client.
    let reader = cluster.client().unwrap();
    for &off in &all {
        match reader.read(off).unwrap() {
            corfu::ReadOutcome::Data(_) => {}
            other => panic!("offset {off} should hold data, got {other:?}"),
        }
    }
}

#[test]
fn seal_during_pipelined_batched_appends() {
    // Replace the sequencer while batched appenders are mid-flight. Sealing
    // bumps the epoch, which must invalidate every pooled token: stale
    // tokens would write into a sealed epoch or duplicate offsets handed
    // out by the replacement. Appenders ride through via the client's
    // seal-retry loop; afterwards each appended offset holds exactly the
    // payload its appender wrote.
    let mut config = ClusterConfig::default();
    config.client_options.seq_batch = 4;
    let cluster = Arc::new(LocalCluster::new(config));
    let k = cluster.config().k_backpointers;

    const THREADS: u64 = 3;
    const PER_THREAD: u64 = 30;
    // Appenders warm their token pools, then rendezvous with the
    // reconfigurer so the seal lands while the remaining appends (and
    // pooled epoch-0 tokens) are in flight.
    let barrier = Arc::new(std::sync::Barrier::new(THREADS as usize + 1));
    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let client = cluster.client().unwrap();
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                let mut written = Vec::new();
                for i in 0..PER_THREAD {
                    if i == 5 {
                        barrier.wait();
                    }
                    let payload = format!("sealed-{t}-{i}");
                    let off = client.append(Bytes::from(payload.clone())).unwrap();
                    written.push((off, payload));
                }
                written
            })
        })
        .collect();

    // Yank the sequencer out from under the appenders mid-stream.
    barrier.wait();
    let admin = cluster.client().unwrap();
    let (info, _server) = cluster.spawn_replacement_sequencer();
    let outcome = reconfig::replace_sequencer(&admin, info, k).unwrap();
    assert_eq!(outcome.projection.epoch, 1);

    let mut all: Vec<(u64, String)> = workers.into_iter().flat_map(|w| w.join().unwrap()).collect();
    assert_eq!(all.len() as u64, THREADS * PER_THREAD);
    all.sort_unstable();
    for pair in all.windows(2) {
        assert_ne!(pair[0].0, pair[1].0, "stale pooled token reused an offset");
    }

    // Every append that reported success is durable and holds the payload
    // its appender wrote — across the epoch boundary.
    let reader = cluster.client().unwrap();
    for (off, payload) in &all {
        let entry = reader.read_entry(*off).unwrap();
        assert_eq!(
            entry.payload,
            Bytes::from(payload.clone()),
            "offset {off} holds someone else's data"
        );
    }

    // The cluster stays fully writable in the new epoch, batching intact.
    let client = cluster.client().unwrap();
    let before = cluster.metrics().snapshot().counter("corfu.seq.batches_granted");
    for i in 0..8u64 {
        client.append(Bytes::from(format!("after-seal-{i}"))).unwrap();
    }
    let after = cluster.metrics().snapshot().counter("corfu.seq.batches_granted");
    assert!(after > before, "batching must keep working after reconfiguration");
}
