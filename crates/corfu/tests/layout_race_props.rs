//! Property test for metalog write-once arbitration: K proposals racing at
//! the same epoch — from concurrent threads, over a real replica set —
//! must converge on exactly one winner, with every loser observing the
//! winner's projection.

use corfu::cluster::{ClusterConfig, LocalCluster};
use corfu::Projection;
use proptest::prelude::*;

/// A distinct next-epoch projection per racer: racer `i` nominates a
/// different sequencer address so payloads differ byte-for-byte and
/// arbitration is observable.
fn candidate(base: &Projection, racer: u32) -> Projection {
    let mut p = base.clone();
    p.epoch = base.epoch + 1;
    let seq = p.sequencer_of(0);
    if let Some(node) = p.nodes.iter_mut().find(|n| n.id == seq) {
        node.addr = format!("sequencer-candidate-{racer}");
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn concurrent_proposals_at_one_epoch_have_exactly_one_winner(racers in 2usize..8) {
        let cluster = LocalCluster::new(ClusterConfig::tiny());
        let base = cluster.layout_client().get().unwrap();

        let mut handles = Vec::new();
        for i in 0..racers {
            let client = cluster.layout_client();
            let p = candidate(&base, i as u32);
            handles.push(std::thread::spawn(move || {
                let mine = p.clone();
                (mine, client.propose(p).unwrap())
            }));
        }
        let results: Vec<(Projection, Option<Projection>)> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();

        // Exactly one proposal installed.
        let winners: Vec<&Projection> =
            results.iter().filter(|(_, r)| r.is_none()).map(|(mine, _)| mine).collect();
        prop_assert_eq!(winners.len(), 1, "exactly one racer must install");
        let winner = winners[0].clone();

        // Every loser observed the winner's projection, not some third value.
        for (mine, result) in &results {
            if let Some(observed) = result {
                prop_assert_ne!(mine, &winner);
                prop_assert_eq!(observed, &winner);
            }
        }

        // The installed projection is what every reader now sees.
        prop_assert_eq!(cluster.layout_client().get().unwrap(), winner.clone());
        prop_assert_eq!(winner.epoch, base.epoch + 1);
    }

    #[test]
    fn sequential_rounds_of_racing_proposals_stay_linear(rounds in 1usize..5, racers in 2usize..5) {
        // Across several reconfiguration rounds, each with racing
        // proposers, epochs advance by exactly one per round and the
        // metalog stays a linear history of winners.
        let cluster = LocalCluster::new(ClusterConfig::tiny());
        for round in 0..rounds {
            let base = cluster.layout_client().get().unwrap();
            prop_assert_eq!(base.epoch, round as u64);
            let handles: Vec<_> = (0..racers)
                .map(|i| {
                    let client = cluster.layout_client();
                    let p = candidate(&base, i as u32);
                    std::thread::spawn(move || client.propose(p).unwrap())
                })
                .collect();
            let installed = handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .filter(|outcome| outcome.is_none())
                .count();
            prop_assert_eq!(installed, 1, "round {} must install exactly once", round);
            prop_assert_eq!(cluster.layout_client().get().unwrap().epoch, round as u64 + 1);
        }
    }
}

/// Non-proptest sanity check: a racer that arrives after the race is fully
/// decided still converges on the recorded winner (read-your-winner via
/// the metalog, not via any server-side session state).
#[test]
fn late_proposal_observes_the_decided_winner() {
    let cluster = LocalCluster::new(ClusterConfig::tiny());
    let base = cluster.layout_client().get().unwrap();
    let first = candidate(&base, 0);
    assert_eq!(cluster.layout_client().propose(first.clone()).unwrap(), None);
    let late = candidate(&base, 1);
    assert_eq!(cluster.layout_client().propose(late).unwrap(), Some(first));
}
