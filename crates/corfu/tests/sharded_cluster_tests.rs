//! The sharded log: streams striped across independent per-log sequencers
//! and replica sets, selected by the projection's shard map. These tests
//! cover the client-visible contract — composite offsets, independent
//! per-log tails and epochs, cross-log multiappend atomicity through the
//! home-anchor protocol, per-log token-pool invalidation, and stream
//! remaps that move a stream between logs without losing entries.

mod support;

use bytes::Bytes;
use corfu::cluster::{ClusterConfig, LocalCluster};
use corfu::reconfig::{remap_stream, seal_log};
use corfu::{
    compose, log_of_offset, raw_of_offset, ClientOptions, EntryEnvelope, Projection, ReadOutcome,
    StreamId,
};

/// The first stream id at or above `from` that the shard map sends to
/// `log`.
fn stream_in_log(proj: &Projection, log: u32, from: StreamId) -> StreamId {
    (from..).find(|&s| proj.log_of_stream(s) == log).expect("shard map is total")
}

#[test]
fn sharded_appends_carry_their_log_in_the_offset() {
    let cluster = LocalCluster::new(ClusterConfig::sharded(3));
    let client = cluster.client().unwrap();
    let proj = client.projection();
    assert_eq!(proj.num_logs(), 3);

    for log in 0..3u32 {
        let stream = stream_in_log(&proj, log, 1);
        for i in 0..5u32 {
            let payload = Bytes::from(format!("log{log}-{i}").into_bytes());
            let (off, _) = client.append_streams(&[stream], payload.clone()).unwrap();
            assert_eq!(log_of_offset(off), log, "stream {stream} must land in its log");
            assert_eq!(raw_of_offset(off), i as u64, "each log numbers its offsets from 0");
            assert_eq!(client.read_entry(off).unwrap().payload, payload);
        }
    }
    // Per-log tails advanced independently; the merged tail is the highest
    // log's composite tail.
    for log in 0..3u32 {
        assert_eq!(client.log_tail_fast(log).unwrap(), 5);
    }
    assert_eq!(client.check_tail_fast().unwrap(), compose(2, 5));
    assert_eq!(client.check_tail_slow().unwrap(), compose(2, 5));
}

#[test]
fn sync_spanning_logs_merges_backpointers_in_request_order() {
    let cluster = LocalCluster::new(ClusterConfig::sharded(2));
    let client = cluster.client().unwrap();
    let proj = client.projection();
    let s0 = stream_in_log(&proj, 0, 1);
    let s1 = stream_in_log(&proj, 1, 1);

    let (a, _) = client.append_streams(&[s0], Bytes::from_static(b"a")).unwrap();
    let (b, _) = client.append_streams(&[s1], Bytes::from_static(b"b")).unwrap();
    let (c, _) = client.append_streams(&[s0], Bytes::from_static(b"c")).unwrap();

    // One tail_info spanning both logs: backpointers come back aligned
    // with the requested stream order, as composite offsets.
    let (tail, backs) = client.tail_info(&[s1, s0]).unwrap();
    assert!(tail > b, "merged tail must cover the highest log's entries");
    assert_eq!(backs.len(), 2);
    assert!(backs[0].contains(&b), "first answer is for s1 (requested first)");
    assert!(backs[1].contains(&a) && backs[1].contains(&c), "second answer is for s0");
}

#[test]
fn cross_log_multiappend_writes_every_part_with_one_link() {
    let cluster = LocalCluster::new(ClusterConfig::sharded(2));
    let client = cluster.client().unwrap();
    let proj = client.projection();
    let s0 = stream_in_log(&proj, 0, 1);
    let s1 = stream_in_log(&proj, 1, 1);

    let payload = Bytes::from_static(b"spanning");
    let (home, anchor) = client.append_streams(&[s0, s1], payload.clone()).unwrap();
    let link = anchor.link.clone().expect("a cross-log append must carry a link");
    assert_eq!(link.home, home);
    assert_eq!(link.parts.len(), 2);
    assert_eq!(home, *link.parts.iter().min().unwrap(), "home is the lowest composite part");

    // Every part holds a data entry with the same payload and the same
    // link; together they form one atomic multiappend.
    let mut part_logs: Vec<u32> = Vec::new();
    for &part in &link.parts {
        let entry = client.read_entry(part).unwrap();
        assert_eq!(entry.payload, payload);
        assert_eq!(entry.link.as_ref(), Some(&link));
        part_logs.push(log_of_offset(part));
    }
    part_logs.sort_unstable();
    assert_eq!(part_logs, vec![0, 1], "one part per written log");
    // Each part carries the headers for its own log's streams: the anchor
    // (log 0) holds s0's header, the other part holds s1's.
    assert!(anchor.belongs_to(s0) && !anchor.belongs_to(s1));
    let other = *link.parts.iter().max().unwrap();
    let other_entry = client.read_entry(other).unwrap();
    assert!(other_entry.belongs_to(s1) && !other_entry.belongs_to(s0));
}

#[test]
fn sealing_one_log_leaves_other_logs_pooled_tokens_valid() {
    // The per-log token-pool regression: sealing log 0 must invalidate
    // only log 0's pooled tokens. Log 1's pool keeps serving without a
    // sequencer round trip, and its tokens still commit.
    let cluster = LocalCluster::new(ClusterConfig::sharded(2));
    let client = cluster
        .client_with_factory(
            cluster.conn_factory(),
            ClientOptions::batched(),
            cluster.metrics().clone(),
        )
        .unwrap();
    let proj = client.projection();
    let s0 = stream_in_log(&proj, 0, 1);
    let s1 = stream_in_log(&proj, 1, 1);

    // Warm both logs' pools.
    client.append_streams(&[s0], Bytes::from_static(b"warm-0")).unwrap();
    client.append_streams(&[s1], Bytes::from_static(b"warm-1")).unwrap();
    let hits_before = cluster.metrics().counter("corfu.client.token_pool_hits").get();

    // Seal log 0 into its next epoch (membership unchanged).
    seal_log(&client, 0).unwrap();

    // Log 1's pooled tokens are still stamped with log 1's live epoch:
    // they must be served from the pool and commit.
    let (off, _) = client.append_streams(&[s1], Bytes::from_static(b"pooled")).unwrap();
    assert_eq!(log_of_offset(off), 1);
    assert_eq!(client.read_entry(off).unwrap().payload, Bytes::from_static(b"pooled"));
    let hits_after = cluster.metrics().counter("corfu.client.token_pool_hits").get();
    assert!(
        hits_after > hits_before,
        "log 1's append must be served from its pool across log 0's seal"
    );

    // Log 0 itself recovers through the epoch change: its pool is cleared
    // and the append retries at the new epoch.
    let (off0, _) = client.append_streams(&[s0], Bytes::from_static(b"resealed")).unwrap();
    assert_eq!(log_of_offset(off0), 0);
    assert_eq!(client.read_entry(off0).unwrap().payload, Bytes::from_static(b"resealed"));
    let p = client.projection();
    assert_eq!(p.epoch_of_log(0), 1, "log 0 moved to epoch 1");
    assert_eq!(p.epoch_of_log(1), 0, "log 1 kept its epoch");
}

#[test]
fn remap_moves_a_stream_without_losing_or_duplicating_entries() {
    let cluster = LocalCluster::new(ClusterConfig::sharded(2));
    let client = cluster.client().unwrap();
    let proj = client.projection();
    let stream = stream_in_log(&proj, 0, 1);

    let mut expected: Vec<(u64, Bytes)> = Vec::new();
    for i in 0..6u32 {
        let payload = Bytes::from(format!("before-{i}").into_bytes());
        let (off, _) = client.append_streams(&[stream], payload.clone()).unwrap();
        assert_eq!(log_of_offset(off), 0);
        expected.push((off, payload));
    }

    let new_proj = remap_stream(&client, stream, 1).unwrap();
    assert_eq!(new_proj.log_of_stream(stream), 1);
    assert_eq!(cluster.metrics().counter("corfu.reconfig.stream_remaps").get(), 1);

    for i in 0..4u32 {
        let payload = Bytes::from(format!("after-{i}").into_bytes());
        let (off, _) = client.append_streams(&[stream], payload.clone()).unwrap();
        assert_eq!(log_of_offset(off), 1, "post-remap appends land in the target log");
        expected.push((off, payload));
    }

    // The sequencer's backpointer window for the stream now lives at the
    // target log's sequencer and spans the remap: a fresh client's
    // tail_info sees the newest entries, and striding through entry
    // headers reaches every pre-remap entry (composite backpointers cross
    // logs transparently).
    let reader = cluster.client().unwrap();
    let (_, backs) = reader.tail_info(&[stream]).unwrap();
    let newest = *expected.last().map(|(off, _)| off).unwrap();
    assert!(backs[0].contains(&newest), "adopted window must include post-remap entries");

    // Walk the full backpointer chain and collect the stream's entries.
    let mut found: Vec<u64> = backs[0].iter().copied().filter(|&o| o != u64::MAX).collect();
    loop {
        found.sort_unstable();
        found.dedup();
        let oldest = found[0];
        let entry = reader.read_entry(oldest).unwrap();
        let header = entry.header_for(stream).expect("member entry carries the header");
        let older: Vec<u64> =
            header.backpointers.iter().copied().filter(|&o| o != u64::MAX).collect();
        if older.is_empty() {
            break;
        }
        let before = found.len();
        found.extend(older);
        found.sort_unstable();
        found.dedup();
        if found.len() == before && found[0] == oldest {
            break;
        }
    }
    let mut want: Vec<u64> = expected.iter().map(|(off, _)| *off).collect();
    want.sort_unstable();
    assert_eq!(found, want, "replay must see every entry exactly once across the remap");
    for (off, payload) in &expected {
        assert_eq!(&reader.read_entry(*off).unwrap().payload, payload);
    }
}

#[test]
fn remap_to_same_log_is_a_no_op() {
    let cluster = LocalCluster::new(ClusterConfig::sharded(2));
    let client = cluster.client().unwrap();
    let proj = client.projection();
    let stream = stream_in_log(&proj, 1, 1);
    let out = remap_stream(&client, stream, 1).unwrap();
    assert_eq!(out.epoch, proj.epoch, "no epoch change for a no-op remap");
    assert_eq!(cluster.metrics().counter("corfu.reconfig.stream_remaps").get(), 0);
}

#[test]
fn single_log_sharded_config_behaves_like_the_classic_cluster() {
    // `sharded(1)` must be indistinguishable from the unsharded layout:
    // raw offsets, log 0 everywhere.
    let cluster = LocalCluster::new(ClusterConfig::sharded(1));
    let client = cluster.client().unwrap();
    let off = client.append(Bytes::from_static(b"plain")).unwrap();
    assert_eq!(log_of_offset(off), 0);
    assert_eq!(off, 0);
    assert_eq!(
        client.read(off).unwrap(),
        ReadOutcome::Data(Bytes::from(
            EntryEnvelope::raw(Bytes::from_static(b"plain")).encode(off).unwrap(),
        ))
    );
}
