//! The flight recorder under deterministic chaos: a seeded [`FaultPlan`]
//! kills log 1's sequencer mid-append, the cluster recovers (seal →
//! replacement sequencer → stream remap), and the merged control-plane
//! timeline must (a) show the recovery in causal order and (b) render
//! byte-identically when the same seed replays the schedule — the
//! property that makes `tangoctl timeline` a usable postmortem artifact.

mod support;

use std::sync::mpsc;
use std::time::Duration;

use bytes::Bytes;
use corfu::cluster::{ClusterConfig, LocalCluster, SEQUENCER_BASE_ID};
use corfu::reconfig::{remap_stream, replace_sequencer_in_log};
use corfu::{NodeId, Projection, StreamId};
use support::fault::FaultPlan;
use support::{seed_from_env, SeedGuard};

const SEED_DEFAULT: u64 = 0x0B5E_7A11_0009;
/// The 1-based `shard1.seq.next` grant that kills log 1's sequencer.
const CRASH_NTH: u64 = 4;
const APPENDS: u32 = 8;

fn stream_in_log(proj: &Projection, log: u32, from: StreamId) -> StreamId {
    (from..).find(|&s| proj.log_of_stream(s) == log).expect("shard map is total")
}

/// Runs the seeded kill/recover/remap schedule and returns the rendered
/// cluster timeline. Single-threaded throughout, so the journal order is
/// a pure function of the seed.
fn chaos_timeline(seed: u64) -> String {
    let cluster = LocalCluster::new(ClusterConfig::sharded(2));
    let plan = FaultPlan::new(seed);
    plan.delay_calls("shard1.seq.", 25, 150);
    plan.crash_at("shard1.seq.next", CRASH_NTH);
    let (tx, rx) = mpsc::channel::<NodeId>();
    {
        let registry = cluster.registry().clone();
        plan.on_crash(move |node| {
            registry.kill(&format!("sequencer-{node}"));
            let _ = tx.send(node);
        });
    }

    let client = cluster
        .client_with_factory(
            plan.wrap(cluster.conn_factory()),
            corfu::ClientOptions::default(),
            cluster.metrics().clone(),
        )
        .unwrap();
    let proj = client.projection();
    let s1 = stream_in_log(&proj, 1, 1);

    let mut acked = 0u32;
    let mut failed = 0u32;
    for i in 0..APPENDS {
        match client.append_streams(&[s1], Bytes::from(format!("chaos-{i}"))) {
            Ok(_) => acked += 1,
            Err(_) => failed += 1,
        }
    }
    assert_eq!(acked as u64, CRASH_NTH - 1, "appends up to the planned crash commit");
    assert!(failed > 0, "the crash must fail at least one append");
    let crashed = rx.recv_timeout(Duration::from_secs(10)).expect("the planned crash fires");
    assert_eq!((crashed - SEQUENCER_BASE_ID) % 100, 1, "the crash hits log 1's sequencer");

    // Recovery, exactly as an operator (or auto-repair) would drive it:
    // seal log 1 + install a replacement sequencer, then move the stream
    // to log 0 — the seal → projection → adoption chain the timeline
    // must narrate.
    let (info, _replacement) = cluster.spawn_replacement_sequencer_for(1);
    let outcome = replace_sequencer_in_log(&client, 1, info, 4).unwrap();
    assert_eq!(outcome.projection.epoch_of_log(1), 1, "log 1 sealed into epoch 1");
    remap_stream(&client, s1, 0).unwrap();

    // Post-recovery appends land through the new routing.
    for i in 0..4u32 {
        client.append_streams(&[s1], Bytes::from(format!("post-{i}"))).unwrap();
    }

    cluster.cluster_snapshot().timeline_text()
}

#[test]
fn chaos_timeline_shows_recovery_in_causal_order_and_replays_identically() {
    let seed = seed_from_env(SEED_DEFAULT);
    let _guard = SeedGuard(seed);

    let first = chaos_timeline(seed);
    let second = chaos_timeline(seed);
    assert_eq!(first, second, "same seed must render the byte-identical timeline");

    // The recovery chain, in causal order: the seal happens before the
    // new projection is installed, which happens before the remap hands
    // the stream's window to its new sequencer.
    let idx = |needle: &str| {
        first.find(needle).unwrap_or_else(|| panic!("timeline must contain {needle:?}:\n{first}"))
    };
    let sealed = idx("kind=sealed");
    let installed = idx("kind=projection_installed");
    let adopted = idx("kind=stream_adopted");
    assert!(sealed < installed, "seal precedes the projection install:\n{first}");
    assert!(installed < adopted, "projection install precedes adoption:\n{first}");
    assert!(first.contains("kind=shard_remapped"), "the remap is journalled:\n{first}");

    // The seal of the dead sequencer's log is journalled by the
    // *coordinator* (the dead node cannot journal anything), against
    // log 1's first post-crash epoch.
    assert!(first.contains("kind=sealed log=1"), "log 1's seal must be in the timeline:\n{first}");

    // Every line renders only causal fields — no timestamps leak in.
    for line in first.lines() {
        assert!(
            line.starts_with("epoch=") && line.contains(" seq=") && line.contains(" kind="),
            "unexpected timeline line: {line}"
        );
    }
}

#[test]
fn quiet_cluster_journals_nothing() {
    let cluster = LocalCluster::new(ClusterConfig::tiny());
    let client = cluster.client().unwrap();
    for i in 0..4u32 {
        client.append(Bytes::from(format!("quiet-{i}"))).unwrap();
    }
    assert_eq!(
        cluster.cluster_snapshot().timeline_text(),
        "",
        "fault-free appends emit no control-plane events"
    );
}
